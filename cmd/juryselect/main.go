// Command juryselect is the Optimal Jury Selection System of the paper's
// Figure 1 as a CLI: given a candidate worker file, a prior, and a list of
// budgets, it prints the budget–quality table the task provider uses to
// pick the best budget/quality trade-off.
//
// Usage:
//
//	juryselect -demo
//	juryselect -workers workers.csv -budgets 5,10,15,20 -alpha 0.5
//
// The worker file is CSV with one worker per line: id,quality,cost
// (a header line is detected and skipped). With -demo the paper's seven
// example workers A–G are used instead.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/table"
	"repro/jury"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "juryselect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("juryselect", flag.ContinueOnError)
	var (
		workersPath = fs.String("workers", "", "CSV file of candidate workers (id,quality,cost)")
		budgetsStr  = fs.String("budgets", "5,10,15,20", "comma-separated budgets")
		alpha       = fs.Float64("alpha", 0.5, "prior P(answer = no) in [0, 1]")
		seed        = fs.Int64("seed", 1, "random seed for the annealing search")
		demo        = fs.Bool("demo", false, "use the paper's Figure 1 example workers")
		exact       = fs.Bool("exact", false, "score juries with the exact (exponential) JQ")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pool jury.Pool
	switch {
	case *demo:
		pool = experiments.Figure1Pool()
	case *workersPath != "":
		var err error
		pool, err = loadWorkers(*workersPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -workers or -demo is required")
	}
	if err := pool.Validate(); err != nil {
		return err
	}
	budgets, err := parseBudgets(*budgetsStr)
	if err != nil {
		return err
	}

	sys := jury.NewSystem(*alpha, *seed)
	if *exact {
		sys.Selector = jury.NewExhaustiveExact()
	}
	rows, err := sys.BudgetQualityTable(pool, budgets)
	if err != nil {
		return err
	}

	t := table.New(
		fmt.Sprintf("Budget–quality table (%d candidates, alpha=%v)", len(pool), *alpha),
		"budget", "jury", "quality", "required",
	)
	for _, row := range rows {
		ids := make([]string, len(row.Jury))
		for i, w := range row.Jury {
			ids[i] = w.ID
		}
		t.AddRow(
			table.Float(row.Budget),
			"{"+strings.Join(ids, ",")+"}",
			table.Percent(row.JQ),
			table.Float(row.RequiredBudget),
		)
	}
	_, err = fmt.Fprint(out, t.String())
	return err
}

func parseBudgets(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	budgets := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		b, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad budget %q: %w", p, err)
		}
		budgets = append(budgets, b)
	}
	if len(budgets) == 0 {
		return nil, fmt.Errorf("no budgets given")
	}
	return budgets, nil
}

func loadWorkers(path string) (jury.Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		return parseWorkersJSON(f)
	}
	return parseWorkers(f)
}

// parseWorkersJSON reads a JSON array of workers:
// [{"ID":"A","Quality":0.77,"Cost":9}, ...].
func parseWorkersJSON(r io.Reader) (jury.Pool, error) {
	var pool jury.Pool
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pool); err != nil {
		return nil, fmt.Errorf("json workers: %w", err)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("no workers in input")
	}
	return pool, nil
}

func parseWorkers(r io.Reader) (jury.Pool, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	cr.TrimLeadingSpace = true
	var pool jury.Pool
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		if line == 1 && looksLikeHeader(rec) {
			continue
		}
		q, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad quality %q: %w", line, rec[1], err)
		}
		c, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad cost %q: %w", line, rec[2], err)
		}
		pool = append(pool, jury.Worker{ID: rec[0], Quality: q, Cost: c})
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("no workers in input")
	}
	return pool, nil
}

func looksLikeHeader(rec []string) bool {
	_, err := strconv.ParseFloat(rec[1], 64)
	return err != nil
}
