package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"budget", "quality", "84.50%", "{B,C,G}"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDemoExact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "-exact", "-budgets", "15"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "84.50%") {
		t.Errorf("exact mode output:\n%s", out.String())
	}
}

func TestRunWorkersFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.csv")
	content := "id,quality,cost\nalice,0.9,4\nbob,0.7,1\ncarol,0.65,1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-workers", path, "-budgets", "2,6"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "alice") && !strings.Contains(got, "bob") {
		t.Errorf("output mentions no workers:\n%s", got)
	}
}

func TestRunWorkersJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.json")
	content := `[{"ID":"alice","Quality":0.9,"Cost":4},{"ID":"bob","Quality":0.7,"Cost":1}]`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-workers", path, "-budgets", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice") {
		t.Errorf("JSON pool output:\n%s", out.String())
	}
}

func TestParseWorkersJSONErrors(t *testing.T) {
	for name, content := range map[string]string{
		"not json":       "hello",
		"empty array":    "[]",
		"unknown fields": `[{"ID":"a","Quality":0.5,"Cost":1,"Bribe":7}]`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := parseWorkersJSON(strings.NewReader(content)); err == nil {
				t.Errorf("no error for %q", content)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"no input":      {},
		"missing file":  {"-workers", "/nonexistent/x.csv"},
		"bad budgets":   {"-demo", "-budgets", "abc"},
		"empty budgets": {"-demo", "-budgets", ","},
		"bad prior":     {"-demo", "-alpha", "2"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := run(args, &out); err == nil {
				t.Errorf("no error for args %v", args)
			}
		})
	}
}

func TestParseWorkersRejectsBadRows(t *testing.T) {
	cases := map[string]string{
		"bad quality":  "a,notanumber,1\n",
		"bad cost":     "a,0.5,zzz\n",
		"empty":        "",
		"header only":  "id,quality,cost\n",
		"wrong fields": "a,0.5\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := parseWorkers(strings.NewReader(content)); err == nil {
				t.Errorf("no error for %q", content)
			}
		})
	}
}

func TestParseWorkersNoHeader(t *testing.T) {
	pool, err := parseWorkers(strings.NewReader("w1,0.8,2\nw2,0.6,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 2 || pool[0].ID != "w1" || pool[1].Cost != 1 {
		t.Fatalf("pool = %v", pool)
	}
}

func TestParseBudgets(t *testing.T) {
	got, err := parseBudgets(" 1, 2.5 ,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2.5 {
		t.Fatalf("budgets = %v", got)
	}
}
