package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// lineWriter hands each written line to a channel, so the test can watch
// for the "listening on" banner.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			w.buf.WriteString(line) // incomplete line: push back
			break
		}
		select {
		case w.lines <- strings.TrimSpace(line):
		default:
		}
	}
	return len(p), nil
}

// startDaemon runs the daemon on a random port and returns its base URL
// and a cancel that triggers graceful shutdown.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lineWriter{lines: make(chan string, 16)}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-out.lines:
			if addr, ok := strings.CutPrefix(line, "juryd: listening on "); ok {
				return "http://" + addr, cancel, done
			}
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-deadline:
			t.Fatal("daemon never announced its address")
		}
	}
}

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, done := startDaemon(t)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Register a worker and select over HTTP end to end.
	resp, err = http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":1},{"id":"c","quality":0.6,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/select", "application/json", strings.NewReader(`{"budget":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"jq"`) {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestDaemonPreloadsPoolFile(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "pool.json")
	var b strings.Builder
	b.WriteString(`{"workers":[`)
	for i := 0; i < 5; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":"w%d","quality":0.6,"cost":1}`, i)
	}
	b.WriteString(`]}`)
	if err := os.WriteFile(pool, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := startDaemon(t, "-pool", pool)
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"id"`); got != 5 {
		t.Fatalf("preloaded %d workers, want 5: %s", got, body)
	}
}

// TestDaemonDurableRestart boots with -data-dir, mutates, restarts, and
// checks the state and the /debug/persistence recovery counters survive.
func TestDaemonDurableRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")

	base, cancel, done := startDaemon(t, "-data-dir", dataDir)
	resp, err := http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/votes", "application/json",
		strings.NewReader(`{"worker_id":"a","correct":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	base, cancel, done = startDaemon(t, "-data-dir", dataDir)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"id"`); got != 2 {
		t.Fatalf("recovered %d workers, want 2: %s", got, body)
	}
	if !strings.Contains(string(body), `"votes":1`) {
		t.Fatalf("ingested vote lost across restart: %s", body)
	}
	resp, err = http.Get(base + "/debug/persistence")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"enabled":true`) {
		t.Fatalf("persistence status: %s", body)
	}
	// Graceful shutdown snapshotted, so the restart replayed nothing.
	if !strings.Contains(string(body), `"records_replayed":0`) {
		t.Fatalf("expected snapshot-only recovery, got %s", body)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}, io.Discard); err == nil {
		t.Fatal("bad flags accepted")
	}
	if err := run(context.Background(), []string{"-pool", "/does/not/exist.json"}, io.Discard); err == nil {
		t.Fatal("missing pool file accepted")
	}
}

// TestDaemonPreloadsMultiPoolFile boots with -multi-pool (labels coming
// from the -labels flag, not the file) and selects over the preloaded
// confusion-matrix pool end to end.
func TestDaemonPreloadsMultiPoolFile(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "mpool.json")
	data := `{"name":"colors","workers":[
		{"id":"m0","quality":0.8,"cost":2},
		{"id":"m1","confusion":[[0.9,0.05,0.05],[0.1,0.8,0.1],[0.2,0.2,0.6]],"cost":3},
		{"id":"m2","quality":0.65,"cost":1}]}`
	if err := os.WriteFile(pool, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := startDaemon(t, "-multi-pool", pool, "-labels", "3")
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.Count(string(body), `"id"`) != 3 {
		t.Fatalf("preloaded pool: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"labels":3`) {
		t.Fatalf("label count missing: %s", body)
	}
	resp, err = http.Post(base+"/v1/multi/pools/colors/select", "application/json",
		strings.NewReader(`{"budget":5}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"jq"`) {
		t.Fatalf("multi select: %d %s", resp.StatusCode, body)
	}

	// A multi-pool file that resolves no label count must refuse to boot.
	noLabels := filepath.Join(dir, "nolabels.json")
	if err := os.WriteFile(noLabels, []byte(`{"name":"x","workers":[{"id":"a","quality":0.7,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-multi-pool", noLabels}, io.Discard); err == nil {
		t.Fatal("multi-pool file without labels accepted")
	}
}

// TestDaemonDurableRestartWithPreloadFlags: a supervisor restarts the
// daemon with the same argv (-pool/-multi-pool plus -data-dir); the
// journaled first preload is recovered from the WAL, so the second boot
// must skip the redundant preload instead of crash-looping on
// ErrWorkerExists/ErrPoolExists.
func TestDaemonDurableRestartWithPreloadFlags(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	pool := filepath.Join(dir, "pool.json")
	mpool := filepath.Join(dir, "mpool.json")
	if err := os.WriteFile(pool, []byte(`{"workers":[{"id":"a","quality":0.8,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpool, []byte(`{"name":"colors","labels":3,"workers":[{"id":"m0","quality":0.7,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-data-dir", dataDir, "-pool", pool, "-multi-pool", mpool}

	base, cancel, done := startDaemon(t, args...)
	resp, err := http.Post(base+"/v1/multi/pools/colors/votes", "application/json",
		strings.NewReader(`{"events":[{"worker_id":"m0","truth":0,"vote":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	// Same argv again: must boot (skipping both preloads) and keep the
	// recovered Dirichlet drift.
	base, cancel, done = startDaemon(t, args...)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"votes":1`) {
		t.Fatalf("recovered multi pool: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Count(string(body), `"id"`) != 1 {
		t.Fatalf("recovered binary pool: %s", body)
	}
}

// TestPreloadDriftDetection: the restart-skip path must surface workers
// a preload file gained since the recovered registration, rather than
// silently dropping them (the atomic preload aborts on the first
// already-registered id).
func TestPreloadDriftDetection(t *testing.T) {
	s := server.New(server.NewConfig())
	if err := s.Preload([]server.WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}); err != nil {
		t.Fatal(err)
	}
	q := 0.7
	if err := s.PreloadMulti(server.MultiCreateRequest{
		Name: "colors", Labels: 3,
		Workers: []server.MultiWorkerSpec{{ID: "m0", Quality: &q, Cost: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	missing := missingPreloadWorkers(s, []server.WorkerSpec{
		{ID: "a", Quality: 0.8, Cost: 1},
		{ID: "b", Quality: 0.6, Cost: 2}, // added to the file post-recovery
	})
	if len(missing) != 1 || missing[0] != "b" {
		t.Fatalf("missing = %v, want [b]", missing)
	}
	missingMulti := missingMultiPreloadWorkers(s, server.MultiCreateRequest{
		Name: "colors",
		Workers: []server.MultiWorkerSpec{
			{ID: "m0", Quality: &q, Cost: 1},
			{ID: "m1", Quality: &q, Cost: 2}, // added post-recovery
		},
	})
	if len(missingMulti) != 1 || missingMulti[0] != "m1" {
		t.Fatalf("missing multi = %v, want [m1]", missingMulti)
	}
	if got := missingMultiPreloadWorkers(s, server.MultiCreateRequest{Name: "ghost"}); got != nil {
		t.Fatalf("vanished pool should report nothing, got %v", got)
	}
}
