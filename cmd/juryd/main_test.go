package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// lineWriter hands each written line to a channel, so the test can watch
// for the "listening on" banner.
type lineWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			w.buf.WriteString(line) // incomplete line: push back
			break
		}
		select {
		case w.lines <- strings.TrimSpace(line):
		default:
		}
	}
	return len(p), nil
}

// startDaemon runs the daemon on a random port and returns its base URL
// and a cancel that triggers graceful shutdown.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, chan error) {
	t.Helper()
	base, cancel, done, _ := startDaemonWatch(t, args...)
	return base, cancel, done
}

// startDaemonWatch is startDaemon plus the daemon's log writer, for
// tests that synchronize on later log lines (e.g. the shutdown banner).
func startDaemonWatch(t *testing.T, args ...string) (string, context.CancelFunc, chan error, *lineWriter) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &lineWriter{lines: make(chan string, 16)}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-out.lines:
			if addr, ok := strings.CutPrefix(line, "juryd: listening on "); ok {
				return "http://" + addr, cancel, done, out
			}
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-deadline:
			t.Fatal("daemon never announced its address")
		}
	}
}

// waitForLine blocks until the daemon logs a line with the prefix.
func waitForLine(t *testing.T, w *lineWriter, prefix string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-w.lines:
			if strings.HasPrefix(line, prefix) {
				return
			}
		case <-deadline:
			t.Fatalf("never saw log line %q", prefix)
		}
	}
}

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, done := startDaemon(t)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Register a worker and select over HTTP end to end.
	resp, err = http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":1},{"id":"c","quality":0.6,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/select", "application/json", strings.NewReader(`{"budget":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"jq"`) {
		t.Fatalf("select: %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestDaemonPreloadsPoolFile(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "pool.json")
	var b strings.Builder
	b.WriteString(`{"workers":[`)
	for i := 0; i < 5; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":"w%d","quality":0.6,"cost":1}`, i)
	}
	b.WriteString(`]}`)
	if err := os.WriteFile(pool, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := startDaemon(t, "-pool", pool)
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"id"`); got != 5 {
		t.Fatalf("preloaded %d workers, want 5: %s", got, body)
	}
}

// TestDaemonDurableRestart boots with -data-dir, mutates, restarts, and
// checks the state and the /debug/persistence recovery counters survive.
func TestDaemonDurableRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")

	base, cancel, done := startDaemon(t, "-data-dir", dataDir)
	resp, err := http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/votes", "application/json",
		strings.NewReader(`{"worker_id":"a","correct":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	base, cancel, done = startDaemon(t, "-data-dir", dataDir)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(body), `"id"`); got != 2 {
		t.Fatalf("recovered %d workers, want 2: %s", got, body)
	}
	if !strings.Contains(string(body), `"votes":1`) {
		t.Fatalf("ingested vote lost across restart: %s", body)
	}
	resp, err = http.Get(base + "/debug/persistence")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"enabled":true`) {
		t.Fatalf("persistence status: %s", body)
	}
	// Graceful shutdown snapshotted, so the restart replayed nothing.
	if !strings.Contains(string(body), `"records_replayed":0`) {
		t.Fatalf("expected snapshot-only recovery, got %s", body)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}, io.Discard); err == nil {
		t.Fatal("bad flags accepted")
	}
	if err := run(context.Background(), []string{"-pool", "/does/not/exist.json"}, io.Discard); err == nil {
		t.Fatal("missing pool file accepted")
	}
}

// TestDaemonPreloadsMultiPoolFile boots with -multi-pool (labels coming
// from the -labels flag, not the file) and selects over the preloaded
// confusion-matrix pool end to end.
func TestDaemonPreloadsMultiPoolFile(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "mpool.json")
	data := `{"name":"colors","workers":[
		{"id":"m0","quality":0.8,"cost":2},
		{"id":"m1","confusion":[[0.9,0.05,0.05],[0.1,0.8,0.1],[0.2,0.2,0.6]],"cost":3},
		{"id":"m2","quality":0.65,"cost":1}]}`
	if err := os.WriteFile(pool, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	base, cancel, done := startDaemon(t, "-multi-pool", pool, "-labels", "3")
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.Count(string(body), `"id"`) != 3 {
		t.Fatalf("preloaded pool: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"labels":3`) {
		t.Fatalf("label count missing: %s", body)
	}
	resp, err = http.Post(base+"/v1/multi/pools/colors/select", "application/json",
		strings.NewReader(`{"budget":5}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"jq"`) {
		t.Fatalf("multi select: %d %s", resp.StatusCode, body)
	}

	// A multi-pool file that resolves no label count must refuse to boot.
	noLabels := filepath.Join(dir, "nolabels.json")
	if err := os.WriteFile(noLabels, []byte(`{"name":"x","workers":[{"id":"a","quality":0.7,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-multi-pool", noLabels}, io.Discard); err == nil {
		t.Fatal("multi-pool file without labels accepted")
	}
}

// TestDaemonDurableRestartWithPreloadFlags: a supervisor restarts the
// daemon with the same argv (-pool/-multi-pool plus -data-dir); the
// journaled first preload is recovered from the WAL, so the second boot
// must skip the redundant preload instead of crash-looping on
// ErrWorkerExists/ErrPoolExists.
func TestDaemonDurableRestartWithPreloadFlags(t *testing.T) {
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	pool := filepath.Join(dir, "pool.json")
	mpool := filepath.Join(dir, "mpool.json")
	if err := os.WriteFile(pool, []byte(`{"workers":[{"id":"a","quality":0.8,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpool, []byte(`{"name":"colors","labels":3,"workers":[{"id":"m0","quality":0.7,"cost":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-data-dir", dataDir, "-pool", pool, "-multi-pool", mpool}

	base, cancel, done := startDaemon(t, args...)
	resp, err := http.Post(base+"/v1/multi/pools/colors/votes", "application/json",
		strings.NewReader(`{"events":[{"worker_id":"m0","truth":0,"vote":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first daemon shutdown: %v", err)
	}

	// Same argv again: must boot (skipping both preloads) and keep the
	// recovered Dirichlet drift.
	base, cancel, done = startDaemon(t, args...)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"votes":1`) {
		t.Fatalf("recovered multi pool: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Count(string(body), `"id"`) != 1 {
		t.Fatalf("recovered binary pool: %s", body)
	}
}

// TestPreloadDriftDetection: the restart-skip path must surface workers
// a preload file gained since the recovered registration, rather than
// silently dropping them (the atomic preload aborts on the first
// already-registered id).
func TestPreloadDriftDetection(t *testing.T) {
	s := server.New(server.NewConfig())
	if err := s.Preload([]server.WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}); err != nil {
		t.Fatal(err)
	}
	q := 0.7
	if err := s.PreloadMulti(server.MultiCreateRequest{
		Name: "colors", Labels: 3,
		Workers: []server.MultiWorkerSpec{{ID: "m0", Quality: &q, Cost: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	missing := missingPreloadWorkers(s, []server.WorkerSpec{
		{ID: "a", Quality: 0.8, Cost: 1},
		{ID: "b", Quality: 0.6, Cost: 2}, // added to the file post-recovery
	})
	if len(missing) != 1 || missing[0] != "b" {
		t.Fatalf("missing = %v, want [b]", missing)
	}
	missingMulti := missingMultiPreloadWorkers(s, server.MultiCreateRequest{
		Name: "colors",
		Workers: []server.MultiWorkerSpec{
			{ID: "m0", Quality: &q, Cost: 1},
			{ID: "m1", Quality: &q, Cost: 2}, // added post-recovery
		},
	})
	if len(missingMulti) != 1 || missingMulti[0] != "m1" {
		t.Fatalf("missing multi = %v, want [m1]", missingMulti)
	}
	if got := missingMultiPreloadWorkers(s, server.MultiCreateRequest{Name: "ghost"}); got != nil {
		t.Fatalf("vanished pool should report nothing, got %v", got)
	}
}

// TestDaemonShutdownUnderLoad triggers graceful shutdown while selection
// requests are in flight: every in-flight select must complete 200, no
// mutation may be acked after the drain banner, run() must return nil,
// and the final checkpoint must land so the reboot replays nothing.
func TestDaemonShutdownUnderLoad(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	base, cancel, done, out := startDaemonWatch(t, "-data-dir", dataDir)

	var b strings.Builder
	b.WriteString(`{"workers":[`)
	for i := 0; i < 40; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":"w%d","quality":%g,"cost":%d}`, i, 0.55+float64(i%40)*0.01, 1+i%3)
	}
	b.WriteString(`]}`)
	resp, err := http.Post(base+"/v1/workers", "application/json", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/votes", "application/json",
		strings.NewReader(`{"worker_id":"w0","correct":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown ingest: %d", resp.StatusCode)
	}

	// Load: distinct budgets, so every select is a cache-missing compute.
	results := make(chan int, 16)
	for i := 0; i < cap(results); i++ {
		go func(budget int) {
			resp, err := http.Post(base+"/v1/select", "application/json",
				strings.NewReader(fmt.Sprintf(`{"budget":%d}`, budget)))
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}(5 + i)
	}
	time.Sleep(20 * time.Millisecond) // let the load get in flight
	cancel()

	// Drain is active once the banner prints; from here on no mutation
	// may be acknowledged (503 while draining, connection errors after).
	waitForLine(t, out, "juryd: shutting down")
	for i := 0; i < 20; i++ {
		resp, err := http.Post(base+"/v1/votes", "application/json",
			strings.NewReader(`{"worker_id":"w0","correct":true}`))
		if err != nil {
			break
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			t.Fatal("mutation acked after drain began")
		}
	}

	for i := 0; i < cap(results); i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("in-flight select finished with %d, want 200", code)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}

	// The final checkpoint landed despite the load, and only the acked
	// ingest survived.
	base, cancel, done = startDaemon(t, "-data-dir", dataDir)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/debug/persistence")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"records_replayed":0`) {
		t.Fatalf("expected snapshot-only recovery, got %s", body)
	}
	resp, err = http.Get(base + "/v1/workers/w0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"votes":1`) {
		t.Fatalf("w0 after reboot = %s, want exactly the 1 acked vote", body)
	}
}

// TestDaemonChaosFsyncDegrades boots with the fault-injection flag: the
// scripted fsync failure degrades the daemon to read-only, readiness
// flips while liveness and reads hold, shutdown reports the dirty close
// as an error (the poisoned log cannot be synced, so the process must
// exit non-zero), and a clean reboot recovers exactly the acked
// mutations.
func TestDaemonChaosFsyncDegrades(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	// Sync budget 3: the registration plus two ingests are acked, the
	// third ingest trips the fault.
	base, cancel, done, out := startDaemonWatch(t,
		"-data-dir", dataDir, "-fsync", "-chaos-fsync-after", "3")

	resp, err := http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	acked := 0
	for i := 0; i < 10; i++ {
		resp, err := http.Post(base+"/v1/votes", "application/json",
			strings.NewReader(`{"worker_id":"a","correct":true}`))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("ingest %d: %d", i, code)
		}
		acked++
	}
	if acked != 2 {
		t.Fatalf("acked %d ingests before the injected fault, want 2", acked)
	}

	// Degraded contract over the daemon's own endpoints.
	resp, err = http.Get(base + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz: %v %d, want 503", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/v1/workers")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()

	cancel()
	waitForLine(t, out, "juryd: degraded at shutdown")
	err = <-done
	if err == nil {
		t.Fatal("degraded shutdown returned nil, want a dirty-close error (the log was poisoned)")
	}
	if !strings.Contains(err.Error(), "dirty close") {
		t.Fatalf("degraded shutdown = %v, want a dirty-close error", err)
	}

	// Clean reboot (no fault): exactly the acked mutations recovered.
	base, cancel, done = startDaemon(t, "-data-dir", dataDir)
	defer func() { cancel(); <-done }()
	resp, err = http.Get(base + "/v1/workers/a")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"votes":2`) {
		t.Fatalf("worker a after reboot = %s, want the 2 acked votes", body)
	}
}

// TestDaemonBootRecoveryFailureDiagnosis makes recovery impossible (a
// snapshot pointing past a vanished WAL) and checks the daemon refuses
// to boot with a single diagnostic line instead of serving bad state.
// persistenceDoc fetches and decodes /debug/persistence.
func persistenceDoc(t *testing.T, base string) server.PersistenceStatus {
	t.Helper()
	resp, err := http.Get(base + "/debug/persistence")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.PersistenceStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode persistence: %v", err)
	}
	return st
}

// TestDaemonFollowerReplicates boots a durable primary and a -follow
// replica end to end: the follower bootstraps, converges to the
// primary's state fingerprint, serves reads, and bounces mutations to
// the primary with a 421.
func TestDaemonFollowerReplicates(t *testing.T) {
	pDir, fDir := t.TempDir(), t.TempDir()
	pBase, pCancel, pDone := startDaemon(t, "-data-dir", pDir)
	defer pCancel()

	resp, err := http.Post(pBase+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1},{"id":"b","quality":0.7,"cost":1},{"id":"c","quality":0.6,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Post(pBase+"/v1/votes/batch", "application/json",
			strings.NewReader(`{"events":[{"worker_id":"a","correct":true},{"worker_id":"b","correct":false}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d", i, resp.StatusCode)
		}
	}

	fBase, fCancel, fDone := startDaemon(t, "-data-dir", fDir, "-follow", pBase)
	defer fCancel()

	// Convergence: the follower's state fingerprint matches the primary's.
	want := persistenceDoc(t, pBase)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := persistenceDoc(t, fBase)
		if got.StateSHA256 == want.StateSHA256 && got.NextLSN == want.NextLSN {
			if got.Repl == nil || got.Repl.Primary == "" {
				t.Fatalf("converged follower reports no repl status: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: follower %+v, primary %+v", got, want)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Reads serve locally; mutations answer 421 naming the primary.
	resp, err = http.Get(fBase + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"a"`) {
		t.Fatalf("follower read: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Post(fBase+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"z","quality":0.5,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower mutation: %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(server.PrimaryHeader); got != pBase {
		t.Fatalf("%s = %q, want %q", server.PrimaryHeader, got, pBase)
	}

	// Both shut down cleanly, follower first (its stream drops with the
	// primary either way, but this order keeps the exit quiet).
	fCancel()
	if err := <-fDone; err != nil {
		t.Fatalf("follower shutdown: %v", err)
	}
	pCancel()
	if err := <-pDone; err != nil {
		t.Fatalf("primary shutdown: %v", err)
	}
}

// TestDaemonFollowerFlagValidation: -follow without a data dir or with
// preload flags must refuse to boot instead of diverging later.
func TestDaemonFollowerFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-follow", "http://127.0.0.1:1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-data-dir") {
		t.Fatalf("follow without data dir: %v, want a -data-dir error", err)
	}
	err = run(context.Background(), []string{
		"-follow", "http://127.0.0.1:1", "-data-dir", t.TempDir(), "-pool", "pool.json",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-pool") {
		t.Fatalf("follow with preload: %v, want a preload refusal", err)
	}
}

func TestDaemonBootRecoveryFailureDiagnosis(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	base, cancel, done := startDaemon(t, "-data-dir", dataDir)
	resp, err := http.Post(base+"/v1/workers", "application/json",
		strings.NewReader(`{"workers":[{"id":"a","quality":0.8,"cost":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	segs, err := filepath.Glob(filepath.Join(dataDir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to remove (%v)", err)
	}
	for _, seg := range segs {
		if err := os.Remove(seg); err != nil {
			t.Fatal(err)
		}
	}

	err = run(context.Background(), []string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, io.Discard)
	if err == nil {
		t.Fatal("boot with unrecoverable state must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "boot recovery from") || !strings.Contains(msg, "snapshot covers lsn") {
		t.Fatalf("diagnosis %q does not name the failure", msg)
	}
	if strings.Contains(msg, "\n") {
		t.Fatalf("diagnosis is not one line: %q", msg)
	}
}
