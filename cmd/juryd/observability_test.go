package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitForPrefix blocks until the daemon logs a line with the prefix and
// returns the remainder of that line.
func waitForPrefix(t *testing.T, w *lineWriter, prefix string) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line := <-w.lines:
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				return rest
			}
		case <-deadline:
			t.Fatalf("never saw log line %q", prefix)
		}
	}
}

func TestBuildLogger(t *testing.T) {
	var buf bytes.Buffer
	for _, level := range []string{"debug", "info", "warn", "off"} {
		if _, err := buildLogger(level, &buf); err != nil {
			t.Errorf("buildLogger(%q): %v", level, err)
		}
	}
	if _, err := buildLogger("verbose", &buf); err == nil {
		t.Error("buildLogger(\"verbose\") accepted an unknown level")
	}

	// info must pass 4xx request lines (logged at Info) and drop the
	// 2xx ones (logged at Debug).
	buf.Reset()
	lg, err := buildLogger("info", &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("quiet")
	lg.Info("loud")
	if out := buf.String(); strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Errorf("info logger output = %q, want loud only", out)
	}

	// off must swallow everything.
	buf.Reset()
	lg, err = buildLogger("off", &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Log(nil, slog.LevelError, "nope")
	if buf.Len() != 0 {
		t.Errorf("off logger wrote %q", buf.String())
	}
}

func TestDaemonServesPprofOnDebugAddr(t *testing.T) {
	_, cancel, done, out := startDaemonWatch(t, "-debug-addr", "127.0.0.1:0")
	defer cancel()

	debugAddr := waitForPrefix(t, out, "juryd: pprof on ")
	resp, err := http.Get("http://" + debugAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles: %q", body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}
}

func TestDaemonTraceBufferFlag(t *testing.T) {
	// Negative -trace-buffer disables tracing; /debug/traces still
	// answers, reporting enabled:false.
	base, cancel, done := startDaemon(t, "-trace-buffer", "-1")
	defer cancel()

	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"enabled":false`) {
		t.Errorf("/debug/traces with -trace-buffer -1 = %s, want enabled:false", body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}
}

func TestDaemonEchoesRequestID(t *testing.T) {
	base, cancel, done := startDaemon(t)
	defer cancel()

	req, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "op-curl-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "op-curl-1" {
		t.Errorf("echoed request id = %q, want op-curl-1", got)
	}

	// A request with no ID still gets one assigned.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("daemon did not assign a request id")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("daemon exited with error: %v", err)
	}
}

func TestDaemonRejectsBadLogLevel(t *testing.T) {
	err := run(t.Context(), []string{"-addr", "127.0.0.1:0", "-log-level", "loud"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "log-level") {
		t.Fatalf("run with bad -log-level: %v, want log-level error", err)
	}
}
