// Command juryd is the long-running jury-selection daemon: it keeps a
// worker registry resident, ingests graded vote events (Bayesian posterior
// updates on worker qualities), and serves the Jury Selection Problem over
// HTTP with a signature-keyed selection cache.
//
// Usage:
//
//	juryd [-addr :8700] [-alpha 0.5] [-seed 1] [-cache 4096]
//	      [-workers 0] [-prior-strength 8] [-pool pool.json]
//	      [-data-dir dir] [-snapshot-interval 1m] [-fsync]
//
// The optional -pool file preloads the registry:
//
//	{"workers": [{"id": "w0", "quality": 0.8, "cost": 2}, ...]}
//
// With -data-dir the daemon is durable: every mutation is journaled to a
// write-ahead log before it is acknowledged, snapshots are taken every
// -snapshot-interval (and on graceful shutdown), and boot recovers the
// latest snapshot plus the WAL tail, truncating a torn trailing record
// left by a crash. -fsync flushes the WAL per record (survives power
// loss, slower); without it writes survive a process kill but ride the
// OS page cache. GET /debug/persistence reports recovery and LSN state.
//
// Endpoints (all JSON):
//
//	GET  /healthz                 liveness + pool/session counts
//	GET  /metrics                 Prometheus-style counters
//	GET  /debug/persistence       durability/recovery status and LSNs
//	POST /v1/workers              register workers
//	GET  /v1/workers[/{id}]       inspect the registry
//	PUT  /v1/workers/{id}         operator override of quality/cost
//	DELETE /v1/workers/{id}       deregister
//	POST /v1/votes[/batch]        ingest graded vote events
//	POST /v1/select               solve the JSP (cached)
//	POST /v1/select/batch         budget sweep, fanned out in parallel
//	POST /v1/sessions             open an online collection session
//	POST /v1/sessions/{id}/votes  feed a session one vote
//	GET  /v1/sessions/{id}        session state
//	DELETE /v1/sessions/{id}      close a session
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "juryd:", err)
		os.Exit(1)
	}
}

// run builds and serves the daemon until ctx is cancelled or a signal
// arrives. It prints the bound address to out once listening, so callers
// (and the smoke test) can pass ":0" and discover the port.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("juryd", flag.ContinueOnError)
	addr := fs.String("addr", ":8700", "listen address")
	alpha := fs.Float64("alpha", 0.5, "default prior P(t=0)")
	seed := fs.Int64("seed", 1, "default annealing seed")
	cacheSize := fs.Int("cache", 0, "selection cache capacity (0 = default, negative = disabled)")
	workers := fs.Int("workers", 0, "batch fan-out width (0 = all CPUs)")
	priorStrength := fs.Float64("prior-strength", server.DefaultPriorStrength,
		"pseudo-count weight of registered qualities")
	poolFile := fs.String("pool", "", "JSON file preloading the worker registry")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	dataDir := fs.String("data-dir", "", "WAL+snapshot directory; empty = in-memory only")
	snapshotInterval := fs.Duration("snapshot-interval", time.Minute,
		"how often to checkpoint state and truncate the WAL (0 disables periodic snapshots)")
	fsync := fs.Bool("fsync", false,
		"fsync the WAL after every record (survives power loss; slower)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.Open(server.Config{
		Alpha:         *alpha,
		Seed:          *seed,
		Workers:       *workers,
		CacheSize:     *cacheSize,
		PriorStrength: *priorStrength,
		DataDir:       *dataDir,
		Fsync:         *fsync,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		st := srv.PersistenceStatus()
		fmt.Fprintf(out, "juryd: recovered %d workers, %d sessions from %s (snapshot lsn %d, %d records replayed, %d torn bytes truncated)\n",
			st.Recovery.WorkersRestored, st.Recovery.SessionsRestored, *dataDir,
			st.Recovery.SnapshotLSN, st.Recovery.RecordsReplayed, st.Recovery.TornBytesTruncated)
	}
	if *poolFile != "" {
		specs, err := loadPool(*poolFile)
		if err != nil {
			return err
		}
		if err := srv.Preload(specs); err != nil {
			return err
		}
		fmt.Fprintf(out, "juryd: preloaded %d workers from %s\n", len(specs), *poolFile)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "juryd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Periodic checkpoint: snapshot the state and truncate the WAL
	// behind it, bounding both recovery time and disk usage.
	snapDone := make(chan struct{})
	if *dataDir != "" && *snapshotInterval > 0 {
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(*snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := srv.SnapshotNow(); err != nil {
						fmt.Fprintln(out, "juryd: snapshot:", err)
					}
				}
			}
		}()
	} else {
		close(snapDone)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "juryd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-snapDone
	if *dataDir != "" {
		// A final checkpoint makes the next boot replay an empty tail.
		if err := srv.SnapshotNow(); err != nil {
			fmt.Fprintln(out, "juryd: final snapshot:", err)
		}
		if err := srv.ClosePersistence(); err != nil {
			return fmt.Errorf("close wal: %w", err)
		}
	}
	return nil
}

// loadPool reads a RegisterRequest-shaped JSON file.
func loadPool(path string) ([]server.WorkerSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var req server.RegisterRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("pool file %s: %w", path, err)
	}
	if len(req.Workers) == 0 {
		return nil, fmt.Errorf("pool file %s: no workers", path)
	}
	return req.Workers, nil
}
