// Command juryd is the long-running jury-selection daemon: it keeps a
// worker registry resident, ingests graded vote events (Bayesian posterior
// updates on worker qualities), and serves the Jury Selection Problem over
// HTTP with a signature-keyed selection cache.
//
// Usage:
//
//	juryd [-addr :8700] [-alpha 0.5] [-seed 1] [-cache 4096]
//	      [-workers 0] [-prior-strength 8] [-pool pool.json]
//	      [-multi-pool mpool.json] [-labels 0]
//	      [-data-dir dir] [-snapshot-interval 1m] [-fsync]
//	      [-group-commit] [-max-batch-bytes 0]
//	      [-follow http://primary:8700] [-max-lag 0]
//	      [-quorum 0] [-quorum-timeout 0]
//	      [-max-inflight 0] [-request-timeout 0]
//	      [-debug-addr 127.0.0.1:0] [-log-level info] [-trace-buffer 0]
//	juryd -promote http://follower:8701 [-advertise http://follower:8701]
//
// The optional -pool file preloads the registry:
//
//	{"workers": [{"id": "w0", "quality": 0.8, "cost": 2}, ...]}
//
// The optional -multi-pool file preloads one multi-choice (confusion-
// matrix) pool; workers give either a full row-stochastic "confusion"
// matrix or a scalar "quality" (symmetric matrix, needs a label count
// from the file's "labels" or the -labels flag):
//
//	{"name": "colors", "labels": 3, "workers": [
//	  {"id": "m0", "quality": 0.8, "cost": 2},
//	  {"id": "m1", "confusion": [[0.9,0.05,0.05],[0.1,0.8,0.1],[0.2,0.2,0.6]], "cost": 3}]}
//
// With -data-dir the daemon is durable: every mutation is journaled to a
// write-ahead log before it is acknowledged, snapshots are taken every
// -snapshot-interval (and on graceful shutdown), and boot recovers the
// latest snapshot plus the WAL tail, truncating a torn trailing record
// left by a crash. -fsync flushes the WAL per record (survives power
// loss, slower); without it writes survive a process kill but ride the
// OS page cache. -group-commit (with -fsync) batches concurrent
// mutations into shared fsyncs: each request still blocks until its
// record is on stable storage, but one disk flush can retire many
// requests, so durable ingest throughput scales with concurrency
// instead of with the disk's flush rate. -max-batch-bytes caps the
// staging buffer. GET /debug/persistence reports recovery and LSN
// state, including whether group commit is active.
//
// With -follow the daemon is a read-only replica of another durable
// juryd: on first boot it bootstraps from the primary's snapshot, then
// streams the primary's committed WAL records over GET /v1/repl/stream,
// journaling each to its own -data-dir (required) before applying, so
// a restarted follower resumes from its local log. Only records the
// primary has made durable are ever shipped — a follower never holds a
// record the primary could lose. The follower serves every read and
// selection route from its own state and answers mutations with 421
// Misdirected Request plus an X-Juryd-Primary header naming the
// primary; -pool/-multi-pool are refused (preloads would journal
// locally and diverge). -max-lag bounds acceptable staleness: /readyz
// turns 503 when the follower has been behind the primary's durable
// watermark for longer than that (0 keeps lag out of readiness).
// Replication lag and connection state land on /metrics and
// /debug/persistence. A follower that falls behind the primary's
// snapshot truncation horizon exits non-zero — wipe its data dir and
// restart to re-bootstrap; a follower whose own WAL fails stops
// replicating but keeps serving reads at its last applied state.
//
// Failover: every primary writes under a monotonically increasing epoch
// journaled in the WAL (X-Juryd-Epoch rides on every response). When a
// primary dies, promote its most-caught-up follower with `juryd -promote
// <follower-url>` (or POST /v1/repl/promote): the follower journals an
// epoch record, switches to writable primary, and best-effort fences the
// old primary — which flips to read-only (421 with the new primary's
// address) and persists the fence across restarts. If the old primary
// was unreachable during promotion the fence did not land: deliver it
// before that node serves again (POST /v1/repl/fence) or wipe and
// re-bootstrap it as a follower. Remaining followers are retargeted with
// POST /v1/repl/repoint. -quorum N makes each mutation ack wait until
// N-1 followers confirm its LSN on the stream (503 with Retry-After on
// timeout; the mutation is durable locally and a keyed retry dedups), so
// promoting the max-applied follower provably preserves every acked
// mutation.
//
// Endpoints (all JSON):
//
//	GET  /healthz                 liveness + pool/session counts
//	GET  /metrics                 Prometheus-style counters
//	GET  /debug/persistence       durability/recovery status and LSNs
//	GET  /debug/traces            recent + slowest request traces with stage timings
//	POST /v1/workers              register workers
//	GET  /v1/workers[/{id}]       inspect the registry
//	PUT  /v1/workers/{id}         operator override of quality/cost
//	DELETE /v1/workers/{id}       deregister
//	POST /v1/votes[/batch]        ingest graded vote events
//	POST /v1/select               solve the JSP (cached)
//	POST /v1/select/batch         budget sweep, fanned out in parallel
//	POST /v1/sessions             open an online collection session
//	POST /v1/sessions/{id}/votes  feed a session one vote
//	GET  /v1/sessions/{id}        session state
//	DELETE /v1/sessions/{id}      close a session
//	POST /v1/multi/pools                  create a multi-choice pool
//	GET  /v1/multi/pools[/{pool}]         inspect the multi-choice pools
//	DELETE /v1/multi/pools/{pool}         drop a pool
//	POST /v1/multi/pools/{pool}/workers   register confusion-matrix workers
//	POST /v1/multi/pools/{pool}/votes     ingest graded multi-label votes
//	POST /v1/multi/pools/{pool}/select    solve the multi-choice JSP (cached)
//	POST /v1/multi/pools/{pool}/jq        Jury Quality of an explicit jury
//	GET  /v1/repl/stream                  committed WAL records for followers (long-poll)
//	GET  /v1/repl/snapshot                state snapshot for follower bootstrap
//	POST /v1/repl/promote                 switch this follower to writable primary (new epoch)
//	POST /v1/repl/fence                   fence this node: a newer primary exists, refuse writes
//	POST /v1/repl/repoint                 retarget this follower at a new primary
//
// See API.md at the repository root for the full route-by-route wire
// reference (request/response fields, error codes, consistency and
// durability notes).
//
// Observability: every request carries an X-Request-Id (client-supplied
// or generated) that is echoed in the response, attached to the request
// log line, and keys the stage-level trace visible at GET /debug/traces;
// per-stage latency histograms land on /metrics. -trace-buffer sizes the
// trace ring (negative disables tracing), -log-level tunes the request
// log, and -debug-addr serves net/http/pprof on a separate listener
// (bind it to loopback).
//
// Failure domains: a WAL write or fsync failure moves the daemon into
// degraded read-only mode — reads and selections keep serving from
// memory, mutations answer 503 with Retry-After, /readyz turns 503 (take
// it out of rotation) while /healthz stays 200 (do not kill it), and the
// juryd_degraded gauge flips to 1. -max-inflight bounds concurrent
// non-system requests (excess answers 429); -request-timeout bounds each
// request's wall time (503 on expiry). Failed periodic snapshots are
// logged, counted in juryd_snapshot_errors_total, and do not interrupt
// serving — the WAL still holds everything. A boot-time recovery failure
// exits non-zero with a one-line diagnosis naming the bad segment and
// record. The hidden -chaos-fsync-after flag injects a WAL fsync fault
// after N records (dropping the unsynced tail) for fault-injection
// smoke tests; it is not for production use.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: mutations are
// refused with 503 while in-flight requests drain, then a final
// checkpoint lands before exit. A shutdown whose WAL close cannot
// confirm the tail reached stable storage (a dirty close — the log was
// poisoned by an earlier sync failure, or the final flush itself
// failed) is logged and exits non-zero so supervisors can tell it from
// a clean stop.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wal/errfs"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "juryd:", err)
		os.Exit(1)
	}
}

// run builds and serves the daemon until ctx is cancelled or a signal
// arrives. It prints the bound address to out once listening, so callers
// (and the smoke test) can pass ":0" and discover the port.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("juryd", flag.ContinueOnError)
	addr := fs.String("addr", ":8700", "listen address")
	alpha := fs.Float64("alpha", 0.5, "default prior P(t=0)")
	seed := fs.Int64("seed", 1, "default annealing seed")
	cacheSize := fs.Int("cache", 0, "selection cache capacity (0 = default, negative = disabled)")
	workers := fs.Int("workers", 0, "batch fan-out width (0 = all CPUs)")
	priorStrength := fs.Float64("prior-strength", server.DefaultPriorStrength,
		"pseudo-count weight of registered qualities")
	poolFile := fs.String("pool", "", "JSON file preloading the worker registry")
	multiPoolFile := fs.String("multi-pool", "", "JSON file preloading one multi-choice pool")
	labels := fs.Int("labels", 0,
		"default label count for a -multi-pool file that omits \"labels\" (0 = take from the file)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	dataDir := fs.String("data-dir", "", "WAL+snapshot directory; empty = in-memory only")
	snapshotInterval := fs.Duration("snapshot-interval", time.Minute,
		"how often to checkpoint state and truncate the WAL (0 disables periodic snapshots)")
	fsync := fs.Bool("fsync", false,
		"fsync the WAL after every record (survives power loss; slower)")
	groupCommit := fs.Bool("group-commit", false,
		"batch concurrent WAL appends into shared fsyncs (needs -fsync; same durability, higher throughput)")
	maxBatchBytes := fs.Int64("max-batch-bytes", 0,
		"group-commit staging cap in bytes before appenders are backpressured (0 = default)")
	follow := fs.String("follow", "",
		"primary juryd base URL; run as a read-only follower replicating its WAL (needs -data-dir)")
	promote := fs.String("promote", "",
		"one-shot admin mode: promote the follower juryd at this base URL to primary and exit (no daemon is started)")
	advertise := fs.String("advertise", "",
		"with -promote: the base URL clients should reach the promoted node at (rides on the fence to the old primary)")
	quorum := fs.Int("quorum", 0,
		"total log copies each mutation ack vouches for: ack only after quorum-1 followers confirm the LSN (0 or 1 = local durability only)")
	quorumTimeout := fs.Duration("quorum-timeout", 0,
		"how long a mutation ack waits for the follower quorum before answering 503 (0 = 5s default)")
	maxLag := fs.Duration("max-lag", 0,
		"follower staleness bound: /readyz answers 503 after lagging the primary's durable watermark this long (0 = lag never fails readiness)")
	maxInflight := fs.Int("max-inflight", 0,
		"max concurrent non-system requests before shedding with 429 (0 = unlimited)")
	requestTimeout := fs.Duration("request-timeout", 0,
		"per-request deadline; expired requests answer 503 (0 = none)")
	chaosFsyncAfter := fs.Int("chaos-fsync-after", 0,
		"TESTING ONLY: fail every WAL fsync after N successful ones, dropping the unsynced tail")
	debugAddr := fs.String("debug-addr", "",
		"serve net/http/pprof on this address (keep it loopback-only; empty = disabled)")
	logLevel := fs.String("log-level", "info",
		"request log verbosity: debug logs every request, info logs errors only, warn logs 5xx only, off disables")
	traceBuffer := fs.Int("trace-buffer", 0,
		"request trace ring size for /debug/traces (0 = default 256, negative = tracing disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := buildLogger(*logLevel, os.Stderr)
	if err != nil {
		return err
	}

	if *promote != "" {
		return runPromote(ctx, *promote, *advertise, out)
	}

	primary := strings.TrimRight(*follow, "/")
	if primary != "" {
		if *dataDir == "" {
			return errors.New("-follow needs -data-dir: a follower journals the shipped log locally")
		}
		if *poolFile != "" || *multiPoolFile != "" {
			return errors.New("-follow excludes -pool/-multi-pool: preloads would journal locally and diverge from the primary; load pools on the primary instead")
		}
		has, err := repl.DirHasState(*dataDir)
		if err != nil {
			return err
		}
		if !has {
			lsn, err := repl.Bootstrap(ctx, nil, primary, *dataDir)
			if err != nil {
				return fmt.Errorf("bootstrap from %s: %w", primary, err)
			}
			fmt.Fprintf(out, "juryd: bootstrapped follower state from %s (snapshot lsn %d)\n", primary, lsn)
		}
	}

	var fsys wal.FS
	if *chaosFsyncAfter > 0 {
		fsys = errfs.New(wal.OSFS(), errfs.Fault{
			Op: errfs.OpSync, Path: "wal-", After: *chaosFsyncAfter, DropUnsynced: true,
		})
	}
	srv, err := server.Open(server.Config{
		Alpha:          *alpha,
		Seed:           *seed,
		Workers:        *workers,
		CacheSize:      *cacheSize,
		PriorStrength:  *priorStrength,
		DataDir:        *dataDir,
		Fsync:          *fsync,
		GroupCommit:    *groupCommit,
		MaxBatchBytes:  *maxBatchBytes,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *requestTimeout,
		MaxLag:         *maxLag,
		Quorum:         *quorum,
		QuorumTimeout:  *quorumTimeout,
		TraceBuffer:    *traceBuffer,
		Logger:         logger,
		FS:             fsys,
	})
	if err != nil {
		if *dataDir != "" {
			// One line that names the failing segment/record, so the operator
			// knows which file to inspect before the supervisor retries.
			return fmt.Errorf("boot recovery from %s failed: %w", *dataDir, err)
		}
		return err
	}
	if *dataDir != "" {
		st := srv.PersistenceStatus()
		fmt.Fprintf(out, "juryd: recovered %d workers, %d sessions, %d multi pools from %s (snapshot lsn %d, %d records replayed, %d torn bytes truncated)\n",
			st.Recovery.WorkersRestored, st.Recovery.SessionsRestored,
			st.Recovery.MultiPoolsRestored, *dataDir,
			st.Recovery.SnapshotLSN, st.Recovery.RecordsReplayed, st.Recovery.TornBytesTruncated)
	}
	// Follower mode flips on before the listener opens, so no mutation can
	// ever slip into the local journal outside the replication stream.
	if primary != "" {
		srv.SetFollower(primary)
		fmt.Fprintf(out, "juryd: following %s (read-only replica)\n", primary)
	}
	// Preloads tolerate already-registered state on a durable restart: a
	// supervisor restarting the daemon with a fixed argv must not crash-
	// loop because the journaled first preload was recovered from the WAL.
	if *poolFile != "" {
		specs, err := loadPool(*poolFile)
		if err != nil {
			return err
		}
		switch err := srv.Preload(specs); {
		case err == nil:
			fmt.Fprintf(out, "juryd: preloaded %d workers from %s\n", len(specs), *poolFile)
		case *dataDir != "" && errors.Is(err, server.ErrWorkerExists):
			fmt.Fprintf(out, "juryd: pool file %s already registered (recovered state); skipping preload\n", *poolFile)
			// Registration is atomic, so a skip can also hide a file that
			// was edited between restarts: surface any ids the recovered
			// registry lacks instead of silently dropping them.
			if missing := missingPreloadWorkers(srv, specs); len(missing) > 0 {
				fmt.Fprintf(out, "juryd: warning: %s has %d workers absent from the recovered registry (%s); register them via POST /v1/workers\n",
					*poolFile, len(missing), strings.Join(missing, ", "))
			}
		default:
			return err
		}
	}
	if *multiPoolFile != "" {
		req, err := loadMultiPool(*multiPoolFile, *labels)
		if err != nil {
			return err
		}
		switch err := srv.PreloadMulti(req); {
		case err == nil:
			fmt.Fprintf(out, "juryd: preloaded multi-choice pool %q (%d labels, %d workers) from %s\n",
				req.Name, req.Labels, len(req.Workers), *multiPoolFile)
		case *dataDir != "" && errors.Is(err, server.ErrPoolExists):
			fmt.Fprintf(out, "juryd: multi-choice pool %q already exists (recovered state); skipping preload\n", req.Name)
			if missing := missingMultiPreloadWorkers(srv, req); len(missing) > 0 {
				fmt.Fprintf(out, "juryd: warning: %s has %d workers absent from recovered pool %q (%s); register them via POST /v1/multi/pools/%s/workers\n",
					*multiPoolFile, len(missing), req.Name, strings.Join(missing, ", "), req.Name)
			}
		default:
			return err
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "juryd: listening on %s\n", ln.Addr())

	// Profiling lives on its own listener so a held-open CPU profile or
	// execution trace can never occupy a public-API connection, and so
	// the operator can bind it loopback-only.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: server.DebugHandler()}
		fmt.Fprintf(out, "juryd: pprof on %s\n", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("debug server", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The replication stream runs until shutdown (nil), a terminal
	// condition (handled in the wait loop below), or a degraded local WAL.
	replErr := make(chan error, 1)
	if primary != "" {
		f := repl.NewFollower(srv, primary, repl.Options{
			Logf: func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
		})
		go func() { replErr <- f.Run(ctx) }()
	}

	// Periodic checkpoint: snapshot the state and truncate the WAL
	// behind it, bounding both recovery time and disk usage.
	snapDone := make(chan struct{})
	if *dataDir != "" && *snapshotInterval > 0 {
		go func() {
			defer close(snapDone)
			ticker := time.NewTicker(*snapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := srv.SnapshotNow(); err != nil {
						fmt.Fprintln(out, "juryd: snapshot:", err)
					}
				}
			}
		}()
	} else {
		close(snapDone)
	}

	for running := true; running; {
		select {
		case err := <-serveErr:
			return err
		case err := <-replErr:
			switch {
			case err == nil:
				running = false // ctx canceled: graceful shutdown below
			case errors.Is(err, repl.ErrPromoted):
				// This node was promoted to primary (POST /v1/repl/promote or
				// juryd -promote): replication stopped because it now writes
				// its own log. Keep serving — as the primary.
				fmt.Fprintln(out, "juryd: promoted to primary; replication stopped")
				replErr = nil
			case errors.Is(err, repl.ErrSnapshotNeeded), errors.Is(err, repl.ErrDiverged):
				// The local log can never catch up (or must not): staying up
				// would serve state that silently stops converging.
				return fmt.Errorf("replication: %w (wipe %s and restart to re-bootstrap)", err, *dataDir)
			default:
				// Degraded local WAL: the stream is stopped for good, but the
				// replica still serves reads at its last applied state. Stay
				// up — /readyz, /metrics, and /debug/persistence advertise it.
				logger.Error("replication stopped", "error", err)
				fmt.Fprintln(out, "juryd: replication stopped:", err)
				replErr = nil // nothing more will arrive; stop selecting on it
			}
		case <-ctx.Done():
			running = false
		}
	}
	// Refuse new mutations up front (503 + Retry-After) while in-flight
	// requests drain; reads keep answering until Shutdown closes their
	// connections. Drain is active before the banner, so anyone watching
	// the log can rely on it.
	srv.BeginDrain()
	fmt.Fprintln(out, "juryd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-snapDone
	if *dataDir != "" {
		if degraded, cause := srv.DegradedState(); degraded {
			// The journal is poisoned; acked state is already on disk and a
			// snapshot would add nothing recovery cannot rebuild. A dirty
			// close still has to exit non-zero: it means the tail of the log
			// never reached stable storage, and the supervisor must know this
			// shutdown was not clean.
			fmt.Fprintf(out, "juryd: degraded at shutdown (%v); skipping final snapshot\n", cause)
			if err := srv.ClosePersistence(); err != nil {
				return fmt.Errorf("dirty close: %w", err)
			}
			return nil
		}
		// A final checkpoint makes the next boot replay an empty tail.
		if err := srv.SnapshotNow(); err != nil {
			fmt.Fprintln(out, "juryd: final snapshot:", err)
		}
		if err := srv.ClosePersistence(); err != nil {
			return fmt.Errorf("close wal: %w", err)
		}
	}
	return nil
}

// runPromote is the -promote one-shot: ask the follower at base to
// promote itself (POST /v1/repl/promote) and report the outcome.
func runPromote(ctx context.Context, base, advertise string, out io.Writer) error {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(server.PromoteRequest{Advertise: advertise})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/repl/promote", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("promote %s: %w", base, err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s: %s: %s", base, resp.Status, strings.TrimSpace(string(payload)))
	}
	var res server.PromoteResponse
	if err := json.Unmarshal(payload, &res); err != nil {
		return fmt.Errorf("promote %s: bad response: %w", base, err)
	}
	switch {
	case res.AlreadyPrimary:
		fmt.Fprintf(out, "juryd: %s is already primary (epoch %d, applied lsn %d)\n", base, res.Epoch, res.AppliedLSN)
	case res.OldPrimary != "" && !res.OldPrimaryFenced:
		fmt.Fprintf(out, "juryd: promoted %s to primary (epoch %d, lsn %d); WARNING: old primary %s unreachable — fence it before it serves again (POST /v1/repl/fence) or wipe and re-bootstrap it\n",
			base, res.Epoch, res.AppliedLSN, res.OldPrimary)
	default:
		fmt.Fprintf(out, "juryd: promoted %s to primary (epoch %d, lsn %d); old primary %s fenced\n",
			base, res.Epoch, res.AppliedLSN, res.OldPrimary)
	}
	return nil
}

// buildLogger maps -log-level onto the server's request-log levels:
// request lines are emitted at Debug (2xx/3xx), Info (4xx), and Warn
// (5xx), so "info" surfaces only client and server errors while
// "debug" logs every request.
func buildLogger(level string, w io.Writer) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "off":
		return slog.New(slog.DiscardHandler), nil
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or off)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})), nil
}

// loadPool reads a RegisterRequest-shaped JSON file.
func loadPool(path string) ([]server.WorkerSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var req server.RegisterRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("pool file %s: %w", path, err)
	}
	if len(req.Workers) == 0 {
		return nil, fmt.Errorf("pool file %s: no workers", path)
	}
	return req.Workers, nil
}

// missingPreloadWorkers lists the pool-file worker ids the recovered
// registry does not hold — evidence the file changed between restarts.
func missingPreloadWorkers(srv *server.Server, specs []server.WorkerSpec) []string {
	var missing []string
	for _, spec := range specs {
		if _, err := srv.Registry().Get(spec.ID); err != nil {
			missing = append(missing, spec.ID)
		}
	}
	return missing
}

// missingMultiPreloadWorkers lists the multi-pool-file worker ids the
// recovered pool does not hold.
func missingMultiPreloadWorkers(srv *server.Server, req server.MultiCreateRequest) []string {
	info, err := srv.MultiRegistry().Get(req.Name)
	if err != nil {
		return nil // pool vanished between the conflict and this check
	}
	have := make(map[string]bool, len(info.Workers))
	for _, w := range info.Workers {
		have[w.ID] = true
	}
	var missing []string
	for _, spec := range req.Workers {
		if !have[spec.ID] {
			missing = append(missing, spec.ID)
		}
	}
	return missing
}

// loadMultiPool reads a MultiCreateRequest-shaped JSON file. A file
// without a "labels" field takes the -labels flag value; the server
// rejects the request if neither resolves a label count.
func loadMultiPool(path string, defaultLabels int) (server.MultiCreateRequest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return server.MultiCreateRequest{}, err
	}
	var req server.MultiCreateRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return server.MultiCreateRequest{}, fmt.Errorf("multi-pool file %s: %w", path, err)
	}
	if req.Name == "" {
		return server.MultiCreateRequest{}, fmt.Errorf("multi-pool file %s: no pool name", path)
	}
	if req.Labels == 0 {
		req.Labels = defaultLabels
	}
	return req, nil
}
