// Command crowdsim generates and inspects the simulated AMT crowd corpus
// used by the real-data experiments (Section 6.2): it prints the corpus
// statistics against the paper's published profile, compares the quality
// estimators (empirical / golden / Dawid–Skene EM) on it, and can export
// the raw answer matrix as CSV for external tooling.
//
// Usage:
//
//	crowdsim -stats
//	crowdsim -estimate -seed 7
//	crowdsim -export answers.csv
//	crowdsim -load http://127.0.0.1:8700 -load-duration 10s -bench-out BENCH_baseline.json
//	crowdsim -load http://follower:8701 -load-primary http://primary:8700 -bench-out BENCH_replica.json
//	crowdsim -chaos-failover -load-duration 6s -bench-out BENCH_failover.json
//	crowdsim -validate BENCH_baseline.json
//
// The -load mode registers a simulated worker pool on a live juryd and
// drives a closed loop of selections and vote ingests against it
// (-load-ingest-every tunes the mix: every Nth iteration ingests),
// recording per-route latency percentiles, throughput, cache hit rate,
// and the daemon-side WAL fsync p99 into a juryd-bench/1 JSON document
// (the committed BENCH_baseline.json). With -load-primary the roles
// split for benchmarking a replica: all mutations go to the primary
// URL while -load names a read-only follower that serves the measured
// selects and metrics. -validate checks such a document and exits
// non-zero if it is malformed; CI gates the artifact on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/amt"
	"repro/internal/quality"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crowdsim", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "random seed")
		showStats  = fs.Bool("stats", false, "print corpus statistics")
		estimate   = fs.Bool("estimate", false, "compare quality estimators on the corpus")
		exportPath = fs.String("export", "", "write the answer matrix to this CSV file")
		workers    = fs.Int("workers", amt.DefaultNumWorkers, "number of simulated workers")
		tasks      = fs.Int("tasks", amt.DefaultNumTasks, "number of simulated tasks")

		loadTarget = fs.String("load", "",
			"run a closed-loop load phase against the juryd at this base URL (e.g. http://127.0.0.1:8700)")
		loadDuration = fs.Duration("load-duration", 5*time.Second, "how long the load phase runs")
		loadConc     = fs.Int("load-concurrency", 8, "closed-loop client goroutines for the load phase")
		loadIngest   = fs.Int("load-ingest-every", 8,
			"ingest a vote batch every Nth iteration of each load goroutine (the rest are selects; min 2)")
		loadPrimary = fs.String("load-primary", "",
			"send mutations (pool registration, vote ingests) to this primary URL while -load names a read-only follower serving the measured selects")
		chaosFailover = fs.Bool("chaos-failover", false,
			"self-host a primary plus two followers, kill the primary mid-run, promote a follower, and report the client-observed recovery time")
		benchOut     = fs.String("bench-out", "",
			"write the load phase's baseline report to this JSON file (empty = stdout)")
		validate = fs.String("validate", "",
			"validate an existing juryd-bench JSON document and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *validate != "" {
		return validateBenchFile(*validate, out)
	}
	if *chaosFailover {
		return runChaosFailover(loadConfig{
			duration:    *loadDuration,
			concurrency: *loadConc,
			workers:     *workers,
			seed:        *seed,
			benchOut:    *benchOut,
		}, out)
	}
	if *loadTarget != "" {
		if *loadIngest < 2 {
			return fmt.Errorf("-load-ingest-every %d: need at least 2 (the select route must stay exercised)", *loadIngest)
		}
		return runLoad(loadConfig{
			target:      *loadTarget,
			duration:    *loadDuration,
			concurrency: *loadConc,
			workers:     min(*workers, defaultLoadWorkers),
			seed:        *seed,
			benchOut:    *benchOut,
			ingestEvery: *loadIngest,
			primary:     *loadPrimary,
		}, out)
	}
	if !*showStats && !*estimate && *exportPath == "" {
		return fmt.Errorf("nothing to do: pass -stats, -estimate, -export <file>, -load <url>, or -validate <file>")
	}

	cfg := amt.DefaultConfig()
	cfg.NumWorkers = *workers
	cfg.NumTasks = *tasks
	if *workers != amt.DefaultNumWorkers || *tasks != amt.DefaultNumTasks {
		// Rescale the worker-class profile so shrunken corpora stay
		// feasible: heavy ≈ 1/64 of workers, one-HIT ≈ half of the
		// available assignment slots capped at the paper's 67/128 ratio.
		cfg.HeavyWorkers = *workers / 64
		if cfg.HeavyWorkers < 1 {
			cfg.HeavyWorkers = 1
		}
		hits := *tasks / cfg.TasksPerHIT
		slots := hits * (cfg.VotesPerTask - cfg.HeavyWorkers)
		oneHIT := *workers * 67 / 128
		if oneHIT > slots/2 {
			oneHIT = slots / 2
		}
		if oneHIT > *workers-cfg.HeavyWorkers-1 {
			oneHIT = *workers - cfg.HeavyWorkers - 1
		}
		if oneHIT < 0 {
			oneHIT = 0
		}
		cfg.OneHITWorkers = oneHIT
	}
	ds, err := amt.Generate(cfg, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}

	if *showStats {
		s := ds.Stats()
		t := table.New("Corpus statistics (paper's published profile in parentheses)", "metric", "value")
		t.AddRow("workers", fmt.Sprintf("%d (128)", s.NumWorkers))
		t.AddRow("tasks", fmt.Sprintf("%d (600)", s.NumTasks))
		t.AddRow("mean empirical quality", fmt.Sprintf("%.3f (0.71)", s.MeanEmpiricalQuality))
		t.AddRow("workers above 0.8", fmt.Sprintf("%d (40)", s.WorkersAbove80))
		t.AddRow("workers below 0.6", fmt.Sprintf("%d (~13)", s.WorkersBelow60))
		t.AddRow("answers per worker", fmt.Sprintf("%.2f (93.75)", s.AnswersPerWorkerMean))
		t.AddRow("workers answering all", fmt.Sprintf("%d (2)", s.WorkersAnsweringAll))
		t.AddRow("one-HIT workers", fmt.Sprintf("%d (67)", s.WorkersAnsweringOneHIT))
		fmt.Fprint(out, t.String())
	}

	if *estimate {
		qd := ds.QualityDataset()
		em, err := quality.EM(qd, quality.EMOptions{FixedPrior: 0.5})
		if err != nil {
			return err
		}
		golden, err := quality.Golden(qd, ds.GoldenTruths(len(ds.Tasks)/10))
		if err != nil {
			return err
		}
		var mae = func(estimates func(i int) float64) float64 {
			var sum float64
			for i, w := range ds.Workers {
				sum += math.Abs(estimates(i) - w.TrueQuality)
			}
			return sum / float64(len(ds.Workers))
		}
		t := table.New("Quality estimators: mean absolute error vs latent qualities",
			"estimator", "MAE", "ground truth used")
		t.AddRow("empirical", fmt.Sprintf("%.4f", mae(func(i int) float64 { return ds.Workers[i].EmpiricalQuality() })), "all tasks")
		t.AddRow("golden-10%", fmt.Sprintf("%.4f", mae(func(i int) float64 { return golden[i] })), "10% of tasks")
		t.AddRow("em", fmt.Sprintf("%.4f", mae(func(i int) float64 { return em.Qualities[i] })), "none")
		fmt.Fprint(out, t.String())
		// EM label accuracy, the headline of no-ground-truth estimation.
		correct := 0
		for i, task := range ds.Tasks {
			if em.Labels[i] == task.Truth {
				correct++
			}
		}
		fmt.Fprintf(out, "EM label accuracy (no ground truth): %.2f%%\n",
			100*float64(correct)/float64(len(ds.Tasks)))
	}

	if *exportPath != "" {
		f, err := os.Create(*exportPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := exportAnswers(ds, f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d answers to %s\n", len(ds.Tasks)*len(ds.Tasks[0].Answers), *exportPath)
	}
	return nil
}

// exportAnswers writes one row per answer: task, truth, order, worker, vote.
func exportAnswers(ds *amt.Dataset, w io.Writer) error {
	if _, err := fmt.Fprintln(w, "task,truth,order,worker,vote"); err != nil {
		return err
	}
	for _, task := range ds.Tasks {
		for i, ans := range task.Answers {
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d\n",
				task.ID, task.Truth, i, ans.WorkerID, ans.Vote); err != nil {
				return err
			}
		}
	}
	return nil
}
