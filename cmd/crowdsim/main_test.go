package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"workers", "128", "600", "93.75"} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEstimate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-estimate"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"empirical", "golden-10%", "em", "EM label accuracy"} {
		if !strings.Contains(got, want) {
			t.Errorf("estimate output missing %q:\n%s", want, got)
		}
	}
}

func TestRunExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "answers.csv")
	var out strings.Builder
	if err := run([]string{"-export", path, "-tasks", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "task,truth,order,worker,vote" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+40*20 {
		t.Fatalf("lines = %d, want %d", len(lines), 1+40*20)
	}
}

func TestRunNothingToDo(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no error for empty invocation")
	}
}

func TestRunBadConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats", "-tasks", "7"}, &out); err == nil {
		t.Fatal("no error for tasks not divisible by HIT size")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-stats", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stats", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different stats")
	}
}
