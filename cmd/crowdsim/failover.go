package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/jury/serve"
)

// BenchFailoverStats is the failover section of a juryd-bench/1 document:
// client-observed recovery from a primary crash in a self-hosted
// three-node cluster.
type BenchFailoverStats struct {
	// Nodes is the cluster size (primary + followers).
	Nodes int `json:"nodes"`
	// KilledAfterSeconds is when into the run the primary was killed.
	KilledAfterSeconds float64 `json:"killed_after_seconds"`
	// PromoteMs is how long the promote call itself took.
	PromoteMs float64 `json:"promote_ms"`
	// RecoveryMs is the headline number: kill to the first acknowledged
	// write on the new primary, as observed by a retrying client.
	RecoveryMs float64 `json:"recovery_ms"`
	// NewEpoch is the epoch the promoted node writes under.
	NewEpoch uint64 `json:"new_epoch"`
	// AckedBeforeKill / AckedAfterKill count acknowledged writes on
	// either side of the crash; AckedLost is how many acknowledged writes
	// the new primary is missing — anything but 0 is a durability bug.
	AckedBeforeKill int `json:"acked_before_kill"`
	AckedAfterKill  int `json:"acked_after_kill"`
	AckedLost       int `json:"acked_lost"`
}

// chaosNode is one in-process juryd: a durable server on a real TCP
// listener, so crashing it severs clients mid-request exactly like a
// killed process.
type chaosNode struct {
	srv  *server.Server
	http *http.Server
	url  string
}

func startChaosNode(cfg server.Config) (*chaosNode, error) {
	s, err := server.Open(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return &chaosNode{srv: s, http: hs, url: "http://" + ln.Addr().String()}, nil
}

// kill is the crash: close the listener and sever every open connection.
// No snapshot, no drain — the data dir holds exactly what the WAL held.
func (n *chaosNode) kill() { n.http.Close() }

// runChaosFailover self-hosts a quorum-2 primary plus two replicating
// followers, drives keyed writes through a failover-aware client, kills
// the primary partway through, promotes the most-caught-up follower
// (which quorum acks make safe: every acknowledged write is on at least
// one follower, and prefix shipping puts all of them on the most
// caught-up one), repoints the survivor, and reports the client-observed
// recovery time (plus an acked-write reconciliation) as a juryd-bench/1
// document with a failover section.
func runChaosFailover(cfg loadConfig, out io.Writer) error {
	ctx := context.Background()
	root, err := os.MkdirTemp("", "crowdsim-failover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	nodeCfg := func(name string) server.Config {
		return server.Config{Alpha: 0.5, Seed: cfg.seed, DataDir: root + "/" + name}
	}
	// Quorum 2 on the node that will be killed: an ack then vouches for
	// two log copies, so a write acknowledged an instant before the kill
	// is guaranteed to be on at least one follower — that is what makes
	// acked_lost == 0 an invariant rather than a race the kill usually
	// loses by luck. The promoted follower acks locally (same topology
	// as the CI failover smoke), so recovery_ms measures promotion, not
	// the surviving follower's reconnect backoff.
	primaryCfg := nodeCfg("primary")
	primaryCfg.Quorum = 2
	primaryCfg.QuorumTimeout = 2 * time.Second
	primary, err := startChaosNode(primaryCfg)
	if err != nil {
		return fmt.Errorf("start primary: %w", err)
	}
	defer primary.kill()

	const followerCount = 2
	followers := make([]*chaosNode, followerCount)
	replDone := make([]chan error, followerCount)
	replCtx, stopRepl := context.WithCancel(ctx)
	defer stopRepl()
	for i := range followers {
		f, err := startChaosNode(nodeCfg(fmt.Sprintf("follower-%d", i)))
		if err != nil {
			return fmt.Errorf("start follower %d: %w", i, err)
		}
		defer f.kill()
		f.srv.SetFollower(primary.url)
		followers[i] = f
		done := make(chan error, 1)
		replDone[i] = done
		loop := repl.NewFollower(f.srv, primary.url, repl.Options{Wait: 250 * time.Millisecond})
		go func() { done <- loop.Run(replCtx) }()
	}

	// A small pool: the run measures failover, not selection.
	workers := min(cfg.workers, 8)
	specs := make([]serve.WorkerSpec, workers)
	for i := range specs {
		specs[i] = serve.WorkerSpec{ID: fmt.Sprintf("sim-%03d", i), Quality: 0.7, Cost: 1}
	}
	if err := serve.NewClient(primary.url).RegisterWorkers(ctx, specs); err != nil {
		return fmt.Errorf("register pool: %w", err)
	}

	// The measured client: primary as base, followers as replicas, with
	// enough retry headroom to ride through the outage. Every write is
	// keyed, so the retries (and the rotation they drive) are replay-safe.
	policy := serve.RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	var mu sync.Mutex
	var latencies []time.Duration
	var errCount int
	acked := make(map[string]int) // worker id -> acknowledged votes
	ackedTotal := func() int {
		n := 0
		for _, v := range acked {
			n += v
		}
		return n
	}

	killAt := cfg.duration / 2
	start := time.Now()
	var tKill, tFirstAfterKill time.Time
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := serve.NewClient(primary.url).
				WithReplicas(followers[0].url, followers[1].url).
				WithRetry(policy)
			for i := 0; time.Now().Before(deadline); i++ {
				id := specs[(g+i)%len(specs)].ID
				opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
				t0 := time.Now()
				_, err := cli.IngestVoteKeyed(opCtx,
					serve.VoteEvent{WorkerID: id, Correct: (g+i)%3 != 0}, serve.NewIdempotencyKey())
				cancel()
				mu.Lock()
				if err != nil {
					errCount++
				} else {
					acked[id]++
					latencies = append(latencies, time.Since(t0))
					// Recovery counts only ops begun after the kill: an op
					// in flight across it was acked by the old primary.
					if !tKill.IsZero() && t0.After(tKill) && tFirstAfterKill.IsZero() {
						tFirstAfterKill = time.Now()
					}
				}
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}(g)
	}

	// The chaos script: kill, promote the most-caught-up follower,
	// repoint the survivor.
	time.Sleep(killAt)
	primary.kill()
	mu.Lock()
	ackedBefore := ackedTotal()
	tKill = time.Now()
	mu.Unlock()

	best := 0
	for i, f := range followers {
		if f.srv.AppliedLSN() > followers[best].srv.AppliedLSN() {
			best = i
		}
	}
	promoteStart := time.Now()
	resp, err := serve.NewClient(followers[best].url).Promote(ctx,
		serve.PromoteRequest{Advertise: followers[best].url})
	if err != nil {
		return fmt.Errorf("promote follower %d: %w", best, err)
	}
	promoteMs := float64(time.Since(promoteStart)) / float64(time.Millisecond)
	for i, f := range followers {
		if i == best {
			continue
		}
		if _, err := serve.NewClient(f.url).Repoint(ctx, serve.RepointRequest{Primary: followers[best].url}); err != nil {
			return fmt.Errorf("repoint follower %d: %w", i, err)
		}
	}

	wg.Wait()
	if err := <-replDone[best]; err != repl.ErrPromoted {
		return fmt.Errorf("promoted follower's stream loop returned %v, want ErrPromoted", err)
	}

	// Reconcile: every acknowledged vote must be on the new primary.
	// Keyed dedup means each acked op applied exactly once, so a worker's
	// vote count can only fall short of its acked count by losing writes.
	list, err := serve.NewClient(followers[best].url).Workers(ctx)
	if err != nil {
		return fmt.Errorf("read new primary pool: %w", err)
	}
	votes := make(map[string]int, len(list.Workers))
	for _, w := range list.Workers {
		votes[w.ID] = w.Votes
	}
	lost := 0
	mu.Lock()
	for id, n := range acked {
		if votes[id] < n {
			lost += n - votes[id]
		}
	}
	ackedAfter := ackedTotal() - ackedBefore
	recoveryMs := -1.0
	if !tFirstAfterKill.IsZero() {
		recoveryMs = float64(tFirstAfterKill.Sub(tKill)) / float64(time.Millisecond)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	routeStats := BenchRouteStats{
		Count:  len(latencies),
		Errors: errCount,
		P50Ms:  quantileMs(latencies, 0.50),
		P95Ms:  quantileMs(latencies, 0.95),
		P99Ms:  quantileMs(latencies, 0.99),
	}
	mu.Unlock()

	report := BenchReport{
		Schema:          benchSchema,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Target:          "self-hosted chaos cluster",
		DurationSeconds: cfg.duration.Seconds(),
		Concurrency:     cfg.concurrency,
		PoolSize:        workers,
		Routes:          map[string]BenchRouteStats{"POST /v1/votes": routeStats},
		IngestsPerSec:   float64(routeStats.Count) / cfg.duration.Seconds(),
		WALFsyncP99Ms:   -1,
		Failover: &BenchFailoverStats{
			Nodes:              1 + followerCount,
			KilledAfterSeconds: killAt.Seconds(),
			PromoteMs:          promoteMs,
			RecoveryMs:         recoveryMs,
			NewEpoch:           resp.Epoch,
			AckedBeforeKill:    ackedBefore,
			AckedAfterKill:     ackedAfter,
			AckedLost:          lost,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.benchOut != "" {
		if err := os.WriteFile(cfg.benchOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "crowdsim: wrote failover report to %s (recovery %.0fms, %d acked, %d lost)\n",
			cfg.benchOut, recoveryMs, ackedBefore+ackedAfter, lost)
	} else {
		out.Write(data)
	}
	return validateBench(data)
}
