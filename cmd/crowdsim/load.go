package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/amt"
	"repro/jury/serve"

	"context"
)

// benchSchema names the BENCH JSON layout; CI validates against it so a
// drifting writer fails loudly instead of producing an artifact nobody
// can compare.
const benchSchema = "juryd-bench/1"

// BenchRouteStats is one route's latency profile from a load run.
type BenchRouteStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// BenchReport is the BENCH_baseline.json document: a recorded perf
// baseline from a closed-loop crowdsim run against a live juryd.
type BenchReport struct {
	Schema    string `json:"schema"`
	Timestamp string `json:"timestamp"`
	Target    string `json:"target"`
	// Primary is set when the run split roles: mutations went to this
	// URL while Target (a read-only follower) served the measured reads.
	Primary         string                     `json:"primary,omitempty"`
	DurationSeconds float64                    `json:"duration_seconds"`
	Concurrency     int                        `json:"concurrency"`
	PoolSize        int                        `json:"pool_size"`
	Routes          map[string]BenchRouteStats `json:"routes"`
	SelectsPerSec   float64                    `json:"selects_per_sec"`
	IngestsPerSec   float64                    `json:"ingests_per_sec"`
	CacheHitRate    float64                    `json:"cache_hit_rate"`
	// WALFsyncP99Ms is estimated from the daemon's juryd_wal_fsync_seconds
	// histogram; -1 when the daemon runs without -fsync (no fsync spans).
	WALFsyncP99Ms float64 `json:"wal_fsync_p99_ms"`
	// WALBatchMeanRecords is the mean group-commit batch size from the
	// daemon's juryd_wal_batch_records histogram (records per shared
	// fsync); omitted when the daemon runs without -group-commit.
	WALBatchMeanRecords float64 `json:"wal_batch_mean_records,omitempty"`
	// Failover is present only for -chaos-failover runs: the measured
	// kill/promote/recover cycle (see BenchFailoverStats).
	Failover *BenchFailoverStats `json:"failover,omitempty"`
}

// loadConfig parameterizes one closed-loop load run.
type loadConfig struct {
	target      string
	duration    time.Duration
	concurrency int
	workers     int
	seed        int64
	benchOut    string
	// primary, when non-empty, receives all mutations (pool registration,
	// vote ingests) while target — a read-only follower replicating it —
	// serves the measured selects and metrics.
	primary string
	// ingestEvery makes every Nth iteration of each goroutine an ingest
	// (the rest are selects); 0 selects the historical default of 8.
	ingestEvery int
}

// runLoad registers a simulated worker pool on the target daemon, then
// drives a closed loop — each goroutine alternates cached selects,
// uncached selects (budget changes after ingests), and vote-batch
// ingests — and writes the measured baseline as JSON.
func runLoad(cfg loadConfig, out io.Writer) error {
	cli := serve.NewClient(cfg.target)
	writeCli := cli
	if cfg.primary != "" {
		writeCli = serve.NewClient(cfg.primary)
	}
	ctx := context.Background()

	rng := rand.New(rand.NewSource(cfg.seed))
	specs := make([]serve.WorkerSpec, cfg.workers)
	for i := range specs {
		specs[i] = serve.WorkerSpec{
			ID:      fmt.Sprintf("sim-%03d", i),
			Quality: 0.55 + 0.4*rng.Float64(),
			Cost:    float64(1 + rng.Intn(5)),
		}
	}
	if err := writeCli.RegisterWorkers(ctx, specs); err != nil {
		return fmt.Errorf("register pool: %w", err)
	}
	if cfg.primary != "" {
		// The pool was registered on the primary; selects against the
		// follower fail until replication ships it, so wait for that
		// instead of burning the first samples on "no workers" errors.
		if err := waitForPool(ctx, cli, len(specs)); err != nil {
			return fmt.Errorf("follower %s never replicated the pool: %w", cfg.target, err)
		}
	}

	before, err := cacheCounters(ctx, cli)
	if err != nil {
		return fmt.Errorf("read metrics before run: %w", err)
	}

	type sample struct {
		route string
		d     time.Duration
		err   bool
	}
	var mu sync.Mutex
	var samples []sample
	budgets := []float64{5, 10, 15, 20}

	ingestEvery := cfg.ingestEvery
	if ingestEvery <= 0 {
		ingestEvery = 8
	}

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for g := 0; g < cfg.concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(cfg.seed + int64(g) + 1))
			local := make([]sample, 0, 1024)
			for i := 0; time.Now().Before(deadline); i++ {
				// Mostly selects (the serving hot path); every Nth
				// iteration ingests a vote batch, which both exercises
				// the WAL path and invalidates the selection cache.
				if i%ingestEvery == ingestEvery-1 {
					events := []serve.VoteEvent{{
						WorkerID: specs[lrng.Intn(len(specs))].ID,
						Correct:  lrng.Float64() < 0.7,
					}}
					start := time.Now()
					_, err := writeCli.IngestVotes(ctx, events)
					local = append(local, sample{"POST /v1/votes/batch", time.Since(start), err != nil})
					continue
				}
				req := serve.SelectRequest{Budget: budgets[lrng.Intn(len(budgets))]}
				start := time.Now()
				_, err := cli.Select(ctx, req)
				local = append(local, sample{"POST /v1/select", time.Since(start), err != nil})
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	after, err := cacheCounters(ctx, cli)
	if err != nil {
		return fmt.Errorf("read metrics after run: %w", err)
	}

	report := BenchReport{
		Schema:          benchSchema,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Target:          cfg.target,
		Primary:         cfg.primary,
		DurationSeconds: cfg.duration.Seconds(),
		Concurrency:     cfg.concurrency,
		PoolSize:        cfg.workers,
		Routes:          map[string]BenchRouteStats{},
		WALFsyncP99Ms:   -1,
	}
	byRoute := map[string][]time.Duration{}
	errs := map[string]int{}
	for _, s := range samples {
		if s.err {
			errs[s.route]++
			continue
		}
		byRoute[s.route] = append(byRoute[s.route], s.d)
	}
	for route, ds := range byRoute {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		report.Routes[route] = BenchRouteStats{
			Count:  len(ds),
			Errors: errs[route],
			P50Ms:  quantileMs(ds, 0.50),
			P95Ms:  quantileMs(ds, 0.95),
			P99Ms:  quantileMs(ds, 0.99),
		}
	}
	secs := cfg.duration.Seconds()
	report.SelectsPerSec = float64(len(byRoute["POST /v1/select"])) / secs
	report.IngestsPerSec = float64(len(byRoute["POST /v1/votes/batch"])) / secs
	if hits, misses := after.hits-before.hits, after.misses-before.misses; hits+misses > 0 {
		report.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if p99, ok := fsyncP99(after.metrics); ok {
		report.WALFsyncP99Ms = p99 * 1000
	}
	if mean, ok := walBatchMean(after.metrics); ok {
		report.WALBatchMeanRecords = mean
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.benchOut != "" {
		if err := os.WriteFile(cfg.benchOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "crowdsim: wrote baseline to %s (%d selects, %d ingests)\n",
			cfg.benchOut, len(byRoute["POST /v1/select"]), len(byRoute["POST /v1/votes/batch"]))
	} else {
		out.Write(data)
	}
	return validateBench(data)
}

// waitForPool polls the target until its registry holds at least n
// workers (replication caught up) or a deadline passes.
func waitForPool(ctx context.Context, cli *serve.Client, n int) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		list, err := cli.Workers(ctx)
		if err == nil && len(list.Workers) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("have %d of %d workers after 15s", len(list.Workers), n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// quantileMs returns the q-quantile of sorted durations, in milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// counterState is a snapshot of the cache counters plus the raw metrics
// text for histogram digging.
type counterState struct {
	hits, misses int64
	metrics      string
}

var counterLine = regexp.MustCompile(`(?m)^(juryd_cache_hits_total|juryd_cache_misses_total) (\d+)$`)

// cacheCounters scrapes the daemon's cache hit/miss counters.
func cacheCounters(ctx context.Context, cli *serve.Client) (counterState, error) {
	text, err := cli.Metrics(ctx)
	if err != nil {
		return counterState{}, err
	}
	st := counterState{metrics: text}
	for _, m := range counterLine.FindAllStringSubmatch(text, -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		switch m[1] {
		case "juryd_cache_hits_total":
			st.hits = v
		case "juryd_cache_misses_total":
			st.misses = v
		}
	}
	return st, nil
}

var walBatchLine = regexp.MustCompile(`(?m)^juryd_wal_batch_records_(sum|count) (\d+)$`)

// walBatchMean reads the mean group-commit batch size (records per
// flush) from the daemon's batch histogram; false when the daemon has
// not flushed any batches (group commit off, or no writes yet).
func walBatchMean(metrics string) (float64, bool) {
	var sum, count int64
	for _, m := range walBatchLine.FindAllStringSubmatch(metrics, -1) {
		v, _ := strconv.ParseInt(m[2], 10, 64)
		switch m[1] {
		case "sum":
			sum = v
		case "count":
			count = v
		}
	}
	if count == 0 {
		return 0, false
	}
	return float64(sum) / float64(count), true
}

var fsyncBucketLine = regexp.MustCompile(`(?m)^juryd_wal_fsync_seconds_bucket\{le="([^"]+)"\} (\d+)$`)

// fsyncP99 estimates the 99th-percentile WAL fsync latency (seconds)
// from the daemon's cumulative histogram: the smallest bucket bound
// whose cumulative count covers 99% of observations.
func fsyncP99(metrics string) (float64, bool) {
	type bucket struct {
		le    float64
		count int64
	}
	var buckets []bucket
	var total int64
	for _, m := range fsyncBucketLine.FindAllStringSubmatch(metrics, -1) {
		c, _ := strconv.ParseInt(m[2], 10, 64)
		if m[1] == "+Inf" {
			total = c
			continue
		}
		le, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le, c})
	}
	if total == 0 {
		return 0, false
	}
	need := int64(float64(total) * 0.99)
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for _, b := range buckets {
		if b.count >= need {
			return b.le, true
		}
	}
	// Everything above the largest finite bound; report that bound.
	if len(buckets) > 0 {
		return buckets[len(buckets)-1].le, true
	}
	return 0, false
}

// validateBench checks a BENCH document against the juryd-bench/1
// contract: right schema tag, at least one route with sane ordered
// percentiles, and a positive select rate. CI runs this over the
// artifact so a malformed baseline fails the job instead of landing.
func validateBench(data []byte) error {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("bench document is not JSON: %w", err)
	}
	if r.Schema != benchSchema {
		return fmt.Errorf("bench schema is %q, want %q", r.Schema, benchSchema)
	}
	if r.Timestamp == "" {
		return fmt.Errorf("bench document has no timestamp")
	}
	if len(r.Routes) == 0 {
		return fmt.Errorf("bench document has no routes")
	}
	// Failover runs measure the write path only; every other run must
	// exercise the select hot path.
	sel, ok := r.Routes["POST /v1/select"]
	if !ok && r.Failover == nil {
		return fmt.Errorf("bench document is missing the POST /v1/select route")
	}
	for route, st := range r.Routes {
		if st.Count <= 0 {
			return fmt.Errorf("route %s: count %d, want > 0", route, st.Count)
		}
		if st.P50Ms < 0 || st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms {
			return fmt.Errorf("route %s: percentiles not ordered (p50 %g, p95 %g, p99 %g)",
				route, st.P50Ms, st.P95Ms, st.P99Ms)
		}
	}
	if sel.Count > 0 && r.SelectsPerSec <= 0 {
		return fmt.Errorf("selects_per_sec %g with %d selects recorded", r.SelectsPerSec, sel.Count)
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("cache_hit_rate %g outside [0,1]", r.CacheHitRate)
	}
	if f := r.Failover; f != nil {
		if f.AckedLost != 0 {
			return fmt.Errorf("failover run lost %d acknowledged write(s)", f.AckedLost)
		}
		if f.NewEpoch < 2 {
			return fmt.Errorf("failover run's new epoch is %d, want >= 2 (a real promotion)", f.NewEpoch)
		}
		if f.RecoveryMs <= 0 {
			return fmt.Errorf("failover run recorded no post-kill acknowledged write (recovery_ms %g)", f.RecoveryMs)
		}
		if f.AckedBeforeKill <= 0 || f.AckedAfterKill <= 0 {
			return fmt.Errorf("failover run needs acked writes on both sides of the kill (before %d, after %d)",
				f.AckedBeforeKill, f.AckedAfterKill)
		}
	}
	return nil
}

// validateBenchFile runs validateBench over a file, for the CI artifact
// gate.
func validateBenchFile(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := validateBench(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(out, "crowdsim: %s is a valid %s document\n", path, benchSchema)
	return nil
}

// defaultLoadWorkers sizes the registered pool for load runs: big enough
// to make selection non-trivial, small enough to register instantly.
const defaultLoadWorkers = amt.DefaultNumWorkers
