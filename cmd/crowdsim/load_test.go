package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
)

// TestLoadPhaseProducesValidBaseline boots an in-process juryd, runs a
// short closed loop against it, and checks the emitted document parses,
// validates, and carries real measurements.
func TestLoadPhaseProducesValidBaseline(t *testing.T) {
	srv := server.New(server.NewConfig())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	outPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := runLoad(loadConfig{
		target:      ts.URL,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		workers:     32,
		seed:        1,
		benchOut:    outPath,
	}, &out)
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateBench(data); err != nil {
		t.Fatalf("emitted baseline fails validation: %v", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	sel := r.Routes["POST /v1/select"]
	if sel.Count == 0 || sel.P99Ms <= 0 {
		t.Errorf("select route not measured: %+v", sel)
	}
	if _, ok := r.Routes["POST /v1/votes/batch"]; !ok {
		t.Errorf("ingest route not measured: %v", r.Routes)
	}
	// Repeated same-budget selections on a pool mutated only every 8th
	// request must hit the cache often.
	if r.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %g, want > 0", r.CacheHitRate)
	}
	// No -fsync on the in-memory server: fsync p99 must report absent.
	if r.WALFsyncP99Ms != -1 {
		t.Errorf("wal_fsync_p99_ms = %g on a non-durable server, want -1", r.WALFsyncP99Ms)
	}

	// The -validate entry point accepts the same file.
	out.Reset()
	if err := run([]string{"-validate", outPath}, &out); err != nil {
		t.Fatalf("crowdsim -validate: %v", err)
	}
	if !strings.Contains(out.String(), "valid") {
		t.Errorf("-validate output = %q", out.String())
	}
}

// TestLoadPhaseAgainstFollower splits the roles: a durable primary
// takes the mutations while a live replicating follower serves the
// measured selects — the replica-serving benchmark path.
func TestLoadPhaseAgainstFollower(t *testing.T) {
	p, err := server.Open(server.Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tsP := httptest.NewServer(p.Handler())
	t.Cleanup(tsP.Close)
	f, err := server.Open(server.Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	f.SetFollower(tsP.URL)
	tsF := httptest.NewServer(f.Handler())
	t.Cleanup(tsF.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		repl.NewFollower(f, tsP.URL, repl.Options{Wait: 100 * time.Millisecond}).Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })

	outPath := filepath.Join(t.TempDir(), "bench_replica.json")
	var out bytes.Buffer
	err = runLoad(loadConfig{
		target:      tsF.URL,
		primary:     tsP.URL,
		duration:    300 * time.Millisecond,
		concurrency: 4,
		workers:     32,
		seed:        1,
		benchOut:    outPath,
	}, &out)
	if err != nil {
		t.Fatalf("runLoad against follower: %v", err)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateBench(data); err != nil {
		t.Fatalf("replica baseline fails validation: %v", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Primary != tsP.URL || r.Target != tsF.URL {
		t.Errorf("report roles = target %q primary %q, want %q / %q", r.Target, r.Primary, tsF.URL, tsP.URL)
	}
	// Selects were measured on the follower and never bounced: a 421
	// would count as an error.
	sel := r.Routes["POST /v1/select"]
	if sel.Count == 0 || sel.Errors != 0 {
		t.Errorf("select route on follower: %+v, want samples and no errors", sel)
	}
	ing := r.Routes["POST /v1/votes/batch"]
	if ing.Count == 0 || ing.Errors != 0 {
		t.Errorf("ingest route on primary: %+v, want samples and no errors", ing)
	}
	// The mutations all landed on the primary and replicated over.
	if f.AppliedLSN() == 0 {
		t.Error("follower applied nothing during the run")
	}
}

func TestValidateBenchRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"wrong schema":    `{"schema":"other/9","timestamp":"t","routes":{"POST /v1/select":{"count":1}}}`,
		"no timestamp":    `{"schema":"juryd-bench/1","routes":{"POST /v1/select":{"count":1}}}`,
		"no routes":       `{"schema":"juryd-bench/1","timestamp":"t","routes":{}}`,
		"missing select":  `{"schema":"juryd-bench/1","timestamp":"t","routes":{"POST /v1/votes/batch":{"count":1}}}`,
		"zero count":      `{"schema":"juryd-bench/1","timestamp":"t","routes":{"POST /v1/select":{"count":0}}}`,
		"bad percentiles": `{"schema":"juryd-bench/1","timestamp":"t","selects_per_sec":1,"routes":{"POST /v1/select":{"count":1,"p50_ms":9,"p95_ms":2,"p99_ms":3}}}`,
		"bad hit rate":    `{"schema":"juryd-bench/1","timestamp":"t","selects_per_sec":1,"cache_hit_rate":1.5,"routes":{"POST /v1/select":{"count":1,"p50_ms":1,"p95_ms":2,"p99_ms":3}}}`,
	}
	for name, doc := range cases {
		if err := validateBench([]byte(doc)); err == nil {
			t.Errorf("%s: validateBench accepted %s", name, doc)
		}
	}
}

func TestValidateBenchFileMissing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-validate", filepath.Join(t.TempDir(), "absent.json")}, &out); err == nil {
		t.Fatal("validating a missing file succeeded")
	}
}
