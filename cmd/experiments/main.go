// Command experiments regenerates the paper's evaluation artifacts — every
// figure panel and table of Section 6 plus this repository's ablations —
// and prints them as text tables (or CSV).
//
// Usage:
//
//	experiments -list
//	experiments -run fig6a,fig8b
//	experiments -run all -repeats 20
//	experiments -run all -paper        # published scale (slow)
//	experiments -run fig9b -csv
//
// See EXPERIMENTS.md for the paper-versus-measured record of a full run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "", "comma-separated artifact IDs, or \"all\"")
		list      = fs.Bool("list", false, "list available artifacts and exit")
		paper     = fs.Bool("paper", false, "use the published experiment scale (slow)")
		csvOut    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel  = fs.Bool("parallel", false, "run artifacts concurrently (output stays ordered)")
		workers   = fs.Int("workers", 0, "goroutines per artifact's repeat loops (0 = all CPUs, or sequential when combined with -parallel; 1 = sequential; results are identical either way)")
		datDir    = fs.String("dat", "", "also write gnuplot-ready <id>.dat files into this directory")
		seed      = fs.Int64("seed", 1, "random seed")
		repeats   = fs.Int("repeats", 0, "override per-point repetitions")
		trials    = fs.Int("trials", 0, "override Table 3 trial count")
		questions = fs.Int("questions", 0, "override AMT question count (max 600)")
		buckets   = fs.Int("buckets", 0, "override numBuckets for the JQ approximation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	if *runIDs == "" {
		return fmt.Errorf("nothing to do: pass -run <ids>|all or -list")
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *questions > 0 {
		cfg.Questions = *questions
	}
	if *buckets > 0 {
		cfg.NumBuckets = *buckets
	}
	if *workers != 0 {
		cfg.Parallel = *workers // negative values are rejected by Validate
	} else if *parallel {
		// Artifacts already run concurrently; letting each also fan its
		// repeat loops out over every CPU would oversubscribe the
		// machine by the artifact count.
		cfg.Parallel = 1
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = nil
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			if id != "" {
				ids = append(ids, id)
			}
		}
	}

	type outcome struct {
		res     *experiments.Result
		elapsed time.Duration
		err     error
	}
	outcomes := make([]outcome, len(ids))
	if *parallel {
		// Wall-clock artifacts report seconds, so they must not share
		// the machine with other artifacts; run them after the
		// concurrent batch, one at a time.
		var wg sync.WaitGroup
		var timed []int
		for i, id := range ids {
			if experiments.IsWallClock(id) {
				timed = append(timed, i)
				continue
			}
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				start := time.Now()
				res, err := experiments.Run(id, cfg)
				outcomes[i] = outcome{res: res, elapsed: time.Since(start), err: err}
			}(i, id)
		}
		wg.Wait()
		for _, i := range timed {
			start := time.Now()
			res, err := experiments.Run(ids[i], cfg)
			outcomes[i] = outcome{res: res, elapsed: time.Since(start), err: err}
		}
	} else {
		for i, id := range ids {
			start := time.Now()
			res, err := experiments.Run(id, cfg)
			outcomes[i] = outcome{res: res, elapsed: time.Since(start), err: err}
		}
	}
	if *datDir != "" {
		if err := os.MkdirAll(*datDir, 0o755); err != nil {
			return err
		}
	}
	for _, oc := range outcomes {
		if oc.err != nil {
			return oc.err
		}
		if *datDir != "" {
			path := filepath.Join(*datDir, oc.res.ID+".dat")
			if err := os.WriteFile(path, []byte(oc.res.Dat()), 0o644); err != nil {
				return err
			}
		}
		tbl := oc.res.Table()
		if *csvOut {
			fmt.Fprint(out, tbl.CSV())
		} else {
			fmt.Fprint(out, tbl.String())
			if oc.res.Notes != "" {
				fmt.Fprintf(out, "note: %s\n", oc.res.Notes)
			}
			fmt.Fprintf(out, "elapsed: %v\n", oc.elapsed.Round(time.Millisecond))
		}
		fmt.Fprintln(out)
	}
	return nil
}
