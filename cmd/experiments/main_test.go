package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"fig1", "fig6a", "fig9d", "fig10d", "table3"} {
		if !strings.Contains(got, id) {
			t.Errorf("list output missing %q:\n%s", id, got)
		}
	}
}

func TestRunSingleArtifact(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "fig1", "-repeats", "1", "-trials", "5", "-questions", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "fig1") || !strings.Contains(got, "0.845") {
		t.Errorf("fig1 output unexpected:\n%s", got)
	}
	if !strings.Contains(got, "elapsed:") {
		t.Errorf("missing elapsed line:\n%s", got)
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "fig1", "-csv", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "budget,JQ,required") {
		t.Errorf("CSV header missing:\n%s", got)
	}
}

func TestRunMultipleArtifacts(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "fig1, fig8b", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "fig1") || !strings.Contains(got, "fig8b") {
		t.Errorf("multi-artifact output unexpected:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"nothing to do": {},
		"unknown id":    {"-run", "nonsense"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := run(args, &out); err == nil {
				t.Errorf("no error for %v", args)
			}
		})
	}
}

func TestRunParallel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "fig1,fig8b,fig9b", "-parallel", "-repeats", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Output must preserve the requested order despite concurrency.
	i1 := strings.Index(got, "fig1 —")
	i2 := strings.Index(got, "fig8b —")
	i3 := strings.Index(got, "fig9b —")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("parallel output unordered or incomplete:\n%s", got)
	}
}

func TestRunDatExport(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-run", "fig1", "-repeats", "1", "-dat", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.dat"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.HasPrefix(got, "# fig1") {
		t.Fatalf("dat header:\n%s", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2+4 { // two comment lines + four budgets
		t.Fatalf("dat lines = %d:\n%s", len(lines), got)
	}
}
