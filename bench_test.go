// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus ablation micro-benchmarks for the design
// choices catalogued in DESIGN.md.
//
// Each BenchmarkFig*/BenchmarkTable* regenerates the corresponding
// artifact at a reduced-but-faithful scale (Repeats=1); run
// cmd/experiments for the full sweeps and EXPERIMENTS.md for recorded
// outputs.
package repro_test

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/jq"
	"repro/internal/multichoice"
	"repro/internal/selection"
	"repro/internal/server"
	"repro/internal/voting"
	"repro/internal/worker"
)

// benchConfig keeps one artifact regeneration per benchmark iteration.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Repeats: 1, Trials: 40, Questions: 10, NumBuckets: 50}
}

func benchmarkArtifact(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -------------------------------------

func BenchmarkFig1BudgetQualityTable(b *testing.B)  { benchmarkArtifact(b, "fig1") }
func BenchmarkFig6aSystemComparison(b *testing.B)   { benchmarkArtifact(b, "fig6a") }
func BenchmarkFig6bSystemComparison(b *testing.B)   { benchmarkArtifact(b, "fig6b") }
func BenchmarkFig6cSystemComparison(b *testing.B)   { benchmarkArtifact(b, "fig6c") }
func BenchmarkFig6dSystemComparison(b *testing.B)   { benchmarkArtifact(b, "fig6d") }
func BenchmarkFig7aAnnealingVsExact(b *testing.B)   { benchmarkArtifact(b, "fig7a") }
func BenchmarkFig7bAnnealingScale(b *testing.B)     { benchmarkArtifact(b, "fig7b") }
func BenchmarkTable3ErrorRanges(b *testing.B)       { benchmarkArtifact(b, "table3") }
func BenchmarkFig8aStrategyComparison(b *testing.B) { benchmarkArtifact(b, "fig8a") }
func BenchmarkFig8bStrategyComparison(b *testing.B) { benchmarkArtifact(b, "fig8b") }
func BenchmarkFig9aVarianceSweep(b *testing.B)      { benchmarkArtifact(b, "fig9a") }
func BenchmarkFig9bBucketSweep(b *testing.B)        { benchmarkArtifact(b, "fig9b") }
func BenchmarkFig9cErrorHistogram(b *testing.B)     { benchmarkArtifact(b, "fig9c") }
func BenchmarkFig9dPruning(b *testing.B)            { benchmarkArtifact(b, "fig9d") }
func BenchmarkFig10aRealBudget(b *testing.B)        { benchmarkArtifact(b, "fig10a") }
func BenchmarkFig10bRealN(b *testing.B)             { benchmarkArtifact(b, "fig10b") }
func BenchmarkFig10cRealCostStd(b *testing.B)       { benchmarkArtifact(b, "fig10c") }
func BenchmarkFig10dPrediction(b *testing.B)        { benchmarkArtifact(b, "fig10d") }

// --- Worked-example micro-benchmarks ---------------------------------------

// BenchmarkFig2ExactJQ measures the Figure 2 worked example: exact JQ of
// MV and BV on the three-worker jury.
func BenchmarkFig2ExactJQ(b *testing.B) {
	pool := worker.UniformCost([]float64{0.9, 0.6, 0.6}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := jq.Exact(pool, voting.Majority{}, 0.5); err != nil {
			b.Fatal(err)
		}
		if _, err := jq.ExactBV(pool, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ----------------------------------------------------

// BenchmarkAblationEstimateJQ measures the bucket-based approximation
// (Algorithm 1) across jury sizes, with and without Algorithm 2 pruning —
// the microscopic view of Figure 9(d).
func BenchmarkAblationEstimateJQ(b *testing.B) {
	for _, n := range []int{50, 100, 300, 500} {
		gen := datagen.DefaultConfig()
		gen.N = n
		pool, err := gen.Pool(rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		for _, pruning := range []bool{true, false} {
			name := "n=" + strconv.Itoa(n) + "/pruning=" + strconv.FormatBool(pruning)
			b.Run(name, func(b *testing.B) {
				opts := jq.Options{NumBuckets: 50, DisablePruning: !pruning}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := jq.Estimate(pool, 0.5, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationMVClosedForm compares the O(n²) closed-form MV JQ
// against the exponential enumeration it replaces.
func BenchmarkAblationMVClosedForm(b *testing.B) {
	pool, err := func() (worker.Pool, error) {
		gen := datagen.DefaultConfig()
		gen.N = 15
		return gen.Pool(rand.New(rand.NewSource(2)))
	}()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("closed-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := jq.MajorityClosedForm(pool, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := jq.Exact(pool, voting.Majority{}, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSelectors measures the JSP search algorithms on one
// N=14 instance (where the exhaustive optimum is computable).
func BenchmarkAblationSelectors(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.N = 14
	pool, err := gen.Pool(rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	selectors := map[string]selection.Selector{
		"exhaustive":     selection.Exhaustive{Objective: selection.BVExactObjective{}},
		"annealing":      selection.Annealing{Objective: selection.BVExactObjective{}, Seed: 1},
		"greedy-quality": selection.GreedyQuality{Objective: selection.BVExactObjective{}},
		"greedy-ratio":   selection.GreedyRatio{Objective: selection.BVExactObjective{}},
		"knapsack":       selection.KnapsackSurrogate{Objective: selection.BVExactObjective{}},
	}
	for name, sel := range selectors {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(pool, 0.3, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAnnealingScale measures one JSP annealing solve as the
// candidate pool grows (the raw operation behind Figure 7b).
func BenchmarkAblationAnnealingScale(b *testing.B) {
	for _, n := range []int{100, 300, 500} {
		gen := datagen.DefaultConfig()
		gen.N = n
		pool, err := gen.Pool(rand.New(rand.NewSource(4)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("N="+strconv.Itoa(n), func(b *testing.B) {
			sel := selection.Annealing{Objective: selection.BVObjective{}, Seed: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(pool, 0.5, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMultiChoiceJQ measures the Section 7 tuple-key JQ
// estimation against the exact enumeration.
func BenchmarkAblationMultiChoiceJQ(b *testing.B) {
	pool := make(multichoice.Pool, 8)
	for i := range pool {
		m, err := multichoice.NewSymmetricConfusion(3, 0.6+0.03*float64(i))
		if err != nil {
			b.Fatal(err)
		}
		pool[i] = multichoice.Worker{Confusion: m, Cost: 1}
	}
	prior := multichoice.UniformPrior(3)
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multichoice.ExactBV(pool, prior); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bucketed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multichoice.EstimateBV(pool, prior, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationExperimentScale regenerates the two ablation artifacts.
func BenchmarkAblationSelectorsArtifact(b *testing.B) {
	benchmarkArtifact(b, "ablation-selectors")
}

func BenchmarkAblationBucketsArtifact(b *testing.B) {
	benchmarkArtifact(b, "ablation-buckets")
}

// --- Estimator and parallel-sweep ablations ---------------------------------

// BenchmarkAblationEstimatorJQ compares three ways of scoring the
// annealing search's jury stream: the one-shot jq.Estimate (per-call
// setup and allocation), the jq.Estimator engine without memoization
// (precomputed pool state, zero steady-state allocation), and the full
// engine with memoization (revisited juries are answered from the memo).
// The workload replays a fixed sequence of overlapping subsets with
// revisits, the shape Algorithm 3 produces.
func BenchmarkAblationEstimatorJQ(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.N = 120
	pool, err := gen.Pool(rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	subsets := make([][]int, 64)
	for i := range subsets {
		if i%4 == 3 {
			subsets[i] = subsets[rng.Intn(i)] // revisit an earlier jury
			continue
		}
		perm := rng.Perm(gen.N)
		subsets[i] = perm[:8+rng.Intn(9)]
	}
	opts := jq.Options{NumBuckets: 50}
	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range subsets {
				if _, err := jq.Estimate(pool.Subset(s), 0.5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("estimator", func(b *testing.B) {
		est, err := jq.NewEstimator(pool, 0.5, jq.Options{NumBuckets: 50, DisableMemo: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range subsets {
				if _, err := est.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("estimator-memo", func(b *testing.B) {
		est, err := jq.NewEstimator(pool, 0.5, jq.Options{NumBuckets: 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range subsets {
				if _, err := est.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationMVDeltaJQ compares the one-shot closed-form MV JQ
// against the delta-updating MVEvaluator on a tail-swap workload.
func BenchmarkAblationMVDeltaJQ(b *testing.B) {
	gen := datagen.DefaultConfig()
	gen.N = 120
	pool, err := gen.Pool(rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	subsets := make([][]int, 64)
	base := rng.Perm(gen.N)[:20]
	for i := range subsets {
		jury := append([]int(nil), base...)
		jury[len(jury)-1-rng.Intn(4)] = rng.Intn(gen.N) // swap near the tail
		subsets[i] = jury
	}
	b.Run("closed-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range subsets {
				if _, err := jq.MajorityClosedForm(pool.Subset(s), 0.5); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		eval, err := jq.NewMVEvaluator(pool, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range subsets {
				if _, err := eval.Eval(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSweepParallel regenerates one repeat-heavy artifact
// sequentially and with the full goroutine pool; the artifacts are
// byte-identical (TestParallelSweepsMatchSequential), only the wall
// clock differs.
func BenchmarkAblationSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "workers=seq"
		if workers == 0 {
			name = "workers=all"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Repeats = 4
			cfg.Parallel = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run("fig9b", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerSelect measures the juryd serving path end to end
// (request decode → registry snapshot → selection → response encode) with
// the selection cache on and off. The cached variant answers every
// repeated request from the signature-keyed cache; the uncached variant
// re-runs the annealing search per request — the gap is the amortization
// the serving subsystem exists to provide. The cached-untraced variant
// disables request tracing (TraceBuffer: -1); comparing it against
// cached bounds the span recorder's overhead on the hottest path.
func BenchmarkServerSelect(b *testing.B) {
	run := func(b *testing.B, cacheSize, traceBuffer int) {
		srv := server.New(server.Config{Alpha: 0.5, Seed: 1, CacheSize: cacheSize, TraceBuffer: traceBuffer})
		rng := rand.New(rand.NewSource(42))
		specs := make([]server.WorkerSpec, 60)
		for i := range specs {
			specs[i] = server.WorkerSpec{
				ID:      "w" + strconv.Itoa(i),
				Quality: 0.55 + 0.4*rng.Float64(),
				Cost:    1 + 9*rng.Float64(),
			}
		}
		if _, err := srv.Registry().Register(context.Background(), specs, 0); err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		body := []byte(`{"budget":40}`)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/select", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("select: %d %s", w.Code, w.Body)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, 0, 0) })
	b.Run("cached-untraced", func(b *testing.B) { run(b, 0, -1) })
	b.Run("uncached", func(b *testing.B) { run(b, -1, 0) })
}

// BenchmarkServerMultiSelect measures the multi-choice serving path end
// to end (request decode → pool snapshot → annealing over the bucketed
// multi-label JQ estimate → response encode) with the selection cache on
// and off. The multi-choice search is markedly costlier than the binary
// one (the bucket DP runs over (ℓ−1)-tuples of margins), so the cache's
// amortization matters even more here.
func BenchmarkServerMultiSelect(b *testing.B) {
	run := func(b *testing.B, cacheSize int) {
		srv := server.New(server.Config{Alpha: 0.5, Seed: 1, CacheSize: cacheSize})
		rng := rand.New(rand.NewSource(42))
		specs := make([]server.MultiWorkerSpec, 20)
		for i := range specs {
			q := 0.45 + 0.5*rng.Float64()
			specs[i] = server.MultiWorkerSpec{
				ID:      "m" + strconv.Itoa(i),
				Quality: &q,
				Cost:    1 + 9*rng.Float64(),
			}
		}
		if err := srv.PreloadMulti(server.MultiCreateRequest{
			Name: "bench", Labels: 3, Workers: specs,
		}); err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		body := []byte(`{"budget":15}`)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/multi/pools/bench/select", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("multi select: %d %s", w.Code, w.Body)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, 0) })
	b.Run("uncached", func(b *testing.B) { run(b, -1) })
}

// BenchmarkServerIngest measures the durable ingest path end to end
// (request decode → idempotency dedup → WAL journal → apply → response
// encode) under -fsync, per-record vs group commit, at increasing
// parallelism. Per-record durability serializes every mutation behind
// its own disk flush, so throughput is pinned to the device's flush
// rate regardless of concurrency; group commit shares one flush across
// every mutation staged while the previous flush was in flight, so
// throughput scales with offered parallelism. The parallelism=1 pair
// doubles as the degeneration check: with no concurrency the two modes
// do identical work.
func BenchmarkServerIngest(b *testing.B) {
	run := func(b *testing.B, group bool, parallelism int) {
		srv, err := server.Open(server.Config{
			Alpha: 0.5, Seed: 1, DataDir: b.TempDir(),
			Fsync: true, GroupCommit: group,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.ClosePersistence()
		specs := make([]server.WorkerSpec, 16)
		for i := range specs {
			specs[i] = server.WorkerSpec{ID: "w" + strconv.Itoa(i), Quality: 0.8, Cost: 2}
		}
		if _, err := srv.Registry().Register(context.Background(), specs, 0); err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		var seq atomic.Uint64
		b.SetParallelism(parallelism)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := seq.Add(1)
				body := []byte(`{"worker_id":"w` + strconv.FormatUint(n%16, 10) + `","correct":true}`)
				req := httptest.NewRequest(http.MethodPost, "/v1/votes", bytes.NewReader(body))
				req.Header.Set("Idempotency-Key", "bench-"+strconv.FormatUint(n, 10))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("ingest: %d %s", w.Code, w.Body)
				}
			}
		})
	}
	for _, parallelism := range []int{1, 8} {
		for _, group := range []bool{false, true} {
			name := "per-record"
			if group {
				name = "group-commit"
			}
			b.Run(name+"/parallelism="+strconv.Itoa(parallelism), func(b *testing.B) {
				run(b, group, parallelism)
			})
		}
	}
}
