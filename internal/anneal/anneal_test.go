package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultScheduleLevels(t *testing.T) {
	s := DefaultSchedule()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1.0 halves to below 1e-8 after 27 halvings; level count includes T=1.
	if got := s.Levels(); got != 27 {
		t.Fatalf("Levels = %d, want 27", got)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{InitialTemp: 0, Cooling: 0.5, Epsilon: 1e-8},
		{InitialTemp: 1, Cooling: 1, Epsilon: 1e-8},
		{InitialTemp: 1, Cooling: 0, Epsilon: 1e-8},
		{InitialTemp: 1, Cooling: 0.5, Epsilon: 0},
		{InitialTemp: math.NaN(), Cooling: 0.5, Epsilon: 1e-8},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d: no validation error for %+v", i, s)
		}
		if s.Levels() != 0 {
			t.Errorf("schedule %d: Levels() = %d for invalid schedule", i, s.Levels())
		}
	}
}

func TestRunVisitsDescendingTemperatures(t *testing.T) {
	var temps []float64
	n, err := Run(Schedule{InitialTemp: 1, Cooling: 0.5, Epsilon: 0.2}, func(t float64) {
		temps = append(temps, t)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0.25}
	if n != len(want) || len(temps) != len(want) {
		t.Fatalf("levels = %d, temps = %v, want %v", n, temps, want)
	}
	for i := range want {
		if math.Abs(temps[i]-want[i]) > 1e-15 {
			t.Fatalf("temps = %v, want %v", temps, want)
		}
	}
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	if _, err := Run(Schedule{}, func(float64) {}); err == nil {
		t.Fatal("no error for zero-value schedule")
	}
}

func TestAcceptImprovingAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if !Accept(rng.Float64(), 1e-12, rng) {
			t.Fatal("improving move rejected")
		}
	}
	if !Accept(0, 1e-12, rng) {
		t.Fatal("neutral move rejected")
	}
}

func TestAcceptWorseningFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	delta, temp := -0.5, 1.0
	want := math.Exp(delta / temp)
	accepted := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if Accept(delta, temp, rng) {
			accepted++
		}
	}
	got := float64(accepted) / trials
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("acceptance rate = %v, want ~%v", got, want)
	}
}

func TestAcceptFrozenRejectsWorsening(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if Accept(-0.01, 0, rng) {
		t.Fatal("worsening move accepted at T=0")
	}
}

// Property: acceptance probability of worsening moves is monotone in
// temperature — colder never accepts more often (statistically).
func TestAcceptMonotoneInTemperatureProperty(t *testing.T) {
	f := func(seed int64, dRaw, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := -(float64(dRaw%100) + 1) / 100 // in [-1.01, -0.01]
		hot := (float64(tRaw%50) + 51) / 100    // in (0.5, 1.01]
		cold := hot / 4
		const trials = 4000
		hotAcc, coldAcc := 0, 0
		for i := 0; i < trials; i++ {
			if Accept(delta, hot, rng) {
				hotAcc++
			}
			if Accept(delta, cold, rng) {
				coldAcc++
			}
		}
		// Allow statistical slack: 4 sigma ≈ 4·sqrt(0.25/4000) ≈ 0.032.
		return float64(hotAcc-coldAcc)/trials > -0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// SA on a toy problem: maximize -(x-7)² over integers 0..15 starting at 0.
// With enough moves the engine should land on the optimum.
func TestAnnealingSolvesToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	obj := func(x int) float64 { return -float64((x - 7) * (x - 7)) }
	x := 0
	best := x
	_, err := Run(DefaultSchedule(), func(temp float64) {
		for i := 0; i < 20; i++ {
			step := 1
			if rng.Intn(2) == 0 {
				step = -1
			}
			cand := x + step
			if cand < 0 || cand > 15 {
				continue
			}
			if Accept(obj(cand)-obj(x), temp, rng) {
				x = cand
				if obj(x) > obj(best) {
					best = x
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 7 {
		t.Fatalf("best = %d, want 7", best)
	}
}
