// Package anneal provides the simulated-annealing substrate used by the
// jury-selection heuristics (Section 5.1 of Zheng et al., EDBT 2015):
// a geometric cooling schedule and the Boltzmann acceptance rule.
//
// The paper's Algorithm 3 halves the temperature from 1.0 until it falls
// below ε, performing N local searches per temperature level; a move that
// improves the objective is always accepted, and a move that worsens it by
// Δ < 0 is accepted with probability exp(Δ/T).
package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Default schedule parameters, matching Algorithm 3.
const (
	DefaultInitialTemp = 1.0
	DefaultCooling     = 0.5
	DefaultEpsilon     = 1e-8
)

// Schedule describes a geometric cooling schedule: the temperature starts
// at InitialTemp and is multiplied by Cooling after every level until it
// drops below Epsilon.
type Schedule struct {
	InitialTemp float64
	Cooling     float64
	Epsilon     float64
}

// DefaultSchedule returns the paper's schedule (T₀=1, halving, ε=1e−8).
func DefaultSchedule() Schedule {
	return Schedule{InitialTemp: DefaultInitialTemp, Cooling: DefaultCooling, Epsilon: DefaultEpsilon}
}

// Validate checks the schedule parameters.
func (s Schedule) Validate() error {
	if !(s.InitialTemp > 0) {
		return fmt.Errorf("anneal: InitialTemp must be positive, got %v", s.InitialTemp)
	}
	if !(s.Cooling > 0 && s.Cooling < 1) {
		return fmt.Errorf("anneal: Cooling must be in (0, 1), got %v", s.Cooling)
	}
	if !(s.Epsilon > 0) {
		return fmt.Errorf("anneal: Epsilon must be positive, got %v", s.Epsilon)
	}
	return nil
}

// Levels returns the number of temperature levels the schedule visits.
func (s Schedule) Levels() int {
	if s.Validate() != nil {
		return 0
	}
	levels := 0
	for t := s.InitialTemp; t >= s.Epsilon; t *= s.Cooling {
		levels++
	}
	return levels
}

// Accept implements the Boltzmann acceptance rule for a maximization
// problem: a move with objective change delta ≥ 0 is always accepted; a
// worsening move is accepted with probability exp(delta/temp).
func Accept(delta, temp float64, rng *rand.Rand) bool {
	if delta >= 0 {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() <= math.Exp(delta/temp)
}

// Run drives the cooling loop: for each temperature level it invokes
// level(T) once. The callback typically performs N local searches, calling
// Accept to decide each move. Run returns the number of levels executed or
// an error for an invalid schedule.
func Run(s Schedule, level func(temp float64)) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	levels := 0
	for t := s.InitialTemp; t >= s.Epsilon; t *= s.Cooling {
		level(t)
		levels++
	}
	return levels, nil
}
