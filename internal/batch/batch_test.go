package batch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/worker"
)

func makeTasks(t *testing.T, n int, seed int64) []Task {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gen := datagen.DefaultConfig()
	gen.N = 12
	tasks := make([]Task, n)
	for i := range tasks {
		pool, err := gen.Pool(rng)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = Task{Name: string(rune('a' + i)), Pool: pool, Alpha: 0.5}
	}
	return tasks
}

func allAllocators() []Allocator {
	return []Allocator{Even{}, WeightedByPrior{}, GreedyMarginal{Steps: 10}}
}

func TestAllocatorsValidation(t *testing.T) {
	tasks := makeTasks(t, 2, 1)
	for _, a := range allAllocators() {
		t.Run(a.Name(), func(t *testing.T) {
			if _, err := a.Allocate(nil, 1, 1); !errors.Is(err, ErrNoTasks) {
				t.Errorf("no tasks: err = %v", err)
			}
			if _, err := a.Allocate(tasks, -1, 1); !errors.Is(err, ErrBadBudget) {
				t.Errorf("bad budget: err = %v", err)
			}
			bad := []Task{{Pool: nil, Alpha: 0.5}}
			if _, err := a.Allocate(bad, 1, 1); err == nil {
				t.Error("no error for invalid task")
			}
			badPrior := []Task{{Pool: tasks[0].Pool, Alpha: 1.5}}
			if _, err := a.Allocate(badPrior, 1, 1); err == nil {
				t.Error("no error for bad prior")
			}
		})
	}
}

func TestAllocatorsSpendWithinBudget(t *testing.T) {
	tasks := makeTasks(t, 4, 2)
	const budget = 0.4
	for _, a := range allAllocators() {
		res, err := a.Allocate(tasks, budget, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.SpentBudget > budget+1e-9 {
			t.Errorf("%s: spent %v over budget %v", a.Name(), res.SpentBudget, budget)
		}
		var perTask float64
		for _, alloc := range res.Allocations {
			if alloc.Selection.Cost > alloc.Budget+1e-9 {
				t.Errorf("%s: task %s cost %v over its allocation %v",
					a.Name(), alloc.Task.Name, alloc.Selection.Cost, alloc.Budget)
			}
			perTask += alloc.Budget
		}
		if perTask > budget+1e-9 {
			t.Errorf("%s: allocated %v over budget %v", a.Name(), perTask, budget)
		}
		if res.MeanJQ < 0.5 || res.MeanJQ > 1 {
			t.Errorf("%s: MeanJQ = %v", a.Name(), res.MeanJQ)
		}
	}
}

func TestEvenSplitsEqually(t *testing.T) {
	tasks := makeTasks(t, 4, 3)
	res, err := Even{}.Allocate(tasks, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, alloc := range res.Allocations {
		if math.Abs(alloc.Budget-0.2) > 1e-12 {
			t.Fatalf("allocation = %v, want 0.2", alloc.Budget)
		}
	}
}

func TestWeightedByPriorFavoursUncertainTasks(t *testing.T) {
	tasks := makeTasks(t, 2, 4)
	tasks[0].Alpha = 0.5  // maximum uncertainty
	tasks[1].Alpha = 0.99 // nearly decided
	res, err := WeightedByPrior{}.Allocate(tasks, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allocations[0].Budget <= res.Allocations[1].Budget {
		t.Fatalf("uncertain task got %v, decided task %v",
			res.Allocations[0].Budget, res.Allocations[1].Budget)
	}
}

func TestWeightedByPriorAllDecidedFallsBackToEven(t *testing.T) {
	tasks := makeTasks(t, 2, 5)
	tasks[0].Alpha = 1
	tasks[1].Alpha = 0
	res, err := WeightedByPrior{}.Allocate(tasks, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Allocations[0].Budget-0.2) > 1e-12 {
		t.Fatalf("allocation = %v, want even 0.2", res.Allocations[0].Budget)
	}
}

// Greedy marginal allocation should beat (or match) the even split when
// tasks differ sharply in how much budget they need.
func TestGreedyMarginalBeatsEvenOnHeterogeneousTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Task "easy" has one superb cheap worker: tiny budget suffices.
	easy := Task{Name: "easy", Alpha: 0.5, Pool: worker.Pool{
		{ID: "star", Quality: 0.97, Cost: 0.02},
		{ID: "x", Quality: 0.6, Cost: 0.05},
	}}
	// Task "hard" has only mediocre workers: JQ grows slowly with spend.
	hardPool := make(worker.Pool, 14)
	for i := range hardPool {
		hardPool[i] = worker.Worker{
			Quality: 0.55 + 0.05*rng.Float64(),
			Cost:    0.03,
		}
	}
	hard := Task{Name: "hard", Alpha: 0.5, Pool: hardPool}
	tasks := []Task{easy, hard}

	const budget = 0.3
	even, err := Even{}.Allocate(tasks, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyMarginal{Steps: 15}.Allocate(tasks, budget, 1)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.MeanJQ < even.MeanJQ-1e-9 {
		t.Fatalf("greedy MeanJQ %v below even %v", greedy.MeanJQ, even.MeanJQ)
	}
	// The greedy allocator should shift budget toward the hard task once
	// the easy one is saturated.
	var easyBudget, hardBudget float64
	for _, alloc := range greedy.Allocations {
		if alloc.Task.Name == "easy" {
			easyBudget = alloc.Budget
		} else {
			hardBudget = alloc.Budget
		}
	}
	if hardBudget <= easyBudget {
		t.Fatalf("greedy gave hard task %v, easy task %v; expected hard > easy",
			hardBudget, easyBudget)
	}
}

func TestGreedyMarginalDefaultSteps(t *testing.T) {
	tasks := makeTasks(t, 2, 7)
	res, err := GreedyMarginal{}.Allocate(tasks, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, alloc := range res.Allocations {
		total += alloc.Budget
	}
	if math.Abs(total-0.2) > 1e-9 {
		t.Fatalf("allocated %v, want the full 0.2", total)
	}
}

func TestAllocatorNames(t *testing.T) {
	want := map[string]bool{"even": true, "prior-weighted": true, "greedy-marginal": true}
	for _, a := range allAllocators() {
		if !want[a.Name()] {
			t.Errorf("unexpected allocator name %q", a.Name())
		}
	}
}

// TestGreedyMarginalSkipsSaturatedTasks is the regression test for the
// zero-gain fallback (ROADMAP triage): when no single increment moves
// any frontier, the banked budget must go to a task that can still
// improve — not to the lowest-JQ task whose whole pool is already
// affordable. Task "small" saturates at cost 1 with a low JQ; task
// "big" needs ten banked increments before its second worker becomes
// affordable. The old fallback banked everything on "small" (lowest JQ,
// saturated, unimprovable) and never unlocked "big".
func TestGreedyMarginalSkipsSaturatedTasks(t *testing.T) {
	small := Task{Name: "small", Alpha: 0.5, Pool: worker.Pool{
		{ID: "s0", Quality: 0.55, Cost: 1},
	}}
	big := Task{Name: "big", Alpha: 0.5, Pool: worker.Pool{
		{ID: "b0", Quality: 0.8, Cost: 1},
		{ID: "b1", Quality: 0.8, Cost: 5},
		{ID: "b2", Quality: 0.8, Cost: 5},
	}}
	// 13 increments of 1: one saturates "small", one buys b0, and the
	// banked remainder must accumulate on "big" until the full 3-worker
	// majority (cost 11, JQ 0.896 > 0.8) becomes affordable.
	res, err := GreedyMarginal{Steps: 13}.Allocate([]Task{small, big}, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Allocation{}
	for _, a := range res.Allocations {
		byName[a.Task.Name] = a
	}
	if got := byName["small"].Budget; got > 1+1e-9 {
		t.Fatalf("saturated task banked budget %v, want <= 1", got)
	}
	if got := byName["big"].Budget; got < 11-1e-9 {
		t.Fatalf("improvable task got budget %v, want >= 11", got)
	}
	if got := len(byName["big"].Selection.Jury); got != 3 {
		t.Fatalf("big task selected %d workers, want all 3 (budget banked to 11)", got)
	}
	if jq := byName["big"].Selection.JQ; jq <= 0.8+1e-9 {
		t.Fatalf("big task JQ = %v, want > 0.8 with the full majority", jq)
	}
}

// TestGreedyMarginalStopsWhenAllSaturated: once every task's budget
// covers its whole pool, further increments cannot change any selection
// and the allocator must stop instead of banking budget forever.
func TestGreedyMarginalStopsWhenAllSaturated(t *testing.T) {
	tasks := []Task{
		{Name: "a", Alpha: 0.5, Pool: worker.Pool{{ID: "a0", Quality: 0.7, Cost: 1}}},
		{Name: "b", Alpha: 0.5, Pool: worker.Pool{{ID: "b0", Quality: 0.8, Cost: 2}}},
	}
	res, err := GreedyMarginal{Steps: 100}.Allocate(tasks, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	var banked float64
	for _, a := range res.Allocations {
		banked += a.Budget
		if a.Budget > a.Task.Pool.TotalCost()+1+1e-9 {
			t.Fatalf("task %q over-banked: budget %v for pool cost %v",
				a.Task.Name, a.Budget, a.Task.Pool.TotalCost())
		}
	}
	if banked > 6+1e-9 { // a saturates at >=1, b at >=2, plus one increment slack each
		t.Fatalf("allocator kept banking after saturation: %v total", banked)
	}
	if math.Abs(res.SpentBudget-3) > 1e-9 {
		t.Fatalf("spent %v, want 3 (both pools fully hired)", res.SpentBudget)
	}
}
