// Package batch allocates one global budget across many decision-making
// tasks. The paper solves the Jury Selection Problem per task with a
// per-task budget; a production deployment (600 questions, one purse)
// must first decide how much each task deserves. Three allocators are
// provided:
//
//   - Even: split the budget equally — the implicit baseline of the
//     paper's per-question experiments;
//   - WeightedByPrior: give uncertain tasks (prior near ½) more budget
//     than near-decided ones, proportional to prior entropy;
//   - GreedyMarginal: spend the budget in small increments, always on the
//     task whose optimal jury improves the most per unit of spend — a
//     submodular-style greedy over the budget–quality frontiers.
//
// Each allocator returns per-task selections under the paper's OPTJS
// machinery; the quality of an allocation is the mean JQ across tasks.
package batch

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/selection"
	"repro/internal/worker"
)

// Task is one decision-making task in a batch: its candidate pool and the
// provider's prior on its answer.
type Task struct {
	// Name is an optional identifier for reporting.
	Name string
	// Pool is the task's candidate worker set.
	Pool worker.Pool
	// Alpha is the prior P(t = 0) for this task.
	Alpha float64
}

// Validate checks the task.
func (t Task) Validate() error {
	if err := t.Pool.Validate(); err != nil {
		return fmt.Errorf("batch: task %q: %w", t.Name, err)
	}
	if t.Alpha < 0 || t.Alpha > 1 || t.Alpha != t.Alpha {
		return fmt.Errorf("batch: task %q: prior %v outside [0, 1]", t.Name, t.Alpha)
	}
	return nil
}

// Allocation is the outcome for one task.
type Allocation struct {
	Task      Task
	Budget    float64
	Selection selection.Result
}

// Result is a full batch allocation.
type Result struct {
	Allocations []Allocation
	// MeanJQ is the average selected-jury quality across tasks.
	MeanJQ float64
	// SpentBudget is the total cost of all selected juries.
	SpentBudget float64
}

// Errors returned by the allocators.
var (
	ErrNoTasks   = errors.New("batch: no tasks")
	ErrBadBudget = errors.New("batch: negative budget")
)

// Allocator distributes a global budget over a batch of tasks.
type Allocator interface {
	Name() string
	Allocate(tasks []Task, budget float64, seed int64) (Result, error)
}

func checkBatch(tasks []Task, budget float64) error {
	if len(tasks) == 0 {
		return ErrNoTasks
	}
	if budget < 0 || budget != budget {
		return fmt.Errorf("%w: %v", ErrBadBudget, budget)
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// selector builds the per-task OPTJS search used by all allocators.
func selector(seed int64) selection.Selector {
	return selection.Auto{Objective: selection.BVObjective{}, Seed: seed}
}

// solve runs per-task selection for the given per-task budgets.
func solve(tasks []Task, budgets []float64, seed int64) (Result, error) {
	res := Result{Allocations: make([]Allocation, len(tasks))}
	var sumJQ float64
	for i, t := range tasks {
		sel, err := selector(seed+int64(i)).Select(t.Pool, budgets[i], t.Alpha)
		if err != nil {
			return Result{}, fmt.Errorf("batch: task %q: %w", t.Name, err)
		}
		res.Allocations[i] = Allocation{Task: t, Budget: budgets[i], Selection: sel}
		sumJQ += sel.JQ
		res.SpentBudget += sel.Cost
	}
	res.MeanJQ = sumJQ / float64(len(tasks))
	return res, nil
}

// Even splits the budget equally across tasks.
type Even struct{}

// Name implements Allocator.
func (Even) Name() string { return "even" }

// Allocate implements Allocator.
func (Even) Allocate(tasks []Task, budget float64, seed int64) (Result, error) {
	if err := checkBatch(tasks, budget); err != nil {
		return Result{}, err
	}
	per := budget / float64(len(tasks))
	budgets := make([]float64, len(tasks))
	for i := range budgets {
		budgets[i] = per
	}
	return solve(tasks, budgets, seed)
}

// WeightedByPrior splits the budget proportionally to each task's prior
// entropy: a task the provider already believes at 95% needs less crowd
// evidence than a 50/50 one.
type WeightedByPrior struct{}

// Name implements Allocator.
func (WeightedByPrior) Name() string { return "prior-weighted" }

// Allocate implements Allocator.
func (WeightedByPrior) Allocate(tasks []Task, budget float64, seed int64) (Result, error) {
	if err := checkBatch(tasks, budget); err != nil {
		return Result{}, err
	}
	weights := make([]float64, len(tasks))
	var total float64
	for i, t := range tasks {
		weights[i] = entropy(t.Alpha)
		total += weights[i]
	}
	budgets := make([]float64, len(tasks))
	if total == 0 {
		// Every task is already decided by its prior; split evenly.
		for i := range budgets {
			budgets[i] = budget / float64(len(tasks))
		}
	} else {
		for i := range budgets {
			budgets[i] = budget * weights[i] / total
		}
	}
	return solve(tasks, budgets, seed)
}

func entropy(alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		return 0
	}
	return -alpha*math.Log2(alpha) - (1-alpha)*math.Log2(1-alpha)
}

// GreedyMarginal spends the budget in Steps equal increments, each going
// to the task with the best JQ improvement per increment. It evaluates
// candidate selections lazily and reuses the monotone budget–quality
// frontier: an increment can only help, never hurt.
type GreedyMarginal struct {
	// Steps is the number of budget increments; 0 selects 20.
	Steps int
}

// Name implements Allocator.
func (GreedyMarginal) Name() string { return "greedy-marginal" }

// Allocate implements Allocator.
func (g GreedyMarginal) Allocate(tasks []Task, budget float64, seed int64) (Result, error) {
	if err := checkBatch(tasks, budget); err != nil {
		return Result{}, err
	}
	steps := g.Steps
	if steps == 0 {
		steps = 20
	}
	increment := budget / float64(steps)

	budgets := make([]float64, len(tasks))
	current := make([]selection.Result, len(tasks))
	for i, t := range tasks {
		sel, err := selector(seed+int64(i)).Select(t.Pool, 0, t.Alpha)
		if err != nil {
			return Result{}, err
		}
		current[i] = sel
	}
	// Cache of the candidate "one more increment" selection per task.
	next := make([]*selection.Result, len(tasks))
	for step := 0; step < steps; step++ {
		bestTask, bestGain := -1, -1.0
		for i, t := range tasks {
			if next[i] == nil {
				sel, err := selector(seed+int64(i)).Select(t.Pool, budgets[i]+increment, t.Alpha)
				if err != nil {
					return Result{}, err
				}
				next[i] = &sel
			}
			if gain := next[i].JQ - current[i].JQ; gain > bestGain {
				bestGain = gain
				bestTask = i
			}
		}
		if bestGain <= 1e-12 {
			// One increment moved no frontier (it is smaller than any
			// task's next affordable worker). Bank it on the lowest-JQ
			// task whose frontier can still move — one whose budget does
			// not yet afford its whole pool — so the banked budget
			// accumulates until the next worker becomes affordable. A
			// saturated task's selection can never change, so banking
			// there would sink the rest of the purse for nothing; if
			// every task is saturated, stop spending entirely.
			bestTask = -1
			for i, t := range tasks {
				if budgets[i] >= t.Pool.TotalCost() {
					continue
				}
				if bestTask == -1 || current[i].JQ < current[bestTask].JQ {
					bestTask = i
				}
			}
			if bestTask == -1 {
				break
			}
		}
		budgets[bestTask] += increment
		current[bestTask] = *next[bestTask]
		next[bestTask] = nil // its frontier moved; recompute lazily
	}

	res := Result{Allocations: make([]Allocation, len(tasks))}
	var sumJQ float64
	for i, t := range tasks {
		res.Allocations[i] = Allocation{Task: t, Budget: budgets[i], Selection: current[i]}
		sumJQ += current[i].JQ
		res.SpentBudget += current[i].Cost
	}
	res.MeanJQ = sumJQ / float64(len(tasks))
	return res, nil
}
