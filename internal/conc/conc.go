// Package conc provides the bounded fan-out primitive shared by the
// search and experiments layers: a fixed number of worker goroutines
// draining an atomic index counter. Callers write results into
// index-addressed slots and reduce them in index order afterwards,
// which keeps parallel runs byte-identical to sequential ones.
package conc

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning the calls out over
// at most `workers` goroutines (inline when workers <= 1 or n <= 1).
// fn must confine its writes to state owned by index i.
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
