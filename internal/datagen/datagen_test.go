package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/voting"
	"repro/internal/worker"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.N != 50 || c.MeanQuality != 0.7 || c.QualityVariance != 0.05 ||
		c.MeanCost != 0.05 || c.CostStd != 0.2 {
		t.Fatalf("DefaultConfig = %+v, want the Section 6.1.1 parameters", c)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0, MeanQuality: 0.7},
		{N: 5, QualityVariance: -1},
		{N: 5, CostStd: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: no validation error for %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestPoolRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool, err := DefaultConfig().Pool(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 50 {
		t.Fatalf("len = %d, want 50", len(pool))
	}
	for _, w := range pool {
		if w.Quality < QualityLo || w.Quality > QualityHi {
			t.Fatalf("quality %v outside [%v, %v]", w.Quality, QualityLo, QualityHi)
		}
		if w.Cost < CostFloor {
			t.Fatalf("cost %v below floor", w.Cost)
		}
	}
	if err := pool.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMomentsApproximateConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	cfg.N = 20000
	pool, err := cfg.Pool(rng)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(pool.Qualities())
	// Truncation to [0.5, 0.99] shifts the mean of N(0.7, 0.05) up a bit.
	if s.Mean < 0.7 || s.Mean > 0.78 {
		t.Errorf("mean quality = %v, want within [0.70, 0.78]", s.Mean)
	}
}

func TestQualitiesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{N: 100, MeanQuality: 0.8, QualityVariance: 0.01}
	qs, err := cfg.Qualities(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 100 {
		t.Fatalf("len = %d, want 100", len(qs))
	}
	for _, q := range qs {
		if q < QualityLo || q > QualityHi {
			t.Fatalf("quality %v out of range", q)
		}
	}
	if _, err := (Config{N: -1}).Qualities(rng); err == nil {
		t.Fatal("no error for invalid config")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	cfg := DefaultConfig()
	p1, err := cfg.Pool(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cfg.Pool(rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("worker %d differs under identical seeds", i)
		}
	}
}

func TestVotesMatchQualities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := worker.UniformCost([]float64{0.9, 0.5}, 1)
	correct := [2]int{}
	const trials = 50000
	for i := 0; i < trials; i++ {
		vs := Votes(pool, voting.Yes, rng)
		for j, v := range vs {
			if v == voting.Yes {
				correct[j]++
			}
		}
	}
	got0 := float64(correct[0]) / trials
	got1 := float64(correct[1]) / trials
	if math.Abs(got0-0.9) > 0.01 {
		t.Errorf("worker 0 correct rate = %v, want ~0.9", got0)
	}
	if math.Abs(got1-0.5) > 0.01 {
		t.Errorf("worker 1 correct rate = %v, want ~0.5", got1)
	}
}

func TestTruthFollowsPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	zeros := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if Truth(0.3, rng) == voting.No {
			zeros++
		}
	}
	got := float64(zeros) / trials
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("P(t=0) = %v, want ~0.3", got)
	}
}

// Property: generated pools always validate, regardless of configuration
// corner cases within the legal parameter space.
func TestGeneratedPoolsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, nRaw, muRaw, varRaw uint8) bool {
		cfg := Config{
			N:               int(nRaw%100) + 1,
			MeanQuality:     float64(muRaw) / 255, // may be far outside [0.5, 0.99]
			QualityVariance: float64(varRaw) / 255,
			MeanCost:        0.05,
			CostStd:         0.2,
		}
		pool, err := cfg.Pool(rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return pool.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
