// Package datagen generates the synthetic worker pools and vote streams
// used by the paper's experiments (Section 6.1.1): worker qualities and
// costs are drawn from Gaussian distributions q_i ~ N(µ, σ²) and
// c_i ~ N(µ̂, σ̂²), with the paper's defaults µ=0.7, σ²=0.05, µ̂=0.05,
// σ̂=0.2.
//
// Qualities are truncated into [0.5, 0.99]: the paper assumes q ≥ 0.5
// without loss of generality (Section 3.3) and bounds φ(q) via q ≤ 0.99
// (Section 4.4). Costs are clamped to a small positive floor; the paper
// does not state its treatment of negative cost draws, and a zero/negative
// cost would make a worker unconditionally free.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stats"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Paper defaults (Section 6.1.1).
const (
	DefaultMeanQuality     = 0.7
	DefaultQualityVariance = 0.05
	DefaultMeanCost        = 0.05
	DefaultCostStd         = 0.2
	DefaultPoolSize        = 50

	// Quality truncation bounds (see the package comment).
	QualityLo = 0.5
	QualityHi = 0.99

	// CostFloor is the minimum worker cost after clamping. The paper does
	// not state its handling of negative draws from N(0.05, 0.2²) (≈40% of
	// the mass); clamping to a small positive floor keeps every worker
	// purchasable while preventing unboundedly large free juries.
	CostFloor = 0.01
)

// Config describes a synthetic pool distribution.
type Config struct {
	// N is the number of candidate workers.
	N int
	// MeanQuality and QualityVariance parameterize q_i ~ N(µ, σ²).
	// Note the paper reports the variance σ², not the deviation.
	MeanQuality     float64
	QualityVariance float64
	// MeanCost and CostStd parameterize c_i ~ N(µ̂, σ̂²); the paper
	// reports the deviation σ̂ here.
	MeanCost float64
	CostStd  float64
}

// DefaultConfig returns the paper's default synthetic setting.
func DefaultConfig() Config {
	return Config{
		N:               DefaultPoolSize,
		MeanQuality:     DefaultMeanQuality,
		QualityVariance: DefaultQualityVariance,
		MeanCost:        DefaultMeanCost,
		CostStd:         DefaultCostStd,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("datagen: N must be positive, got %d", c.N)
	}
	if c.QualityVariance < 0 {
		return fmt.Errorf("datagen: negative quality variance %v", c.QualityVariance)
	}
	if c.CostStd < 0 {
		return fmt.Errorf("datagen: negative cost deviation %v", c.CostStd)
	}
	return nil
}

// Pool draws a candidate pool from the configured distributions.
func (c Config) Pool(rng *rand.Rand) (worker.Pool, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sigma := math.Sqrt(c.QualityVariance)
	pool := make(worker.Pool, c.N)
	for i := range pool {
		q := stats.TruncatedNormal(rng, c.MeanQuality, sigma, QualityLo, QualityHi)
		cost := stats.Normal(rng, c.MeanCost, c.CostStd)
		if cost < CostFloor {
			cost = CostFloor
		}
		pool[i] = worker.Worker{ID: fmt.Sprintf("w%d", i), Quality: q, Cost: cost}
	}
	return pool, nil
}

// Qualities draws just the quality values (for experiments with uniform or
// irrelevant costs, e.g. the strategy comparisons of Figure 8).
func (c Config) Qualities(rng *rand.Rand) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sigma := math.Sqrt(c.QualityVariance)
	qs := make([]float64, c.N)
	for i := range qs {
		qs[i] = stats.TruncatedNormal(rng, c.MeanQuality, sigma, QualityLo, QualityHi)
	}
	return qs, nil
}

// Votes simulates one voting: every worker votes for truth with probability
// equal to their quality.
func Votes(pool worker.Pool, truth voting.Vote, rng *rand.Rand) []voting.Vote {
	votes := make([]voting.Vote, len(pool))
	for i, w := range pool {
		if rng.Float64() < w.Quality {
			votes[i] = truth
		} else {
			votes[i] = truth.Opposite()
		}
	}
	return votes
}

// Truth draws a ground-truth answer from the prior α = P(t = 0).
func Truth(alpha float64, rng *rand.Rand) voting.Vote {
	if rng.Float64() < alpha {
		return voting.No
	}
	return voting.Yes
}
