package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/online"
	"repro/internal/selection"
	"repro/internal/voting"
)

// Extension experiment: offline jury selection versus online
// (quality-sensitive) vote collection. The offline system spends its whole
// budget on a pre-committed jury; the online collector asks workers
// sequentially and stops as soon as the Bayesian posterior is confident.
// The sweep varies the confidence threshold and reports, per mode, the
// realized accuracy and the average money actually spent — quantifying how
// much budget sequential stopping saves at equal accuracy.

func init() {
	register("extension-online", extensionOnline)
}

func extensionOnline(cfg Config) (*Result, error) {
	thresholds := []float64{0.8, 0.85, 0.9, 0.95, 0.99}
	gen := datagen.DefaultConfig()
	gen.N = 20
	const budget = 0.5

	rows := make([][]float64, len(thresholds))
	for ti, threshold := range thresholds {
		var onAcc, onCost, offAcc, offCost float64
		trials := cfg.Repeats * 20
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ti)*7121 + int64(trial)*4099))
			pool, err := gen.Pool(rng)
			if err != nil {
				return nil, err
			}
			truth := datagen.Truth(0.5, rng)

			// Online: sequential collection until confident, same budget cap.
			res, err := online.Collect(pool, online.SimulatedSource{Pool: pool, Truth: truth, Rng: rng},
				online.EvidencePerCost{}, online.Config{Alpha: 0.5, Confidence: threshold, Budget: budget}, rng)
			if err != nil {
				return nil, err
			}
			if res.Decision == truth {
				onAcc++
			}
			onCost += res.Cost

			// Offline: commit the whole budget to the optimal jury.
			sel := selection.Auto{Objective: selection.BVObjective{NumBuckets: cfg.NumBuckets}, Seed: cfg.Seed + int64(trial)}
			jr, err := sel.Select(pool, budget, 0.5)
			if err != nil {
				return nil, err
			}
			votes := datagen.Votes(jr.Jury, truth, rng)
			dec, err := voting.Decide(voting.Bayesian{}, votes, jr.Jury.Qualities(), 0.5, nil)
			if err != nil {
				return nil, err
			}
			if dec == truth {
				offAcc++
			}
			offCost += jr.Cost
		}
		n := float64(trials)
		rows[ti] = []float64{onAcc / n, onCost / n, offAcc / n, offCost / n}
	}
	return &Result{
		ID:     "extension-online",
		Title:  "online sequential collection vs offline jury selection",
		XLabel: "confidence_threshold",
		Columns: []string{
			"online acc", "online cost", "offline acc", "offline cost",
		},
		X: thresholds, Y: rows,
		Notes: "N=20, B=0.5; online stops at the posterior threshold, " +
			"offline commits the full budget up front",
	}, nil
}
