package experiments

import (
	"math/rand"

	"repro/internal/multichoice"
)

// Extension experiment for Section 7: the Figure 8(b) analogue on
// three-label tasks with confusion-matrix workers. For growing jury sizes
// it compares Bayesian voting against plurality voting — once with
// symmetric (single-parameter) workers and once with biased workers whose
// off-diagonal structure BV can exploit, quantifying how much the
// confusion-matrix model buys over the scalar-quality view.

func init() {
	register("extension-multichoice", extensionMultichoice)
}

func extensionMultichoice(cfg Config) (*Result, error) {
	const labels = 3
	xs := sweep(1, 8, 1)
	cols := []string{"BV sym", "plurality sym", "BV biased", "plurality biased"}
	prior := multichoice.UniformPrior(labels)

	sums := make([][]float64, len(xs))
	for i := range sums {
		sums[i] = make([]float64, len(cols))
	}
	for rep := 0; rep < cfg.Repeats; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*60013))
		symmetric := make(multichoice.Pool, len(xs))
		biased := make(multichoice.Pool, len(xs))
		for i := range symmetric {
			q := 0.5 + 0.3*rng.Float64()
			m, err := multichoice.NewSymmetricConfusion(labels, q)
			if err != nil {
				return nil, err
			}
			symmetric[i] = multichoice.Worker{Confusion: m, Cost: 1}
			biased[i] = multichoice.Worker{Confusion: biasedMatrix(rng, q), Cost: 1}
		}
		for i, nRaw := range xs {
			n := int(nRaw)
			for j, cfgCase := range []struct {
				pool multichoice.Pool
				s    multichoice.Strategy
			}{
				{symmetric[:n], multichoice.Bayesian{}},
				{symmetric[:n], multichoice.Plurality{}},
				{biased[:n], multichoice.Bayesian{}},
				{biased[:n], multichoice.Plurality{}},
			} {
				v, err := multichoice.ExactJQ(cfgCase.pool, cfgCase.s, prior)
				if err != nil {
					return nil, err
				}
				sums[i][j] += v
			}
		}
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		row := make([]float64, len(cols))
		for j, s := range sums[i] {
			row[j] = s / float64(cfg.Repeats)
		}
		rows[i] = row
	}
	return &Result{
		ID: "extension-multichoice", Title: "ℓ=3 tasks: Bayesian vs plurality, symmetric vs biased workers",
		XLabel: "n", Columns: cols, X: xs, Y: rows,
		Notes: "biased workers mislabel one specific class; BV exploits the " +
			"confusion structure that plurality (and a scalar quality) cannot",
	}, nil
}

// biasedMatrix builds a worker with overall accuracy like q but whose
// errors on class 1 collapse onto class 2 — structured, exploitable bias.
func biasedMatrix(rng *rand.Rand, q float64) multichoice.ConfusionMatrix {
	off := (1 - q) / 2
	// Row 1's error mass goes almost entirely to label 2.
	return multichoice.ConfusionMatrix{
		{q, off, off},
		{0.05, q * 0.7, 1 - 0.05 - q*0.7},
		{off, off, q},
	}
}
