package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/selection"
	"repro/internal/stats"
	"repro/internal/worker"
)

// Extension experiment: sensitivity of jury selection to quality
// misestimation. The paper assumes qualities are known exactly; in
// practice they are estimates (see internal/quality). Here every worker's
// quality is perturbed by N(0, ε²) before selection, the selected jury is
// re-scored under the TRUE qualities, and the loss against
// oracle-knowledge selection is reported as ε grows.

func init() {
	register("extension-robustness", extensionRobustness)
}

func extensionRobustness(cfg Config) (*Result, error) {
	epsilons := []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20}
	gen := datagen.DefaultConfig()
	gen.N = 20
	const budget = 0.1 // tight: selection mistakes must matter

	rows := make([][]float64, len(epsilons))
	for ei, eps := range epsilons {
		var oracleSum, noisySum float64
		trials := cfg.Repeats * 10
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*70117))
			pool, err := gen.Pool(rng)
			if err != nil {
				return nil, err
			}
			perturbed := pool.Clone()
			// The perturbation RNG must differ per epsilon but the pool
			// must not, so oracle columns are comparable.
			prng := rand.New(rand.NewSource(cfg.Seed + int64(ei)*33391 + int64(trial)*70117))
			for i := range perturbed {
				q := perturbed[i].Quality + prng.NormFloat64()*eps
				perturbed[i].Quality = stats.Clamp(q, 0.5, 0.99)
			}
			oracle, err := selectTrueJQ(pool, pool, budget, cfg, int64(trial))
			if err != nil {
				return nil, err
			}
			noisy, err := selectTrueJQ(perturbed, pool, budget, cfg, int64(trial))
			if err != nil {
				return nil, err
			}
			oracleSum += oracle
			noisySum += noisy
		}
		n := float64(cfg.Repeats * 10)
		rows[ei] = []float64{oracleSum / n, noisySum / n, (oracleSum - noisySum) / n}
	}
	return &Result{
		ID: "extension-robustness", Title: "JSP sensitivity to worker-quality misestimation",
		XLabel:  "quality_noise_std",
		Columns: []string{"oracle JQ", "noisy-selection JQ", "JQ loss"},
		X:       epsilons, Y: rows,
		Notes: "N=20, B=0.1; juries selected with perturbed qualities, " +
			"re-scored under the true ones",
	}, nil
}

// selectTrueJQ selects a jury using believedPool's qualities and scores the
// chosen members under truePool's qualities.
func selectTrueJQ(believedPool, truePool worker.Pool, budget float64, cfg Config, seed int64) (float64, error) {
	sel := selection.Auto{
		Objective: selection.BVObjective{NumBuckets: cfg.NumBuckets},
		Seed:      cfg.Seed + seed,
	}
	res, err := sel.Select(believedPool, budget, 0.5)
	if err != nil {
		return 0, err
	}
	if len(res.Indices) == 0 {
		return 0.5, nil
	}
	est, err := jq.Estimate(truePool.Subset(res.Indices), 0.5, jq.Options{NumBuckets: cfg.NumBuckets})
	if err != nil {
		return 0, err
	}
	return est.JQ, nil
}
