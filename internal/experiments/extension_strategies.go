package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Extension experiment: Figure 8(a) widened to the paper's full Table 2
// taxonomy — every built-in strategy, deterministic and randomized,
// evaluated exactly on n=9 juries as the mean worker quality sweeps. The
// ordering the theory predicts: BV ≡ WMV(canonical) on top, MV ≡ HALF for
// odd n next, triadic consensus between RMV and MV, RBV pinned at ½.

func init() {
	register("extension-strategies", extensionStrategies)
}

func extensionStrategies(cfg Config) (*Result, error) {
	strategies := voting.All()
	cols := make([]string, len(strategies))
	for i, s := range strategies {
		cols[i] = s.Name()
	}
	xs := sweep(0.5, 0.95, 0.05)
	gen := datagen.DefaultConfig()
	gen.N = 9

	rows := make([][]float64, len(xs))
	for i, mu := range xs {
		gen.MeanQuality = mu
		sums := make([]float64, len(strategies))
		for rep := 0; rep < cfg.Repeats; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*9241 + int64(rep)*120011))
			qs, err := gen.Qualities(rng)
			if err != nil {
				return nil, err
			}
			pool := worker.UniformCost(qs, 1)
			for j, s := range strategies {
				v, err := jq.Exact(pool, s, 0.5)
				if err != nil {
					return nil, err
				}
				sums[j] += v
			}
		}
		row := make([]float64, len(strategies))
		for j, s := range sums {
			row[j] = s / float64(cfg.Repeats)
		}
		rows[i] = row
	}
	return &Result{
		ID: "extension-strategies", Title: "full Table 2 strategy taxonomy, exact JQ vs mean quality",
		XLabel: "mu", Columns: cols, X: xs, Y: rows,
		Notes: "n=9 (odd), uniform prior; BV/WMV coincide, MV/HALF coincide, RBV = 0.5",
	}, nil
}
