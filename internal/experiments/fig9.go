package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/stats"
	"repro/internal/worker"
)

// Figure 9: the JQ(J, BV, 0.5) computation itself. Panel (a) sweeps µ for
// several quality variances; (b) sweeps the bucket count and reports the
// approximation error against the exact JQ; (c) is the error histogram at
// numBuckets=50; (d) measures the estimator's runtime with and without the
// Algorithm 2 pruning as the jury grows to 500 workers.

func init() {
	register("fig9a", fig9a)
	register("fig9b", fig9b)
	register("fig9c", fig9c)
	register("fig9d", fig9d)
}

func fig9a(cfg Config) (*Result, error) {
	xs := sweep(0.5, 1.0, 0.05)
	variances := []float64{0.01, 0.03, 0.05, 0.10}
	cols := []string{"var=0.01", "var=0.03", "var=0.05", "var=0.10"}
	reps := cfg.Repeats
	vals := make([]float64, len(xs)*len(variances)*reps)
	if err := forEach(cfg.workers(), len(vals), func(idx int) error {
		rep := idx % reps
		j := (idx / reps) % len(variances)
		i := idx / (reps * len(variances))
		gen := datagen.Config{N: 11, MeanQuality: xs[i], QualityVariance: variances[j]}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*5501 + int64(j)*911 + int64(rep)*77347))
		qs, err := gen.Qualities(rng)
		if err != nil {
			return err
		}
		vals[idx], err = jq.ExactBV(worker.UniformCost(qs, 1), 0.5)
		return err
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		row := make([]float64, len(variances))
		for j := range variances {
			var sum float64
			for rep := 0; rep < reps; rep++ {
				sum += vals[(i*len(variances)+j)*reps+rep]
			}
			row[j] = sum / float64(reps)
		}
		rows[i] = row
	}
	return &Result{
		ID: "fig9a", Title: "JQ(J, BV, 0.5) varying µ for several quality variances",
		XLabel: "mu", Columns: cols, X: xs, Y: rows,
		Notes: "n=11; exact JQ",
	}, nil
}

func fig9b(cfg Config) (*Result, error) {
	xs := sweep(10, 200, 10)
	reps := cfg.Repeats
	gaps := make([]float64, len(xs)*reps)
	if err := forEach(cfg.workers(), len(gaps), func(j int) error {
		i, rep := j/reps, j%reps
		gen := datagen.DefaultConfig()
		gen.N = 11
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*40013))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		exact, err := jq.ExactBV(pool, 0.5)
		if err != nil {
			return err
		}
		approx, err := jq.Estimate(pool, 0.5, jq.Options{NumBuckets: int(xs[i])})
		if err != nil {
			return err
		}
		gaps[j] = exact - approx.JQ
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		var sumErr float64
		for rep := 0; rep < reps; rep++ {
			sumErr += gaps[i*reps+rep]
		}
		rows[i] = []float64{sumErr / float64(reps)}
	}
	return &Result{
		ID: "fig9b", Title: "approximation error JQ − JQ_hat, varying numBuckets",
		XLabel: "numBuckets", Columns: []string{"error"}, X: xs, Y: rows,
		Notes: "n=11; identical pools per bucket setting (same seeds)",
	}, nil
}

func fig9c(cfg Config) (*Result, error) {
	hist := stats.NewHistogram(0, 0.0001, 10) // errors in [0, 0.01%)
	trials := cfg.Repeats * 20
	gaps := make([]float64, trials)
	if err := forEach(cfg.workers(), trials, func(rep int) error {
		gen := datagen.DefaultConfig()
		gen.N = 11
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*65537))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		exact, err := jq.ExactBV(pool, 0.5)
		if err != nil {
			return err
		}
		approx, err := jq.Estimate(pool, 0.5, jq.Options{NumBuckets: cfg.NumBuckets})
		if err != nil {
			return err
		}
		gaps[rep] = exact - approx.JQ
		return nil
	}); err != nil {
		return nil, err
	}
	for _, gap := range gaps {
		hist.Add(gap)
	}
	xs := make([]float64, len(hist.Counts))
	rows := make([][]float64, len(hist.Counts))
	for i, c := range hist.Counts {
		xs[i] = hist.BinCenter(i)
		rows[i] = []float64{float64(c)}
	}
	return &Result{
		ID: "fig9c", Title: "histogram of JQ − JQ_hat at numBuckets=50",
		XLabel: "error_bin_center", Columns: []string{"frequency"}, X: xs, Y: rows,
		Notes: "n=11; " + fig9cOverflowNote(hist.Over, hist.Total()),
	}, nil
}

func fig9cOverflowNote(over, total int) string {
	if over == 0 {
		return "no error exceeded 0.01% (matches the paper's maximal error)"
	}
	return fmt.Sprintf("errors above 0.01%%: %d of %d", over, total)
}

// fig9d measures wall-clock seconds per estimate, so its repeats stay
// sequential regardless of Config.Parallel: concurrent estimates would
// contend for cores and inflate every measured duration.
func fig9d(cfg Config) (*Result, error) {
	xs := sweep(100, 500, 100)
	rows := make([][]float64, len(xs))
	for i, nRaw := range xs {
		gen := datagen.DefaultConfig()
		gen.N = int(nRaw)
		var withP, withoutP time.Duration
		for rep := 0; rep < cfg.Repeats; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*2221 + int64(rep)*13007))
			pool, err := gen.Pool(rng)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := jq.Estimate(pool, 0.5, jq.Options{NumBuckets: cfg.NumBuckets}); err != nil {
				return nil, err
			}
			withP += time.Since(start)

			start = time.Now()
			if _, err := jq.Estimate(pool, 0.5, jq.Options{NumBuckets: cfg.NumBuckets, DisablePruning: true}); err != nil {
				return nil, err
			}
			withoutP += time.Since(start)
		}
		rows[i] = []float64{
			withP.Seconds() / float64(cfg.Repeats),
			withoutP.Seconds() / float64(cfg.Repeats),
		}
	}
	return &Result{
		ID: "fig9d", Title: "JQ estimation runtime with and without pruning, varying jury size",
		XLabel: "n", Columns: []string{"with pruning (s)", "without pruning (s)"}, X: xs, Y: rows,
		Notes: "numBuckets=50; the paper reports ~1s vs ~2.5s at n=500 in Python",
	}, nil
}
