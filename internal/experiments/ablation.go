package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/selection"
)

// Ablations for the design choices called out in DESIGN.md, beyond the
// paper's own figures:
//
//   - ablation-selectors: annealing vs the greedy/top-k baselines vs the
//     exhaustive optimum, isolating how much the Algorithm 3 search buys
//     over cheap heuristics;
//   - ablation-buckets: solution quality of JSP when the *search* runs on
//     coarser JQ approximations (the estimate's resolution/speed trade-off
//     inside the annealing loop).

func init() {
	register("ablation-selectors", ablationSelectors)
	register("ablation-buckets", ablationBuckets)
}

func ablationSelectors(cfg Config) (*Result, error) {
	gen := datagen.DefaultConfig()
	gen.N = 14 // small enough for the exhaustive reference
	budgets := sweep(0.1, 0.5, 0.1)
	cols := []string{"exhaustive", "annealing", "greedy-quality", "greedy-ratio", "topk-5", "knapsack"}
	reps := cfg.Repeats
	vals := make([][]float64, len(budgets)*reps)
	if err := forEach(cfg.workers(), len(vals), func(j int) error {
		i, rep := j/reps, j%reps
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*4409 + int64(rep)*9601))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		selectors := []selection.Selector{
			selection.Exhaustive{Objective: selection.BVExactObjective{}},
			selection.Annealing{Objective: selection.BVExactObjective{}, Seed: cfg.Seed + int64(rep)},
			selection.GreedyQuality{Objective: selection.BVExactObjective{}},
			selection.GreedyRatio{Objective: selection.BVExactObjective{}},
			selection.TopK{Objective: selection.BVExactObjective{}, K: 5},
			selection.KnapsackSurrogate{Objective: selection.BVExactObjective{}},
		}
		jqs := make([]float64, len(selectors))
		for k, sel := range selectors {
			res, err := sel.Select(pool, budgets[i], 0.5)
			if err != nil {
				return err
			}
			jqs[k] = res.JQ
		}
		vals[j] = jqs
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(budgets))
	for i := range budgets {
		row := make([]float64, len(cols))
		for rep := 0; rep < reps; rep++ {
			for k, v := range vals[i*reps+rep] {
				row[k] += v
			}
		}
		for k := range row {
			row[k] /= float64(reps)
		}
		rows[i] = row
	}
	return &Result{
		ID: "ablation-selectors", Title: "selector ablation: mean exact JQ of the returned jury",
		XLabel: "budget", Columns: cols, X: budgets, Y: rows,
		Notes: "N=14; all selectors score with exact BV JQ",
	}, nil
}

func ablationBuckets(cfg Config) (*Result, error) {
	gen := datagen.DefaultConfig()
	gen.N = 30
	bucketSettings := []float64{5, 10, 25, 50, 100, 200}
	reps := cfg.Repeats
	vals := make([]float64, len(bucketSettings)*reps)
	if err := forEach(cfg.workers(), len(vals), func(j int) error {
		i, rep := j/reps, j%reps
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*20021))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		sel := selection.Annealing{
			Objective: selection.BVObjective{NumBuckets: int(bucketSettings[i])},
			Seed:      cfg.Seed + int64(rep),
		}
		res, err := sel.Select(pool, 0.3, 0.5)
		if err != nil {
			return err
		}
		// Re-score the returned jury at high resolution so settings
		// are comparable.
		final, err := jq.Estimate(res.Jury, 0.5, jq.Options{NumBuckets: 400})
		if err != nil {
			return err
		}
		vals[j] = final.JQ
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(bucketSettings))
	for i := range bucketSettings {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			sum += vals[i*reps+rep]
		}
		rows[i] = []float64{sum / float64(reps)}
	}
	return &Result{
		ID: "ablation-buckets", Title: "bucket-resolution ablation: JSP quality when searching on coarse estimates",
		XLabel: "numBuckets", Columns: []string{"JQ(jury) @400 buckets"}, X: bucketSettings, Y: rows,
		Notes: "N=30, B=0.3; juries found with coarse estimates, re-scored finely",
	}, nil
}
