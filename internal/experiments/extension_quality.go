package experiments

import (
	"math/rand"

	"repro/internal/quality"
	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Extension experiment (beyond the paper's figures): how sensitive is the
// end-to-end system to the *source* of the worker qualities it assumes
// known? The paper takes qualities as given (Section 2.1) and estimates
// them from ground truth in Section 6.2; this experiment compares four
// sources on the simulated AMT corpus:
//
//   - oracle: the simulator's latent qualities (unobservable in practice);
//   - empirical: fraction correct against full ground truth (the paper's
//     Section 6.2 method);
//   - golden: fraction correct on a 10% golden subset (CDAS-style [25]);
//   - em: Dawid–Skene EM with no ground truth at all [1,18].
//
// For each source, juries are selected per question under a budget using
// those qualities, their recorded votes are aggregated with BV, and the
// realized accuracy against the truth is reported.

func init() {
	register("extension-quality-sources", extensionQualitySources)
}

func extensionQualitySources(cfg Config) (*Result, error) {
	ds, err := amtDataset(cfg.Seed)
	if err != nil {
		return nil, err
	}
	questions := cfg.Questions
	if questions > len(ds.Tasks) {
		questions = len(ds.Tasks)
	}

	qd := ds.QualityDataset()
	goldenQ, err := quality.Golden(qd, ds.GoldenTruths(len(ds.Tasks)/10))
	if err != nil {
		return nil, err
	}
	em, err := quality.EM(qd, quality.EMOptions{FixedPrior: 0.5})
	if err != nil {
		return nil, err
	}

	sources := []struct {
		name string
		of   func(workerID int) float64
	}{
		{"oracle", func(w int) float64 { return ds.Workers[w].TrueQuality }},
		{"empirical", func(w int) float64 { return ds.Workers[w].EmpiricalQuality() }},
		{"golden-10%", func(w int) float64 { return goldenQ[w] }},
		{"em", func(w int) float64 { return em.Qualities[w] }},
	}

	// Tight budgets keep juries small (1–5 workers), the regime where the
	// precision of the quality source actually changes who gets picked.
	budgets := []float64{0.015, 0.03, 0.05, 0.1}
	cols := make([]string, len(sources))
	for i, s := range sources {
		cols[i] = s.name
	}
	rows := make([][]float64, len(budgets))
	for bi, budget := range budgets {
		row := make([]float64, len(sources))
		for si, src := range sources {
			correct := 0
			for q := 0; q < questions; q++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(bi)*3557 + int64(q)*9173))
				task := ds.Tasks[q]
				// Candidate pool: the question's answerers, with qualities
				// from this source and synthetic costs.
				pool := make(worker.Pool, len(task.Answers))
				for i, ans := range task.Answers {
					cost := rng.NormFloat64()*0.2 + 0.05
					if cost < 0.01 {
						cost = 0.01
					}
					pool[i] = worker.Worker{
						ID:      "w",
						Quality: src.of(ans.WorkerID),
						Cost:    cost,
					}
				}
				sel := selection.Auto{
					Objective: selection.BVObjective{NumBuckets: cfg.NumBuckets},
					Seed:      cfg.Seed + int64(q),
				}
				res, err := sel.Select(pool, budget, 0.5)
				if err != nil {
					return nil, err
				}
				// Aggregate the selected members' recorded votes with BV.
				votes := make([]voting.Vote, len(res.Indices))
				quals := make([]float64, len(res.Indices))
				for i, idx := range res.Indices {
					votes[i] = task.Answers[idx].Vote
					quals[i] = pool[idx].Quality
				}
				if len(votes) == 0 {
					continue
				}
				dec, err := voting.Decide(voting.Bayesian{}, votes, quals, 0.5, nil)
				if err != nil {
					return nil, err
				}
				if dec == task.Truth {
					correct++
				}
			}
			row[si] = float64(correct) / float64(questions)
		}
		rows[bi] = row
	}
	return &Result{
		ID: "extension-quality-sources", Title: "realized accuracy by worker-quality source",
		XLabel: "budget", Columns: cols, X: budgets, Y: rows,
		Notes: "simulated AMT corpus; juries selected with each quality source, " +
			"votes aggregated with BV, accuracy against ground truth",
	}, nil
}
