package experiments

import (
	"repro/internal/core"
	"repro/internal/selection"
	"repro/internal/worker"
)

// Figure 1: the running example — the budget–quality table the Optimal
// Jury Selection System presents to the task provider for the seven-worker
// pool A–G.

func init() {
	register("fig1", fig1)
}

// Figure1Pool returns the paper's seven example workers.
func Figure1Pool() worker.Pool {
	return worker.Pool{
		{ID: "A", Quality: 0.77, Cost: 9},
		{ID: "B", Quality: 0.70, Cost: 5},
		{ID: "C", Quality: 0.80, Cost: 6},
		{ID: "D", Quality: 0.65, Cost: 7},
		{ID: "E", Quality: 0.60, Cost: 5},
		{ID: "F", Quality: 0.60, Cost: 2},
		{ID: "G", Quality: 0.75, Cost: 3},
	}
}

func fig1(cfg Config) (*Result, error) {
	sys := &core.System{
		Selector: selection.Exhaustive{Objective: selection.BVExactObjective{}},
		Alpha:    0.5,
	}
	budgets := []float64{5, 10, 15, 20}
	rows, err := sys.BudgetQualityTable(Figure1Pool(), budgets)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(rows))
	ys := make([][]float64, len(rows))
	juries := ""
	for i, row := range rows {
		xs[i] = row.Budget
		ys[i] = []float64{row.JQ, row.RequiredBudget}
		if i > 0 {
			juries += "; "
		}
		juries += table1Jury(row.Jury)
	}
	return &Result{
		ID: "fig1", Title: "budget–quality table for the example pool A–G",
		XLabel: "budget", Columns: []string{"JQ", "required"}, X: xs, Y: ys,
		Notes: "juries: " + juries +
			" (paper: {F,G} 75%, {C,G} 80%, {B,C,G} 84.5%, {A,C,F,G} 86.95%; " +
			"JQ-equal cheaper juries are returned where BV ties)",
	}, nil
}

func table1Jury(jury worker.Pool) string {
	out := "{"
	for i, w := range jury {
		if i > 0 {
			out += ","
		}
		out += w.ID
	}
	return out + "}"
}
