package experiments

import (
	"math/rand"
	"time"

	"repro/internal/datagen"
	"repro/internal/selection"
)

// Figure 7: quality and efficiency of the Algorithm 3 annealing heuristic.
// Panel (a) compares the annealed jury's exact JQ against the true optimum
// found by exhaustive search on N=11 pools; panel (b) measures annealing
// wall-clock time as the pool grows to 500 candidates.

func init() {
	register("fig7a", fig7a)
	register("fig7b", fig7b)
}

func fig7a(cfg Config) (*Result, error) {
	xs := sweep(0.05, 0.5, 0.05)
	reps := cfg.Repeats
	opts := make([]float64, len(xs)*reps)
	heurs := make([]float64, len(xs)*reps)
	if err := forEach(cfg.workers(), len(opts), func(j int) error {
		i, rep := j/reps, j%reps
		gen := datagen.DefaultConfig()
		gen.N = 11
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729 + int64(rep)*31337))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		exact, err := selection.Exhaustive{Objective: selection.BVExactObjective{}}.
			Select(pool, xs[i], 0.5)
		if err != nil {
			return err
		}
		heur, err := selection.Annealing{Objective: selection.BVExactObjective{}, Seed: cfg.Seed + int64(rep)}.
			Select(pool, xs[i], 0.5)
		if err != nil {
			return err
		}
		opts[j], heurs[j] = exact.JQ, heur.JQ
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		var sumOpt, sumHeur float64
		for rep := 0; rep < reps; rep++ {
			sumOpt += opts[i*reps+rep]
			sumHeur += heurs[i*reps+rep]
		}
		rows[i] = []float64{sumOpt / float64(reps), sumHeur / float64(reps)}
	}
	return &Result{
		ID: "fig7a", Title: "annealing vs optimal jury quality, varying budget",
		XLabel: "budget", Columns: []string{"JQ(J*)", "JQ(J_hat)"}, X: xs, Y: rows,
		Notes: "N=11; optimum by exhaustive enumeration; both scored with exact BV JQ",
	}, nil
}

// fig7b measures wall-clock seconds per solve, so its repeats stay
// sequential regardless of Config.Parallel: concurrent solves would
// contend for cores and inflate every measured duration.
func fig7b(cfg Config) (*Result, error) {
	ns := sweep(100, 500, 100)
	budgets := []float64{0.05, 0.20, 0.35, 0.50}
	rows := make([][]float64, len(ns))
	for i, nRaw := range ns {
		gen := datagen.DefaultConfig()
		gen.N = int(nRaw)
		row := make([]float64, len(budgets))
		for j, budget := range budgets {
			var total time.Duration
			for rep := 0; rep < cfg.Repeats; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7907 + int64(j)*6007 + int64(rep)*1217))
				pool, err := gen.Pool(rng)
				if err != nil {
					return nil, err
				}
				sel := selection.Annealing{
					Objective: selection.BVObjective{NumBuckets: cfg.NumBuckets},
					Seed:      cfg.Seed + int64(rep),
				}
				start := time.Now()
				if _, err := sel.Select(pool, budget, 0.5); err != nil {
					return nil, err
				}
				total += time.Since(start)
			}
			row[j] = total.Seconds() / float64(cfg.Repeats)
		}
		rows[i] = row
	}
	return &Result{
		ID: "fig7b", Title: "annealing runtime, varying candidate pool size",
		XLabel: "N", Columns: []string{"B=0.05 (s)", "B=0.20 (s)", "B=0.35 (s)", "B=0.50 (s)"},
		X: ns, Y: rows,
		Notes: "seconds per JSP solve; the paper reports <2.5s at N=500 in Python",
	}, nil
}
