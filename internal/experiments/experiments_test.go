package experiments

import (
	"strings"
	"testing"
)

// tinyConfig keeps every experiment fast enough for the unit-test suite.
func tinyConfig() Config {
	return Config{Seed: 7, Repeats: 2, Trials: 20, Questions: 8, NumBuckets: 50}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-buckets", "ablation-selectors",
		"extension-batch",
		"extension-multichoice", "extension-online", "extension-quality-sources",
		"extension-robustness", "extension-strategies",
		"fig1", "fig10a", "fig10b", "fig10c", "fig10d",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b",
		"fig8a", "fig8b",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"table3",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Fatal("no error for unknown artifact")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Repeats: 0, Trials: 1, Questions: 1, NumBuckets: 1},
		{Repeats: 1, Trials: 0, Questions: 1, NumBuckets: 1},
		{Repeats: 1, Trials: 1, Questions: 0, NumBuckets: 1},
		{Repeats: 1, Trials: 1, Questions: 1, NumBuckets: 0},
	}
	for i, cfg := range bad {
		if _, err := Run("fig1", cfg); err == nil {
			t.Errorf("config %d: no validation error", i)
		}
	}
}

// Shape invariants every experiment must satisfy.
func TestAllExperimentsShape(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Errorf("ID = %q, want %q", res.ID, id)
			}
			if len(res.X) == 0 || len(res.Y) != len(res.X) {
				t.Fatalf("X/Y shape: %d/%d", len(res.X), len(res.Y))
			}
			for i, row := range res.Y {
				if len(row) != len(res.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(res.Columns))
				}
			}
			tbl := res.Table()
			if !strings.Contains(tbl.String(), id) {
				t.Error("rendered table does not mention the artifact ID")
			}
		})
	}
}

func TestFig1ReproducesPaperQualities(t *testing.T) {
	res, err := Run("fig1", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantJQ := []float64{0.75, 0.80, 0.845, 0.8695}
	for i, want := range wantJQ {
		if diff := res.Y[i][0] - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("budget %v: JQ = %v, want %v", res.X[i], res.Y[i][0], want)
		}
	}
}

func TestFig6aOPTJSDominates(t *testing.T) {
	res, err := Run("fig6a", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		mvjs, optjs := res.Y[i][0], res.Y[i][1]
		if optjs < mvjs-0.01 { // small slack: independent SA searches
			t.Errorf("mu=%v: OPTJS %v below MVJS %v", res.X[i], optjs, mvjs)
		}
	}
}

func TestFig7aHeuristicBounded(t *testing.T) {
	res, err := Run("fig7a", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		opt, heur := res.Y[i][0], res.Y[i][1]
		if heur > opt+1e-9 {
			t.Errorf("B=%v: heuristic %v beats the optimum %v", res.X[i], heur, opt)
		}
		if opt-heur > 0.05 {
			t.Errorf("B=%v: gap %v too large", res.X[i], opt-heur)
		}
	}
}

func TestFig8BVDominatesAndRBVIsHalf(t *testing.T) {
	res, err := Run("fig8a", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: MV, BV, RBV, RMV.
	for i := range res.X {
		mv, bv, rbv, rmv := res.Y[i][0], res.Y[i][1], res.Y[i][2], res.Y[i][3]
		if bv < mv-1e-9 || bv < rmv-1e-9 || bv < rbv-1e-9 {
			t.Errorf("mu=%v: BV %v not dominant (MV %v, RBV %v, RMV %v)", res.X[i], bv, mv, rbv, rmv)
		}
		if rbv > 0.5+1e-9 || rbv < 0.5-1e-9 {
			t.Errorf("mu=%v: RBV = %v, want 0.5", res.X[i], rbv)
		}
		if rmv > mv+1e-9 {
			t.Errorf("mu=%v: RMV %v beats MV %v (paper: never for mu>=0.5)", res.X[i], rmv, mv)
		}
	}
}

func TestFig8bBVGrowsWithJurySize(t *testing.T) {
	res, err := Run("fig8b", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Y[0][1], res.Y[len(res.Y)-1][1]
	if last < first {
		t.Fatalf("BV JQ at n=11 (%v) below n=1 (%v)", last, first)
	}
}

func TestFig9bErrorShrinksWithBuckets(t *testing.T) {
	res, err := Run("fig9b", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Y[0][0], res.Y[len(res.Y)-1][0]
	if last > first+1e-12 {
		t.Fatalf("error grew with buckets: %v -> %v", first, last)
	}
	for i, row := range res.Y {
		if row[0] < -1e-9 {
			t.Errorf("numBuckets=%v: negative error %v (estimate exceeded exact)", res.X[i], row[0])
		}
	}
}

func TestFig9cErrorsTiny(t *testing.T) {
	res, err := Run("fig9c", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "no error exceeded") {
		t.Errorf("Notes = %q, expected all errors below 0.01%%", res.Notes)
	}
}

func TestTable3MassInLowestRange(t *testing.T) {
	res, err := Run("table3", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var total, lowest float64
	for i, row := range res.Y {
		total += row[0]
		if i == 0 {
			lowest = row[0]
		}
	}
	if total == 0 {
		t.Fatal("no trials recorded")
	}
	if lowest/total < 0.5 {
		t.Fatalf("only %v of %v gaps in [0, 0.01]%%; paper reports >90%%", lowest, total)
	}
	// Paper: zero gaps above 3 percentage points; tolerate at most 1% of
	// trials there for these unsmoothed small-sample runs.
	if over := res.Y[len(res.Y)-1][0]; over > 0.01*total {
		t.Fatalf("%v of %v gaps above 3 percentage points", over, total)
	}
}

func TestFig10dPredictionTracksAccuracy(t *testing.T) {
	cfg := tinyConfig()
	cfg.Questions = 60
	res, err := Run("fig10d", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		accuracy, avgJQ := res.Y[i][0], res.Y[i][1]
		if diff := accuracy - avgJQ; diff > 0.15 || diff < -0.15 {
			t.Errorf("z=%v: accuracy %v vs JQ %v diverge", res.X[i], accuracy, avgJQ)
		}
	}
}

func TestFig10aOPTJSDominates(t *testing.T) {
	cfg := tinyConfig()
	res, err := Run("fig10a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if res.Y[i][1] < res.Y[i][0]-0.02 {
			t.Errorf("B=%v: OPTJS %v well below MVJS %v", res.X[i], res.Y[i][1], res.Y[i][0])
		}
	}
}

func TestAblationSelectorsOrdering(t *testing.T) {
	res, err := Run("ablation-selectors", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		exhaustive := res.Y[i][0]
		for j := 1; j < len(res.Columns); j++ {
			if res.Y[i][j] > exhaustive+1e-9 {
				t.Errorf("B=%v: %s (%v) beats exhaustive (%v)",
					res.X[i], res.Columns[j], res.Y[i][j], exhaustive)
			}
		}
	}
}

func TestExtensionQualitySourcesOrdering(t *testing.T) {
	cfg := tinyConfig()
	cfg.Questions = 60
	res, err := Run("extension-quality-sources", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: oracle, empirical, golden-10%, em. The oracle should not be
	// substantially beaten by any estimated source.
	for i := range res.X {
		oracle := res.Y[i][0]
		for j := 1; j < len(res.Columns); j++ {
			if res.Y[i][j] > oracle+0.08 {
				t.Errorf("B=%v: %s (%v) beats oracle (%v) by too much",
					res.X[i], res.Columns[j], res.Y[i][j], oracle)
			}
		}
		// Everything should be far above coin-flipping.
		for j := range res.Columns {
			if res.Y[i][j] < 0.6 {
				t.Errorf("B=%v: %s accuracy %v below 0.6", res.X[i], res.Columns[j], res.Y[i][j])
			}
		}
	}
}

func TestExtensionMultichoiceBVDominates(t *testing.T) {
	res, err := Run("extension-multichoice", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: BV sym, plurality sym, BV biased, plurality biased.
	for i := range res.X {
		if res.Y[i][0] < res.Y[i][1]-1e-9 {
			t.Errorf("n=%v: symmetric BV %v below plurality %v", res.X[i], res.Y[i][0], res.Y[i][1])
		}
		if res.Y[i][2] < res.Y[i][3]-1e-9 {
			t.Errorf("n=%v: biased BV %v below plurality %v", res.X[i], res.Y[i][2], res.Y[i][3])
		}
	}
	// The BV-over-plurality gap should be wider on biased workers than on
	// symmetric ones by the largest jury size.
	last := len(res.X) - 1
	symGap := res.Y[last][0] - res.Y[last][1]
	biasGap := res.Y[last][2] - res.Y[last][3]
	if biasGap < symGap-0.01 {
		t.Errorf("biased-worker gap %v not wider than symmetric gap %v", biasGap, symGap)
	}
}

func TestExtensionStrategiesOrdering(t *testing.T) {
	res, err := Run("extension-strategies", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for j, name := range res.Columns {
		col[name] = j
	}
	for i := range res.X {
		row := res.Y[i]
		bv, wmv := row[col["BV"]], row[col["WMV"]]
		mv, half := row[col["MV"]], row[col["HALF"]]
		rbv, triadic, rmv := row[col["RBV"]], row[col["TRIADIC"]], row[col["RMV"]]
		if diff := bv - wmv; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("mu=%v: BV %v != canonical WMV %v", res.X[i], bv, wmv)
		}
		if diff := mv - half; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("mu=%v: MV %v != HALF %v on odd juries", res.X[i], mv, half)
		}
		if rbv > 0.5+1e-9 || rbv < 0.5-1e-9 {
			t.Errorf("mu=%v: RBV = %v", res.X[i], rbv)
		}
		if triadic < rmv-1e-9 || triadic > mv+1e-9 {
			t.Errorf("mu=%v: triadic %v outside [RMV %v, MV %v]", res.X[i], triadic, rmv, mv)
		}
		for _, j := range col {
			if row[j] > bv+1e-9 {
				t.Errorf("mu=%v: %s (%v) beats BV (%v)", res.X[i], res.Columns[j], row[j], bv)
			}
		}
	}
}

func TestExtensionBatchGreedyCompetitive(t *testing.T) {
	res, err := Run("extension-batch", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: even, prior-weighted, greedy-marginal. Greedy should never
	// be substantially worse than the even split.
	for i := range res.X {
		even, greedy := res.Y[i][0], res.Y[i][2]
		if greedy < even-0.03 {
			t.Errorf("B=%v: greedy %v well below even %v", res.X[i], greedy, even)
		}
	}
	// Mean JQ grows with the global budget under every allocator.
	for j := range res.Columns {
		if res.Y[len(res.Y)-1][j] < res.Y[0][j]-0.01 {
			t.Errorf("%s: JQ fell with budget: %v -> %v",
				res.Columns[j], res.Y[0][j], res.Y[len(res.Y)-1][j])
		}
	}
}

func TestExtensionRobustnessLossGrowsWithNoise(t *testing.T) {
	res, err := Run("extension-robustness", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zero noise ⇒ (near-)zero loss; the largest noise should lose more
	// than the smallest.
	if loss0 := res.Y[0][2]; loss0 > 0.005 {
		t.Errorf("loss at eps=0 is %v, want ≈0", loss0)
	}
	first, last := res.Y[0][2], res.Y[len(res.Y)-1][2]
	if last < first {
		t.Errorf("loss fell with noise: %v -> %v", first, last)
	}
	for i := range res.X {
		if res.Y[i][1] > res.Y[i][0]+0.005 {
			t.Errorf("eps=%v: noisy selection (%v) beats oracle (%v)",
				res.X[i], res.Y[i][1], res.Y[i][0])
		}
	}
}

func TestExtensionOnlineSavesBudget(t *testing.T) {
	res, err := Run("extension-online", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		onAcc, onCost, offAcc, offCost := res.Y[i][0], res.Y[i][1], res.Y[i][2], res.Y[i][3]
		if onCost > offCost+1e-9 {
			t.Errorf("threshold %v: online cost %v above offline %v", res.X[i], onCost, offCost)
		}
		if onAcc < 0.6 || offAcc < 0.6 {
			t.Errorf("threshold %v: accuracies %v/%v too low", res.X[i], onAcc, offAcc)
		}
	}
	// Higher thresholds should not reduce online accuracy drastically, and
	// cost should grow with the threshold.
	firstCost, lastCost := res.Y[0][1], res.Y[len(res.Y)-1][1]
	if lastCost < firstCost {
		t.Errorf("online cost fell as threshold rose: %v -> %v", firstCost, lastCost)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is covered per-artifact above")
	}
	results, err := RunAll(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("results = %d, want %d", len(results), len(IDs()))
	}
}

func TestResultTableRendersErrorBars(t *testing.T) {
	r := &Result{
		ID: "demo", Title: "t", XLabel: "x", Columns: []string{"a"},
		X: []float64{1}, Y: [][]float64{{0.5}}, YErr: [][]float64{{0.01}},
	}
	out := r.Table().String()
	if !strings.Contains(out, "0.5±0.01") {
		t.Fatalf("table output missing error bar:\n%s", out)
	}
}

func TestResultDat(t *testing.T) {
	r := &Result{
		ID: "demo", Title: "t", XLabel: "x", Columns: []string{"a", "b"},
		X: []float64{1, 2}, Y: [][]float64{{0.5, 0.6}, {0.7, 0.8}},
	}
	got := r.Dat()
	want := "# demo — t\n# x a b\n1 0.5 0.6\n2 0.7 0.8\n"
	if got != want {
		t.Fatalf("Dat = %q, want %q", got, want)
	}
	// With error columns.
	r.YErr = [][]float64{{0.1, 0.1}, {0.2, 0.2}}
	got = r.Dat()
	if !strings.Contains(got, "a a_err b b_err") || !strings.Contains(got, "1 0.5 0.1 0.6 0.1") {
		t.Fatalf("Dat with errors = %q", got)
	}
}
