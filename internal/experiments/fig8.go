package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Figure 8: jury quality of four voting strategies — MV, BV, RBV, RMV —
// computed exactly by enumeration on juries of up to 11 workers. Panel (a)
// sweeps the mean worker quality µ at n=11; panel (b) sweeps the jury size
// n at µ=0.7. The paper's finding: BV dominates everywhere, RBV is pinned
// at 50%, and RMV never beats MV.

func init() {
	register("fig8a", fig8a)
	register("fig8b", fig8b)
}

var fig8Strategies = []voting.Strategy{
	voting.Majority{},
	voting.Bayesian{},
	voting.RandomBallot{},
	voting.RandomizedMajority{},
}

func fig8Columns() []string {
	cols := make([]string, len(fig8Strategies))
	for i, s := range fig8Strategies {
		cols[i] = s.Name()
	}
	return cols
}

// strategyJQs computes the exact JQ of each Figure 8 strategy on a jury.
func strategyJQs(jury worker.Pool) ([]float64, error) {
	out := make([]float64, len(fig8Strategies))
	for i, s := range fig8Strategies {
		v, err := jq.Exact(jury, s, 0.5)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func fig8a(cfg Config) (*Result, error) {
	xs := sweep(0.5, 1.0, 0.05)
	rows := make([][]float64, len(xs))
	for i, mu := range xs {
		gen := datagen.DefaultConfig()
		gen.N = 11
		gen.MeanQuality = mu
		sums := make([]float64, len(fig8Strategies))
		for rep := 0; rep < cfg.Repeats; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7793 + int64(rep)*104003))
			qs, err := gen.Qualities(rng)
			if err != nil {
				return nil, err
			}
			vals, err := strategyJQs(worker.UniformCost(qs, 1))
			if err != nil {
				return nil, err
			}
			for j, v := range vals {
				sums[j] += v
			}
		}
		row := make([]float64, len(sums))
		for j, s := range sums {
			row[j] = s / float64(cfg.Repeats)
		}
		rows[i] = row
	}
	return &Result{
		ID: "fig8a", Title: "JQ of voting strategies, varying mean quality µ",
		XLabel: "mu", Columns: fig8Columns(), X: xs, Y: rows,
		Notes: "n=11; exact JQ by enumeration",
	}, nil
}

func fig8b(cfg Config) (*Result, error) {
	xs := sweep(1, 11, 1)
	// Draw one 11-worker pool per repeat and evaluate its size-n prefixes,
	// so each curve grows a fixed jury exactly as the paper's panel does.
	gen := datagen.DefaultConfig()
	gen.N = 11
	sums := make([][]float64, len(xs))
	for i := range sums {
		sums[i] = make([]float64, len(fig8Strategies))
	}
	for rep := 0; rep < cfg.Repeats; rep++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*101117))
		qs, err := gen.Qualities(rng)
		if err != nil {
			return nil, err
		}
		for i, nRaw := range xs {
			vals, err := strategyJQs(worker.UniformCost(qs[:int(nRaw)], 1))
			if err != nil {
				return nil, err
			}
			for j, v := range vals {
				sums[i][j] += v
			}
		}
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		row := make([]float64, len(fig8Strategies))
		for j, s := range sums[i] {
			row[j] = s / float64(cfg.Repeats)
		}
		rows[i] = row
	}
	return &Result{
		ID: "fig8b", Title: "JQ of voting strategies, varying jury size n",
		XLabel: "n", Columns: fig8Columns(), X: xs, Y: rows,
		Notes: "mu=0.7; exact JQ by enumeration",
	}, nil
}
