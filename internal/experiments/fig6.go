package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/jq"
	"repro/internal/selection"
	"repro/internal/stats"
	"repro/internal/worker"
)

// Figure 6: end-to-end comparison of OPTJS against the MVJS baseline on
// synthetic pools. Each panel sweeps one parameter of the Section 6.1.1
// setting (µ, B, N, σ̂) and reports the mean jury quality of the jury each
// system returns, scored under that system's own voting strategy — MV for
// MVJS, BV for OPTJS — i.e. each system's end-to-end probability of
// answering correctly.

func init() {
	register("fig6a", fig6a)
	register("fig6b", fig6b)
	register("fig6c", fig6c)
	register("fig6d", fig6d)
}

// systemPair runs both systems on one pool and returns their scores.
func systemPair(pool worker.Pool, budget float64, numBuckets int, seed int64) (mvjs, optjs float64, err error) {
	mvSel := selection.Auto{Objective: selection.MVObjective{}, Seed: seed}
	bvSel := selection.Auto{Objective: selection.BVObjective{NumBuckets: numBuckets}, Seed: seed}

	mvRes, err := mvSel.Select(pool, budget, 0.5)
	if err != nil {
		return 0, 0, fmt.Errorf("MVJS: %w", err)
	}
	bvRes, err := bvSel.Select(pool, budget, 0.5)
	if err != nil {
		return 0, 0, fmt.Errorf("OPTJS: %w", err)
	}
	mvjs, err = scoreMV(mvRes.Jury)
	if err != nil {
		return 0, 0, err
	}
	optjs, err = scoreBV(bvRes.Jury, numBuckets)
	if err != nil {
		return 0, 0, err
	}
	return mvjs, optjs, nil
}

func scoreMV(jury worker.Pool) (float64, error) {
	if len(jury) == 0 {
		return 0.5, nil
	}
	return jq.MajorityClosedForm(jury, 0.5)
}

func scoreBV(jury worker.Pool, numBuckets int) (float64, error) {
	if len(jury) == 0 {
		return 0.5, nil
	}
	res, err := jq.Estimate(jury, 0.5, jq.Options{NumBuckets: numBuckets})
	if err != nil {
		return 0, err
	}
	return res.JQ, nil
}

// fig6Sweep runs the two systems over a sequence of configurations,
// returning per-point means and standard errors across the repeats. The
// (point, repeat) pairs fan out over the configured goroutine pool; each
// derives its RNG from its own indices, so the artifact is byte-identical
// to a sequential run.
func fig6Sweep(cfg Config, xs []float64, configure func(x float64, base *datagen.Config, budget *float64)) (rows, errs [][]float64, err error) {
	reps := cfg.Repeats
	mv := make([]float64, len(xs)*reps)
	bv := make([]float64, len(xs)*reps)
	if err := forEach(cfg.workers(), len(mv), func(j int) error {
		i, rep := j/reps, j%reps
		gen := datagen.DefaultConfig()
		budget := 0.5
		configure(xs[i], &gen, &budget)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1009 + int64(rep)*7919))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		mv[j], bv[j], err = systemPair(pool, budget, cfg.NumBuckets, cfg.Seed+int64(rep))
		return err
	}); err != nil {
		return nil, nil, err
	}
	rows = make([][]float64, len(xs))
	errs = make([][]float64, len(xs))
	for i := range xs {
		mvs, bvs := mv[i*reps:(i+1)*reps], bv[i*reps:(i+1)*reps]
		rows[i] = []float64{stats.Mean(mvs), stats.Mean(bvs)}
		errs[i] = []float64{stdErr(mvs), stdErr(bvs)}
	}
	return rows, errs, nil
}

// stdErr is the standard error of the mean; 0 for fewer than two samples.
func stdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := stats.Summarize(xs)
	return math.Sqrt(s.SampleVariance / float64(len(xs)))
}

func fig6a(cfg Config) (*Result, error) {
	xs := sweep(0.5, 1.0, 0.05)
	rows, errs, err := fig6Sweep(cfg, xs, func(x float64, gen *datagen.Config, _ *float64) {
		gen.MeanQuality = x
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig6a", Title: "OPTJS vs MVJS, varying mean worker quality µ",
		XLabel: "mu", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "N=50, B=0.5, sigma^2=0.05, cost~N(0.05,0.2^2)",
	}, nil
}

func fig6b(cfg Config) (*Result, error) {
	xs := sweep(0.1, 1.0, 0.1)
	rows, errs, err := fig6Sweep(cfg, xs, func(x float64, _ *datagen.Config, budget *float64) {
		*budget = x
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig6b", Title: "OPTJS vs MVJS, varying budget B",
		XLabel: "budget", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "N=50, mu=0.7",
	}, nil
}

func fig6c(cfg Config) (*Result, error) {
	xs := sweep(10, 100, 10)
	rows, errs, err := fig6Sweep(cfg, xs, func(x float64, gen *datagen.Config, _ *float64) {
		gen.N = int(x)
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig6c", Title: "OPTJS vs MVJS, varying candidate pool size N",
		XLabel: "N", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "mu=0.7, B=0.5",
	}, nil
}

func fig6d(cfg Config) (*Result, error) {
	xs := sweep(0.1, 1.0, 0.1)
	rows, errs, err := fig6Sweep(cfg, xs, func(x float64, gen *datagen.Config, _ *float64) {
		gen.CostStd = x
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig6d", Title: "OPTJS vs MVJS, varying cost standard deviation",
		XLabel: "cost_std", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "N=50, mu=0.7, B=0.5",
	}, nil
}
