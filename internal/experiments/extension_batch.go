package experiments

import (
	"math/rand"

	"repro/internal/batch"
	"repro/internal/datagen"
)

// Extension experiment: allocating one global budget across a batch of
// tasks (the deployment view of the paper's per-task JSP). Batches are
// heterogeneous — tasks differ in pool quality and in prior certainty —
// and the sweep compares the even split, the prior-entropy-weighted split,
// and greedy marginal allocation on mean jury quality.

func init() {
	register("extension-batch", extensionBatch)
}

func extensionBatch(cfg Config) (*Result, error) {
	budgets := []float64{0.1, 0.2, 0.4, 0.8}
	allocators := []batch.Allocator{
		batch.Even{},
		batch.WeightedByPrior{},
		batch.GreedyMarginal{Steps: 16},
	}
	cols := make([]string, len(allocators))
	for i, a := range allocators {
		cols[i] = a.Name()
	}
	const tasksPerBatch = 6

	rows := make([][]float64, len(budgets))
	for bi, budget := range budgets {
		sums := make([]float64, len(allocators))
		for rep := 0; rep < cfg.Repeats; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*80021))
			tasks := make([]batch.Task, tasksPerBatch)
			for i := range tasks {
				gen := datagen.DefaultConfig()
				gen.N = 12
				// Heterogeneity: pool quality and prior certainty vary.
				gen.MeanQuality = 0.55 + 0.3*rng.Float64()
				pool, err := gen.Pool(rng)
				if err != nil {
					return nil, err
				}
				alpha := 0.5
				if i%2 == 1 {
					alpha = 0.5 + 0.45*rng.Float64() // some tasks near-decided
				}
				tasks[i] = batch.Task{Pool: pool, Alpha: alpha}
			}
			for ai, a := range allocators {
				res, err := a.Allocate(tasks, budget, cfg.Seed+int64(rep))
				if err != nil {
					return nil, err
				}
				sums[ai] += res.MeanJQ
			}
		}
		row := make([]float64, len(allocators))
		for ai, s := range sums {
			row[ai] = s / float64(cfg.Repeats)
		}
		rows[bi] = row
	}
	return &Result{
		ID: "extension-batch", Title: "global-budget allocation across a heterogeneous task batch",
		XLabel: "global_budget", Columns: cols, X: budgets, Y: rows,
		Notes: "6 tasks per batch, pools of 12; mean selected-jury JQ per allocator",
	}, nil
}
