package experiments

import (
	"runtime"

	"repro/internal/conc"
)

// workers resolves Config.Parallel: 0 means one worker per logical CPU,
// 1 forces a sequential run, anything else caps the goroutine count.
func (c Config) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n), fanning the calls out over at
// most `workers` goroutines. Every experiment repeat already derives its
// RNG deterministically from (seed, index), so the jobs are independent;
// each writes only its own index-addressed result slot and the caller
// reduces the slots in index order afterwards, which keeps parallel runs
// byte-identical to sequential ones. On failure the error of the lowest
// index wins, matching a sequential loop's first-error semantics.
func forEach(workers, n int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	conc.ForEach(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
