package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/selection"
	"repro/internal/stats"
)

// Table 3: distribution of the optimality gap JQ(J*) − JQ(Ĵ) between the
// exhaustive optimum and the annealing heuristic, over many JSP instances
// with N=11 and budgets swept over [0.05, 0.5]. The paper reports counts
// (out of 10,000) in the percentage-point ranges [0, 0.01], (0.01, 0.1],
// (0.1, 1], (1, 3], (3, +inf).

func init() {
	register("table3", table3)
}

func table3(cfg Config) (*Result, error) {
	budgets := sweep(0.05, 0.5, 0.05)
	gen := datagen.DefaultConfig()
	gen.N = 11
	counter := stats.NewRangeCounter(0, 0.01, 0.1, 1, 3)

	perBudget := cfg.Trials / len(budgets)
	if perBudget < 1 {
		perBudget = 1
	}
	gaps := make([]float64, len(budgets)*perBudget)
	if err := forEach(cfg.workers(), len(gaps), func(trial int) error {
		bi, rep := trial/perBudget, trial%perBudget
		rng := rand.New(rand.NewSource(cfg.Seed + int64(bi)*15485863 + int64(rep)*32452843))
		pool, err := gen.Pool(rng)
		if err != nil {
			return err
		}
		exact, err := selection.Exhaustive{Objective: selection.BVExactObjective{}}.
			Select(pool, budgets[bi], 0.5)
		if err != nil {
			return err
		}
		// Two restarts plus the removal move keep the worst-case gaps
		// below the paper's 3-percentage-point ceiling: our cost-floor
		// substitution (DESIGN.md) yields more near-free workers than
		// the paper's setting, and those pack juries into states the
		// plain Algorithm 4 swap cannot escape.
		heur, err := selection.Annealing{
			Objective:    selection.BVExactObjective{},
			Seed:         cfg.Seed + int64(trial),
			Restarts:     2,
			AllowRemoval: true,
		}.Select(pool, budgets[bi], 0.5)
		if err != nil {
			return err
		}
		// Percentage points, as the paper's table reports.
		gaps[trial] = 100 * (exact.JQ - heur.JQ)
		return nil
	}); err != nil {
		return nil, err
	}
	for _, gap := range gaps {
		counter.Add(gap)
	}
	labels := counter.Labels()
	rows := make([][]float64, len(labels))
	xs := make([]float64, len(labels))
	for i, c := range counter.Counts {
		xs[i] = float64(i)
		rows[i] = []float64{float64(c)}
	}
	return &Result{
		ID: "table3", Title: "counts of JQ(J*) − JQ(J_hat) per error range (percentage points)",
		XLabel: "range_index", Columns: []string{"count"}, X: xs, Y: rows,
		Notes: "ranges: " + joinLabels(labels) +
			"; paper (10,000 trials): 9301 / 231 / 408 / 60 / 0",
	}, nil
}

func joinLabels(labels []string) string {
	out := ""
	for i, l := range labels {
		if i > 0 {
			out += " "
		}
		out += l
	}
	return out
}
