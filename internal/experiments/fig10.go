package experiments

import (
	"math/rand"
	"sync"

	"repro/internal/amt"
	"repro/internal/jq"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Figure 10: the real-data evaluation on the (simulated) AMT sentiment
// corpus. Panels (a)–(c) repeat the OPTJS-vs-MVJS comparison per question
// with empirically estimated worker qualities, sweeping budget, candidate
// count, and cost deviation; panel (d) compares the predicted JQ of the
// first z voters against the realized accuracy of Bayesian voting on their
// actual votes.

func init() {
	register("fig10a", fig10a)
	register("fig10b", fig10b)
	register("fig10c", fig10c)
	register("fig10d", fig10d)
}

// amtDataset caches the simulated corpus per seed: the generation is
// deterministic, all four panels share it, and experiments may run
// concurrently (cmd/experiments -parallel), so access is mutex-guarded.
var (
	amtCacheMu sync.Mutex
	amtCache   = map[int64]*amt.Dataset{}
)

func amtDataset(seed int64) (*amt.Dataset, error) {
	amtCacheMu.Lock()
	defer amtCacheMu.Unlock()
	if ds, ok := amtCache[seed]; ok {
		return ds, nil
	}
	ds, err := amt.Generate(amt.DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	amtCache[seed] = ds
	return ds, nil
}

// fig10Sweep runs the per-question system comparison over xs; prepare
// builds the candidate pool and budget of one (question, x) pair. The
// (point, question) pairs fan out over the configured goroutine pool.
// Returned rows hold per-point means over the questions, errs their
// standard error.
func fig10Sweep(cfg Config, xs []float64, prepare func(x float64, ds *amt.Dataset, q int, rng *rand.Rand) (worker.Pool, float64, error)) (rows, errs [][]float64, err error) {
	ds, err := amtDataset(cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	questions := cfg.Questions
	if questions > len(ds.Tasks) {
		questions = len(ds.Tasks)
	}
	mv := make([]float64, len(xs)*questions)
	bv := make([]float64, len(xs)*questions)
	if err := forEach(cfg.workers(), len(mv), func(j int) error {
		i, q := j/questions, j%questions
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*100003 + int64(q)*17389))
		pool, budget, err := prepare(xs[i], ds, q, rng)
		if err != nil {
			return err
		}
		mv[j], bv[j], err = systemPair(pool, budget, cfg.NumBuckets, cfg.Seed+int64(q))
		return err
	}); err != nil {
		return nil, nil, err
	}
	rows = make([][]float64, len(xs))
	errs = make([][]float64, len(xs))
	for i := range xs {
		mvs, bvs := mv[i*questions:(i+1)*questions], bv[i*questions:(i+1)*questions]
		rows[i] = []float64{mean(mvs), mean(bvs)}
		errs[i] = []float64{stdErr(mvs), stdErr(bvs)}
	}
	return rows, errs, nil
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func fig10a(cfg Config) (*Result, error) {
	xs := sweep(0.1, 1.0, 0.1)
	rows, errs, err := fig10Sweep(cfg, xs, func(x float64, ds *amt.Dataset, q int, rng *rand.Rand) (worker.Pool, float64, error) {
		pool, err := ds.TaskPool(q, 0.05, 0.2, rng)
		return pool, x, err
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig10a", Title: "real data: OPTJS vs MVJS, varying budget",
		XLabel: "budget", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "N=20 per question; empirical worker qualities",
	}, nil
}

func fig10b(cfg Config) (*Result, error) {
	xs := sweep(3, 20, 1)
	rows, errs, err := fig10Sweep(cfg, xs, func(x float64, ds *amt.Dataset, q int, rng *rand.Rand) (worker.Pool, float64, error) {
		pool, err := ds.TaskPool(q, 0.05, 0.2, rng)
		if err != nil {
			return nil, 0, err
		}
		n := int(x)
		if n > len(pool) {
			n = len(pool)
		}
		return pool[:n], 0.5, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig10b", Title: "real data: OPTJS vs MVJS, varying candidate count",
		XLabel: "N", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "B=0.5; first N answerers of each question",
	}, nil
}

func fig10c(cfg Config) (*Result, error) {
	xs := sweep(0.1, 1.0, 0.1)
	rows, errs, err := fig10Sweep(cfg, xs, func(x float64, ds *amt.Dataset, q int, rng *rand.Rand) (worker.Pool, float64, error) {
		pool, err := ds.TaskPool(q, 0.05, x, rng)
		return pool, 0.5, err
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "fig10c", Title: "real data: OPTJS vs MVJS, varying cost standard deviation",
		XLabel: "cost_std", Columns: []string{"MVJS", "OPTJS"}, X: xs, Y: rows, YErr: errs,
		Notes: "B=0.5, N=20 per question",
	}, nil
}

func fig10d(cfg Config) (*Result, error) {
	ds, err := amtDataset(cfg.Seed)
	if err != nil {
		return nil, err
	}
	questions := cfg.Questions
	if questions > len(ds.Tasks) {
		questions = len(ds.Tasks)
	}
	xs := sweep(3, 20, 1)
	jqs := make([]float64, len(xs)*questions)
	hits := make([]bool, len(xs)*questions)
	if err := forEach(cfg.workers(), len(jqs), func(j int) error {
		i, q := j/questions, j%questions
		votes, quals, err := ds.Prefix(q, int(xs[i]))
		if err != nil {
			return err
		}
		// (i) predicted JQ of the first-z jury.
		est, err := jq.Estimate(worker.UniformCost(quals, 0), 0.5, jq.Options{NumBuckets: cfg.NumBuckets})
		if err != nil {
			return err
		}
		jqs[j] = est.JQ
		// (ii) realized BV decision on their actual votes.
		dec, err := voting.Decide(voting.Bayesian{}, votes, quals, 0.5, nil)
		if err != nil {
			return err
		}
		hits[j] = dec == ds.Tasks[q].Truth
		return nil
	}); err != nil {
		return nil, err
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		var sumJQ float64
		correct := 0
		for q := 0; q < questions; q++ {
			sumJQ += jqs[i*questions+q]
			if hits[i*questions+q] {
				correct++
			}
		}
		rows[i] = []float64{
			float64(correct) / float64(questions),
			sumJQ / float64(questions),
		}
	}
	return &Result{
		ID: "fig10d", Title: "is JQ a good prediction? accuracy vs average JQ by vote count",
		XLabel: "z", Columns: []string{"accuracy", "avg JQ"}, X: xs, Y: rows,
		Notes: "first z votes per question; the two curves should nearly coincide",
	}, nil
}
