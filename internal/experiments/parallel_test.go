package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hits := make([]int32, 100)
		if err := forEach(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	err := forEach(8, 50, func(i int) error {
		switch i {
		case 7:
			return errLow
		case 30:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Fatalf("got %v, want the error of the lowest failing index", err)
	}
}

func TestConfigValidationRejectsNegativeParallel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Parallel = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Parallel accepted")
	}
}

// Parallel sweeps must be byte-identical to sequential ones: every
// repeat derives its RNG from the seed and its own index, and results
// are reduced in index order. fig7b/fig9d are excluded — they measure
// wall-clock time, which no scheduler reproduces.
func TestParallelSweepsMatchSequential(t *testing.T) {
	ids := []string{"fig6b", "fig7a", "fig9a", "fig9b", "fig9c", "fig10a", "fig10d", "ablation-selectors", "ablation-buckets", "table3"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq := tinyConfig()
			seq.Parallel = 1
			par := tinyConfig()
			par.Parallel = 8
			want, err := Run(id, seq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(id, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel artifact diverges from sequential:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
