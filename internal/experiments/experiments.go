// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a pure function from a Config
// to a Result holding the same x-axis and series the paper plots; the
// cmd/experiments binary renders them as text tables, and bench_test.go
// wraps each one in a testing.B benchmark.
//
// The registry maps the paper's artifact identifiers (fig6a … fig10d,
// table3) to their implementations; see DESIGN.md for the per-experiment
// index.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Config scales the experiments. The paper repeats synthetic measurements
// 1,000 times and uses all 600 real questions; DefaultConfig uses smaller
// counts so a full run stays interactive, and PaperConfig restores the
// published scale.
type Config struct {
	// Seed drives every random draw; equal seeds give equal results.
	Seed int64
	// Repeats is the per-point repetition count for synthetic experiments.
	Repeats int
	// Trials is the number of JSP instances for Table 3.
	Trials int
	// Questions is how many simulated AMT questions the real-data
	// experiments use (max 600).
	Questions int
	// NumBuckets configures the JQ approximation (paper default: 50).
	NumBuckets int
	// Parallel bounds the goroutine pool the repeat/trial loops fan out
	// over: 0 uses one worker per logical CPU, 1 runs the repeats
	// sequentially (a search inside one repeat may still use its own
	// internal parallelism, e.g. selection.Annealing restarts). Because
	// every repeat derives its RNG deterministically from the seed and
	// results are reduced in index order, artifacts are byte-identical
	// at every setting. Wall-clock measuring experiments (IsWallClock)
	// run their timed region sequentially so their own repeats cannot
	// contend; callers must also avoid running other artifacts
	// concurrently with them for the seconds to mean anything.
	Parallel int
}

// DefaultConfig returns fast defaults for interactive runs.
func DefaultConfig() Config {
	return Config{Seed: 1, Repeats: 5, Trials: 300, Questions: 60, NumBuckets: 50}
}

// PaperConfig returns the published experiment scale.
func PaperConfig() Config {
	return Config{Seed: 1, Repeats: 1000, Trials: 10000, Questions: 600, NumBuckets: 50}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Repeats < 1 || c.Trials < 1 || c.Questions < 1 {
		return fmt.Errorf("experiments: non-positive scale in %+v", c)
	}
	if c.NumBuckets < 1 {
		return fmt.Errorf("experiments: NumBuckets must be positive, got %d", c.NumBuckets)
	}
	if c.Parallel < 0 {
		return fmt.Errorf("experiments: Parallel must be non-negative, got %d", c.Parallel)
	}
	return nil
}

// Result is one regenerated artifact: an x-axis plus named series, exactly
// the data behind one figure panel or table.
type Result struct {
	// ID is the artifact identifier, e.g. "fig6a".
	ID string
	// Title describes the artifact.
	Title string
	// XLabel names the x-axis; Columns name the series.
	XLabel  string
	Columns []string
	// X holds the x-axis values; Y[i][j] is series j at X[i].
	X []float64
	Y [][]float64
	// YErr, when non-nil, holds the standard error of each Y cell (same
	// shape as Y); Table renders cells as "mean±err".
	YErr [][]float64
	// Notes carries free-form context (units, caveats).
	Notes string
}

// Table renders the result as an aligned text table.
func (r *Result) Table() *table.Table {
	headers := append([]string{r.XLabel}, r.Columns...)
	t := table.New(fmt.Sprintf("%s — %s", r.ID, r.Title), headers...)
	for i, x := range r.X {
		cells := make([]string, 0, len(headers))
		cells = append(cells, table.Float(x))
		for j, y := range r.Y[i] {
			cell := table.Float(y)
			if r.YErr != nil && r.YErr[i][j] > 0 {
				cell += "±" + fmt.Sprintf("%.2g", r.YErr[i][j])
			}
			cells = append(cells, cell)
		}
		t.AddRow(cells...)
	}
	return t
}

// Dat renders the result as a gnuplot-ready whitespace-separated data
// block: a comment header, then one line per x with all series (and their
// standard errors when available).
func (r *Result) Dat() string {
	out := fmt.Sprintf("# %s — %s\n# %s", r.ID, r.Title, r.XLabel)
	for _, c := range r.Columns {
		out += " " + c
		if r.YErr != nil {
			out += " " + c + "_err"
		}
	}
	out += "\n"
	for i, x := range r.X {
		out += table.Float(x)
		for j, y := range r.Y[i] {
			out += " " + table.Float(y)
			if r.YErr != nil {
				out += " " + table.Float(r.YErr[i][j])
			}
		}
		out += "\n"
	}
	return out
}

// Runner regenerates one artifact.
type Runner func(Config) (*Result, error)

// registry maps artifact IDs to runners; populated by the fig*.go files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate artifact " + id)
	}
	registry[id] = r
}

// wallClock marks artifacts whose values are wall-clock measurements;
// they must not run concurrently with other work (see IsWallClock).
var wallClock = map[string]bool{"fig7b": true, "fig9d": true}

// IsWallClock reports whether the artifact measures wall-clock time.
// Such artifacts keep their timed region sequential internally, and
// callers batching artifacts concurrently (cmd/experiments -parallel)
// should run them on their own so contention from other artifacts
// cannot inflate the reported seconds.
func IsWallClock(id string) bool { return wallClock[id] }

// IDs lists the registered artifact identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run regenerates one artifact by ID.
func Run(id string, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown artifact %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// RunAll regenerates every artifact, in ID order.
func RunAll(cfg Config) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var out []*Result
	for _, id := range IDs() {
		res, err := registry[id](cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// sweep returns an inclusive arithmetic progression from lo to hi.
func sweep(lo, hi, step float64) []float64 {
	var xs []float64
	for x := lo; x <= hi+1e-9; x += step {
		xs = append(xs, x)
	}
	return xs
}
