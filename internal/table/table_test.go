package table

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := New("Demo", "budget", "jq")
	tb.AddRow("5", "75.00%")
	tb.AddRow("10", "80.00%")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "budget") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator line = %q", lines[2])
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("1")           // short: padded
	tb.AddRow("1", "2", "3") // long: truncated
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Fatalf("short row = %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Fatalf("long row = %v", tb.Rows[1])
	}
}

func TestAddFloats(t *testing.T) {
	tb := New("", "x", "y")
	tb.AddFloats(0.5, 1.25)
	if tb.Rows[0][0] != "0.5" || tb.Rows[0][1] != "1.25" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestCSV(t *testing.T) {
	tb := New("", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	got := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Percent(0.8451); got != "84.51%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Float(1.5); got != "1.5" {
		t.Errorf("Float = %q", got)
	}
	if got := Int(42); got != "42" {
		t.Errorf("Int = %q", got)
	}
}

// TestStructLiteralRowsClamped is the regression test for the
// index-out-of-range panic: Rows constructed directly (bypassing
// AddRow's normalization) with more cells than Headers must render
// clamped, and short rows must pad.
func TestStructLiteralRowsClamped(t *testing.T) {
	tb := &Table{
		Headers: []string{"a", "b"},
		Rows: [][]string{
			{"1", "2", "EXTRA"},
			{"only"},
			{},
		},
	}
	got := tb.String()
	if strings.Contains(got, "EXTRA") {
		t.Fatalf("overlong row not truncated:\n%s", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 { // header, separator, 3 rows
		t.Fatalf("String rendered %d lines, want 5:\n%s", len(lines), got)
	}
	csv := tb.CSV()
	if strings.Contains(csv, "EXTRA") {
		t.Fatalf("overlong row not truncated in CSV:\n%s", csv)
	}
	if want := "a,b\n1,2\nonly,\n,\n"; csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	// Degenerate: a header-less table must not panic either.
	empty := &Table{Rows: [][]string{{"x"}}}
	_ = empty.String()
	_ = empty.CSV()
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title produced leading newline")
	}
}
