// Package table renders experiment results as aligned text tables and CSV,
// the output format of the benchmark harness (cmd/experiments).
package table

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddFloats appends a row of floating-point cells formatted with %.6g.
func (t *Table) AddFloats(values ...float64) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%.6g", v)
	}
	t.AddRow(cells...)
}

// normRow clamps a row to the header width: short rows are padded with
// empty cells, long rows truncated. AddRow already normalizes, but Rows
// built as struct literals can carry any number of cells, and the
// renderers must not index out of range on them.
func (t *Table) normRow(row []string) []string {
	if len(row) == len(t.Headers) {
		return row
	}
	out := make([]string, len(t.Headers))
	copy(out, row)
	return out
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range t.normRow(row) {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(t.normRow(row))
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeLine := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(escapeCSV(cell))
		}
		b.WriteByte('\n')
	}
	writeLine(t.Headers)
	for _, row := range t.Rows {
		writeLine(t.normRow(row))
	}
	return b.String()
}

func escapeCSV(cell string) string {
	if !strings.ContainsAny(cell, ",\"\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// Percent formats a probability as a percentage with two decimals.
func Percent(p float64) string { return fmt.Sprintf("%.2f%%", 100*p) }

// Float formats a float compactly.
func Float(v float64) string { return fmt.Sprintf("%.6g", v) }

// Int formats an integer.
func Int(v int) string { return fmt.Sprintf("%d", v) }
