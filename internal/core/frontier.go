package core

import (
	"errors"
	"fmt"

	"repro/internal/worker"
)

// ErrUnreachableQuality is returned by MinBudget when even the full pool
// cannot reach the target quality.
var ErrUnreachableQuality = errors.New("core: target quality unreachable with this pool")

// MinBudget finds (approximately) the smallest budget whose optimal jury
// reaches the target JQ, by bisection over the budget axis. It exploits
// the monotonicity of the budget–quality frontier: a larger budget never
// yields a worse optimal jury.
//
// tol is the budget resolution of the answer (e.g. 0.01 monetary units);
// the returned row's RequiredBudget is the jury's actual cost, which is
// what the provider would pay.
func (s *System) MinBudget(pool worker.Pool, targetJQ, tol float64) (TableRow, error) {
	if err := pool.Validate(); err != nil {
		return TableRow{}, err
	}
	if targetJQ <= 0 || targetJQ > 1 {
		return TableRow{}, fmt.Errorf("core: target JQ %v outside (0, 1]", targetJQ)
	}
	if tol <= 0 {
		return TableRow{}, fmt.Errorf("core: non-positive tolerance %v", tol)
	}
	hi := pool.TotalCost()
	best, err := s.SelectJury(pool, hi)
	if err != nil {
		return TableRow{}, err
	}
	if best.JQ < targetJQ {
		return TableRow{}, fmt.Errorf("%w: best JQ %.4f < target %.4f",
			ErrUnreachableQuality, best.JQ, targetJQ)
	}
	lo := 0.0
	result := TableRow{Budget: hi, Jury: best.Jury, Indices: best.Indices, JQ: best.JQ, RequiredBudget: best.Cost}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		res, err := s.SelectJury(pool, mid)
		if err != nil {
			return TableRow{}, err
		}
		if res.JQ >= targetJQ {
			hi = mid
			result = TableRow{Budget: mid, Jury: res.Jury, Indices: res.Indices, JQ: res.JQ, RequiredBudget: res.Cost}
		} else {
			lo = mid
		}
	}
	return result, nil
}
