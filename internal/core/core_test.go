package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/worker"
)

func figure1Pool() worker.Pool {
	return worker.Pool{
		{ID: "A", Quality: 0.77, Cost: 9},
		{ID: "B", Quality: 0.70, Cost: 5},
		{ID: "C", Quality: 0.80, Cost: 6},
		{ID: "D", Quality: 0.65, Cost: 7},
		{ID: "E", Quality: 0.60, Cost: 5},
		{ID: "F", Quality: 0.60, Cost: 2},
		{ID: "G", Quality: 0.75, Cost: 3},
	}
}

func TestBudgetQualityTableFigure1(t *testing.T) {
	// Use the exact objective so the JQ values match the paper's table.
	sys := &System{
		Selector: selection.Exhaustive{Objective: selection.BVExactObjective{}},
		Alpha:    0.5,
	}
	rows, err := sys.BudgetQualityTable(figure1Pool(), []float64{20, 5, 15, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	wantJQ := []float64{0.75, 0.80, 0.845, 0.8695}
	wantBudget := []float64{5, 10, 15, 20}
	for i, row := range rows {
		if row.Budget != wantBudget[i] {
			t.Errorf("row %d: budget = %v, want %v (ascending)", i, row.Budget, wantBudget[i])
		}
		if math.Abs(row.JQ-wantJQ[i]) > 1e-9 {
			t.Errorf("row %d: JQ = %v, want %v", i, row.JQ, wantJQ[i])
		}
		if row.RequiredBudget > row.Budget {
			t.Errorf("row %d: required budget %v exceeds budget %v", i, row.RequiredBudget, row.Budget)
		}
	}
}

func TestBudgetQualityTableMonotone(t *testing.T) {
	sys := NewSystem(0.5, 1)
	rows, err := sys.BudgetQualityTable(figure1Pool(), []float64{2, 5, 8, 12, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].JQ < rows[i-1].JQ-1e-9 {
			t.Fatalf("JQ decreased between budgets %v and %v: %v -> %v",
				rows[i-1].Budget, rows[i].Budget, rows[i-1].JQ, rows[i].JQ)
		}
	}
}

func TestBudgetQualityTableNoBudgets(t *testing.T) {
	sys := NewSystem(0.5, 1)
	if _, err := sys.BudgetQualityTable(figure1Pool(), nil); !errors.Is(err, ErrNoBudgets) {
		t.Fatalf("err = %v, want ErrNoBudgets", err)
	}
}

func TestSelectJuryDefaultsToOPTJS(t *testing.T) {
	sys := &System{Alpha: 0.5}
	res, err := sys.SelectJury(figure1Pool(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 15 {
		t.Fatalf("cost %v > 15", res.Cost)
	}
	if res.JQ < 0.84 {
		t.Fatalf("JQ = %v, want ≥ 0.84 (near-optimal)", res.JQ)
	}
}

func TestAggregate(t *testing.T) {
	sys := NewSystem(0.5, 1)
	votes := []voting.Vote{voting.No, voting.Yes, voting.Yes}
	quals := []float64{0.9, 0.6, 0.6}
	decision, conf, err := sys.Aggregate(votes, quals)
	if err != nil {
		t.Fatal(err)
	}
	if decision != voting.No {
		t.Fatalf("decision = %v, want no (BV follows the strong worker)", decision)
	}
	// P(t=0|V) ∝ 0.5·0.9·0.4·0.4 = 0.072; P(t=1|V) ∝ 0.5·0.1·0.6·0.6 = 0.018.
	want := 0.072 / (0.072 + 0.018)
	if math.Abs(conf-want) > 1e-12 {
		t.Fatalf("confidence = %v, want %v", conf, want)
	}
}

func TestAggregateErrors(t *testing.T) {
	sys := NewSystem(0.5, 1)
	if _, _, err := sys.Aggregate([]voting.Vote{voting.No}, []float64{0.7, 0.8}); err == nil {
		t.Fatal("no error for arity mismatch")
	}
}

func TestPosteriorCorrect(t *testing.T) {
	got, err := PosteriorCorrect([]voting.Vote{voting.No}, []float64{0.8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("posterior = %v, want 0.8", got)
	}
	// Degenerate: zero total mass (certain conflicting evidence).
	got, err = PosteriorCorrect([]voting.Vote{voting.No, voting.Yes}, []float64{1, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("degenerate posterior = %v, want 0.5", got)
	}
	if _, err := PosteriorCorrect([]voting.Vote{voting.No}, []float64{1.5}, 0.5); err == nil {
		t.Fatal("no error for invalid quality")
	}
	if _, err := PosteriorCorrect([]voting.Vote{voting.No}, nil, 0.5); err == nil {
		t.Fatal("no error for arity mismatch")
	}
}

func TestPredictJQ(t *testing.T) {
	sys := NewSystem(0.5, 1)
	got, err := sys.PredictJQ(worker.UniformCost([]float64{0.9, 0.6, 0.6}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 0.01 {
		t.Fatalf("PredictJQ = %v, want ≈0.90", got)
	}
	if _, err := sys.PredictJQ(nil); err == nil {
		t.Fatal("no error for empty jury")
	}
}
