// Package core assembles the paper's primary contribution into the
// "Optimal Jury Selection System" of Figure 1: given a candidate worker
// pool and a prior, it produces the budget–quality table the task provider
// uses to pick a budget, selects the optimal jury, and aggregates the
// collected votes with the optimal (Bayesian) voting strategy.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/jq"
	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/worker"
)

// ErrNoBudgets is returned when BudgetQualityTable receives no budgets.
var ErrNoBudgets = errors.New("core: no budgets given")

// System is the Optimal Jury Selection System.
type System struct {
	// Selector searches for juries; nil selects the paper's OPTJS
	// (exhaustive for small pools, Algorithm 3 annealing beyond).
	Selector selection.Selector
	// Alpha is the task provider's prior P(t = 0); 0.5 when unset is the
	// caller's responsibility (the zero value means a certain "no"!).
	Alpha float64
	// Seed drives the annealing path of the default selector.
	Seed int64
}

// NewSystem returns a System with the default OPTJS selector.
func NewSystem(alpha float64, seed int64) *System {
	return &System{Selector: selection.OPTJS(seed), Alpha: alpha, Seed: seed}
}

func (s *System) selector() selection.Selector {
	if s.Selector != nil {
		return s.Selector
	}
	return selection.OPTJS(s.Seed)
}

// SelectJury picks the best jury within budget.
func (s *System) SelectJury(pool worker.Pool, budget float64) (selection.Result, error) {
	return s.selector().Select(pool, budget, s.Alpha)
}

// TableRow is one line of the budget–quality table: the optimal jury for a
// budget, its estimated quality, and the budget it actually requires.
type TableRow struct {
	Budget         float64
	Jury           worker.Pool
	Indices        []int
	JQ             float64
	RequiredBudget float64
}

// BudgetQualityTable computes one row per budget (Figure 1's table). The
// budgets are processed in ascending order and returned in that order.
func (s *System) BudgetQualityTable(pool worker.Pool, budgets []float64) ([]TableRow, error) {
	if len(budgets) == 0 {
		return nil, ErrNoBudgets
	}
	sorted := append([]float64(nil), budgets...)
	sort.Float64s(sorted)
	rows := make([]TableRow, 0, len(sorted))
	for _, b := range sorted {
		res, err := s.SelectJury(pool, b)
		if err != nil {
			return nil, fmt.Errorf("core: budget %v: %w", b, err)
		}
		rows = append(rows, TableRow{
			Budget:         b,
			Jury:           res.Jury,
			Indices:        res.Indices,
			JQ:             res.JQ,
			RequiredBudget: res.Cost,
		})
	}
	return rows, nil
}

// Aggregate runs the optimal strategy (Bayesian Voting) over collected
// votes, returning the decision and the posterior probability that the
// decision is correct.
func (s *System) Aggregate(votes []voting.Vote, qualities []float64) (voting.Vote, float64, error) {
	decision, err := voting.Decide(voting.Bayesian{}, votes, qualities, s.Alpha, nil)
	if err != nil {
		return 0, 0, err
	}
	post, err := PosteriorCorrect(votes, qualities, s.Alpha)
	if err != nil {
		return 0, 0, err
	}
	return decision, post, nil
}

// PosteriorCorrect returns max(P(t=0|V), P(t=1|V)): the probability that
// the Bayesian decision on this specific voting is correct.
func PosteriorCorrect(votes []voting.Vote, qualities []float64, alpha float64) (float64, error) {
	if len(votes) != len(qualities) {
		return 0, fmt.Errorf("core: %d votes, %d qualities", len(votes), len(qualities))
	}
	p0, p1 := alpha, 1-alpha
	for i, v := range votes {
		q := qualities[i]
		if q < 0 || q > 1 {
			return 0, fmt.Errorf("core: quality %v outside [0, 1]", q)
		}
		if v == voting.No {
			p0 *= q
			p1 *= 1 - q
		} else {
			p0 *= 1 - q
			p1 *= q
		}
	}
	total := p0 + p1
	if total == 0 {
		return 0.5, nil
	}
	if p0 >= p1 {
		return p0 / total, nil
	}
	return p1 / total, nil
}

// PredictJQ estimates the quality of an externally chosen jury under the
// system's prior — the quantity Figure 10(d) compares against realized
// accuracy.
func (s *System) PredictJQ(jury worker.Pool) (float64, error) {
	res, err := jq.Estimate(jury, s.Alpha, jq.Options{})
	if err != nil {
		return 0, err
	}
	return res.JQ, nil
}
