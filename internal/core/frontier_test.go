package core

import (
	"errors"
	"testing"

	"repro/internal/selection"
)

func exactSystem() *System {
	return &System{
		Selector: selection.Exhaustive{Objective: selection.BVExactObjective{}},
		Alpha:    0.5,
	}
}

func TestMinBudgetFindsKnownThresholds(t *testing.T) {
	sys := exactSystem()
	// From Figure 1: JQ 0.845 first becomes reachable at jury {B,C,G},
	// cost 14. MinBudget should land within tolerance of 14.
	row, err := sys.MinBudget(figure1Pool(), 0.845, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if row.JQ < 0.845 {
		t.Fatalf("JQ = %v, below target", row.JQ)
	}
	if row.RequiredBudget < 13.9 || row.RequiredBudget > 14.1 {
		t.Fatalf("required budget = %v, want ≈14", row.RequiredBudget)
	}
	// JQ 0.75 is reachable with {G} alone at cost 3.
	row, err = sys.MinBudget(figure1Pool(), 0.75, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if row.RequiredBudget < 2.9 || row.RequiredBudget > 3.1 {
		t.Fatalf("required budget = %v, want ≈3", row.RequiredBudget)
	}
}

func TestMinBudgetUnreachable(t *testing.T) {
	sys := exactSystem()
	if _, err := sys.MinBudget(figure1Pool(), 0.9999, 0.01); !errors.Is(err, ErrUnreachableQuality) {
		t.Fatalf("err = %v, want ErrUnreachableQuality", err)
	}
}

func TestMinBudgetValidation(t *testing.T) {
	sys := exactSystem()
	if _, err := sys.MinBudget(nil, 0.8, 0.01); err == nil {
		t.Error("no error for empty pool")
	}
	if _, err := sys.MinBudget(figure1Pool(), 0, 0.01); err == nil {
		t.Error("no error for target 0")
	}
	if _, err := sys.MinBudget(figure1Pool(), 1.5, 0.01); err == nil {
		t.Error("no error for target > 1")
	}
	if _, err := sys.MinBudget(figure1Pool(), 0.8, 0); err == nil {
		t.Error("no error for zero tolerance")
	}
}

func TestMinBudgetTrivialTarget(t *testing.T) {
	sys := exactSystem()
	// Target 0.6 is reachable by any single decent worker; the cheapest is
	// F at cost 2... but F alone has JQ 0.6; G (cost 3) has 0.75. F's 0.6
	// meets the target exactly.
	row, err := sys.MinBudget(figure1Pool(), 0.6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if row.JQ < 0.6 {
		t.Fatalf("JQ = %v below target", row.JQ)
	}
	if row.RequiredBudget > 2.1 {
		t.Fatalf("required budget = %v, want ≤ 2 (worker F suffices)", row.RequiredBudget)
	}
}
