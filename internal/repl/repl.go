// Package repl drives the follower side of juryd's primary → follower
// WAL log shipping. A Follower long-polls the primary's
// GET /v1/repl/stream endpoint from its local applied LSN, verifies and
// applies the shipped frames through Server.ApplyReplicated (journal to
// the local log, then the same Apply paths crash recovery uses — so the
// replica's state is bit-identical to the primary's at every LSN), and
// reconnects with jittered exponential backoff on stream loss. Bootstrap
// installs a primary's snapshot into an empty data directory so a brand
// new (or truncation-stranded) follower can join without replaying the
// primary's full history.
package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// Terminal follower errors: Run returns them when continuing is either
// impossible or unsafe, and the operator (or boot path) must intervene.
var (
	// ErrSnapshotNeeded means the follower's applied position is behind
	// the primary's truncation horizon: the records it needs no longer
	// exist as a log. Recover by wiping the local data dir and
	// re-bootstrapping from the primary's snapshot.
	ErrSnapshotNeeded = errors.New("repl: follower is behind the primary's truncation horizon; re-bootstrap from its snapshot")
	// ErrDiverged means the follower's log is ahead of the primary's, or
	// was written under a different epoch at the same LSN — the follower
	// was fed by a different history (e.g. it used to be a primary
	// itself, with acked-but-never-shipped records). Continuing would
	// silently fork state; recover by wiping and re-bootstrapping.
	ErrDiverged = errors.New("repl: follower log diverged from primary")
	// ErrPromoted means this node was promoted to primary while the
	// stream loop ran: replication stopped because the node now writes
	// its own log. Not a failure — the caller should keep serving.
	ErrPromoted = errors.New("repl: this node was promoted to primary; replication stopped")
)

// Options tunes a Follower. The zero value is production-ready.
type Options struct {
	// Client performs the HTTP requests; nil selects a client with no
	// overall timeout (the stream long-poll outlives any sane default).
	Client *http.Client
	// Wait is the long-poll duration the primary should hold an empty
	// stream request open; 0 selects 10s.
	Wait time.Duration
	// MaxBytes bounds one stream response; 0 selects the server default.
	MaxBytes int
	// MinBackoff and MaxBackoff bound the jittered exponential reconnect
	// backoff after a failed stream request; 0 selects 100ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Logf, when set, receives connection-lifecycle lines ("connected",
	// "stream error ..., retrying"). nil discards them.
	Logf func(format string, args ...any)
	// ID identifies this follower on the primary's quorum-ack table
	// (sent as follower_id on every stream request). Empty selects a
	// random per-process id — safe, since a restarted follower's stale
	// entry can only under-confirm, never over-confirm.
	ID string
}

// Follower replicates one primary into one local Server. Create with
// NewFollower, drive with Run.
type Follower struct {
	srv     *server.Server
	primary string
	opts    Options
	rng     *rand.Rand
}

// NewFollower binds a local server (opened on its own data dir, with
// SetFollower already called) to a primary's base URL.
func NewFollower(srv *server.Server, primary string, opts Options) *Follower {
	if opts.Client == nil {
		// A private transport (not http.DefaultTransport): the follower's
		// keep-alive connections to the primary must not mingle with the
		// process-wide pool, so Run can drop them all when it exits.
		opts.Client = &http.Client{Transport: &http.Transport{}}
	}
	if opts.Wait <= 0 {
		opts.Wait = 10 * time.Second
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("follower-%08x", rand.Uint32())
	}
	return &Follower{
		srv:     srv,
		primary: strings.TrimRight(primary, "/"),
		opts:    opts,
		// Math/rand with a time seed is fine here: the jitter only spreads
		// reconnects, it carries no replayed state.
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Run streams and applies records until ctx is canceled (returns nil), a
// terminal condition is hit (ErrSnapshotNeeded, ErrDiverged), or the
// local server can no longer apply (degraded local WAL — the returned
// error wraps the cause; the server keeps serving reads at its last
// applied state). Transport errors and 5xx answers are retried forever
// with backoff: a primary restart must not kill its followers.
func (f *Follower) Run(ctx context.Context) error {
	// Leave no keep-alive connections behind: a dialed-but-never-used conn
	// sits in http.Server's StateNew, which graceful Shutdown on the
	// primary waits out forever.
	defer f.opts.Client.CloseIdleConnections()
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		advanced, err := f.poll(ctx)
		switch {
		case err == nil:
			failures = 0
			if !advanced {
				continue // empty long poll: re-request immediately
			}
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return nil
			}
			failures++
		case errors.Is(err, ErrSnapshotNeeded), errors.Is(err, ErrDiverged):
			return err
		case errors.Is(err, server.ErrNotFollower), !f.srv.IsFollower():
			// Promoted out from under the loop: the node now writes its
			// own log. A clean stop, not a failure.
			return ErrPromoted
		case errors.Is(err, server.ErrDegraded):
			return fmt.Errorf("repl: local apply failed, replication stopped: %w", err)
		default:
			failures++
			f.srv.ReplObserve(0, false)
			f.opts.Logf("repl: stream error (attempt %d): %v", failures, err)
			if !f.sleep(ctx, f.backoff(failures)) {
				return nil
			}
		}
	}
}

// backoff is the jittered exponential reconnect delay after n straight
// failures.
func (f *Follower) backoff(n int) time.Duration {
	d := f.opts.MinBackoff << uint(min(n-1, 16))
	if d <= 0 || d > f.opts.MaxBackoff {
		d = f.opts.MaxBackoff
	}
	return time.Duration(f.rng.Int63n(int64(d)) + 1)
}

// sleep waits d or until ctx cancels; false means canceled.
func (f *Follower) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// poll performs one stream request from the local applied LSN and
// applies whatever it ships. advanced reports whether any record was
// applied (false on an empty long poll).
func (f *Follower) poll(ctx context.Context) (advanced bool, err error) {
	// The target is re-read every poll so a Repoint (after a promotion
	// elsewhere) takes effect without restarting the loop.
	primary := f.srv.PrimaryURL()
	if primary == "" {
		primary = f.primary
	}
	primary = strings.TrimRight(primary, "/")
	from := f.srv.AppliedLSN()
	// epoch names the epoch the follower applied `from` under, so the
	// primary can run its log-matching check; follower_id keys this
	// node's row in the primary's quorum-ack table.
	u := fmt.Sprintf("%s/v1/repl/stream?from=%d&wait_ms=%d&epoch=%d&follower_id=%s",
		primary, uint64(from), f.opts.Wait.Milliseconds(),
		f.srv.EpochAt(from), url.QueryEscape(f.opts.ID))
	if f.opts.MaxBytes > 0 {
		u += "&max_bytes=" + strconv.Itoa(f.opts.MaxBytes)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()

	durable := headerLSN(resp.Header, server.ReplDurableLSNHeader)
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to the body below
	case http.StatusNoContent:
		f.srv.ReplObserve(durable, true)
		return false, nil
	case http.StatusGone:
		// The diagnosis names the primary the poll actually hit — after a
		// repoint, the *new* one — so the operator (or harness) re-
		// bootstraps from a live node, not the dead address it booted with.
		return false, fmt.Errorf("%w (primary %s, its oldest retained lsn: %d, local applied: %d)",
			ErrSnapshotNeeded, primary, uint64(headerLSN(resp.Header, server.ReplOldestLSNHeader)), uint64(from))
	case http.StatusConflict:
		// Two very different 409s: a genuinely forked log (terminal), or
		// a deposed primary that has not caught up to our epoch yet (its
		// X-Repl-Epoch is behind ours) — retryable, a repoint or the old
		// primary's own recovery resolves it.
		if he, perr := strconv.ParseUint(resp.Header.Get(server.ReplEpochHeader), 10, 64); perr == nil &&
			he < f.srv.EpochAt(from) {
			return false, fmt.Errorf("repl: primary %s is stale (its epoch %d, ours %d); awaiting repoint",
				primary, he, f.srv.EpochAt(from))
		}
		return false, fmt.Errorf("%w: %s", ErrDiverged, readErrorBody(resp.Body))
	default:
		return false, fmt.Errorf("repl: stream %s: %s: %s", u, resp.Status, readErrorBody(resp.Body))
	}

	first := headerLSN(resp.Header, server.ReplFirstLSNHeader)
	if first != from+1 {
		return false, fmt.Errorf("repl: stream answered lsn %d, asked for %d", uint64(first), uint64(from+1))
	}
	// Record the primary's watermark before applying: if the local apply
	// fails mid-batch, lag must still report how far ahead the primary is.
	f.srv.ReplObserve(durable, true)
	// The body is raw WAL framing: ScanSegment verifies each record's
	// CRC and hands over the payloads in order. A torn tail (the
	// connection died mid-frame) is not an error — the delivered prefix
	// is applied and the next poll re-requests the rest.
	body, err := io.ReadAll(resp.Body)
	if err != nil && len(body) == 0 {
		return false, fmt.Errorf("repl: stream read: %w", err)
	}
	lsn := first
	_, _, scanErr := wal.ScanSegment(bytes.NewReader(body), func(payload []byte) error {
		if err := f.srv.ApplyReplicated(lsn, payload); err != nil {
			return err
		}
		lsn++
		return nil
	})
	if scanErr != nil {
		return lsn > first, scanErr
	}
	f.srv.ReplObserve(durable, true)
	return lsn > first, nil
}

// headerLSN parses an LSN response header; absent or malformed is 0.
func headerLSN(h http.Header, key string) wal.LSN {
	n, err := strconv.ParseUint(h.Get(key), 10, 64)
	if err != nil {
		return 0
	}
	return wal.LSN(n)
}

// readErrorBody extracts a short diagnostic from an error response.
func readErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(b))
}

// ---------------------------------------------------------------------------
// Bootstrap.

// DirHasState reports whether dir already holds WAL segments or a
// snapshot — i.e. whether a follower booting on it should recover
// normally instead of bootstrapping from the primary. A missing dir is
// simply empty. The probe is a pure directory listing: it must not
// create files, or a later bootstrap into the "empty" dir would refuse.
func DirHasState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			return true, nil
		}
		if strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json") {
			return true, nil
		}
	}
	return false, nil
}

// Bootstrap fetches the primary's snapshot and installs it into dir so a
// subsequent server.Open recovers the snapshot state and appends shipped
// records from exactly the right LSN. dir must not already hold log
// state (it may be freshly created). Returns the LSN the snapshot
// covers; 0 means the primary had nothing journaled and the follower
// starts empty.
func Bootstrap(ctx context.Context, client *http.Client, primary, dir string) (wal.LSN, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	base := strings.TrimRight(primary, "/")
	u, err := url.Parse(base + "/v1/repl/snapshot")
	if err != nil {
		return 0, fmt.Errorf("repl: bad primary url %q: %w", primary, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return 0, nil // primary has no journaled history: start empty
	case http.StatusOK:
		// fall through
	default:
		return 0, fmt.Errorf("repl: bootstrap %s: %s: %s", u, resp.Status, readErrorBody(resp.Body))
	}
	lsn := headerLSN(resp.Header, server.ReplSnapshotLSNHeader)
	if lsn == 0 {
		return 0, fmt.Errorf("repl: bootstrap: primary sent a snapshot without %s", server.ReplSnapshotLSNHeader)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("repl: bootstrap read: %w", err)
	}
	if err := wal.WriteSnapshotFS(wal.OSFS(), dir, lsn, payload); err != nil {
		return 0, fmt.Errorf("repl: bootstrap install: %w", err)
	}
	if err := wal.InitAtFS(wal.OSFS(), dir, lsn+1); err != nil {
		return 0, fmt.Errorf("repl: bootstrap init log: %w", err)
	}
	return lsn, nil
}
