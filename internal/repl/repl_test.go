package repl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

// The end-to-end behavior of Follower.Run — streaming, faults, kill/restart,
// truncation stranding — lives in internal/walltest/repl.go and the server
// and cmd/juryd suites. This file covers the package's pure pieces.

func TestBackoffBounds(t *testing.T) {
	f := NewFollower(nil, "http://primary", Options{
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 500 * time.Millisecond,
	})
	for n := 1; n <= 40; n++ {
		for i := 0; i < 50; i++ {
			d := f.backoff(n)
			if d <= 0 || d > 500*time.Millisecond {
				t.Fatalf("backoff(%d) = %v, want (0, 500ms]", n, d)
			}
		}
	}
	// Deep failure counts must not overflow into negative shifts.
	if d := f.backoff(1 << 20); d <= 0 || d > 500*time.Millisecond {
		t.Fatalf("backoff(huge) = %v, want (0, 500ms]", d)
	}
}

func TestDirHasState(t *testing.T) {
	cases := []struct {
		name  string
		files []string
		want  bool
	}{
		{"missing dir", nil, false},
		{"empty dir", []string{}, false},
		{"unrelated files", []string{"notes.txt", "wal.log.bak"}, false},
		{"wal segment", []string{"wal-00000001.log"}, true},
		{"snapshot", []string{"snapshot-00000042.json"}, true},
		{"both", []string{"wal-00000007.log", "snapshot-00000006.json"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "data")
			if tc.files != nil {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				for _, name := range tc.files {
					if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			got, err := DirHasState(dir)
			if err != nil {
				t.Fatalf("DirHasState: %v", err)
			}
			if got != tc.want {
				t.Fatalf("DirHasState(%v) = %v, want %v", tc.files, got, tc.want)
			}
		})
	}
}

func TestHeaderLSN(t *testing.T) {
	h := http.Header{}
	if got := headerLSN(h, "X-Missing"); got != 0 {
		t.Fatalf("absent header = %d, want 0", got)
	}
	h.Set("X-Bad", "not-a-number")
	if got := headerLSN(h, "X-Bad"); got != 0 {
		t.Fatalf("malformed header = %d, want 0", got)
	}
	h.Set("X-Lsn", "12345")
	if got := headerLSN(h, "X-Lsn"); got != 12345 {
		t.Fatalf("header = %d, want 12345", got)
	}
}

func TestBootstrapInstallsSnapshot(t *testing.T) {
	const snapLSN = 7
	payload := []byte(`{"workers":{}}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/repl/snapshot" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(server.ReplSnapshotLSNHeader, strconv.Itoa(snapLSN))
		w.Write(payload)
	}))
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "fresh")
	lsn, err := Bootstrap(context.Background(), nil, ts.URL+"/", dir)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if lsn != snapLSN {
		t.Fatalf("Bootstrap lsn = %d, want %d", lsn, snapLSN)
	}
	// The installed state must be exactly what server.Open recovers from:
	// the snapshot at snapLSN and a log primed to append at snapLSN+1.
	gotLSN, got, found, err := wal.LatestSnapshotFS(wal.OSFS(), dir)
	if err != nil || !found {
		t.Fatalf("LatestSnapshotFS: found=%v err=%v", found, err)
	}
	if gotLSN != snapLSN || string(got) != string(payload) {
		t.Fatalf("installed snapshot = (%d, %q), want (%d, %q)", gotLSN, got, snapLSN, payload)
	}
	has, err := DirHasState(dir)
	if err != nil || !has {
		t.Fatalf("DirHasState after bootstrap = (%v, %v), want (true, nil)", has, err)
	}
}

func TestBootstrapEmptyPrimary(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.ReplSnapshotLSNHeader, "0")
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	dir := filepath.Join(t.TempDir(), "fresh")
	lsn, err := Bootstrap(context.Background(), nil, ts.URL, dir)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("Bootstrap lsn = %d, want 0 for a never-journaled primary", lsn)
	}
	// Nothing installed: the follower starts empty and streams from 0.
	if has, _ := DirHasState(dir); has {
		t.Fatal("bootstrap from an empty primary must not install state")
	}
}

func TestBootstrapErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "degraded", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	if _, err := Bootstrap(context.Background(), nil, ts.URL, t.TempDir()); err == nil {
		t.Fatal("Bootstrap against a 503 primary must fail")
	} else if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("error %q does not carry the primary's diagnostic", err)
	}

	missing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}")) // 200 but no snapshot-LSN header
	}))
	defer missing.Close()
	if _, err := Bootstrap(context.Background(), nil, missing.URL, t.TempDir()); err == nil {
		t.Fatal("Bootstrap must reject a snapshot without its LSN header")
	}
}

func TestTerminalErrorsAreDistinguishable(t *testing.T) {
	wrapped := errors.Join(ErrSnapshotNeeded)
	if !errors.Is(wrapped, ErrSnapshotNeeded) || errors.Is(wrapped, ErrDiverged) {
		t.Fatal("terminal errors must survive wrapping and stay distinct")
	}
}
