// Package worker defines the crowdsourcing worker model used throughout the
// repository: a worker answering a binary decision-making task is described by
// a quality q ∈ [0, 1] (the probability of voting for the task's latent true
// answer) and a non-negative monetary cost (the incentive required per vote).
//
// The model follows Section 2.1 of Zheng et al., "On Optimality of Jury
// Selection in Crowdsourcing" (EDBT 2015). Worker votes are assumed
// independent given the true answer.
package worker

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Quality bounds used by validation. Qualities strictly above MaxQuality are
// still legal inputs for JQ estimation, but the estimator short-circuits them
// (see the jq package); the synthetic generators clamp into this range.
const (
	MinQuality = 0.0
	MaxQuality = 1.0
)

// Errors returned by validation.
var (
	ErrQualityRange = errors.New("worker: quality outside [0, 1]")
	ErrNegativeCost = errors.New("worker: negative cost")
	ErrEmptyPool    = errors.New("worker: empty pool")
)

// Worker is a single crowd worker.
type Worker struct {
	// ID is an optional human-readable identifier ("A", "w17", ...).
	ID string
	// Quality is the probability the worker votes for the true answer.
	Quality float64
	// Cost is the monetary incentive required for one vote.
	Cost float64
}

// Validate reports whether the worker's parameters are in range.
func (w Worker) Validate() error {
	if w.Quality < MinQuality || w.Quality > MaxQuality ||
		w.Quality != w.Quality { // NaN
		return fmt.Errorf("%w: worker %q has quality %v", ErrQualityRange, w.ID, w.Quality)
	}
	if w.Cost < 0 || w.Cost != w.Cost {
		return fmt.Errorf("%w: worker %q has cost %v", ErrNegativeCost, w.ID, w.Cost)
	}
	return nil
}

// String implements fmt.Stringer.
func (w Worker) String() string {
	if w.ID != "" {
		return fmt.Sprintf("%s(q=%.3f,c=%.3f)", w.ID, w.Quality, w.Cost)
	}
	return fmt.Sprintf("(q=%.3f,c=%.3f)", w.Quality, w.Cost)
}

// Pool is an ordered collection of candidate workers. A jury is itself a
// Pool: the subset of candidates chosen to vote.
type Pool []Worker

// NewPool builds a pool from parallel quality and cost slices, assigning
// sequential IDs w0, w1, ... It panics if the slices have different lengths;
// this is a programming error, not an input error.
func NewPool(qualities, costs []float64) Pool {
	if len(qualities) != len(costs) {
		panic(fmt.Sprintf("worker: NewPool length mismatch: %d qualities, %d costs",
			len(qualities), len(costs)))
	}
	p := make(Pool, len(qualities))
	for i := range qualities {
		p[i] = Worker{ID: fmt.Sprintf("w%d", i), Quality: qualities[i], Cost: costs[i]}
	}
	return p
}

// UniformCost builds a pool in which every worker has the same cost.
func UniformCost(qualities []float64, cost float64) Pool {
	p := make(Pool, len(qualities))
	for i, q := range qualities {
		p[i] = Worker{ID: fmt.Sprintf("w%d", i), Quality: q, Cost: cost}
	}
	return p
}

// Validate checks every worker in the pool.
func (p Pool) Validate() error {
	if len(p) == 0 {
		return ErrEmptyPool
	}
	for i, w := range p {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	return nil
}

// Qualities returns the workers' qualities in pool order.
func (p Pool) Qualities() []float64 {
	qs := make([]float64, len(p))
	for i, w := range p {
		qs[i] = w.Quality
	}
	return qs
}

// Costs returns the workers' costs in pool order.
func (p Pool) Costs() []float64 {
	cs := make([]float64, len(p))
	for i, w := range p {
		cs[i] = w.Cost
	}
	return cs
}

// TotalCost is the jury cost: the sum of the members' costs.
func (p Pool) TotalCost() float64 {
	var sum float64
	for _, w := range p {
		sum += w.Cost
	}
	return sum
}

// MeanQuality returns the average quality, or 0 for an empty pool.
func (p Pool) MeanQuality() float64 {
	if len(p) == 0 {
		return 0
	}
	var sum float64
	for _, w := range p {
		sum += w.Quality
	}
	return sum / float64(len(p))
}

// MaxQuality returns the highest quality in the pool, or 0 if empty.
func (p Pool) MaxQuality() float64 {
	var best float64
	for _, w := range p {
		if w.Quality > best {
			best = w.Quality
		}
	}
	return best
}

// Clone returns a deep copy of the pool.
func (p Pool) Clone() Pool {
	out := make(Pool, len(p))
	copy(out, p)
	return out
}

// Subset returns the pool restricted to the given indices, in the given
// order. It panics on out-of-range indices.
func (p Pool) Subset(indices []int) Pool {
	out := make(Pool, len(indices))
	for i, idx := range indices {
		out[i] = p[idx]
	}
	return out
}

// SubsetInto appends the workers at the given indices to dst and returns
// it, letting hot paths reuse one backing array across many subset
// evaluations instead of allocating with Subset. dst may be nil. It
// panics on out-of-range indices.
func (p Pool) SubsetInto(dst Pool, indices []int) Pool {
	for _, idx := range indices {
		dst = append(dst, p[idx])
	}
	return dst
}

// SortByQualityDesc returns a copy sorted by decreasing quality, breaking
// ties by increasing cost (cheaper first) and then by pool order so the sort
// is deterministic.
func (p Pool) SortByQualityDesc() Pool {
	out := p.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		return out[i].Cost < out[j].Cost
	})
	return out
}

// SortByCostAsc returns a copy sorted by increasing cost, breaking ties by
// decreasing quality.
func (p Pool) SortByCostAsc() Pool {
	out := p.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Quality > out[j].Quality
	})
	return out
}

// Affordable reports whether the pool's total cost fits within budget.
func (p Pool) Affordable(budget float64) bool {
	return p.TotalCost() <= budget
}

// String renders the pool compactly, e.g. "[A(q=0.770,c=9.000) ...]".
func (p Pool) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, w := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Normalize maps every worker with quality below 0.5 to its reinterpreted
// counterpart with quality 1−q (Section 3.3 of the paper: a vote by a worker
// with q < 0.5 carries the same information as the opposite vote by a worker
// with quality 1−q). The returned flipped slice marks which workers were
// reinterpreted so vote streams can be adjusted consistently.
//
// Jury Quality under Bayesian Voting is invariant under this transformation,
// which is exploited by the approximation algorithm in package jq.
func (p Pool) Normalize() (normalized Pool, flipped []bool) {
	normalized = p.Clone()
	flipped = make([]bool, len(p))
	for i, w := range normalized {
		if w.Quality < 0.5 {
			normalized[i].Quality = 1 - w.Quality
			flipped[i] = true
		}
	}
	return normalized, flipped
}
