package worker

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestWorkerValidate(t *testing.T) {
	tests := []struct {
		name string
		w    Worker
		want error
	}{
		{"valid", Worker{ID: "a", Quality: 0.7, Cost: 1}, nil},
		{"boundary low quality", Worker{Quality: 0, Cost: 0}, nil},
		{"boundary high quality", Worker{Quality: 1, Cost: 0}, nil},
		{"quality too high", Worker{Quality: 1.01, Cost: 1}, ErrQualityRange},
		{"quality negative", Worker{Quality: -0.1, Cost: 1}, ErrQualityRange},
		{"quality NaN", Worker{Quality: math.NaN(), Cost: 1}, ErrQualityRange},
		{"negative cost", Worker{Quality: 0.5, Cost: -1}, ErrNegativeCost},
		{"NaN cost", Worker{Quality: 0.5, Cost: math.NaN()}, ErrNegativeCost},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.w.Validate()
			if tt.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tt.want)
			}
		})
	}
}

func TestPoolValidateEmpty(t *testing.T) {
	var p Pool
	if err := p.Validate(); !errors.Is(err, ErrEmptyPool) {
		t.Fatalf("Validate() = %v, want ErrEmptyPool", err)
	}
}

func TestPoolValidateReportsIndex(t *testing.T) {
	p := Pool{{Quality: 0.5, Cost: 1}, {Quality: 2, Cost: 1}}
	err := p.Validate()
	if !errors.Is(err, ErrQualityRange) {
		t.Fatalf("Validate() = %v, want ErrQualityRange", err)
	}
}

func TestNewPool(t *testing.T) {
	p := NewPool([]float64{0.7, 0.8}, []float64{1, 2})
	if len(p) != 2 {
		t.Fatalf("len = %d, want 2", len(p))
	}
	if p[0].ID != "w0" || p[1].ID != "w1" {
		t.Errorf("IDs = %q, %q, want w0, w1", p[0].ID, p[1].ID)
	}
	if p[1].Quality != 0.8 || p[1].Cost != 2 {
		t.Errorf("p[1] = %v, want q=0.8 c=2", p[1])
	}
}

func TestNewPoolPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool did not panic on length mismatch")
		}
	}()
	NewPool([]float64{0.7}, []float64{1, 2})
}

func TestUniformCost(t *testing.T) {
	p := UniformCost([]float64{0.6, 0.7, 0.8}, 3)
	for i, w := range p {
		if w.Cost != 3 {
			t.Errorf("worker %d cost = %v, want 3", i, w.Cost)
		}
	}
}

func TestTotalCost(t *testing.T) {
	p := NewPool([]float64{0.7, 0.8, 0.9}, []float64{5, 5, 2})
	if got := p.TotalCost(); got != 12 {
		t.Fatalf("TotalCost = %v, want 12", got)
	}
	if !p.Affordable(12) {
		t.Error("Affordable(12) = false, want true")
	}
	if p.Affordable(11.999) {
		t.Error("Affordable(11.999) = true, want false")
	}
}

func TestMeanQuality(t *testing.T) {
	p := UniformCost([]float64{0.6, 0.8}, 1)
	if got := p.MeanQuality(); math.Abs(got-0.7) > 1e-15 {
		t.Fatalf("MeanQuality = %v, want 0.7", got)
	}
	var empty Pool
	if got := empty.MeanQuality(); got != 0 {
		t.Fatalf("empty MeanQuality = %v, want 0", got)
	}
}

func TestMaxQuality(t *testing.T) {
	p := UniformCost([]float64{0.6, 0.93, 0.8}, 1)
	if got := p.MaxQuality(); got != 0.93 {
		t.Fatalf("MaxQuality = %v, want 0.93", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewPool([]float64{0.7}, []float64{1})
	c := p.Clone()
	c[0].Quality = 0.9
	if p[0].Quality != 0.7 {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestSubset(t *testing.T) {
	p := NewPool([]float64{0.5, 0.6, 0.7, 0.8}, []float64{1, 2, 3, 4})
	s := p.Subset([]int{3, 1})
	if len(s) != 2 || s[0].Quality != 0.8 || s[1].Quality != 0.6 {
		t.Fatalf("Subset = %v", s)
	}
}

func TestSortByQualityDesc(t *testing.T) {
	p := NewPool([]float64{0.6, 0.9, 0.7, 0.9}, []float64{1, 5, 2, 3})
	s := p.SortByQualityDesc()
	wantQ := []float64{0.9, 0.9, 0.7, 0.6}
	for i, w := range s {
		if w.Quality != wantQ[i] {
			t.Fatalf("sorted qualities = %v, want %v", s.Qualities(), wantQ)
		}
	}
	// Tie between the two 0.9 workers: cheaper first.
	if s[0].Cost != 3 || s[1].Cost != 5 {
		t.Fatalf("tie-break by cost failed: %v", s)
	}
	// Original untouched.
	if p[0].Quality != 0.6 {
		t.Fatal("SortByQualityDesc mutated the receiver")
	}
}

func TestSortByCostAsc(t *testing.T) {
	p := NewPool([]float64{0.6, 0.9, 0.7}, []float64{3, 1, 1})
	s := p.SortByCostAsc()
	if s[0].Cost != 1 || s[1].Cost != 1 || s[2].Cost != 3 {
		t.Fatalf("sorted costs = %v", s.Costs())
	}
	// Tie at cost 1: higher quality first.
	if s[0].Quality != 0.9 {
		t.Fatalf("tie-break by quality failed: %v", s)
	}
}

func TestQualitiesCostsRoundTrip(t *testing.T) {
	qs := []float64{0.55, 0.66, 0.77}
	cs := []float64{1, 2, 3}
	p := NewPool(qs, cs)
	gotQ, gotC := p.Qualities(), p.Costs()
	for i := range qs {
		if gotQ[i] != qs[i] || gotC[i] != cs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestNormalizeFlipsLowQuality(t *testing.T) {
	p := NewPool([]float64{0.3, 0.5, 0.8}, []float64{1, 1, 1})
	n, flipped := p.Normalize()
	if n[0].Quality != 0.7 || !flipped[0] {
		t.Errorf("worker 0: quality=%v flipped=%v, want 0.7/true", n[0].Quality, flipped[0])
	}
	if n[1].Quality != 0.5 || flipped[1] {
		t.Errorf("worker 1: quality=%v flipped=%v, want 0.5/false", n[1].Quality, flipped[1])
	}
	if n[2].Quality != 0.8 || flipped[2] {
		t.Errorf("worker 2: quality=%v flipped=%v, want 0.8/false", n[2].Quality, flipped[2])
	}
	if p[0].Quality != 0.3 {
		t.Error("Normalize mutated the receiver")
	}
}

func TestStringContainsID(t *testing.T) {
	w := Worker{ID: "A", Quality: 0.77, Cost: 9}
	if got := w.String(); got != "A(q=0.770,c=9.000)" {
		t.Fatalf("String = %q", got)
	}
	anon := Worker{Quality: 0.5, Cost: 1}
	if got := anon.String(); got != "(q=0.500,c=1.000)" {
		t.Fatalf("anonymous String = %q", got)
	}
}

func TestPoolString(t *testing.T) {
	p := Pool{{ID: "A", Quality: 0.7, Cost: 5}, {ID: "B", Quality: 0.8, Cost: 6}}
	want := "[A(q=0.700,c=5.000) B(q=0.800,c=6.000)]"
	if got := p.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: sorting never changes the multiset of workers.
func TestSortPreservesMultisetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%20) + 1
		p := make(Pool, size)
		for i := range p {
			p[i] = Worker{Quality: rng.Float64(), Cost: rng.Float64() * 10}
		}
		s := p.SortByQualityDesc()
		a, b := p.Qualities(), s.Qualities()
		sort.Float64s(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Must be non-increasing.
		for i := 1; i < len(s); i++ {
			if s[i].Quality > s[i-1].Quality {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize is idempotent and never yields quality < 0.5.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%20) + 1
		p := make(Pool, size)
		for i := range p {
			p[i] = Worker{Quality: rng.Float64(), Cost: 1}
		}
		n1, _ := p.Normalize()
		for _, w := range n1 {
			if w.Quality < 0.5 {
				return false
			}
		}
		n2, flipped2 := n1.Normalize()
		for i := range n2 {
			if n2[i].Quality != n1[i].Quality || flipped2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
