package walltest

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wal/errfs"
	"repro/jury/serve"
)

// replScript is a mutation mix spanning both WAL arms — binary registry,
// multi-choice pools, and a session — so convergence checks cover every
// replicated record type.
func replScript() []Step {
	return append(multiScript(),
		OpenSession(serve.SessionRequest{Confidence: 0.95, Budget: 40}),
		SessionVote("s1", "ann", 0),
		SessionVote("s1", "bob", 1),
		Ingest(ev("ann", true), ev("bob", true)),
	)
}

// TestReplFollowersConverge is the basic shipping contract: one follower
// streaming live while the primary mutates, another joining afterwards
// and replaying the full history from LSN 0 — both must end bit-identical
// to the primary (state dump, pool signatures, selection probes).
func TestReplFollowersConverge(t *testing.T) {
	primary := Start(t, BaseConfig(t.TempDir()))
	live := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)

	primary.Drive(replScript())
	late := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	AssertConverged(t, primary, live, late)

	// The follower knows and reports what it is.
	st := live.Srv.ReplStatus()
	if st == nil || st.Primary != primary.HTTP.URL || !st.Connected || st.LagRecords != 0 {
		t.Fatalf("follower ReplStatus = %+v, want connected to %s with zero lag", st, primary.HTTP.URL)
	}
	if ps := primary.Srv.ReplStatus(); ps != nil {
		t.Fatalf("primary reports a ReplStatus: %+v", ps)
	}
	resp, err := http.Get(live.HTTP.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower readyz: %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestReplFollowerRejectsMutations asserts the write-path fence: a
// mutation sent to a follower is refused with 421 and the primary's
// address in X-Juryd-Primary, before any body processing could journal.
func TestReplFollowerRejectsMutations(t *testing.T) {
	primary := Start(t, BaseConfig(t.TempDir()))
	primary.Drive([]Step{Register(w("ann", 0.8, 3))})
	f := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	WaitCaughtUp(t, primary, f)

	resp, err := http.Post(f.HTTP.URL+"/v1/votes/batch", "application/json",
		strings.NewReader(`{"events":[{"worker_id":"ann","correct":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower mutation status = %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(server.PrimaryHeader); got != primary.HTTP.URL {
		t.Fatalf("%s = %q, want %q", server.PrimaryHeader, got, primary.HTTP.URL)
	}
	// Nothing was journaled by the refused write.
	if applied := f.Srv.AppliedLSN(); uint64(applied) != primary.Srv.PersistenceStatus().DurableLSN {
		t.Fatalf("refused mutation moved the follower: applied %d", applied)
	}
}

// TestReplFollowerKillRestartMidStream kills a follower with the stream
// in flight, tears its WAL tail mid-record (the write the kill cut
// short), and restarts it: recovery drops the torn record, the stream
// re-ships it, and the follower converges bit-exactly.
func TestReplFollowerKillRestartMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	script := randomScript(rng, 60)
	primary := Start(t, BaseConfig(t.TempDir()))
	fDir := t.TempDir()
	f := StartFollower(t, BaseConfig(fDir), primary.HTTP.URL)

	primary.Drive(script[:20])
	WaitCaughtUp(t, primary, f)
	primary.Drive(script[20:40])
	f.Kill() // mid-stream: chunk 2 may be partially applied
	_, size := TailSegment(t, fDir)
	Tear(t, fDir, size-3) // the kill also cut the last local write short

	primary.Drive(script[40:])
	restarted := f.Restart(t)
	AssertConverged(t, primary, restarted)
}

// TestReplRotationTruncationMidStream runs the primary with tiny segments
// (constant rotation) and snapshot-truncates its log mid-stream. A
// caught-up follower sails through; a fresh follower that tries to
// stream the truncated history from LSN 0 is told 410 (terminal
// ErrSnapshotNeeded); bootstrapping from the snapshot joins it cleanly.
func TestReplRotationTruncationMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	script := randomScript(rng, 40)
	cfgP := BaseConfig(t.TempDir())
	cfgP.SegmentBytes = 256
	primary := Start(t, cfgP)
	live := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)

	primary.Drive(script[:25])
	WaitCaughtUp(t, primary, live)
	primary.Drive([]Step{Snapshot()}) // checkpoints and truncates the log
	primary.Drive(script[25:])

	stranded := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	if err := stranded.WaitDone(10 * time.Second); !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("fresh follower against a truncated log: %v, want ErrSnapshotNeeded", err)
	}
	stranded.CrashDirty()

	joined := BootstrapFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	AssertConverged(t, primary, live, joined)
}

// TestReplPropertyBootstrapEqualsFullStream is the satellite property
// test: for random mutation scripts, a follower built from
// snapshot-bootstrap plus the streamed tail must equal a follower that
// streamed the entire history from LSN 0 — and both must equal the
// primary, byte-exact in registry, session and multi state.
func TestReplPropertyBootstrapEqualsFullStream(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := randomScript(rng, 50)
			primary := Start(t, BaseConfig(t.TempDir()))
			full := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)

			primary.Drive(script[:30])
			WaitCaughtUp(t, primary, full)
			primary.Drive([]Step{Snapshot()}) // late joiners must bootstrap now
			primary.Drive(script[30:])

			boot := BootstrapFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
			AssertConverged(t, primary, full, boot)

			// The convergence fingerprint agrees everywhere.
			want := primary.Srv.PersistenceStatus()
			for _, fe := range []*FollowerEnv{full, boot} {
				got := fe.Srv.PersistenceStatus()
				if got.StateSHA256 == "" || got.StateSHA256 != want.StateSHA256 {
					t.Fatalf("state_sha256 = %q, want %q", got.StateSHA256, want.StateSHA256)
				}
				if got.NextLSN != want.NextLSN {
					t.Fatalf("next_lsn = %d, want %d", got.NextLSN, want.NextLSN)
				}
			}
		})
	}
}

// TestReplStreamSevering cuts stream response bodies at random byte
// boundaries — including mid-frame — on every other poll. The follower
// must apply each delivered prefix, re-request the rest, and converge.
func TestReplStreamSevering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	primary := Start(t, BaseConfig(t.TempDir()))
	var mu sync.Mutex
	cutRng := rand.New(rand.NewSource(7))
	polls := 0
	proxy := StartSeveringProxy(t, primary.HTTP.URL, func(bodyLen int) int {
		mu.Lock()
		defer mu.Unlock()
		polls++
		if polls%2 == 0 {
			return bodyLen // alternate full deliveries guarantee progress
		}
		return cutRng.Intn(bodyLen + 1)
	})
	f := StartFollower(t, BaseConfig(t.TempDir()), proxy.URL)

	primary.Drive(randomScript(rng, 60))
	AssertConverged(t, primary, f)
	mu.Lock()
	defer mu.Unlock()
	if polls == 0 {
		t.Fatal("proxy saw no stream traffic")
	}
}

// TestReplFollowerLocalWALFault fails the follower's own journal mid-
// replication: the follower must degrade (stop advancing), keep serving
// reads at its last applied state, report the primary's lead as lag, and
// — restarted against a healthy disk — recover its local prefix and
// converge.
func TestReplFollowerLocalWALFault(t *testing.T) {
	primary := Start(t, BaseConfig(t.TempDir()))
	script := []Step{
		Register(w("ann", 0.8, 3), w("bob", 0.7, 2)),
		Ingest(ev("ann", true)),
		Ingest(ev("bob", false)),
		Ingest(ev("ann", true)),
		Ingest(ev("bob", true)),
		Ingest(ev("ann", false)),
		Ingest(ev("bob", true)),
		Ingest(ev("ann", true)),
	}
	primary.Drive(script)

	fDir := t.TempDir()
	cfgF := BaseConfig(fDir)
	cfgF.FS = errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpWrite, Path: "wal-", After: 4})
	f := StartFollower(t, cfgF, primary.HTTP.URL)
	if err := f.WaitDone(10 * time.Second); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("follower with failing WAL exited with %v, want ErrDegraded", err)
	}
	if applied := uint64(f.Srv.AppliedLSN()); applied != 4 {
		t.Fatalf("follower applied %d records through a WAL that fails at the 5th, want 4", applied)
	}
	if degraded, _ := f.Srv.DegradedState(); !degraded {
		t.Fatal("follower did not degrade on local WAL failure")
	}
	st := f.Srv.ReplStatus()
	if st == nil || st.LagRecords != uint64(len(script))-4 {
		t.Fatalf("follower lag = %+v, want %d records behind", st, len(script)-4)
	}
	// Reads keep serving the last applied state; readiness flags the node.
	if _, err := f.Client.Workers(t.Context()); err != nil {
		t.Fatalf("degraded follower list: %v", err)
	}
	if _, err := f.Client.Select(t.Context(), serve.SelectRequest{Budget: 10}); err != nil {
		t.Fatalf("degraded follower select: %v", err)
	}
	resp, err := http.Get(f.HTTP.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded follower readyz: %v %d, want 503", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Restart on a healthy disk: local recovery replays the 4 journaled
	// records, the stream ships the rest, and the follower converges.
	f.Kill()
	restarted := StartFollower(t, BaseConfig(fDir), primary.HTTP.URL)
	AssertConverged(t, primary, restarted)
}

// TestReplPrimaryDegradesFollowerHoldsDurable is the power-loss chaos
// satellite: the primary's fsync fails mid-script with the unsynced tail
// dropped. Because only records at or below the durability watermark are
// ever shipped, the follower must hold at exactly the primary's durable
// LSN — never applying the record a power loss would revoke — while both
// nodes keep serving reads.
func TestReplPrimaryDegradesFollowerHoldsDurable(t *testing.T) {
	script := chaosScript()
	primary, _ := StartFaulty(t, BaseConfig(t.TempDir()),
		errfs.Fault{Op: errfs.OpSync, Path: "wal-", After: 3, DropUnsynced: true})
	f := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)

	acked := primary.DriveToFailure(script)
	if acked != 3 {
		t.Fatalf("acked %d steps, want 3", acked)
	}
	AssertDegradedReads(t, primary)

	WaitCaughtUp(t, primary, f)
	durable := primary.Srv.PersistenceStatus().DurableLSN
	if durable != 3 {
		t.Fatalf("primary durable LSN = %d, want 3", durable)
	}
	// Give the stream a few more polls: the follower must hold, not creep
	// past the watermark toward the primary's revocable in-memory record.
	time.Sleep(50 * time.Millisecond)
	if applied := uint64(f.Srv.AppliedLSN()); applied != durable {
		t.Fatalf("follower applied %d, want to hold at durable %d", applied, durable)
	}
	// The follower's state is exactly the acked prefix — bit-identical to
	// a reference that never saw the revoked mutation.
	reference := Reference(t, BaseConfig(""), script, acked)
	AssertSameState(t, reference, f.Env)
	// The stream still answers (a poisoned log serves its committed
	// prefix), so the follower reports itself connected and caught up.
	st := f.Srv.ReplStatus()
	if st == nil || !st.Connected || st.LagRecords != 0 {
		t.Fatalf("follower ReplStatus = %+v, want connected at zero lag", st)
	}
}
