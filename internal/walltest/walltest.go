// Package walltest is the crash-recovery test harness for the durable
// juryd server. A test scripts a mutation sequence, drives it over HTTP
// against a durable server, simulates a crash — optionally tearing the
// WAL tail at a chosen byte offset, the way kill -9 mid-write would —
// recovers a fresh server from the surviving files, and asserts the
// recovered state is bit-identical to a reference obtained by replaying
// the same script into a plain in-memory server: the full state dump
// (posteriors included), the pool signature, and the selection responses
// (hence the selection-cache keys) must all match exactly.
package walltest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/server"
	"repro/jury/serve"
)

// Env is one running server (durable or in-memory reference) plus the
// HTTP plumbing the scripts drive it through.
type Env struct {
	t      testing.TB
	Dir    string // data dir; "" for an in-memory reference
	Srv    *server.Server
	HTTP   *httptest.Server
	Client *serve.Client
}

// BaseConfig is the durable server configuration the harness uses; tests
// tweak SegmentBytes to force rotation.
func BaseConfig(dir string) server.Config {
	return server.Config{Alpha: 0.5, Seed: 1, DataDir: dir}
}

// Start opens a server under cfg (durable when cfg.DataDir is set,
// recovering whatever the directory holds) and serves it over HTTP.
func Start(t testing.TB, cfg server.Config) *Env {
	t.Helper()
	srv, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("walltest: open server: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &Env{t: t, Dir: cfg.DataDir, Srv: srv, HTTP: hs, Client: serve.NewClient(hs.URL)}
}

// Crash simulates kill -9: stop serving and drop the WAL handle with no
// final snapshot. The on-disk state is exactly what the journal held.
func (e *Env) Crash() {
	e.t.Helper()
	e.HTTP.Close()
	if err := e.Srv.ClosePersistence(); err != nil {
		e.t.Fatalf("walltest: crash: %v", err)
	}
}

// Step is one scripted mutation.
type Step func(e *Env) error

// Drive applies the script in order, failing the test on any step error,
// and returns the byte size of the newest WAL segment after each step —
// the offsets Tear targets to cut mid-record.
func (e *Env) Drive(script []Step) []int64 {
	e.t.Helper()
	offsets := make([]int64, len(script))
	for i, step := range script {
		if err := step(e); err != nil {
			e.t.Fatalf("walltest: step %d: %v", i, err)
		}
		if e.Dir != "" {
			_, offsets[i] = TailSegment(e.t, e.Dir)
		}
	}
	return offsets
}

// Reference replays script[:n] into a fresh in-memory server built from
// cfg with durability stripped.
func Reference(t testing.TB, cfg server.Config, script []Step, n int) *Env {
	t.Helper()
	cfg.DataDir = ""
	env := Start(t, cfg)
	env.Drive(script[:n])
	return env
}

// TailSegment returns the path and size of the newest WAL segment in
// dir. Fixed-width hex names make lexical order equal LSN order.
func TailSegment(t testing.TB, dir string) (string, int64) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("walltest: no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(paths)
	last := paths[len(paths)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatalf("walltest: stat %s: %v", last, err)
	}
	return last, st.Size()
}

// Tear truncates the newest WAL segment to the absolute byte size — the
// kill-at-byte-offset primitive of the harness.
func Tear(t testing.TB, dir string, size int64) {
	t.Helper()
	path, cur := TailSegment(t, dir)
	if size > cur {
		t.Fatalf("walltest: tear to %d beyond segment size %d", size, cur)
	}
	if err := os.Truncate(path, size); err != nil {
		t.Fatalf("walltest: truncate %s: %v", path, err)
	}
}

// CopyDir clones a data directory (flat: segments and snapshots), so one
// mutation run can be torn at several offsets.
func CopyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("walltest: read %s: %v", src, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("walltest: copy %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatalf("walltest: copy %s: %v", e.Name(), err)
		}
	}
	return dst
}

// AssertSameState asserts want and got hold bit-identical durable state:
// the full JSON state dump (Beta posteriors, session log-odds bits, id
// counters), the memoized pool signature, and — the selection cache's
// consistency token — identical selection responses for a probe sweep,
// so every cache key the recovered server constructs matches the
// reference's.
func AssertSameState(t testing.TB, want, got *Env) {
	t.Helper()
	dw, err := want.Srv.DebugState()
	if err != nil {
		t.Fatalf("walltest: reference DebugState: %v", err)
	}
	dg, err := got.Srv.DebugState()
	if err != nil {
		t.Fatalf("walltest: recovered DebugState: %v", err)
	}
	if !bytes.Equal(dw, dg) {
		t.Fatalf("walltest: state dumps differ\nreference: %s\nrecovered: %s", dw, dg)
	}
	ctx := context.Background()
	lw, err := want.Client.Workers(ctx)
	if err != nil {
		t.Fatalf("walltest: reference Workers: %v", err)
	}
	lg, err := got.Client.Workers(ctx)
	if err != nil {
		t.Fatalf("walltest: recovered Workers: %v", err)
	}
	if lw.Signature != lg.Signature {
		t.Fatalf("walltest: pool signatures differ: reference %q, recovered %q",
			lw.Signature, lg.Signature)
	}
	assertSameMultiState(t, want, got)
	if len(lw.Workers) == 0 {
		return // nothing to select over
	}
	for _, budget := range []float64{0, 3, 7.5, 1e9} {
		rw, errW := want.Client.Select(ctx, serve.SelectRequest{Budget: budget})
		rg, errG := got.Client.Select(ctx, serve.SelectRequest{Budget: budget})
		if (errW == nil) != (errG == nil) {
			t.Fatalf("walltest: select(budget %v) errors differ: %v vs %v", budget, errW, errG)
		}
		if errW != nil {
			continue
		}
		rw.Cached, rg.Cached = false, false
		if rw.Signature != rg.Signature {
			t.Fatalf("walltest: select(budget %v) signatures differ: %q vs %q",
				budget, rw.Signature, rg.Signature)
		}
		if math.Float64bits(rw.JQ) != math.Float64bits(rg.JQ) {
			t.Fatalf("walltest: select(budget %v) JQ differs: %v vs %v", budget, rw.JQ, rg.JQ)
		}
		if fmt.Sprint(rw.Jury) != fmt.Sprint(rg.Jury) {
			t.Fatalf("walltest: select(budget %v) juries differ:\n%v\n%v", budget, rw.Jury, rg.Jury)
		}
	}
}

// assertSameMultiState compares the multi-choice pools of two servers:
// pool inventory and signatures (which hash the full confusion-matrix
// state), plus a multi-select probe per pool so the recovered server
// constructs exactly the reference's cache keys and juries.
func assertSameMultiState(t testing.TB, want, got *Env) {
	t.Helper()
	ctx := context.Background()
	pw, err := want.Client.MultiPools(ctx)
	if err != nil {
		t.Fatalf("walltest: reference MultiPools: %v", err)
	}
	pg, err := got.Client.MultiPools(ctx)
	if err != nil {
		t.Fatalf("walltest: recovered MultiPools: %v", err)
	}
	if fmt.Sprint(pw) != fmt.Sprint(pg) {
		t.Fatalf("walltest: multi pools differ:\nreference: %v\nrecovered: %v", pw, pg)
	}
	for _, pool := range pw {
		if pool.Workers == 0 {
			continue
		}
		for _, budget := range []float64{0, 4, 1e9} {
			rw, errW := want.Client.MultiSelect(ctx, pool.Name, serve.MultiSelectRequest{Budget: budget})
			rg, errG := got.Client.MultiSelect(ctx, pool.Name, serve.MultiSelectRequest{Budget: budget})
			if (errW == nil) != (errG == nil) {
				t.Fatalf("walltest: multi select(%s, budget %v) errors differ: %v vs %v",
					pool.Name, budget, errW, errG)
			}
			if errW != nil {
				continue
			}
			rw.Cached, rg.Cached = false, false
			if rw.Signature != rg.Signature {
				t.Fatalf("walltest: multi select(%s, budget %v) signatures differ: %q vs %q",
					pool.Name, budget, rw.Signature, rg.Signature)
			}
			if math.Float64bits(rw.JQ) != math.Float64bits(rg.JQ) {
				t.Fatalf("walltest: multi select(%s, budget %v) JQ differs: %v vs %v",
					pool.Name, budget, rw.JQ, rg.JQ)
			}
			if fmt.Sprint(rw.Jury) != fmt.Sprint(rg.Jury) {
				t.Fatalf("walltest: multi select(%s, budget %v) juries differ:\n%v\n%v",
					pool.Name, budget, rw.Jury, rg.Jury)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Step constructors.

// Register adds workers.
func Register(specs ...serve.WorkerSpec) Step {
	return func(e *Env) error {
		return e.Client.RegisterWorkers(context.Background(), specs)
	}
}

// Ingest feeds one batch of graded vote events. The Idempotency-Key is
// drawn once at construction, so driving the same Step into the durable
// run and the in-memory reference journals identical records — the
// dedup-key state is part of the bit-exact recovery contract.
func Ingest(events ...serve.VoteEvent) Step {
	key := serve.NewIdempotencyKey()
	return func(e *Env) error {
		_, err := e.Client.IngestVotesKeyed(context.Background(), events, key)
		return err
	}
}

// Update replaces one worker's quality and cost.
func Update(spec serve.WorkerSpec) Step {
	return func(e *Env) error {
		_, err := e.Client.UpdateWorker(context.Background(), spec)
		return err
	}
}

// Remove deregisters one worker.
func Remove(id string) Step {
	return func(e *Env) error {
		return e.Client.RemoveWorker(context.Background(), id)
	}
}

// OpenSession opens an online collection session (ids are assigned
// sequentially: s1, s2, ... within one server).
func OpenSession(req serve.SessionRequest) Step {
	return func(e *Env) error {
		_, err := e.Client.OpenSession(context.Background(), req)
		return err
	}
}

// SessionVote feeds one vote into a session. Conflict replies (session
// already done, vote over budget) are tolerated — they are deterministic,
// so reference and recovered runs agree on them — which lets random
// scripts vote blindly.
func SessionVote(sessionID, workerID string, vote int) Step {
	return func(e *Env) error {
		_, err := e.Client.SessionVote(context.Background(), sessionID, workerID, vote)
		var apiErr *serve.APIError
		if errors.As(err, &apiErr) && apiErr.Status == 409 {
			return nil
		}
		return err
	}
}

// CloseSession removes a session.
func CloseSession(id string) Step {
	return func(e *Env) error {
		return e.Client.CloseSession(context.Background(), id)
	}
}

// Snapshot checkpoints the durable server's state (no-op on the
// in-memory reference, so scripts containing it replay cleanly).
func Snapshot() Step {
	return func(e *Env) error {
		return e.Srv.SnapshotNow()
	}
}

// CreateMultiPool creates a multi-choice pool.
func CreateMultiPool(req serve.MultiCreateRequest) Step {
	return func(e *Env) error {
		_, err := e.Client.CreateMultiPool(context.Background(), req)
		return err
	}
}

// RegisterMulti adds confusion-matrix workers to an existing pool.
func RegisterMulti(pool string, specs ...serve.MultiWorkerSpec) Step {
	return func(e *Env) error {
		_, err := e.Client.RegisterMultiWorkers(context.Background(), pool, specs)
		return err
	}
}

// MultiIngest feeds one batch of graded multi-label vote events, under
// one construction-time Idempotency-Key (see Ingest).
func MultiIngest(pool string, events ...serve.MultiVoteEvent) Step {
	key := serve.NewIdempotencyKey()
	return func(e *Env) error {
		_, err := e.Client.IngestMultiVotesKeyed(context.Background(), pool, events, key)
		return err
	}
}

// DropMultiPool deletes a pool.
func DropMultiPool(name string) Step {
	return func(e *Env) error {
		return e.Client.DropMultiPool(context.Background(), name)
	}
}
