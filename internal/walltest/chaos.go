// Chaos-mode extensions of the walltest harness: scripted disk-fault
// runs. A chaos test starts a durable server over a fault-injecting
// filesystem, drives mutations into the fault, and asserts the failure
// contract — acked mutations survive recovery bit-exactly, unacked ones
// vanish, and the degraded server keeps answering reads.
package walltest

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wal/errfs"
	"repro/jury/serve"
)

// StartFaulty opens a durable server over an errfs injector wrapping the
// real filesystem, with per-record fsync on so every acked mutation is a
// stable-storage fact. The env's client has retries disabled: a chaos
// run wants to observe the first 503, not paper over it.
func StartFaulty(t testing.TB, cfg server.Config, faults ...errfs.Fault) (*Env, *errfs.FS) {
	t.Helper()
	fsys := errfs.New(wal.OSFS(), faults...)
	cfg.Fsync = true
	cfg.FS = fsys
	env := Start(t, cfg)
	env.Client.WithRetry(serve.RetryPolicy{MaxAttempts: 1})
	return env, fsys
}

// CrashDirty simulates kill -9 on a server whose WAL is already failing:
// stop serving and abandon the log. Close errors are what a dying disk
// produces and are deliberately ignored — the surviving bytes are
// whatever the journal managed to sync.
func (e *Env) CrashDirty() {
	e.t.Helper()
	e.HTTP.Close()
	e.Srv.ClosePersistence()
}

// DriveToFailure applies the script in order until a step is refused
// with 503 — the scripted disk fault surfacing as degraded mode — and
// returns how many steps were acked before it. The whole script
// completing means the fault never fired: a broken test.
func (e *Env) DriveToFailure(script []Step) int {
	e.t.Helper()
	for i, step := range script {
		if err := step(e); err != nil {
			var apiErr *serve.APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
				return i
			}
			e.t.Fatalf("walltest: step %d failed outside the degraded contract: %v", i, err)
		}
	}
	e.t.Fatalf("walltest: script completed without tripping the injected fault")
	return -1
}

// AssertDegradedReads asserts the degraded-mode contract on a live env:
// the server admits it is degraded, keeps serving reads and selections,
// refuses mutations with 503 + Retry-After, stays live on /healthz, and
// reports not-ready on /readyz.
func AssertDegradedReads(t testing.TB, e *Env) {
	t.Helper()
	ctx := context.Background()
	degraded, cause := e.Srv.DegradedState()
	if !degraded || cause == nil {
		t.Fatalf("walltest: DegradedState() = %v, %v; want degraded with a cause", degraded, cause)
	}
	if _, err := e.Client.Workers(ctx); err != nil {
		t.Fatalf("walltest: degraded list: %v", err)
	}
	if _, err := e.Client.Select(ctx, serve.SelectRequest{Budget: 10}); err != nil {
		t.Fatalf("walltest: degraded select: %v", err)
	}
	_, err := e.Client.IngestVoteKeyed(ctx,
		serve.VoteEvent{WorkerID: "ann", Correct: true}, serve.NewIdempotencyKey())
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("walltest: degraded mutation = %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("walltest: degraded 503 has no Retry-After hint")
	}
	hResp, err := http.Get(e.HTTP.URL + "/healthz")
	if err != nil || hResp.StatusCode != http.StatusOK {
		t.Fatalf("walltest: degraded healthz: %v %d, want 200", err, hResp.StatusCode)
	}
	hResp.Body.Close()
	rResp, err := http.Get(e.HTTP.URL + "/readyz")
	if err != nil || rResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("walltest: degraded readyz: %v %d, want 503", err, rResp.StatusCode)
	}
	rResp.Body.Close()
}
