package walltest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/jury/serve"
)

func w(id string, quality, cost float64) serve.WorkerSpec {
	return serve.WorkerSpec{ID: id, Quality: quality, Cost: cost}
}

func ev(id string, correct bool) serve.VoteEvent {
	return serve.VoteEvent{WorkerID: id, Correct: correct}
}

// baseScript is the standard mutate phase: a registration, posterior
// drift from two ingest batches, and a session with votes.
func baseScript() []Step {
	return []Step{
		Register(w("ann", 0.8, 3), w("bob", 0.7, 2), w("cy", 0.6, 1)),
		Ingest(ev("ann", true), ev("bob", false), ev("cy", true)),
		OpenSession(serve.SessionRequest{Confidence: 0.95, Budget: 40}),
		SessionVote("s1", "ann", 0),
		Ingest(ev("cy", true), ev("cy", true), ev("ann", false)),
	}
}

// TestCrashRecoveryTornWrite kills the WAL mid-record at several byte
// offsets inside the final record: recovery must drop exactly the torn
// record and land bit-identical to a reference that never saw it.
func TestCrashRecoveryTornWrite(t *testing.T) {
	script := baseScript()
	dir := t.TempDir()
	env := Start(t, BaseConfig(dir))
	offsets := env.Drive(script)
	env.Crash()
	n := len(script)
	prev, last := offsets[n-2], offsets[n-1]
	if last <= prev {
		t.Fatalf("final step appended nothing: offsets %v", offsets)
	}
	cuts := []struct {
		name string
		size int64
		torn bool
	}{
		{"clean-boundary", prev, false},
		{"mid-header", prev + 4, true},
		{"start-of-payload", prev + 8, true},
		{"one-byte-short", last - 1, true},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			torn := CopyDir(t, dir)
			Tear(t, torn, cut.size)
			recovered := Start(t, BaseConfig(torn))
			reference := Reference(t, BaseConfig(""), script, n-1)
			AssertSameState(t, reference, recovered)
			status := recovered.Srv.PersistenceStatus()
			if !status.Enabled || status.Recovery == nil {
				t.Fatalf("recovered server reports no persistence: %+v", status)
			}
			if gotTorn := status.Recovery.TornBytesTruncated > 0; gotTorn != cut.torn {
				t.Errorf("TornBytesTruncated = %d, want torn=%v",
					status.Recovery.TornBytesTruncated, cut.torn)
			}
			if status.Recovery.RecordsReplayed != n-1 {
				t.Errorf("RecordsReplayed = %d, want %d", status.Recovery.RecordsReplayed, n-1)
			}
		})
	}
}

// TestCrashRecoveryEmptySegment covers the crash window right after
// segment rotation: a trailing zero-byte segment must recover to the
// full pre-crash state and stay appendable.
func TestCrashRecoveryEmptySegment(t *testing.T) {
	script := baseScript()
	dir := t.TempDir()
	cfg := BaseConfig(dir)
	cfg.SegmentBytes = 1 // every record rotates into its own segment
	env := Start(t, cfg)
	env.Drive(script)
	next := env.Srv.PersistenceStatus().NextLSN
	env.Crash()

	// The rotation had created the next segment file but no record
	// reached it. (Name format must match internal/wal's wal-%016x.log.)
	empty := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", next))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered := Start(t, cfg)
	reference := Reference(t, BaseConfig(""), script, len(script))
	AssertSameState(t, reference, recovered)

	// The empty segment is live: post-recovery mutations append to it
	// and the two servers stay in lockstep.
	extra := []Step{Ingest(ev("bob", true), ev("ann", true))}
	recovered.Drive(extra)
	reference.Drive(extra)
	AssertSameState(t, reference, recovered)
}

// TestCrashRecoveryTruncatedSegment tears a whole trailing segment down
// to zero bytes (crash before any of its record hit the disk).
func TestCrashRecoveryTruncatedSegment(t *testing.T) {
	script := baseScript()
	dir := t.TempDir()
	cfg := BaseConfig(dir)
	cfg.SegmentBytes = 1
	env := Start(t, cfg)
	env.Drive(script)
	env.Crash()
	Tear(t, dir, 0)
	recovered := Start(t, cfg)
	reference := Reference(t, BaseConfig(""), script, len(script)-1)
	AssertSameState(t, reference, recovered)
}

// TestCrashRecoverySnapshotPlusTail snapshots mid-script: recovery =
// snapshot + tail replay must equal the full-script reference, the WAL
// must have been truncated behind the snapshot, and only the tail may be
// replayed on boot.
func TestCrashRecoverySnapshotPlusTail(t *testing.T) {
	head := baseScript()
	tail := []Step{
		Ingest(ev("ann", true), ev("cy", false)),
		Update(w("bob", 0.75, 2.5)),
		SessionVote("s1", "cy", 1),
	}
	script := append(append(append([]Step{}, head...), Snapshot()), tail...)
	dir := t.TempDir()
	cfg := BaseConfig(dir)
	cfg.SegmentBytes = 1
	env := Start(t, cfg)
	env.Drive(script)
	env.Crash()

	recovered := Start(t, cfg)
	reference := Reference(t, BaseConfig(""), script, len(script))
	AssertSameState(t, reference, recovered)
	status := recovered.Srv.PersistenceStatus()
	if status.Recovery.SnapshotLSN != uint64(len(head)) {
		t.Errorf("SnapshotLSN = %d, want %d", status.Recovery.SnapshotLSN, len(head))
	}
	if status.Recovery.RecordsReplayed != len(tail) {
		t.Errorf("RecordsReplayed = %d, want %d (the tail only)",
			status.Recovery.RecordsReplayed, len(tail))
	}
	if status.Segments > len(tail)+1 {
		t.Errorf("%d segments survived the snapshot truncation, want <= %d",
			status.Segments, len(tail)+1)
	}
}

// TestCrashRecoveryRepeated chains two crash/recover cycles with
// mutations in between: recovery must compose.
func TestCrashRecoveryRepeated(t *testing.T) {
	partA := baseScript()
	partB := []Step{
		Ingest(ev("cy", false)),
		Register(w("dee", 0.65, 4)),
		Ingest(ev("dee", true), ev("dee", true)),
	}
	dir := t.TempDir()
	env := Start(t, BaseConfig(dir))
	env.Drive(partA)
	env.Crash()
	second := Start(t, BaseConfig(dir))
	second.Drive(partB)
	second.Crash()
	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(""), append(append([]Step{}, partA...), partB...), len(partA)+len(partB))
	AssertSameState(t, reference, recovered)
}

// TestPropertySnapshotPlusReplayEqualsFullReplay is the durability
// property test: for random mutation scripts with a snapshot injected at
// a random position, crash-recovery (snapshot + WAL tail) must be
// bit-identical to replaying the whole script from scratch.
func TestPropertySnapshotPlusReplayEqualsFullReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := randomScript(rng, 24)
			pos := rng.Intn(len(script) + 1)
			withSnap := make([]Step, 0, len(script)+1)
			withSnap = append(withSnap, script[:pos]...)
			withSnap = append(withSnap, Snapshot())
			withSnap = append(withSnap, script[pos:]...)

			dir := t.TempDir()
			env := Start(t, BaseConfig(dir))
			env.Drive(withSnap)
			env.Crash()
			recovered := Start(t, BaseConfig(dir))
			reference := Reference(t, BaseConfig(""), withSnap, len(withSnap))
			AssertSameState(t, reference, recovered)
		})
	}
}

// randomScript generates a valid mutation script: every referenced
// worker exists, sessions are only voted on while open, ids never
// collide. Session votes may still hit deterministic conflicts (done
// sessions), which SessionVote tolerates identically on every replay.
func randomScript(rng *rand.Rand, n int) []Step {
	var steps []Step
	var workers []string
	var sessions []string
	nextWorker, nextSession := 0, 0
	addWorker := func() Step {
		id := fmt.Sprintf("w%d", nextWorker)
		nextWorker++
		workers = append(workers, id)
		return Register(w(id, 0.5+0.45*rng.Float64(), 1+float64(rng.Intn(9))))
	}
	steps = append(steps, addWorker(), addWorker())
	for len(steps) < n {
		switch rng.Intn(10) {
		case 0, 1:
			steps = append(steps, addWorker())
		case 2, 3, 4:
			events := make([]serve.VoteEvent, 1+rng.Intn(3))
			for i := range events {
				events[i] = ev(workers[rng.Intn(len(workers))], rng.Intn(2) == 0)
			}
			steps = append(steps, Ingest(events...))
		case 5:
			id := workers[rng.Intn(len(workers))]
			steps = append(steps, Update(w(id, 0.5+0.45*rng.Float64(), 1+float64(rng.Intn(9)))))
		case 6:
			if len(workers) > 2 {
				i := rng.Intn(len(workers))
				id := workers[i]
				workers = append(workers[:i], workers[i+1:]...)
				steps = append(steps, Remove(id))
			}
		case 7:
			nextSession++
			sessions = append(sessions, fmt.Sprintf("s%d", nextSession))
			steps = append(steps, OpenSession(serve.SessionRequest{Confidence: 0.9, Budget: 40}))
		case 8:
			if len(sessions) > 0 {
				sid := sessions[rng.Intn(len(sessions))]
				wid := workers[rng.Intn(len(workers))]
				steps = append(steps, SessionVote(sid, wid, rng.Intn(2)))
			}
		case 9:
			if len(sessions) > 0 {
				i := rng.Intn(len(sessions))
				sid := sessions[i]
				sessions = append(sessions[:i], sessions[i+1:]...)
				steps = append(steps, CloseSession(sid))
			}
		}
	}
	return steps
}

// ---------------------------------------------------------------------------
// Multi-choice pool crash recovery.

func q(v float64) *float64 { return &v }

// multiScript is the multi-pool mutate phase: a pool created with mixed
// symmetric/explicit confusion matrices, Dirichlet drift from graded
// multi-label ingests, late registration, a second pool that is dropped
// again, and interleaved binary mutations (both arms share one WAL).
func multiScript() []Step {
	return []Step{
		Register(w("ann", 0.8, 3), w("bob", 0.7, 2)),
		CreateMultiPool(serve.MultiCreateRequest{
			Name:   "colors",
			Labels: 3,
			Workers: []serve.MultiWorkerSpec{
				{ID: "m0", Quality: q(0.8), Cost: 2},
				{ID: "m1", Confusion: [][]float64{
					{0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}, {0.2, 0.2, 0.6},
				}, Cost: 3},
			},
		}),
		MultiIngest("colors",
			serve.MultiVoteEvent{WorkerID: "m0", Truth: 0, Vote: 0},
			serve.MultiVoteEvent{WorkerID: "m1", Truth: 1, Vote: 2}),
		RegisterMulti("colors", serve.MultiWorkerSpec{ID: "m2", Quality: q(0.65), Cost: 1}),
		CreateMultiPool(serve.MultiCreateRequest{
			Name: "shapes", Labels: 2,
			Workers: []serve.MultiWorkerSpec{{ID: "s0", Quality: q(0.7), Cost: 1}},
		}),
		Ingest(ev("ann", true), ev("bob", false)),
		DropMultiPool("shapes"),
		MultiIngest("colors",
			serve.MultiVoteEvent{WorkerID: "m2", Truth: 2, Vote: 2},
			serve.MultiVoteEvent{WorkerID: "m0", Truth: 1, Vote: 0}),
	}
}

// TestCrashRecoveryMultiPool kills the WAL mid-record inside the final
// multi-ingest record at several byte offsets: recovery must drop
// exactly the torn record and land bit-identical — full state dump
// (Dirichlet counts and posterior-mean matrices included), pool
// signatures, and multi-select probes — to a reference that never saw
// the torn mutation.
func TestCrashRecoveryMultiPool(t *testing.T) {
	script := multiScript()
	dir := t.TempDir()
	env := Start(t, BaseConfig(dir))
	offsets := env.Drive(script)
	env.Crash()
	n := len(script)
	prev, last := offsets[n-2], offsets[n-1]
	if last <= prev {
		t.Fatalf("final step appended nothing: offsets %v", offsets)
	}
	cuts := []struct {
		name string
		size int64
		want int // surviving script steps
	}{
		{"clean-boundary", last, n},
		{"mid-record", prev + (last-prev)/2, n - 1},
		{"one-byte-short", last - 1, n - 1},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			torn := CopyDir(t, dir)
			Tear(t, torn, cut.size)
			recovered := Start(t, BaseConfig(torn))
			reference := Reference(t, BaseConfig(""), script, cut.want)
			AssertSameState(t, reference, recovered)
		})
	}
}

// TestCrashRecoveryMultiSnapshotPlusTail checkpoints mid-script so the
// multi-pool state crosses the snapshot codec, then replays multi WAL
// records on top: the composition must equal the full-script reference.
func TestCrashRecoveryMultiSnapshotPlusTail(t *testing.T) {
	full := multiScript()
	head, tail := full[:4], full[4:]
	script := append(append(append([]Step{}, head...), Snapshot()), tail...)
	dir := t.TempDir()
	env := Start(t, BaseConfig(dir))
	env.Drive(script)
	env.Crash()
	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(""), script, len(script))
	AssertSameState(t, reference, recovered)
	status := recovered.Srv.PersistenceStatus()
	if status.Recovery.SnapshotLSN != uint64(len(head)) {
		t.Errorf("SnapshotLSN = %d, want %d", status.Recovery.SnapshotLSN, len(head))
	}
	if status.Recovery.RecordsReplayed != len(tail) {
		t.Errorf("RecordsReplayed = %d, want %d (the tail only)",
			status.Recovery.RecordsReplayed, len(tail))
	}
	if status.Recovery.MultiPoolsRestored != 1 {
		t.Errorf("MultiPoolsRestored = %d, want 1", status.Recovery.MultiPoolsRestored)
	}
}
