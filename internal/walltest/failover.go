// Failover extension of the harness: a full cluster (one writable
// primary, K streaming followers) driven through concurrent mutation
// load while the primary is killed at an arbitrary point and a follower
// is promoted in its place. Every mutation a writer issues is recorded
// in a Ledger with its observed outcome — acked (2xx reply seen),
// rejected (every attempt answered with proof of non-application), or
// unknown (some attempt's reply was lost) — and the post-failover
// assertions check the durability contract against the new primary:
// acked mutations all survive, rejected ones never appear, and the
// surviving idempotency-key table dedups replays of acked operations.
package walltest

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/jury/serve"
)

// Cluster is one primary plus K followers, each on its own data dir.
type Cluster struct {
	t          testing.TB
	Primary    *Env
	PrimaryCfg server.Config
	Followers  []*FollowerEnv
	// OldPrimary and OldPrimaryCfg name the deposed primary after a
	// PromoteFollower, so resurrection tests can reboot it from its
	// surviving directory.
	OldPrimary    *Env
	OldPrimaryCfg server.Config
}

// ClusterConfig is the per-node config of a failover cluster: BaseConfig
// plus the quorum-ack settings. The short quorum timeout keeps writer
// goroutines from stalling through the whole primary-dead window.
func ClusterConfig(dir string, quorum int) server.Config {
	cfg := BaseConfig(dir)
	cfg.Quorum = quorum
	cfg.QuorumTimeout = 500 * time.Millisecond
	return cfg
}

// StartCluster boots a primary and k followers on fresh directories.
// With quorum > 1 every mutation ack waits for quorum-1 follower
// confirmations — the setting failover runs need, since it is what makes
// "acked" imply "present on the max-applied follower".
func StartCluster(t testing.TB, k, quorum int) *Cluster {
	t.Helper()
	cfg := ClusterConfig(t.TempDir(), quorum)
	c := &Cluster{t: t, Primary: Start(t, cfg), PrimaryCfg: cfg}
	for i := 0; i < k; i++ {
		fe := StartFollower(t, ClusterConfig(t.TempDir(), quorum), c.Primary.HTTP.URL)
		c.Followers = append(c.Followers, fe)
	}
	return c
}

// NodeURLs lists every live node's base URL, primary first.
func (c *Cluster) NodeURLs() []string {
	urls := []string{c.Primary.HTTP.URL}
	for _, fe := range c.Followers {
		urls = append(urls, fe.HTTP.URL)
	}
	return urls
}

// Client builds a failover-aware client: primary as base, followers as
// replicas, default retries — the configuration a production caller
// would run with.
func (c *Cluster) Client() *serve.Client {
	urls := make([]string, 0, len(c.Followers))
	for _, fe := range c.Followers {
		urls = append(urls, fe.HTTP.URL)
	}
	return serve.NewClient(c.Primary.HTTP.URL).WithReplicas(urls...)
}

// MaxAppliedFollower is the index of the follower with the highest
// applied LSN — the only safe promotion candidate: with quorum acks on,
// every acked mutation is applied on at least one follower, and applied
// LSNs are prefixes, so the max-applied follower holds all of them.
func (c *Cluster) MaxAppliedFollower() int {
	best, bestLSN := 0, c.Followers[0].Srv.AppliedLSN()
	for i, fe := range c.Followers[1:] {
		if lsn := fe.Srv.AppliedLSN(); lsn > bestLSN {
			best, bestLSN = i+1, lsn
		}
	}
	return best
}

// KillPrimary simulates kill -9 on the primary: in-flight mutations die
// with their connections, the WAL keeps only what was already synced.
func (c *Cluster) KillPrimary() {
	c.t.Helper()
	c.Primary.CrashDirty()
}

// PromoteFollower promotes follower i through the HTTP admin call,
// repoints the remaining followers at it, and rewires the cluster:
// Primary becomes the promoted node, OldPrimary keeps the deposed one
// for resurrection tests. The promoted node's stream loop must exit
// with ErrPromoted — anything else is a harness failure.
func (c *Cluster) PromoteFollower(i int) serve.PromoteResponse {
	c.t.Helper()
	fe := c.Followers[i]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := serve.NewClient(fe.HTTP.URL).Promote(ctx, serve.PromoteRequest{Advertise: fe.HTTP.URL})
	if err != nil {
		c.t.Fatalf("walltest: promote %s: %v", fe.HTTP.URL, err)
	}
	if !resp.Promoted {
		c.t.Fatalf("walltest: promote %s: not promoted: %+v", fe.HTTP.URL, resp)
	}
	if err := fe.WaitDone(10 * time.Second); !errors.Is(err, repl.ErrPromoted) {
		c.t.Fatalf("walltest: promoted follower's stream loop exited %v, want ErrPromoted", err)
	}
	rest := make([]*FollowerEnv, 0, len(c.Followers)-1)
	for j, other := range c.Followers {
		if j == i {
			continue
		}
		if _, err := serve.NewClient(other.HTTP.URL).Repoint(ctx,
			serve.RepointRequest{Primary: fe.HTTP.URL}); err != nil {
			c.t.Fatalf("walltest: repoint %s: %v", other.HTTP.URL, err)
		}
		rest = append(rest, other)
	}
	c.OldPrimary, c.OldPrimaryCfg = c.Primary, c.PrimaryCfg
	c.Primary, c.PrimaryCfg = fe.Env, fe.cfg
	c.Followers = rest
	return resp
}

// ---------------------------------------------------------------------------
// The acked-operations ledger.

// OpOutcome classifies what a writer observed for one mutation.
type OpOutcome string

const (
	// OpAcked: a 2xx reply was received — the mutation is durable (and,
	// with quorum on, replicated) by contract and MUST survive failover.
	OpAcked OpOutcome = "acked"
	// OpRejected: every attempt was answered with proof of
	// non-application (a 4xx such as a 421 bounce — refused before the
	// journal). The mutation MUST NOT appear anywhere, ever.
	OpRejected OpOutcome = "rejected"
	// OpUnknown: at least one attempt's reply was lost (transport error)
	// or ambiguous (5xx — a quorum-timeout 503 is journaled locally and
	// may still ship). The mutation MAY appear.
	OpUnknown OpOutcome = "unknown"
)

// Op is one ledgered mutation: a keyed single-vote ingest.
type Op struct {
	Key     string
	Worker  string
	Correct bool
	Outcome OpOutcome
}

// Ledger is the concurrent record of every mutation the writers issued.
type Ledger struct {
	mu  sync.Mutex
	ops []Op
}

func (l *Ledger) add(op Op) {
	l.mu.Lock()
	l.ops = append(l.ops, op)
	l.mu.Unlock()
}

// Ops returns a copy of the ledger.
func (l *Ledger) Ops() []Op {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Op(nil), l.ops...)
}

// Count tallies ops with the given outcome.
func (l *Ledger) Count(o OpOutcome) int {
	n := 0
	for _, op := range l.Ops() {
		if op.Outcome == o {
			n++
		}
	}
	return n
}

// WriterPool is a set of goroutines driving ledgered mutations at the
// cluster while it is being failed over.
type WriterPool struct {
	t      testing.TB
	Ledger *Ledger
	stop   chan struct{}
	wg     sync.WaitGroup
}

// StartWriters launches n writer goroutines. Each repeatedly ingests a
// keyed random vote for a random worker id from workers, rotating
// across every node until the op resolves: 2xx → acked; only
// proof-of-non-application refusals → rejected; any lost reply → at
// best unknown. Retries reuse the op's Idempotency-Key, so a replay an
// old primary already applied cannot double-count. Stop the pool before
// asserting.
func (c *Cluster) StartWriters(n int, workers []string, seed int64) *WriterPool {
	wp := &WriterPool{t: c.t, Ledger: &Ledger{}, stop: make(chan struct{})}
	// One client per node, retries off: the ledger needs to observe every
	// attempt's outcome itself, which the client's internal retry loop
	// would hide.
	clients := make([]*serve.Client, 0, 1+len(c.Followers))
	for _, u := range c.NodeURLs() {
		clients = append(clients, serve.NewClient(u).WithRetry(serve.RetryPolicy{MaxAttempts: 1}))
	}
	for i := 0; i < n; i++ {
		wp.wg.Add(1)
		go func(id int) {
			defer wp.wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			for {
				select {
				case <-wp.stop:
					return
				default:
				}
				wp.Ledger.add(runOp(clients, rng, workers, wp.stop))
			}
		}(i)
	}
	return wp
}

// Stop halts the writers and waits them out.
func (wp *WriterPool) Stop() {
	close(wp.stop)
	wp.wg.Wait()
}

// runOp drives one keyed ingest to resolution, rotating across nodes.
func runOp(clients []*serve.Client, rng *rand.Rand, workers []string, stop <-chan struct{}) Op {
	op := Op{
		Key:     serve.NewIdempotencyKey(),
		Worker:  workers[rng.Intn(len(workers))],
		Correct: rng.Intn(2) == 0,
		Outcome: OpRejected,
	}
	ev := serve.VoteEvent{WorkerID: op.Worker, Correct: op.Correct}
	ambiguous := false
	start := rng.Intn(len(clients))
	for attempt := 0; attempt < 4*len(clients); attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := clients[(start+attempt)%len(clients)].IngestVoteKeyed(ctx, ev, op.Key)
		cancel()
		if err == nil {
			op.Outcome = OpAcked
			return op
		}
		var apiErr *serve.APIError
		if !errors.As(err, &apiErr) || apiErr.Status >= 500 {
			// Lost reply, or a 5xx that does not prove non-application (a
			// quorum-timeout 503 is journaled on the primary and may ship).
			ambiguous = true
		}
		select {
		case <-stop:
			// Resolve conservatively rather than spin past shutdown.
			if ambiguous {
				op.Outcome = OpUnknown
			}
			return op
		case <-time.After(time.Duration(1+rng.Intn(5)) * time.Millisecond):
		}
	}
	if ambiguous {
		op.Outcome = OpUnknown
	}
	return op
}

// ---------------------------------------------------------------------------
// Ledger assertions.

// ledgerView is the slice of the debug state dump the ledger audits:
// the registry's idempotency-key table and per-worker vote tallies.
type ledgerView struct {
	Registry struct {
		Workers []struct {
			ID      string `json:"id"`
			Votes   int    `json:"votes"`
			Correct int    `json:"correct"`
		} `json:"workers"`
		Idem []string `json:"idem"`
	} `json:"registry"`
	Epochs []server.EpochEntry `json:"epochs"`
}

func ledgerViewOf(t testing.TB, e *Env) ledgerView {
	t.Helper()
	dump, err := e.Srv.DebugState()
	if err != nil {
		t.Fatalf("walltest: DebugState: %v", err)
	}
	var v ledgerView
	if err := json.Unmarshal(dump, &v); err != nil {
		t.Fatalf("walltest: parse state dump: %v", err)
	}
	return v
}

// AssertLedger audits a post-failover node against the ledger:
//
//	(a) every acked op's key is in the idempotency table — no acked
//	    mutation was lost;
//	(b) no rejected op's key is — nothing refused was applied; and no
//	    key the ledger never acked-or-lost is present at all;
//	(c) per worker, the vote and correct tallies are bounded by
//	    acked ≤ tally ≤ acked+unknown — order-independent, so it holds
//	    for any interleaving of the concurrent writers.
func AssertLedger(t testing.TB, e *Env, l *Ledger) {
	t.Helper()
	v := ledgerViewOf(t, e)
	idem := make(map[string]bool, len(v.Registry.Idem))
	for _, k := range v.Registry.Idem {
		idem[k] = true
	}
	byKey := make(map[string]Op)
	ackedVotes := map[string]int{}
	unknownVotes := map[string]int{}
	ackedCorrect := map[string]int{}
	unknownCorrect := map[string]int{}
	for _, op := range l.Ops() {
		byKey[op.Key] = op
		switch op.Outcome {
		case OpAcked:
			ackedVotes[op.Worker]++
			if op.Correct {
				ackedCorrect[op.Worker]++
			}
			if !idem[op.Key] {
				t.Fatalf("walltest: ACKED MUTATION LOST: key %s (worker %s) missing after failover", op.Key, op.Worker)
			}
		case OpRejected:
			if idem[op.Key] {
				t.Fatalf("walltest: REJECTED MUTATION APPLIED: key %s (worker %s) present after failover", op.Key, op.Worker)
			}
		case OpUnknown:
			unknownVotes[op.Worker]++
			if op.Correct {
				unknownCorrect[op.Worker]++
			}
		}
	}
	for key := range idem {
		op, ours := byKey[key]
		if !ours || op.Outcome == OpRejected {
			t.Fatalf("walltest: key %s present after failover but never acked or lost (outcome %q)", key, op.Outcome)
		}
	}
	for _, w := range v.Registry.Workers {
		lo, hi := ackedVotes[w.ID], ackedVotes[w.ID]+unknownVotes[w.ID]
		if w.Votes < lo || w.Votes > hi {
			t.Fatalf("walltest: worker %s has %d votes, want %d..%d (acked..acked+unknown)", w.ID, w.Votes, lo, hi)
		}
		lo, hi = ackedCorrect[w.ID], ackedCorrect[w.ID]+unknownCorrect[w.ID]
		if w.Correct < lo || w.Correct > hi {
			t.Fatalf("walltest: worker %s has %d correct, want %d..%d", w.ID, w.Correct, lo, hi)
		}
	}
}

// AssertDedupAcrossFailover replays every acked op — same event, same
// Idempotency-Key — against the new primary and requires each to be
// answered as a duplicate: the dedup table survived the failover, so a
// client retrying into the new primary cannot double-count a vote.
func AssertDedupAcrossFailover(t testing.TB, e *Env, l *Ledger) {
	t.Helper()
	ctx := context.Background()
	for _, op := range l.Ops() {
		if op.Outcome != OpAcked {
			continue
		}
		resp, err := e.Client.IngestVoteKeyed(ctx,
			serve.VoteEvent{WorkerID: op.Worker, Correct: op.Correct}, op.Key)
		if err != nil {
			t.Fatalf("walltest: replay acked key %s: %v", op.Key, err)
		}
		if !resp.Duplicate {
			t.Fatalf("walltest: replay of acked key %s was not deduplicated (worker %s would double-count)", op.Key, op.Worker)
		}
	}
}
