// Multi-node extension of the harness: primaries and followers wired by
// real HTTP log shipping (internal/repl), with the fault injectors the
// replication tests script — follower kill/restart, stream severing at
// arbitrary byte boundaries, and convergence waits. The assertion
// surface is the same AssertSameState the single-node crash tests use:
// a follower at the primary's durable LSN must be bit-identical to it.

package walltest

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
)

// FollowerEnv is one follower: a durable Env in follower mode plus its
// running stream loop.
type FollowerEnv struct {
	*Env
	// Primary is the primary base URL the loop streams from (possibly a
	// severing proxy in front of the real one).
	Primary string
	cfg     server.Config
	cancel  context.CancelFunc
	exited  chan struct{}
	err     error // loop exit error; read only after exited is closed
}

// fastOpts are repl options tuned for tests: short long-polls so
// convergence waits settle in milliseconds, short backoff so severed
// streams retry immediately.
func fastOpts() repl.Options {
	return repl.Options{
		Wait:       150 * time.Millisecond,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	}
}

// StartFollower opens a follower of primaryURL on cfg (cfg.DataDir
// required) and starts its stream loop. The follower replicates from its
// local log position: a fresh directory streams the primary's history
// from LSN 0 — use BootstrapFollower instead when the primary has
// truncated its log.
func StartFollower(t testing.TB, cfg server.Config, primaryURL string) *FollowerEnv {
	t.Helper()
	if cfg.DataDir == "" {
		t.Fatal("walltest: StartFollower needs cfg.DataDir")
	}
	env := Start(t, cfg)
	env.Srv.SetFollower(primaryURL)
	fe := &FollowerEnv{Env: env, Primary: primaryURL, cfg: cfg}
	fe.startLoop()
	return fe
}

// BootstrapFollower is StartFollower for a follower joining from scratch:
// if the data dir holds no state it first installs the primary's
// snapshot (GET /v1/repl/snapshot) and positions the local log after it,
// then streams only the tail.
func BootstrapFollower(t testing.TB, cfg server.Config, primaryURL string) *FollowerEnv {
	t.Helper()
	has, err := repl.DirHasState(cfg.DataDir)
	if err != nil {
		t.Fatalf("walltest: probe %s: %v", cfg.DataDir, err)
	}
	if !has {
		if _, err := repl.Bootstrap(context.Background(), nil, primaryURL, cfg.DataDir); err != nil {
			t.Fatalf("walltest: bootstrap follower: %v", err)
		}
	}
	return StartFollower(t, cfg, primaryURL)
}

func (fe *FollowerEnv) startLoop() {
	ctx, cancel := context.WithCancel(context.Background())
	fe.cancel = cancel
	fe.exited = make(chan struct{})
	f := repl.NewFollower(fe.Srv, fe.Primary, fastOpts())
	go func() {
		fe.err = f.Run(ctx)
		close(fe.exited)
	}()
	fe.t.Cleanup(func() {
		cancel()
		<-fe.exited
	})
}

// StopStream cancels the follower's stream loop and returns its exit
// error (nil for a plain cancel). The follower keeps serving HTTP.
func (fe *FollowerEnv) StopStream() error {
	fe.t.Helper()
	fe.cancel()
	return fe.WaitDone(10 * time.Second)
}

// WaitDone waits for the loop to exit — the way terminal conditions
// (truncation horizon, divergence, local WAL failure) surface — and
// returns its exit error.
func (fe *FollowerEnv) WaitDone(timeout time.Duration) error {
	fe.t.Helper()
	select {
	case <-fe.exited:
		return fe.err
	case <-time.After(timeout):
		fe.t.Fatal("walltest: follower stream loop did not terminate")
		return nil
	}
}

// Kill simulates kill -9 on the follower mid-stream: sever the loop and
// abandon the process state. The data dir survives with whatever the
// local journal held; Restart recovers from it. Tests tear the WAL tail
// afterwards (Tear) to model a write cut mid-record.
func (fe *FollowerEnv) Kill() {
	fe.t.Helper()
	fe.cancel()
	select {
	case <-fe.exited:
	case <-time.After(10 * time.Second):
		fe.t.Fatal("walltest: follower stream loop did not exit on kill")
	}
	fe.CrashDirty()
}

// Restart reboots a killed follower from its surviving data dir: local
// crash recovery first (snapshot + WAL tail, torn record truncated),
// then the stream resumes from the recovered LSN.
func (fe *FollowerEnv) Restart(t testing.TB) *FollowerEnv {
	t.Helper()
	return StartFollower(t, fe.cfg, fe.Primary)
}

// WaitCaughtUp blocks until every follower's applied LSN equals the
// primary's durable watermark. Call it only at quiescent points (no
// in-flight primary mutations), where it makes "caught up" equivalent to
// "bit-identical" — which AssertConverged then asserts.
func WaitCaughtUp(t testing.TB, primary *Env, followers ...*FollowerEnv) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		target := primary.Srv.PersistenceStatus().DurableLSN
		behind := false
		for _, fe := range followers {
			if uint64(fe.Srv.AppliedLSN()) != target {
				behind = true
				break
			}
		}
		if !behind {
			return
		}
		if time.Now().After(deadline) {
			applied := make([]uint64, len(followers))
			for i, fe := range followers {
				applied[i] = uint64(fe.Srv.AppliedLSN())
			}
			t.Fatalf("walltest: followers never caught up: primary durable %d, applied %v", target, applied)
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// AssertConverged waits for the followers to reach the primary's durable
// watermark and asserts each is bit-identical to it — state dump, pool
// signatures, selection probes (cache keys) and multi pools.
func AssertConverged(t testing.TB, primary *Env, followers ...*FollowerEnv) {
	t.Helper()
	WaitCaughtUp(t, primary, followers...)
	for _, fe := range followers {
		AssertSameState(t, primary, fe.Env)
	}
}

// ---------------------------------------------------------------------------
// Stream severing.

// SeveringProxy fronts a primary and truncates stream response bodies at
// byte counts chosen by cut — the injector for "the connection died at
// an arbitrary byte boundary, possibly mid-frame". Every other route
// passes through untouched.
type SeveringProxy struct {
	*httptest.Server
	target string
	cut    func(bodyLen int) int
}

// StartSeveringProxy builds the proxy; cut receives each stream body's
// length and returns how many bytes to deliver (>= len passes it whole).
func StartSeveringProxy(t testing.TB, target string, cut func(bodyLen int) int) *SeveringProxy {
	t.Helper()
	p := &SeveringProxy{target: target, cut: cut}
	p.Server = httptest.NewServer(http.HandlerFunc(p.serve))
	t.Cleanup(p.Close)
	return p
}

func (p *SeveringProxy) serve(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if r.URL.Path == "/v1/repl/stream" && resp.StatusCode == http.StatusOK {
		if k := p.cut(len(body)); k < len(body) {
			body = body[:k]
		}
	}
	for key, vals := range resp.Header {
		if key == "Content-Length" {
			continue // the truncated body sets its own
		}
		w.Header()[key] = vals
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
