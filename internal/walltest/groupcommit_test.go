package walltest

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal/errfs"
	"repro/jury/serve"
)

// groupConfig is BaseConfig with fsync-bound group commit on.
func groupConfig(dir string) server.Config {
	cfg := BaseConfig(dir)
	cfg.Fsync = true
	cfg.GroupCommit = true
	return cfg
}

// waitNextLSN polls the durable server until its WAL has reserved LSNs up
// to next-1 — the signal that concurrent mutators have staged their
// records, whether or not those records are durable yet.
func waitNextLSN(t testing.TB, e *Env, next uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := e.Srv.PersistenceStatus(); st.NextLSN >= next {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("walltest: WAL never reached next LSN %d (at %d)",
				next, e.Srv.PersistenceStatus().NextLSN)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosGroupCommitFaultMidBatch is the tentpole failure story: a
// batch leader's fsync is held at a gate while more keyed ingests stage
// behind it, then the flush fails with the unsynced tail dropped (power
// loss). Every waiter in the batch — leader and followers alike — must be
// refused with 503, the server must degrade, and recovery must hold
// exactly the acked prefix: the registration, none of the batched votes.
// Because the votes were never acked, their idempotency keys must not
// survive either — a post-recovery retry applies for real.
func TestChaosGroupCommitFaultMidBatch(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	// Sync #1 is the registration's flush and passes; sync #2 is the
	// batch under test: gated, then failed with the tail dropped.
	env, fsys := StartFaulty(t, groupConfig(dir), errfs.Fault{
		Op: errfs.OpSync, Path: "wal-", After: 1, Times: 1,
		Gate: gate, DropUnsynced: true, Err: errfs.ErrInjected,
	})

	register := Register(
		serve.WorkerSpec{ID: "ann", Quality: 0.9, Cost: 4},
		serve.WorkerSpec{ID: "bob", Quality: 0.7, Cost: 2},
		serve.WorkerSpec{ID: "cam", Quality: 0.6, Cost: 1},
	)
	if err := register(env); err != nil {
		t.Fatalf("register: %v", err)
	}

	// The leader ingest: its commit leads the gated flush.
	leaderStep := Ingest(serve.VoteEvent{WorkerID: "ann", Correct: true})
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- leaderStep(env) }()
	waitForInjection(t, fsys, 1) // the leader is inside its held fsync

	// Two followers stage into the next batch while the leader's flush is
	// pinned; their LSNs are reserved before the gate opens.
	followerSteps := []Step{
		Ingest(serve.VoteEvent{WorkerID: "bob", Correct: false}),
		Ingest(serve.VoteEvent{WorkerID: "cam", Correct: true}),
	}
	followerErrs := make(chan error, len(followerSteps))
	var wg sync.WaitGroup
	for _, step := range followerSteps {
		wg.Add(1)
		go func(step Step) {
			defer wg.Done()
			followerErrs <- step(env)
		}(step)
	}
	waitNextLSN(t, env, 5) // register=1, leader=2, followers=3,4 staged
	close(gate)

	for i := 0; i < 1+len(followerSteps); i++ {
		var err error
		if i == 0 {
			err = <-leaderErr
		} else {
			err = <-followerErrs
		}
		var apiErr *serve.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Fatalf("batched ingest %d = %v, want 503 (nothing in the failed batch may be acked)", i, err)
		}
	}
	wg.Wait()
	AssertDegradedReads(t, env)
	env.CrashDirty()

	// Recovery: exactly the acked prefix — the registration alone.
	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(dir), []Step{register}, 1)
	AssertSameState(t, reference, recovered)

	// The unacked votes' idempotency keys died with their records: the
	// same keyed step re-delivered now must apply, not dedup.
	if err := leaderStep(recovered); err != nil {
		t.Fatalf("post-recovery retry of the unacked ingest: %v", err)
	}
	w, err := recovered.Client.Worker(context.Background(), "ann")
	if err != nil {
		t.Fatal(err)
	}
	if w.Votes != 1 {
		t.Fatalf("ann has %d votes after retrying the unacked ingest, want 1", w.Votes)
	}
}

// waitForInjection polls the injector until n faults have fired — the
// cross-goroutine signal that a gated sync has been entered.
func waitForInjection(t testing.TB, fsys *errfs.FS, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fsys.Injected() < n {
		if time.Now().After(deadline) {
			t.Fatalf("walltest: injector never fired %d faults (at %d)", n, fsys.Injected())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosGroupCommitSequentialFaultRecoversAckedPrefix reruns the
// classic fsync-failure chaos script with group commit on: sequential
// callers flush once per record, so the After-N fault cuts at the same
// step boundary and recovery must land on the same acked prefix as the
// per-record mode test.
func TestChaosGroupCommitSequentialFaultRecoversAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	script := chaosScript()
	env, _ := StartFaulty(t, groupConfig(dir),
		errfs.Fault{Op: errfs.OpSync, Path: "wal-", After: 3, DropUnsynced: true})

	acked := env.DriveToFailure(script)
	if acked != 3 {
		t.Fatalf("acked %d steps, want 3 (register + 2 ingests)", acked)
	}
	AssertDegradedReads(t, env)
	env.CrashDirty()

	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(dir), script, acked)
	AssertSameState(t, reference, recovered)
}

// TestPropertyGroupCommitReplayEqualsPerRecord drives one script — the
// same Step values, so the same idempotency keys — through a per-record
// durable server and a group-commit one, crashes both, and demands the
// recovered states match bit-exactly AND the WAL directories hold
// byte-identical segment files: for a sequential workload the batched
// path must be indistinguishable on disk.
func TestPropertyGroupCommitReplayEqualsPerRecord(t *testing.T) {
	script := append(chaosScript(),
		Update(serve.WorkerSpec{ID: "bob", Quality: 0.75, Cost: 2}),
		Ingest(
			serve.VoteEvent{WorkerID: "ann", Correct: true},
			serve.VoteEvent{WorkerID: "cam", Correct: false},
		),
		Remove("cam"),
	)

	plainDir, groupDir := t.TempDir(), t.TempDir()
	plainCfg := BaseConfig(plainDir)
	plainCfg.Fsync = true
	plainCfg.SegmentBytes = 256 // force rotations through both paths
	groupCfg := groupConfig(groupDir)
	groupCfg.SegmentBytes = 256

	plainEnv := Start(t, plainCfg)
	plainEnv.Drive(script)
	plainEnv.Crash()
	groupEnv := Start(t, groupCfg)
	groupEnv.Drive(script)
	groupEnv.Crash()

	plainSegs := segmentFiles(t, plainDir)
	groupSegs := segmentFiles(t, groupDir)
	if len(plainSegs) != len(groupSegs) || len(plainSegs) < 2 {
		t.Fatalf("segment counts differ (or no rotation): per-record %d, group %d",
			len(plainSegs), len(groupSegs))
	}
	for i := range plainSegs {
		if filepath.Base(plainSegs[i]) != filepath.Base(groupSegs[i]) {
			t.Fatalf("segment %d named %s vs %s", i,
				filepath.Base(plainSegs[i]), filepath.Base(groupSegs[i]))
		}
		a, err := os.ReadFile(plainSegs[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(groupSegs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("segment %s differs between per-record and group-commit runs",
				filepath.Base(plainSegs[i]))
		}
	}

	recoveredPlain := Start(t, BaseConfig(plainDir))
	recoveredGroup := Start(t, BaseConfig(groupDir))
	AssertSameState(t, recoveredPlain, recoveredGroup)
	reference := Reference(t, BaseConfig(plainDir), script, len(script))
	AssertSameState(t, reference, recoveredGroup)
}

// segmentFiles lists dir's WAL segments in LSN order.
func segmentFiles(t testing.TB, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("walltest: no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(paths)
	return paths
}

// TestChaosGroupCommitConcurrentLoadRecovers hammers a group-commit
// server with concurrent keyed ingests (no faults), crashes it, and
// checks the recovered vote totals equal exactly what was acked — the
// durability watermark must never ack a record a clean replay cannot
// produce.
func TestChaosGroupCommitConcurrentLoadRecovers(t *testing.T) {
	dir := t.TempDir()
	env := Start(t, groupConfig(dir))
	register := Register(
		serve.WorkerSpec{ID: "ann", Quality: 0.9, Cost: 4},
		serve.WorkerSpec{ID: "bob", Quality: 0.7, Cost: 2},
	)
	if err := register(env); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_, err := env.Client.IngestVoteKeyed(context.Background(),
					serve.VoteEvent{WorkerID: "ann", Correct: true}, serve.NewIdempotencyKey())
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	acked := 0
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent keyed ingest: %v", err)
		}
		acked++
	}
	env.Crash()

	recovered := Start(t, BaseConfig(dir))
	w, err := recovered.Client.Worker(context.Background(), "ann")
	if err != nil {
		t.Fatal(err)
	}
	if w.Votes != acked {
		t.Fatalf("recovered %d votes, want the %d acked", w.Votes, acked)
	}
}
