package walltest

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"

	"repro/internal/wal/errfs"
	"repro/jury/serve"
)

// chaosScript is the scripted mutation sequence the disk faults cut
// into: one registration and five single-vote ingests, each a separate
// WAL record (and, with Fsync on, a separate fsync).
func chaosScript() []Step {
	return []Step{
		Register(
			serve.WorkerSpec{ID: "ann", Quality: 0.9, Cost: 4},
			serve.WorkerSpec{ID: "bob", Quality: 0.7, Cost: 2},
			serve.WorkerSpec{ID: "cam", Quality: 0.6, Cost: 1},
		),
		Ingest(serve.VoteEvent{WorkerID: "ann", Correct: true}),
		Ingest(serve.VoteEvent{WorkerID: "bob", Correct: false}),
		Ingest(serve.VoteEvent{WorkerID: "cam", Correct: true}),
		Ingest(serve.VoteEvent{WorkerID: "ann", Correct: true}),
		Ingest(serve.VoteEvent{WorkerID: "bob", Correct: true}),
	}
}

// TestChaosFsyncFailureMidIngest fails the WAL fsync mid-script, with
// the unsynced tail dropped the way power loss drops the page cache.
// Contract: the failing ingest is refused (503, server degraded), reads
// stay available, and a clean reboot recovers exactly the acked prefix.
func TestChaosFsyncFailureMidIngest(t *testing.T) {
	dir := t.TempDir()
	script := chaosScript()
	env, _ := StartFaulty(t, BaseConfig(dir),
		errfs.Fault{Op: errfs.OpSync, Path: "wal-", After: 3, DropUnsynced: true})

	acked := env.DriveToFailure(script)
	if acked != 3 {
		t.Fatalf("acked %d steps, want 3 (register + 2 ingests)", acked)
	}
	AssertDegradedReads(t, env)
	env.CrashDirty()

	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(dir), script, acked)
	AssertSameState(t, reference, recovered)
}

// TestChaosENOSPCDuringRotation makes segment rotation hit a full disk.
// The append that needed the new segment is refused and the server
// degrades with ENOSPC as the cause; recovery finds the acked prefix in
// the surviving segments.
func TestChaosENOSPCDuringRotation(t *testing.T) {
	dir := t.TempDir()
	script := chaosScript()
	cfg := BaseConfig(dir)
	cfg.SegmentBytes = 256 // force a rotation a few records in
	env, _ := StartFaulty(t, cfg,
		errfs.Fault{Op: errfs.OpCreate, Path: "wal-", After: 1, Err: syscall.ENOSPC})

	acked := env.DriveToFailure(script)
	if acked < 1 || acked >= len(script) {
		t.Fatalf("acked %d steps, want the fault inside the script", acked)
	}
	if _, cause := env.Srv.DegradedState(); !errors.Is(cause, syscall.ENOSPC) {
		t.Fatalf("degraded cause = %v, want ENOSPC", cause)
	}
	AssertDegradedReads(t, env)
	env.CrashDirty()

	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(dir), script, acked)
	AssertSameState(t, reference, recovered)
}

// TestChaosShortWriteTornTail cuts one record's write short, leaving a
// torn tail on disk. The append is refused; recovery truncates exactly
// the torn bytes and lands on the acked prefix.
func TestChaosShortWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	script := chaosScript()
	const torn = 5
	env, _ := StartFaulty(t, BaseConfig(dir),
		errfs.Fault{Op: errfs.OpWrite, Path: "wal-", After: 3, Short: torn})

	acked := env.DriveToFailure(script)
	if acked != 3 {
		t.Fatalf("acked %d steps, want 3", acked)
	}
	env.CrashDirty()

	recovered := Start(t, BaseConfig(dir))
	st, err := recovered.Client.Persistence(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovery == nil || st.Recovery.TornBytesTruncated != torn {
		t.Fatalf("recovery = %+v, want %d torn bytes truncated", st.Recovery, torn)
	}
	reference := Reference(t, BaseConfig(dir), script, acked)
	AssertSameState(t, reference, recovered)
}

// TestChaosSnapshotInstallFailure fails the rename that installs a
// snapshot. Snapshots are an optimization — the WAL still holds
// everything — so the server must NOT degrade: the failure is counted,
// mutations keep working, a later snapshot succeeds, and recovery
// reproduces the full state.
func TestChaosSnapshotInstallFailure(t *testing.T) {
	dir := t.TempDir()
	script := chaosScript()
	env, _ := StartFaulty(t, BaseConfig(dir),
		errfs.Fault{Op: errfs.OpRename, Path: "snapshot-", Times: 1})

	env.Drive(script)
	if err := env.Srv.SnapshotNow(); err == nil {
		t.Fatal("snapshot through injected rename fault should fail")
	}
	if degraded, cause := env.Srv.DegradedState(); degraded {
		t.Fatalf("snapshot failure degraded the server: %v", cause)
	}
	mResp, err := http.Get(env.HTTP.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if !strings.Contains(string(metrics), "juryd_snapshot_errors_total 1") {
		t.Fatalf("metrics missing juryd_snapshot_errors_total 1:\n%s", metrics)
	}

	// The server keeps accepting mutations, and the next snapshot (the
	// fault is single-shot) lands.
	extra := Ingest(serve.VoteEvent{WorkerID: "cam", Correct: false})
	if err := extra(env); err != nil {
		t.Fatalf("ingest after snapshot failure: %v", err)
	}
	if err := env.Srv.SnapshotNow(); err != nil {
		t.Fatalf("retried snapshot: %v", err)
	}
	env.Crash()

	recovered := Start(t, BaseConfig(dir))
	reference := Reference(t, BaseConfig(dir), append(script, extra), len(script)+1)
	AssertSameState(t, reference, recovered)
}

// TestChaosIdempotentRetryAcrossRecovery replays a keyed ingest blindly:
// before the crash, after the crash, and against the recovered server.
// The vote must apply exactly once, and the recovered dedup state must
// be bit-identical to a reference that saw the ingest once.
func TestChaosIdempotentRetryAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	register := Register(serve.WorkerSpec{ID: "ann", Quality: 0.8, Cost: 3})
	ingest := Ingest(serve.VoteEvent{WorkerID: "ann", Correct: true})
	script := []Step{register, ingest}

	env := Start(t, BaseConfig(dir))
	env.Drive(script)
	// A pre-crash retry of the same step (same construction-time key) is
	// deduplicated live.
	if err := ingest(env); err != nil {
		t.Fatalf("live retry: %v", err)
	}
	env.Crash()

	recovered := Start(t, BaseConfig(dir))
	// A post-recovery retry is deduplicated from the replayed WAL state.
	if err := ingest(recovered); err != nil {
		t.Fatalf("post-recovery retry: %v", err)
	}
	w, err := recovered.Client.Worker(ctx, "ann")
	if err != nil {
		t.Fatal(err)
	}
	if w.Votes != 1 {
		t.Fatalf("ann has %d votes after 3 deliveries of one keyed ingest, want 1", w.Votes)
	}
	reference := Reference(t, BaseConfig(dir), script, len(script))
	AssertSameState(t, reference, recovered)
}
