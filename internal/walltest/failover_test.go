package walltest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/server"
	"repro/jury/serve"
)

// failoverWorkers is the worker pool the ledgered writers vote on.
var failoverWorkers = []string{"fw0", "fw1", "fw2", "fw3"}

// registerFailoverWorkers installs the pool and waits for full
// replication, so every writer's vote references a known worker on every
// node from the first instant.
func registerFailoverWorkers(t testing.TB, c *Cluster) {
	t.Helper()
	specs := make([]serve.WorkerSpec, len(failoverWorkers))
	for i, id := range failoverWorkers {
		specs[i] = w(id, 0.6+0.05*float64(i), 1+float64(i))
	}
	c.Primary.Drive([]Step{Register(specs...)})
	WaitCaughtUp(t, c.Primary, c.Followers...)
}

// TestFailoverRandomKillPromoteScripts is the acceptance harness: across
// 20 random scripts, concurrent ledgered writers drive a quorum-acked
// cluster while the primary is killed -9 at an arbitrary point (mid-batch,
// mid-stream — whatever the timing lands on) and the max-applied follower
// is promoted. After each failover: zero acked mutations lost, zero
// rejected mutations applied, idempotency keys dedup across the epoch
// boundary, and the surviving nodes converge bit-exactly.
func TestFailoverRandomKillPromoteScripts(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			cluster := StartCluster(t, 2, 2)
			registerFailoverWorkers(t, cluster)

			wp := cluster.StartWriters(3, failoverWorkers, int64(seed))
			// Kill at an arbitrary point in the concurrent write stream.
			time.Sleep(time.Duration(20+rng.Intn(100)) * time.Millisecond)
			cluster.KillPrimary()
			// Sometimes promote immediately, sometimes let writers flail
			// against a primary-less cluster first.
			if rng.Intn(2) == 0 {
				time.Sleep(time.Duration(rng.Intn(60)) * time.Millisecond)
			}
			resp := cluster.PromoteFollower(cluster.MaxAppliedFollower())
			if resp.Epoch != 2 {
				t.Fatalf("promoted epoch = %d, want 2", resp.Epoch)
			}
			// Recovery: writers must land acks on the new primary.
			time.Sleep(time.Duration(60+rng.Intn(60)) * time.Millisecond)
			wp.Stop()

			if acked := wp.Ledger.Count(OpAcked); acked == 0 {
				t.Fatalf("no acked operations in a %d-op run; harness drove nothing", len(wp.Ledger.Ops()))
			}
			if got := cluster.Primary.Srv.CurrentEpoch(); got != 2 {
				t.Fatalf("new primary epoch = %d, want 2", got)
			}
			AssertConverged(t, cluster.Primary, cluster.Followers...)
			AssertLedger(t, cluster.Primary, wp.Ledger)
			AssertDedupAcrossFailover(t, cluster.Primary, wp.Ledger)
		})
	}
}

// TestFailoverResurrectedOldPrimaryFenced is contract (d): the killed
// primary comes back from its surviving directory, gets the fence the
// promotion could not deliver (it was dead), and from then on never
// accepts a write — across further restarts, without re-delivery, and
// with every refusal naming the new primary.
func TestFailoverResurrectedOldPrimaryFenced(t *testing.T) {
	ctx := context.Background()
	cluster := StartCluster(t, 2, 2)
	registerFailoverWorkers(t, cluster)
	wp := cluster.StartWriters(2, failoverWorkers, 77)
	time.Sleep(60 * time.Millisecond)
	cluster.KillPrimary()
	resp := cluster.PromoteFollower(cluster.MaxAppliedFollower())
	if resp.OldPrimaryFenced {
		t.Fatalf("promotion reports the fence landed on a kill -9'd primary")
	}
	time.Sleep(60 * time.Millisecond)
	wp.Stop()
	AssertConverged(t, cluster.Primary, cluster.Followers...)
	AssertLedger(t, cluster.Primary, wp.Ledger)

	// Resurrect. The promote-time fence never landed, so the reboot comes
	// up unfenced — the operator contract says: deliver the fence before
	// the node serves writes again.
	old := Start(t, cluster.OldPrimaryCfg)
	fr, err := serve.NewClient(old.HTTP.URL).Fence(ctx,
		serve.FenceRequest{Epoch: resp.Epoch, Primary: cluster.Primary.HTTP.URL})
	if err != nil {
		t.Fatalf("fence resurrected primary: %v", err)
	}
	if !fr.Fenced || fr.Epoch != resp.Epoch {
		t.Fatalf("fence response = %+v, want fenced at epoch %d", fr, resp.Epoch)
	}
	assertFencedWrite(t, old, resp.Epoch, cluster.Primary.HTTP.URL)

	// The fence is durable: another kill -9 and restart, no re-delivery.
	old.CrashDirty()
	old2 := Start(t, cluster.OldPrimaryCfg)
	assertFencedWrite(t, old2, resp.Epoch, cluster.Primary.HTTP.URL)
	st := old2.Srv.PersistenceStatus()
	if !st.Fenced || st.FenceEpoch != resp.Epoch || st.FencePrimary != cluster.Primary.HTTP.URL {
		t.Fatalf("restarted fence state = fenced %v epoch %d primary %q, want %d %q",
			st.Fenced, st.FenceEpoch, st.FencePrimary, resp.Epoch, cluster.Primary.HTTP.URL)
	}

	// A failover-aware client writing at the fenced node transparently
	// follows the 421 to the new primary.
	out, err := serve.NewClient(old2.HTTP.URL).IngestVoteKeyed(ctx,
		serve.VoteEvent{WorkerID: failoverWorkers[0], Correct: true}, serve.NewIdempotencyKey())
	if err != nil {
		t.Fatalf("client write at fenced node: %v", err)
	}
	if out.Duplicate {
		t.Fatalf("fresh key answered as duplicate")
	}
}

// assertFencedWrite asserts a raw mutation at a fenced node is refused
// with 421 + the new primary's address, and /readyz reports the fence.
func assertFencedWrite(t testing.TB, e *Env, epoch uint64, primary string) {
	t.Helper()
	resp, err := http.Post(e.HTTP.URL+"/v1/votes", "application/json",
		strings.NewReader(`{"worker_id":"fw0","correct":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("FENCED NODE ACKED A WRITE PATH: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get(server.PrimaryHeader); got != primary {
		t.Fatalf("fenced 421 %s = %q, want %q", server.PrimaryHeader, got, primary)
	}
	rz, err := http.Get(e.HTTP.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced readyz = %d, want 503", rz.StatusCode)
	}
	var body struct {
		Fenced bool   `json:"fenced"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(rz.Body).Decode(&body); err != nil || !body.Fenced || body.Epoch != epoch {
		t.Fatalf("fenced readyz body = %+v (err %v), want fenced at epoch %d", body, err, epoch)
	}
}

// TestFailoverOldPrimaryCleanRejoin: an old primary with no divergent
// suffix (it was quiesced when killed) rejoins as a follower of the new
// primary from its surviving directory, replays the epoch record — which
// self-clears its fence — and converges bit-exactly.
func TestFailoverOldPrimaryCleanRejoin(t *testing.T) {
	ctx := context.Background()
	dirP := t.TempDir()
	primary := Start(t, BaseConfig(dirP))
	f := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	primary.Drive(replScript())
	WaitCaughtUp(t, primary, f)

	primary.CrashDirty()
	resp, err := serve.NewClient(f.HTTP.URL).Promote(ctx, serve.PromoteRequest{Advertise: f.HTTP.URL})
	if err != nil || !resp.Promoted {
		t.Fatalf("promote: %v %+v", err, resp)
	}
	newPrimary := f.Env

	old := Start(t, BaseConfig(dirP))
	if _, err := serve.NewClient(old.HTTP.URL).Fence(ctx,
		serve.FenceRequest{Epoch: resp.Epoch, Primary: newPrimary.HTTP.URL}); err != nil {
		t.Fatalf("fence: %v", err)
	}
	if fenced, _, _ := old.Srv.FencedState(); !fenced {
		t.Fatal("old primary not fenced after delivery")
	}
	old.CrashDirty()

	// Rejoin: recover the old directory in follower mode, streaming from
	// the new primary. The epoch record arrives with the tail.
	rejoined := StartFollower(t, BaseConfig(dirP), newPrimary.HTTP.URL)
	WaitCaughtUp(t, newPrimary, rejoined)
	AssertSameState(t, newPrimary, rejoined.Env)
	if got := rejoined.Srv.CurrentEpoch(); got != resp.Epoch {
		t.Fatalf("rejoined epoch = %d, want %d", got, resp.Epoch)
	}
	if fenced, _, _ := rejoined.Srv.FencedState(); fenced {
		t.Fatal("fence did not self-clear after replaying the epoch record")
	}
	// It now serves as an ordinary follower: reads OK, writes bounce to
	// the new primary.
	rz, err := http.Get(rejoined.HTTP.URL + "/readyz")
	if err != nil || rz.StatusCode != http.StatusOK {
		t.Fatalf("rejoined readyz: %v %d, want 200", err, rz.StatusCode)
	}
	rz.Body.Close()
	vr, err := http.Post(rejoined.HTTP.URL+"/v1/votes", "application/json",
		strings.NewReader(`{"worker_id":"ann","correct":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer vr.Body.Close()
	if vr.StatusCode != http.StatusMisdirectedRequest ||
		vr.Header.Get(server.PrimaryHeader) != newPrimary.HTTP.URL {
		t.Fatalf("rejoined follower write = %d (%s %q), want 421 to %q", vr.StatusCode,
			server.PrimaryHeader, vr.Header.Get(server.PrimaryHeader), newPrimary.HTTP.URL)
	}
}

// TestFailoverOldPrimaryDivergentSuffixRejected: an old primary that
// journaled records the promoted follower never received cannot rejoin
// in place — its log forked from the new epoch's history at the same
// LSNs. The epoch log-matching check refuses it with a terminal
// ErrDiverged, and wiping + re-bootstrapping from the new primary's
// snapshot joins it cleanly.
func TestFailoverOldPrimaryDivergentSuffixRejected(t *testing.T) {
	ctx := context.Background()
	dirP := t.TempDir()
	primary := Start(t, BaseConfig(dirP))
	f := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)
	primary.Drive(replScript())
	WaitCaughtUp(t, primary, f)

	// Sever replication, then ack two more mutations only the primary
	// ever saw: the unshipped suffix.
	if err := f.StopStream(); err != nil {
		t.Fatalf("stop stream: %v", err)
	}
	primary.Drive([]Step{
		Ingest(ev("ann", true)),
		Ingest(ev("bob", false)),
	})
	primary.CrashDirty()

	resp, err := serve.NewClient(f.HTTP.URL).Promote(ctx, serve.PromoteRequest{Advertise: f.HTTP.URL})
	if err != nil || !resp.Promoted {
		t.Fatalf("promote: %v %+v", err, resp)
	}
	newPrimary := f.Env

	rejoined := StartFollower(t, BaseConfig(dirP), newPrimary.HTTP.URL)
	if err := rejoined.WaitDone(10 * time.Second); !errors.Is(err, repl.ErrDiverged) {
		t.Fatalf("divergent rejoin exited %v, want ErrDiverged", err)
	}
	// Sanity: the fork is real — the old node's log runs past the LSN the
	// new epoch opened at, so the same positions hold different records.
	if old, fork := uint64(rejoined.Srv.AppliedLSN()), resp.AppliedLSN; old < fork {
		t.Fatalf("no fork: old node applied %d, epoch record at %d", old, fork)
	}

	fresh := BootstrapFollower(t, BaseConfig(t.TempDir()), newPrimary.HTTP.URL)
	AssertConverged(t, newPrimary, fresh)
}

// TestFailoverStrandedFollowerRebootstrapsFromNewPrimary is the
// satellite regression: a follower that lagged behind the new primary's
// truncation horizon during a promotion gets ErrSnapshotNeeded naming
// the NEW primary's URL — the node it must re-bootstrap from — not the
// dead address it booted with.
func TestFailoverStrandedFollowerRebootstrapsFromNewPrimary(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	script := randomScript(rng, 40)

	cfgP := BaseConfig(t.TempDir())
	cfgP.SegmentBytes = 256
	primary := Start(t, cfgP)
	cfgA := BaseConfig(t.TempDir())
	cfgA.SegmentBytes = 256
	a := StartFollower(t, cfgA, primary.HTTP.URL)
	b := StartFollower(t, BaseConfig(t.TempDir()), primary.HTTP.URL)

	primary.Drive(script[:8])
	WaitCaughtUp(t, primary, a, b)
	if err := b.StopStream(); err != nil {
		t.Fatalf("stop b: %v", err)
	}
	primary.Drive(script[8:])
	WaitCaughtUp(t, primary, a)

	primary.CrashDirty()
	resp, err := serve.NewClient(a.HTTP.URL).Promote(ctx, serve.PromoteRequest{Advertise: a.HTTP.URL})
	if err != nil || !resp.Promoted {
		t.Fatalf("promote: %v %+v", err, resp)
	}
	// The new primary checkpoints and truncates its log past b's position.
	if err := a.Srv.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	if _, err := serve.NewClient(b.HTTP.URL).Repoint(ctx,
		serve.RepointRequest{Primary: a.HTTP.URL}); err != nil {
		t.Fatalf("repoint b: %v", err)
	}
	b.startLoop()
	err = b.WaitDone(10 * time.Second)
	if !errors.Is(err, repl.ErrSnapshotNeeded) {
		t.Fatalf("stranded follower exited %v, want ErrSnapshotNeeded", err)
	}
	if !strings.Contains(err.Error(), a.HTTP.URL) {
		t.Fatalf("ErrSnapshotNeeded diagnosis %q does not name the new primary %s", err, a.HTTP.URL)
	}
	if strings.Contains(err.Error(), primary.HTTP.URL) {
		t.Fatalf("ErrSnapshotNeeded diagnosis %q names the dead primary %s", err, primary.HTTP.URL)
	}

	// The prescription works: re-bootstrap from the named node.
	fresh := BootstrapFollower(t, BaseConfig(t.TempDir()), a.HTTP.URL)
	AssertConverged(t, a.Env, fresh)
}

// TestFailoverQuorumAckGating pins the -quorum contract: acks wait for
// the follower confirmation; with the follower severed the ack times out
// as a 503 whose record is nonetheless journaled (an ambiguous outcome by
// design), and the idempotency key turns the post-recovery retry into a
// clean duplicate rather than a double-count.
func TestFailoverQuorumAckGating(t *testing.T) {
	ctx := context.Background()
	cfgP := ClusterConfig(t.TempDir(), 2)
	cfgP.QuorumTimeout = 300 * time.Millisecond
	primary := Start(t, cfgP)
	f := StartFollower(t, ClusterConfig(t.TempDir(), 2), primary.HTTP.URL)
	client := serve.NewClient(primary.HTTP.URL).WithRetry(serve.RetryPolicy{MaxAttempts: 1})

	if err := client.RegisterWorkers(ctx, []serve.WorkerSpec{w("ann", 0.8, 2)}); err != nil {
		t.Fatalf("register under quorum: %v", err)
	}
	if _, err := client.IngestVoteKeyed(ctx,
		serve.VoteEvent{WorkerID: "ann", Correct: true}, serve.NewIdempotencyKey()); err != nil {
		t.Fatalf("ingest under quorum: %v", err)
	}

	if err := f.StopStream(); err != nil {
		t.Fatalf("stop stream: %v", err)
	}
	before := primary.Srv.PersistenceStatus().NextLSN
	key := serve.NewIdempotencyKey()
	_, err := client.IngestVoteKeyed(ctx, serve.VoteEvent{WorkerID: "ann", Correct: false}, key)
	var apiErr *serve.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("quorum-starved ingest = %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("quorum timeout 503 has no Retry-After hint")
	}
	if !strings.Contains(apiErr.Message, "quorum") {
		t.Fatalf("quorum timeout message %q does not say quorum", apiErr.Message)
	}
	if after := primary.Srv.PersistenceStatus().NextLSN; after != before+1 {
		t.Fatalf("quorum-timed-out record not journaled: next lsn %d -> %d", before, after)
	}
	metrics, err := serve.NewClient(primary.HTTP.URL).Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "juryd_quorum_timeouts_total 1") {
		t.Fatalf("metrics missing quorum timeout count (err %v)", err)
	}

	// Reconnect the follower; the replayed key is a duplicate — the
	// ambiguous 503 resolved to exactly-once.
	f.startLoop()
	resp, err := client.IngestVoteKeyed(ctx, serve.VoteEvent{WorkerID: "ann", Correct: false}, key)
	if err != nil {
		t.Fatalf("replay after reconnect: %v", err)
	}
	if !resp.Duplicate {
		t.Fatalf("replay after quorum timeout not deduplicated — the vote double-counted")
	}
	AssertConverged(t, primary, f)
}

// TestFailoverClientFollowsToNewPrimary is the client-side satellite: a
// production-shaped client configured before the failover (dead primary
// as base, followers as replicas) lands both writes and reads on the
// promoted node without reconfiguration.
func TestFailoverClientFollowsToNewPrimary(t *testing.T) {
	ctx := context.Background()
	cluster := StartCluster(t, 2, 2)
	registerFailoverWorkers(t, cluster)
	client := cluster.Client() // snapshot of the pre-failover topology

	cluster.KillPrimary()
	cluster.PromoteFollower(cluster.MaxAppliedFollower())

	resp, err := client.IngestVote(ctx, serve.VoteEvent{WorkerID: failoverWorkers[1], Correct: true})
	if err != nil {
		t.Fatalf("write through stale-topology client: %v", err)
	}
	if resp.Duplicate {
		t.Fatal("fresh write answered as duplicate")
	}
	list, err := client.Workers(ctx)
	if err != nil {
		t.Fatalf("read through stale-topology client: %v", err)
	}
	found := false
	for _, wi := range list.Workers {
		if wi.ID == failoverWorkers[1] && wi.Votes >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("vote landed nowhere visible: %+v", list.Workers)
	}
}

// TestFailoverEpochRecordsSurviveCrashRecovery is the persistence
// satellite at the harness level: a post-promotion node (epoch record in
// its WAL) crashes and recovers bit-exactly — snapshot + tail, epochs
// included — and a torn tail behind the epoch record still recovers the
// promotion itself.
func TestFailoverEpochRecordsSurviveCrashRecovery(t *testing.T) {
	ctx := context.Background()
	dirF := t.TempDir()
	primary := Start(t, BaseConfig(t.TempDir()))
	f := StartFollower(t, BaseConfig(dirF), primary.HTTP.URL)
	primary.Drive(replScript())
	WaitCaughtUp(t, primary, f)
	primary.CrashDirty()
	resp, err := serve.NewClient(f.HTTP.URL).Promote(ctx, serve.PromoteRequest{Advertise: f.HTTP.URL})
	if err != nil || !resp.Promoted {
		t.Fatalf("promote: %v %+v", err, resp)
	}
	// Mutate under the new epoch, checkpoint mid-history, mutate more:
	// recovery must compose snapshot + tail across the epoch boundary.
	f.Env.Drive([]Step{Ingest(ev("ann", true))})
	if err := f.Srv.SnapshotNow(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	f.Env.Drive([]Step{Ingest(ev("bob", true))})

	want, err := f.Srv.DebugState()
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	wantSHA := f.Srv.PersistenceStatus().StateSHA256
	f.Env.CrashDirty()

	recovered := Start(t, BaseConfig(dirF))
	got, err := recovered.Srv.DebugState()
	if err != nil {
		t.Fatalf("recovered dump: %v", err)
	}
	if string(want) != string(got) {
		t.Fatalf("state with epoch records did not recover bit-exactly:\nwant %s\ngot  %s", want, got)
	}
	if sha := recovered.Srv.PersistenceStatus().StateSHA256; sha != wantSHA {
		t.Fatalf("state_sha256 changed across recovery: %s -> %s", wantSHA, sha)
	}
	if got := recovered.Srv.CurrentEpoch(); got != resp.Epoch {
		t.Fatalf("recovered epoch = %d, want %d", got, resp.Epoch)
	}

	// Torn tail: cut the last record mid-write; the promotion (journaled
	// earlier) must survive the truncation.
	dir2 := CopyDir(t, dirF)
	_, size := TailSegment(t, dir2)
	Tear(t, dir2, size-2)
	recovered.CrashDirty()
	torn := Start(t, BaseConfig(dir2))
	if got := torn.Srv.CurrentEpoch(); got != resp.Epoch {
		t.Fatalf("torn-tail recovery lost the epoch: %d, want %d", got, resp.Epoch)
	}
}
