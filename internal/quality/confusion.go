package quality

import (
	"fmt"
	"math"

	"repro/internal/multichoice"
)

// ResponseL is one worker's answer to one ℓ-ary task.
type ResponseL struct {
	Task   int
	Worker int
	Vote   multichoice.Label
}

// DatasetL is a sparse matrix of crowd answers to multi-choice tasks.
type DatasetL struct {
	NumTasks   int
	NumWorkers int
	Labels     int
	Responses  []ResponseL
}

// Validate checks index ranges.
func (d DatasetL) Validate() error {
	if d.NumTasks < 1 || d.NumWorkers < 1 || len(d.Responses) == 0 {
		return ErrEmptyDataset
	}
	if d.Labels < 2 {
		return fmt.Errorf("%w: %d labels", ErrBadResponse, d.Labels)
	}
	for i, r := range d.Responses {
		if r.Task < 0 || r.Task >= d.NumTasks || r.Worker < 0 || r.Worker >= d.NumWorkers {
			return fmt.Errorf("%w: response %d = %+v", ErrBadResponse, i, r)
		}
		if r.Vote < 0 || int(r.Vote) >= d.Labels {
			return fmt.Errorf("%w: response %d has label %d", ErrBadResponse, i, r.Vote)
		}
	}
	return nil
}

// EMConfusionResult is the output of the full Dawid–Skene estimator.
type EMConfusionResult struct {
	// Confusions[w] is worker w's estimated ℓ×ℓ confusion matrix.
	Confusions []multichoice.ConfusionMatrix
	// Prior is the estimated class prior over the ℓ labels.
	Prior multichoice.Prior
	// Posteriors[t][j] is the posterior probability that task t's truth
	// is label j; Labels[t] is the MAP estimate.
	Posteriors [][]float64
	Labels     []multichoice.Label
	Iterations int
	Converged  bool
}

// EMConfusion runs the classic Dawid–Skene algorithm [1]: jointly estimate
// per-worker confusion matrices, the class prior, and task truths for
// ℓ-ary tasks. Initialization is by vote frequencies (soft plurality);
// rows are Laplace-smoothed.
func EMConfusion(d DatasetL, opts EMOptions) (EMConfusionResult, error) {
	if err := d.Validate(); err != nil {
		return EMConfusionResult{}, err
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 100
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-6
	}
	l := d.Labels

	byTask := make([][]ResponseL, d.NumTasks)
	for _, r := range d.Responses {
		byTask[r.Task] = append(byTask[r.Task], r)
	}

	// Initialization: posterior = vote frequency per task.
	post := make([][]float64, d.NumTasks)
	for t, rs := range byTask {
		post[t] = make([]float64, l)
		if len(rs) == 0 {
			for j := range post[t] {
				post[t][j] = 1 / float64(l)
			}
			continue
		}
		for _, r := range rs {
			post[t][r.Vote]++
		}
		for j := range post[t] {
			post[t][j] /= float64(len(rs))
		}
	}

	confusions := make([]multichoice.ConfusionMatrix, d.NumWorkers)
	prior := make(multichoice.Prior, l)
	res := EMConfusionResult{}
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// M-step: confusion rows from soft labels, Laplace-smoothed.
		counts := make([][][]float64, d.NumWorkers) // [worker][truth][vote]
		for w := range counts {
			counts[w] = make([][]float64, l)
			for j := range counts[w] {
				counts[w][j] = make([]float64, l)
				for k := range counts[w][j] {
					counts[w][j][k] = smoothing / float64(l)
				}
			}
		}
		for _, r := range d.Responses {
			for j := 0; j < l; j++ {
				counts[r.Worker][j][r.Vote] += post[r.Task][j]
			}
		}
		maxDelta := 0.0
		for w := range counts {
			m := make(multichoice.ConfusionMatrix, l)
			for j := 0; j < l; j++ {
				m[j] = make([]float64, l)
				var rowSum float64
				for k := 0; k < l; k++ {
					rowSum += counts[w][j][k]
				}
				for k := 0; k < l; k++ {
					m[j][k] = counts[w][j][k] / rowSum
					if confusions[w] != nil {
						if delta := math.Abs(m[j][k] - confusions[w][j][k]); delta > maxDelta {
							maxDelta = delta
						}
					} else {
						maxDelta = 1
					}
				}
			}
			confusions[w] = m
		}
		// Prior from posteriors.
		for j := range prior {
			prior[j] = 0
		}
		for _, p := range post {
			for j, v := range p {
				prior[j] += v
			}
		}
		for j := range prior {
			prior[j] = math.Max(prior[j]/float64(d.NumTasks), 1e-9)
		}
		normalize(prior)

		// E-step: posteriors from confusion matrices.
		for t, rs := range byTask {
			logp := make([]float64, l)
			for j := 0; j < l; j++ {
				logp[j] = math.Log(prior[j])
				for _, r := range rs {
					logp[j] += math.Log(math.Max(confusions[r.Worker][j][r.Vote], 1e-12))
				}
			}
			m := logp[0]
			for _, v := range logp[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for j := range logp {
				post[t][j] = math.Exp(logp[j] - m)
				sum += post[t][j]
			}
			for j := range logp {
				post[t][j] /= sum
			}
		}
		res.Iterations = iter + 1
		if maxDelta < opts.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
	}

	res.Confusions = confusions
	res.Prior = prior
	res.Posteriors = post
	res.Labels = make([]multichoice.Label, d.NumTasks)
	for t, p := range post {
		best := 0
		for j := 1; j < l; j++ {
			if p[j] > p[best] {
				best = j
			}
		}
		res.Labels[t] = multichoice.Label(best)
	}
	return res, nil
}

func normalize(p multichoice.Prior) {
	var sum float64
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
}
