package quality

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/voting"
)

// synth builds a synthetic response dataset with known worker qualities
// and truths: every worker answers every task.
func synth(rng *rand.Rand, qualities []float64, numTasks int) (Dataset, []voting.Vote) {
	truths := make([]voting.Vote, numTasks)
	for t := range truths {
		truths[t] = voting.Vote(rng.Intn(2))
	}
	d := Dataset{NumTasks: numTasks, NumWorkers: len(qualities)}
	for t := 0; t < numTasks; t++ {
		for w, q := range qualities {
			v := truths[t]
			if rng.Float64() >= q {
				v = v.Opposite()
			}
			d.Responses = append(d.Responses, Response{Task: t, Worker: w, Vote: v})
		}
	}
	return d, truths
}

func TestDatasetValidate(t *testing.T) {
	if err := (Dataset{}).Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty: err = %v", err)
	}
	bad := Dataset{NumTasks: 1, NumWorkers: 1, Responses: []Response{{Task: 2, Worker: 0}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadResponse) {
		t.Errorf("range: err = %v", err)
	}
	badVote := Dataset{NumTasks: 1, NumWorkers: 1, Responses: []Response{{Vote: 3}}}
	if err := badVote.Validate(); !errors.Is(err, ErrBadResponse) {
		t.Errorf("vote: err = %v", err)
	}
}

func TestGoldenRecoverQualities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueQ := []float64{0.9, 0.7, 0.55}
	d, truths := synth(rng, trueQ, 400)
	goldens := map[int]voting.Vote{}
	for t := 0; t < 200; t++ { // half the tasks are golden
		goldens[t] = truths[t]
	}
	qs, err := Golden(d, goldens)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range trueQ {
		if math.Abs(qs[w]-want) > 0.08 {
			t.Errorf("worker %d: estimated %v, want ≈%v", w, qs[w], want)
		}
	}
}

func TestGoldenUnseenWorkerDefaults(t *testing.T) {
	d := Dataset{NumTasks: 2, NumWorkers: 2, Responses: []Response{
		{Task: 0, Worker: 0, Vote: voting.No},
	}}
	qs, err := Golden(d, map[int]voting.Vote{0: voting.No})
	if err != nil {
		t.Fatal(err)
	}
	if qs[1] != 0.5 {
		t.Fatalf("unseen worker quality = %v, want 0.5", qs[1])
	}
	// Smoothing: a single correct answer must not yield quality 1.
	if qs[0] >= 1 || qs[0] <= 0.5 {
		t.Fatalf("one-answer worker quality = %v, want in (0.5, 1)", qs[0])
	}
}

func TestGoldenNoGoldens(t *testing.T) {
	d := Dataset{NumTasks: 1, NumWorkers: 1, Responses: []Response{{}}}
	qs, err := Golden(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 0.5 {
		t.Fatalf("quality = %v, want 0.5 with no golden tasks", qs[0])
	}
}

func TestEMRecoversQualitiesWithoutGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trueQ := []float64{0.95, 0.85, 0.75, 0.7, 0.65, 0.6, 0.8, 0.9}
	d, truths := synth(rng, trueQ, 300)
	res, err := EM(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("EM did not converge")
	}
	for w, want := range trueQ {
		if math.Abs(res.Qualities[w]-want) > 0.08 {
			t.Errorf("worker %d: EM estimated %v, want ≈%v", w, res.Qualities[w], want)
		}
	}
	// Label recovery should be near-perfect with 8 decent workers.
	correct := 0
	for t2, truth := range truths {
		if res.Labels[t2] == truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(truths)); acc < 0.97 {
		t.Errorf("EM label accuracy = %v, want ≥ 0.97", acc)
	}
}

func TestEMBeatsMajorityLabels(t *testing.T) {
	// One expert among noisy workers: EM should outperform per-task
	// majority because it learns whom to trust.
	rng := rand.New(rand.NewSource(3))
	trueQ := []float64{0.98, 0.55, 0.55, 0.55, 0.55}
	d, truths := synth(rng, trueQ, 400)
	res, err := EM(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	emCorrect, mvCorrect := 0, 0
	perTask := make([][]Response, len(truths))
	for _, r := range d.Responses {
		perTask[r.Task] = append(perTask[r.Task], r)
	}
	for t2, truth := range truths {
		if res.Labels[t2] == truth {
			emCorrect++
		}
		zeros := 0
		for _, r := range perTask[t2] {
			if r.Vote == voting.No {
				zeros++
			}
		}
		mvLabel := voting.Yes
		if 2*zeros >= len(perTask[t2])+1 {
			mvLabel = voting.No
		}
		if mvLabel == truth {
			mvCorrect++
		}
	}
	if emCorrect <= mvCorrect {
		t.Fatalf("EM labels (%d) not better than majority (%d)", emCorrect, mvCorrect)
	}
}

func TestEMEstimatesPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Skewed truth distribution: 80% of tasks are "no".
	trueQ := []float64{0.9, 0.85, 0.8, 0.75}
	numTasks := 500
	truths := make([]voting.Vote, numTasks)
	for t2 := range truths {
		if rng.Float64() < 0.8 {
			truths[t2] = voting.No
		} else {
			truths[t2] = voting.Yes
		}
	}
	d := Dataset{NumTasks: numTasks, NumWorkers: len(trueQ)}
	for t2 := 0; t2 < numTasks; t2++ {
		for w, q := range trueQ {
			v := truths[t2]
			if rng.Float64() >= q {
				v = v.Opposite()
			}
			d.Responses = append(d.Responses, Response{Task: t2, Worker: w, Vote: v})
		}
	}
	res, err := EM(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PriorAlpha-0.8) > 0.06 {
		t.Fatalf("estimated prior = %v, want ≈0.8", res.PriorAlpha)
	}
	// Fixed prior must be respected.
	fixed, err := EM(d, EMOptions{FixedPrior: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.PriorAlpha != 0.5 {
		t.Fatalf("fixed prior = %v, want 0.5", fixed.PriorAlpha)
	}
}

func TestEMQualitiesStayInOpenInterval(t *testing.T) {
	// A worker who is always right must still get q < 1 (smoothing).
	rng := rand.New(rand.NewSource(5))
	d, _ := synth(rng, []float64{1.0, 0.7, 0.7}, 100)
	res, err := EM(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for w, q := range res.Qualities {
		if q <= 0 || q >= 1 {
			t.Fatalf("worker %d: quality %v outside (0, 1)", w, q)
		}
	}
}

func TestEMValidation(t *testing.T) {
	if _, err := EM(Dataset{}, EMOptions{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("err = %v", err)
	}
}

func TestEMIterationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := synth(rng, []float64{0.8, 0.7}, 50)
	res, err := EM(d, EMOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("iterations = %d, want ≤ 2", res.Iterations)
	}
}
