package quality

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/multichoice"
)

// synthL builds ℓ-ary responses from known confusion matrices.
func synthL(rng *rand.Rand, confusions []multichoice.ConfusionMatrix, numTasks int) (DatasetL, []multichoice.Label) {
	l := confusions[0].Labels()
	truths := make([]multichoice.Label, numTasks)
	for t := range truths {
		truths[t] = multichoice.Label(rng.Intn(l))
	}
	d := DatasetL{NumTasks: numTasks, NumWorkers: len(confusions), Labels: l}
	for t := 0; t < numTasks; t++ {
		for w, m := range confusions {
			d.Responses = append(d.Responses, ResponseL{
				Task: t, Worker: w, Vote: sampleRow(rng, m[truths[t]]),
			})
		}
	}
	return d, truths
}

func sampleRow(rng *rand.Rand, row []float64) multichoice.Label {
	u := rng.Float64()
	var cum float64
	for k, p := range row {
		cum += p
		if u < cum {
			return multichoice.Label(k)
		}
	}
	return multichoice.Label(len(row) - 1)
}

func mustSym(t *testing.T, l int, q float64) multichoice.ConfusionMatrix {
	t.Helper()
	m, err := multichoice.NewSymmetricConfusion(l, q)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDatasetLValidate(t *testing.T) {
	if err := (DatasetL{}).Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty: err = %v", err)
	}
	bad := DatasetL{NumTasks: 1, NumWorkers: 1, Labels: 1, Responses: []ResponseL{{}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadResponse) {
		t.Errorf("labels: err = %v", err)
	}
	badVote := DatasetL{NumTasks: 1, NumWorkers: 1, Labels: 3, Responses: []ResponseL{{Vote: 5}}}
	if err := badVote.Validate(); !errors.Is(err, ErrBadResponse) {
		t.Errorf("vote: err = %v", err)
	}
}

func TestEMConfusionRecoversMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	confusions := []multichoice.ConfusionMatrix{
		mustSym(t, 3, 0.9),
		mustSym(t, 3, 0.75),
		mustSym(t, 3, 0.6),
		mustSym(t, 3, 0.8),
		mustSym(t, 3, 0.7),
	}
	d, truths := synthL(rng, confusions, 400)
	res, err := EMConfusion(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal entries should be recovered within sampling noise.
	for w, want := range confusions {
		for j := 0; j < 3; j++ {
			if math.Abs(res.Confusions[w][j][j]-want[j][j]) > 0.12 {
				t.Errorf("worker %d row %d: diagonal %v, want ≈%v",
					w, j, res.Confusions[w][j][j], want[j][j])
			}
		}
	}
	// Label recovery accuracy.
	correct := 0
	for t2, truth := range truths {
		if res.Labels[t2] == truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(truths)); acc < 0.95 {
		t.Errorf("label accuracy = %v, want ≥ 0.95", acc)
	}
	// Uniform truths ⇒ roughly uniform estimated prior.
	for j, p := range res.Prior {
		if p < 0.2 || p > 0.5 {
			t.Errorf("prior[%d] = %v, want ≈1/3", j, p)
		}
	}
}

func TestEMConfusionLearnsAsymmetricBias(t *testing.T) {
	// A worker who systematically votes 2 when the truth is 1: EM should
	// discover that row structure, not just a diagonal score.
	biased := multichoice.ConfusionMatrix{
		{0.9, 0.05, 0.05},
		{0.05, 0.15, 0.80},
		{0.05, 0.05, 0.90},
	}
	helpers := []multichoice.ConfusionMatrix{biased}
	for i := 0; i < 4; i++ {
		helpers = append(helpers, mustSym(t, 3, 0.8))
	}
	rng := rand.New(rand.NewSource(8))
	d, _ := synthL(rng, helpers, 600)
	res, err := EMConfusion(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Confusions[0]
	if got[1][2] < 0.6 {
		t.Fatalf("biased worker row 1 = %v, want [1][2] ≈ 0.8", got[1])
	}
	if got[0][0] < 0.75 {
		t.Fatalf("biased worker row 0 = %v, want strong diagonal", got[0])
	}
}

func TestEMConfusionRowsAreStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d, _ := synthL(rng, []multichoice.ConfusionMatrix{mustSym(t, 3, 0.7), mustSym(t, 3, 0.6)}, 60)
	res, err := EMConfusion(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for w, m := range res.Confusions {
		if err := m.Validate(); err != nil {
			t.Fatalf("worker %d: invalid estimated matrix: %v", w, err)
		}
	}
	var priorSum float64
	for _, p := range res.Prior {
		priorSum += p
	}
	if math.Abs(priorSum-1) > 1e-9 {
		t.Fatalf("prior sums to %v", priorSum)
	}
}

func TestEMConfusionValidation(t *testing.T) {
	if _, err := EMConfusion(DatasetL{}, EMOptions{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("err = %v", err)
	}
}

func TestEMConfusionFeedsJQPipeline(t *testing.T) {
	// End-to-end: estimate confusion matrices, then compute the JQ of a
	// jury built from them — the Section 7 workflow with learned models.
	rng := rand.New(rand.NewSource(10))
	confusions := []multichoice.ConfusionMatrix{
		mustSym(t, 3, 0.85), mustSym(t, 3, 0.7), mustSym(t, 3, 0.65),
	}
	d, _ := synthL(rng, confusions, 300)
	res, err := EMConfusion(d, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pool := make(multichoice.Pool, len(res.Confusions))
	for w, m := range res.Confusions {
		pool[w] = multichoice.Worker{Confusion: m, Cost: 1}
	}
	jqv, err := multichoice.ExactBV(pool, multichoice.UniformPrior(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := multichoice.ExactBV(multichoice.Pool{
		{Confusion: confusions[0], Cost: 1},
		{Confusion: confusions[1], Cost: 1},
		{Confusion: confusions[2], Cost: 1},
	}, multichoice.UniformPrior(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jqv-want) > 0.05 {
		t.Fatalf("JQ from learned matrices %v vs true %v", jqv, want)
	}
}
