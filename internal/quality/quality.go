// Package quality estimates worker qualities from crowdsourced answers —
// the substrate the paper assumes as given ("a few works [7,25,37] have
// recently addressed how to derive the quality and the cost of a worker…
// we assume that they are known in advance", Section 2.1).
//
// Three estimators are provided:
//
//   - Golden: the CDAS-style golden-question approach [25] — qualities are
//     the fraction of correct answers on tasks with known ground truth;
//   - EM: the Dawid–Skene expectation–maximization algorithm [1,18] for
//     the binary single-quality model, which jointly infers task truths
//     and worker qualities with no ground truth at all;
//   - EMConfusion: full Dawid–Skene for ℓ-ary tasks, estimating each
//     worker's confusion matrix (feeding the Section 7 extension).
//
// All estimators apply Laplace smoothing so that no worker is ever
// assigned a quality of exactly 0 or 1 from finite data.
package quality

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/voting"
)

// Response is one worker's answer to one task.
type Response struct {
	Task   int
	Worker int
	Vote   voting.Vote
}

// Dataset is a sparse matrix of crowd answers to binary tasks.
type Dataset struct {
	NumTasks   int
	NumWorkers int
	Responses  []Response
}

// Errors returned by the estimators.
var (
	ErrEmptyDataset = errors.New("quality: empty dataset")
	ErrBadResponse  = errors.New("quality: response out of range")
)

// Validate checks index ranges.
func (d Dataset) Validate() error {
	if d.NumTasks < 1 || d.NumWorkers < 1 || len(d.Responses) == 0 {
		return ErrEmptyDataset
	}
	for i, r := range d.Responses {
		if r.Task < 0 || r.Task >= d.NumTasks || r.Worker < 0 || r.Worker >= d.NumWorkers {
			return fmt.Errorf("%w: response %d = %+v", ErrBadResponse, i, r)
		}
		if r.Vote != voting.No && r.Vote != voting.Yes {
			return fmt.Errorf("%w: response %d has vote %d", ErrBadResponse, i, r.Vote)
		}
	}
	return nil
}

// smoothing is the Laplace pseudo-count applied to correct/incorrect
// tallies, keeping estimated qualities strictly inside (0, 1).
const smoothing = 1.0

// Golden estimates qualities from the tasks whose ground truth is known
// (the golden questions). Workers with no golden answers get quality 0.5.
func Golden(d Dataset, truths map[int]voting.Vote) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	correct := make([]float64, d.NumWorkers)
	answered := make([]float64, d.NumWorkers)
	for _, r := range d.Responses {
		t, ok := truths[r.Task]
		if !ok {
			continue
		}
		answered[r.Worker]++
		if r.Vote == t {
			correct[r.Worker]++
		}
	}
	qs := make([]float64, d.NumWorkers)
	for w := range qs {
		if answered[w] == 0 {
			qs[w] = 0.5
			continue
		}
		qs[w] = (correct[w] + smoothing) / (answered[w] + 2*smoothing)
	}
	return qs, nil
}

// EMOptions configures the Dawid–Skene estimator.
type EMOptions struct {
	// MaxIterations bounds the EM loop; 0 selects 100.
	MaxIterations int
	// Tolerance is the convergence threshold on the maximum quality
	// change between iterations; 0 selects 1e-6.
	Tolerance float64
	// FixedPrior, when in (0, 1), pins the class prior P(t=0) instead of
	// re-estimating it each M-step.
	FixedPrior float64
}

// EMResult is the output of the binary Dawid–Skene estimator.
type EMResult struct {
	// Qualities are the estimated per-worker correctness probabilities.
	Qualities []float64
	// PriorAlpha is the estimated (or fixed) class prior P(t=0).
	PriorAlpha float64
	// Posteriors[t] is the posterior probability that task t's truth is 0.
	Posteriors []float64
	// Labels[t] is the maximum-a-posteriori truth estimate of task t.
	Labels []voting.Vote
	// Iterations is the number of EM rounds executed; Converged reports
	// whether the tolerance was reached before MaxIterations.
	Iterations int
	Converged  bool
}

// EM runs Dawid–Skene for the binary single-quality worker model: it
// alternates task-truth posteriors (E-step) with quality and prior
// re-estimation (M-step), initialized from majority voting. If the run
// converges to the label-flipped mode (mean quality below 0.5), the
// solution is flipped back — the two modes are equivalent likelihood
// optima.
func EM(d Dataset, opts EMOptions) (EMResult, error) {
	if err := d.Validate(); err != nil {
		return EMResult{}, err
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 100
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-6
	}

	// Group responses by task for the E-step.
	byTask := make([][]Response, d.NumTasks)
	for _, r := range d.Responses {
		byTask[r.Task] = append(byTask[r.Task], r)
	}

	// Initialization: posterior = fraction of 0-votes per task (majority
	// signal), qualities from those soft labels.
	post := make([]float64, d.NumTasks)
	for t, rs := range byTask {
		if len(rs) == 0 {
			post[t] = 0.5
			continue
		}
		zeros := 0
		for _, r := range rs {
			if r.Vote == voting.No {
				zeros++
			}
		}
		post[t] = float64(zeros) / float64(len(rs))
	}

	qs := make([]float64, d.NumWorkers)
	res := EMResult{}
	alpha := 0.5
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// M-step: qualities from soft labels.
		correct := make([]float64, d.NumWorkers)
		answered := make([]float64, d.NumWorkers)
		for _, r := range d.Responses {
			p0 := post[r.Task]
			answered[r.Worker]++
			if r.Vote == voting.No {
				correct[r.Worker] += p0
			} else {
				correct[r.Worker] += 1 - p0
			}
		}
		maxDelta := 0.0
		for w := range qs {
			var q float64
			if answered[w] == 0 {
				q = 0.5
			} else {
				q = (correct[w] + smoothing) / (answered[w] + 2*smoothing)
			}
			if delta := math.Abs(q - qs[w]); delta > maxDelta {
				maxDelta = delta
			}
			qs[w] = q
		}
		// Prior update.
		if opts.FixedPrior > 0 && opts.FixedPrior < 1 {
			alpha = opts.FixedPrior
		} else {
			var sum float64
			for _, p := range post {
				sum += p
			}
			alpha = sum / float64(d.NumTasks)
			// Keep the prior off the degenerate boundary.
			alpha = math.Min(math.Max(alpha, 1e-6), 1-1e-6)
		}
		// E-step: task posteriors from qualities.
		for t, rs := range byTask {
			if len(rs) == 0 {
				post[t] = alpha
				continue
			}
			log0 := math.Log(alpha)
			log1 := math.Log(1 - alpha)
			for _, r := range rs {
				q := qs[r.Worker]
				if r.Vote == voting.No {
					log0 += math.Log(q)
					log1 += math.Log(1 - q)
				} else {
					log0 += math.Log(1 - q)
					log1 += math.Log(q)
				}
			}
			// Normalize in log space.
			m := math.Max(log0, log1)
			p0 := math.Exp(log0 - m)
			p1 := math.Exp(log1 - m)
			post[t] = p0 / (p0 + p1)
		}
		res.Iterations = iter + 1
		if maxDelta < opts.Tolerance && iter > 0 {
			res.Converged = true
			break
		}
	}

	// Resolve the label-flip ambiguity: prefer the mode where workers are
	// better than chance on average.
	var meanQ float64
	for _, q := range qs {
		meanQ += q
	}
	meanQ /= float64(len(qs))
	if meanQ < 0.5 {
		for w := range qs {
			qs[w] = 1 - qs[w]
		}
		for t := range post {
			post[t] = 1 - post[t]
		}
		alpha = 1 - alpha
	}

	res.Qualities = qs
	res.PriorAlpha = alpha
	res.Posteriors = post
	res.Labels = make([]voting.Vote, d.NumTasks)
	for t, p := range post {
		if p >= 0.5 {
			res.Labels[t] = voting.No
		} else {
			res.Labels[t] = voting.Yes
		}
	}
	return res, nil
}
