package hardness

import "testing"

// FuzzReductionEquivalence hammers the Theorem 2 reduction: on every
// instance the subset-sum DP and the jury tie-mass detection must agree.
func FuzzReductionEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{2, 2, 3})
	f.Add([]byte{7, 7})
	f.Add([]byte{1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 14 {
			t.Skip()
		}
		items := make([]int, len(raw))
		for i, b := range raw {
			items[i] = int(b%16) + 1 // 1..16 keeps the tie DP tight
		}
		direct, err := PerfectPartitionExists(items)
		if err != nil {
			t.Fatal(err)
		}
		viaJury, err := DecideViaJury(items)
		if err != nil {
			t.Fatal(err)
		}
		if direct != viaJury {
			t.Fatalf("items %v: DP says %v, jury reduction says %v", items, direct, viaJury)
		}
	})
}
