// Package hardness makes Theorem 2 of the paper executable: computing
// JQ(J, BV, 0.5) exactly is NP-hard, by reduction from the PARTITION
// problem.
//
// The reduction maps a multiset of positive integers {a_1, …, a_n} to a
// jury whose log-odds are proportional to the integers:
// φ(q_i) = ln(q_i/(1−q_i)) = s·a_i, i.e. q_i = σ(s·a_i). A voting V then
// has log-likelihood ratio R(V) = s·Σ(±a_i), so R(V) = 0 — the tie states
// that the exact JQ computation must account for with weight ½ — occurs
// exactly when some subset of the integers sums to half the total. The
// probability mass on the tie states is therefore positive if and only if
// the PARTITION instance is solvable: an exact JQ oracle decides an
// NP-complete problem.
package hardness

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/worker"
)

// Errors returned by the reduction.
var (
	ErrEmptyInstance   = errors.New("hardness: empty instance")
	ErrNonPositiveItem = errors.New("hardness: instance items must be positive")
)

func checkInstance(items []int) error {
	if len(items) == 0 {
		return ErrEmptyInstance
	}
	for i, a := range items {
		if a <= 0 {
			return fmt.Errorf("%w: item %d = %d", ErrNonPositiveItem, i, a)
		}
	}
	return nil
}

// Reduce maps a PARTITION instance to a jury: worker i has quality
// σ(scale·a_i) = e^{scale·a_i}/(1+e^{scale·a_i}) and zero cost, so
// φ(q_i) = scale·a_i exactly. scale must be positive; small scales keep
// the qualities away from 1 (e.g. 0.1 for single-digit items).
func Reduce(items []int, scale float64) (worker.Pool, error) {
	if err := checkInstance(items); err != nil {
		return nil, err
	}
	if !(scale > 0) {
		return nil, fmt.Errorf("hardness: scale must be positive, got %v", scale)
	}
	pool := make(worker.Pool, len(items))
	for i, a := range items {
		x := math.Exp(scale * float64(a))
		pool[i] = worker.Worker{
			ID:      fmt.Sprintf("a%d", i),
			Quality: x / (1 + x),
			Cost:    0,
		}
	}
	return pool, nil
}

// PerfectPartitionExists decides PARTITION directly by the classic
// pseudo-polynomial subset-sum dynamic program: can the items be split
// into two halves of equal sum?
func PerfectPartitionExists(items []int) (bool, error) {
	if err := checkInstance(items); err != nil {
		return false, err
	}
	total := 0
	for _, a := range items {
		total += a
	}
	if total%2 != 0 {
		return false, nil
	}
	half := total / 2
	reachable := make([]bool, half+1)
	reachable[0] = true
	for _, a := range items {
		for s := half; s >= a; s-- {
			if reachable[s-a] {
				reachable[s] = true
			}
		}
	}
	return reachable[half], nil
}

// TieProbability computes the exact probability mass of the tie states
// R(V) = 0 for the reduced jury — the quantity whose presence an exact JQ
// oracle must detect. It runs the same (key, prob) dynamic program as the
// paper's Algorithm 1, but with the integers themselves as exact bucket
// values, so no approximation is involved: keys are Σ(±a_i).
func TieProbability(items []int, scale float64) (float64, error) {
	pool, err := Reduce(items, scale)
	if err != nil {
		return 0, err
	}
	span := 0
	for _, a := range items {
		span += a
	}
	cur := make([]float64, 2*span+1)
	next := make([]float64, 2*span+1)
	cur[span] = 1
	lo, hi := span, span
	for i, a := range items {
		q := pool[i].Quality
		newLo, newHi := len(next), -1
		for k := lo; k <= hi; k++ {
			prob := cur[k]
			if prob == 0 {
				continue
			}
			cur[k] = 0
			up, down := k+a, k-a
			next[up] += prob * q
			next[down] += prob * (1 - q)
			if down < newLo {
				newLo = down
			}
			if up > newHi {
				newHi = up
			}
		}
		cur, next = next, cur
		lo, hi = newLo, newHi
	}
	tie := cur[span]
	for k := lo; k <= hi; k++ {
		cur[k] = 0
	}
	return tie, nil
}

// DecideViaJury decides PARTITION through the jury reduction: the tie mass
// is positive iff the instance has a perfect partition. This is the
// executable form of the Theorem 2 argument (with the caveat that it runs
// the pseudo-polynomial DP — the hardness statement is about oracles that
// compute JQ on arbitrary real qualities, where no integer structure is
// available to exploit).
func DecideViaJury(items []int) (bool, error) {
	tie, err := TieProbability(items, 0.05)
	if err != nil {
		return false, err
	}
	return tie > 0, nil
}
