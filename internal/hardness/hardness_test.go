package hardness

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/jq"
)

func TestReduceLogOddsProportionalToItems(t *testing.T) {
	items := []int{1, 3, 7}
	const scale = 0.1
	pool, err := Reduce(items, scale)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range pool {
		phi := math.Log(w.Quality / (1 - w.Quality))
		want := scale * float64(items[i])
		if math.Abs(phi-want) > 1e-12 {
			t.Errorf("worker %d: φ = %v, want %v", i, phi, want)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	if _, err := Reduce(nil, 0.1); !errors.Is(err, ErrEmptyInstance) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := Reduce([]int{1, -2}, 0.1); !errors.Is(err, ErrNonPositiveItem) {
		t.Errorf("negative: err = %v", err)
	}
	if _, err := Reduce([]int{1}, 0); err == nil {
		t.Error("no error for zero scale")
	}
}

func TestPerfectPartitionKnownInstances(t *testing.T) {
	tests := []struct {
		items []int
		want  bool
	}{
		{[]int{1, 1}, true},
		{[]int{3, 1, 1, 2, 2, 1}, true},   // {3,1,1} vs {2,2,1}
		{[]int{1, 2, 3, 4}, true},         // {1,4} vs {2,3}
		{[]int{2, 2, 3}, false},           // odd total
		{[]int{1, 5}, false},              // even total, no split
		{[]int{4, 5, 11, 17, 1}, false},   // total 38, no subset sums 19
		{[]int{4, 5, 11, 17, 1, 2}, true}, // total 40; {4,5,11}=20
		{[]int{7}, false},
	}
	for _, tt := range tests {
		got, err := PerfectPartitionExists(tt.items)
		if err != nil {
			t.Fatalf("%v: %v", tt.items, err)
		}
		if got != tt.want {
			t.Errorf("PerfectPartitionExists(%v) = %v, want %v", tt.items, got, tt.want)
		}
	}
}

func TestDecideViaJuryMatchesDirectDP(t *testing.T) {
	tests := [][]int{
		{1, 1}, {3, 1, 1, 2, 2, 1}, {1, 2, 3, 4}, {2, 2, 3}, {1, 5},
		{4, 5, 11, 17, 1}, {4, 5, 11, 17, 1, 2}, {7}, {6, 6}, {2, 4, 6, 8, 10},
	}
	for _, items := range tests {
		direct, err := PerfectPartitionExists(items)
		if err != nil {
			t.Fatal(err)
		}
		viaJury, err := DecideViaJury(items)
		if err != nil {
			t.Fatal(err)
		}
		if direct != viaJury {
			t.Errorf("%v: direct DP %v, jury reduction %v", items, direct, viaJury)
		}
	}
}

// Property: on random instances the jury tie-mass detection always agrees
// with the subset-sum DP — the heart of the Theorem 2 reduction.
func TestReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(12) + 1
		}
		direct, err := PerfectPartitionExists(items)
		if err != nil {
			return false
		}
		viaJury, err := DecideViaJury(items)
		if err != nil {
			return false
		}
		return direct == viaJury
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The tie mass is exactly the weight the exact JQ assigns at R(V)=0: when
// a partition exists, the exact JQ must account for the half-weighted tie
// term, and the value differs measurably from any computation that drops
// ties. This pins the quantitative link between JQ and PARTITION.
func TestTieMassEntersExactJQ(t *testing.T) {
	items := []int{1, 2, 3} // {1,2} vs {3}: partition exists
	const scale = 0.2
	pool, err := Reduce(items, scale)
	if err != nil {
		t.Fatal(err)
	}
	tie, err := TieProbability(items, scale)
	if err != nil {
		t.Fatal(err)
	}
	if tie <= 0 {
		t.Fatal("expected positive tie mass")
	}
	exact, err := jq.ExactBV(pool, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct JQ from the DP decomposition: Σ_{R>0} P(V|0) + tie/2
	// must equal the exact JQ (tie states contribute P0 = P1 mass once).
	var above float64
	span := 0
	for _, a := range items {
		span += a
	}
	// Recompute the key distribution as in TieProbability.
	cur := make([]float64, 2*span+1)
	next := make([]float64, 2*span+1)
	cur[span] = 1
	lo, hi := span, span
	for i, a := range items {
		q := pool[i].Quality
		newLo, newHi := len(next), -1
		for k := lo; k <= hi; k++ {
			p := cur[k]
			if p == 0 {
				continue
			}
			cur[k] = 0
			next[k+a] += p * q
			next[k-a] += p * (1 - q)
			if k-a < newLo {
				newLo = k - a
			}
			if k+a > newHi {
				newHi = k + a
			}
		}
		cur, next = next, cur
		lo, hi = newLo, newHi
	}
	for k := lo; k <= hi; k++ {
		if k-span > 0 {
			above += cur[k]
		}
	}
	reconstructed := above + tie/2
	if math.Abs(reconstructed-exact) > 1e-12 {
		t.Fatalf("reconstructed JQ %v != exact %v (tie=%v)", reconstructed, exact, tie)
	}
}

func TestNonPartitionableInstanceHasNoTieMass(t *testing.T) {
	tie, err := TieProbability([]int{2, 2, 3}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tie != 0 {
		t.Fatalf("tie mass = %v, want 0 for non-partitionable instance", tie)
	}
}
