// Package amt simulates the Amazon Mechanical Turk crowd dataset of the
// paper's real-data evaluation (Section 6.2).
//
// The original study batched 600 sentiment-analysis tweets into HITs of 20
// questions, collected m=20 assignments per HIT from 128 distinct workers,
// and then *re-estimated every worker's quality empirically* as the
// fraction of their answers matching the ground truth. This repository is
// offline, so the crowd is simulated instead — but with the paper's
// published statistics:
//
//   - 128 workers, 600 binary tasks, 20 votes per task;
//   - 30 HITs of 20 questions, 20 worker assignments per HIT;
//   - two workers answering every HIT, 67 answering exactly one
//     (the paper's "only two workers answered all questions and 67 workers
//     answered only 20 questions");
//   - mean worker quality ≈ 0.71, 40 workers above 0.8, ~10% below 0.6.
//
// Everything downstream of data collection is the paper's real pipeline:
// empirical qualities feed jury selection, and the recorded answering
// sequences drive the JQ-versus-accuracy experiment (Figure 10d).
package amt

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/stats"
	"repro/internal/voting"
	"repro/internal/worker"
)

// Paper-published dataset shape (Section 6.2.1).
const (
	DefaultNumWorkers    = 128
	DefaultNumTasks      = 600
	DefaultVotesPerTask  = 20
	DefaultTasksPerHIT   = 20
	DefaultHeavyWorkers  = 2
	DefaultOneHITWorkers = 67
)

// Config shapes the simulated crowd.
type Config struct {
	NumWorkers   int
	NumTasks     int
	VotesPerTask int
	TasksPerHIT  int
	// HeavyWorkers answer every HIT; OneHITWorkers answer exactly one.
	// The remaining workers share the leftover assignments evenly.
	HeavyWorkers  int
	OneHITWorkers int
}

// DefaultConfig reproduces the published dataset shape.
func DefaultConfig() Config {
	return Config{
		NumWorkers:    DefaultNumWorkers,
		NumTasks:      DefaultNumTasks,
		VotesPerTask:  DefaultVotesPerTask,
		TasksPerHIT:   DefaultTasksPerHIT,
		HeavyWorkers:  DefaultHeavyWorkers,
		OneHITWorkers: DefaultOneHITWorkers,
	}
}

// Validate checks structural feasibility of the configuration.
func (c Config) Validate() error {
	if c.NumWorkers < 1 || c.NumTasks < 1 || c.VotesPerTask < 1 || c.TasksPerHIT < 1 {
		return fmt.Errorf("amt: non-positive size in %+v", c)
	}
	if c.NumTasks%c.TasksPerHIT != 0 {
		return fmt.Errorf("amt: NumTasks %d not divisible by TasksPerHIT %d", c.NumTasks, c.TasksPerHIT)
	}
	if c.VotesPerTask > c.NumWorkers {
		return fmt.Errorf("amt: VotesPerTask %d exceeds NumWorkers %d", c.VotesPerTask, c.NumWorkers)
	}
	if c.HeavyWorkers < 0 || c.OneHITWorkers < 0 ||
		c.HeavyWorkers+c.OneHITWorkers > c.NumWorkers {
		return fmt.Errorf("amt: worker class sizes inconsistent in %+v", c)
	}
	hits := c.NumTasks / c.TasksPerHIT
	slots := hits * (c.VotesPerTask - c.HeavyWorkers)
	if slots < c.OneHITWorkers {
		return fmt.Errorf("amt: not enough assignment slots (%d) for %d one-HIT workers", slots, c.OneHITWorkers)
	}
	regulars := c.NumWorkers - c.HeavyWorkers - c.OneHITWorkers
	remaining := slots - c.OneHITWorkers
	if regulars == 0 && remaining > 0 {
		return fmt.Errorf("amt: %d leftover assignments but no regular workers", remaining)
	}
	if regulars > 0 && (remaining+regulars-1)/regulars > hits {
		return fmt.Errorf("amt: regular workers would need more than %d HITs each", hits)
	}
	if c.VotesPerTask-c.HeavyWorkers < 0 {
		return fmt.Errorf("amt: more heavy workers than assignments per HIT")
	}
	return nil
}

// CrowdWorker is one simulated crowd member.
type CrowdWorker struct {
	// ID indexes the worker within the dataset.
	ID int
	// TrueQuality is the latent per-vote correctness probability used by
	// the simulator. Real deployments never observe it; experiments use
	// EmpiricalQuality, exactly as the paper does.
	TrueQuality float64
	// Answered and Correct count the worker's votes and correct votes.
	Answered int
	Correct  int
}

// EmpiricalQuality is the paper's quality estimate: the proportion of
// correctly answered questions among all the worker's answers.
func (w CrowdWorker) EmpiricalQuality() float64 {
	if w.Answered == 0 {
		return 0.5 // uninformed default; cannot happen in generated data
	}
	return float64(w.Correct) / float64(w.Answered)
}

// Answer is a single worker vote on a task, in answering-sequence order.
type Answer struct {
	WorkerID int
	Vote     voting.Vote
}

// Task is a binary decision-making task with its collected answers.
type Task struct {
	ID    int
	Truth voting.Vote
	// Answers lists the task's votes in arrival order (the "answering
	// sequence" used by Figure 10d).
	Answers []Answer
}

// Dataset is the simulated crowdsourcing corpus.
type Dataset struct {
	Workers []CrowdWorker
	Tasks   []Task
}

// ErrNilRNG is returned when Generate is called without a random source.
var ErrNilRNG = errors.New("amt: nil rng")

// Generate simulates the crowd: draws latent worker qualities matching the
// published distribution, schedules HIT assignments (heavy workers on every
// HIT, one-HIT workers once, regulars evenly), simulates every vote, and
// tallies empirical qualities.
func Generate(cfg Config, rng *rand.Rand) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, ErrNilRNG
	}
	ds := &Dataset{
		Workers: make([]CrowdWorker, cfg.NumWorkers),
		Tasks:   make([]Task, cfg.NumTasks),
	}
	qualities := latentQualities(cfg.NumWorkers, rng)
	for i := range ds.Workers {
		ds.Workers[i] = CrowdWorker{ID: i, TrueQuality: qualities[i]}
	}

	hits := cfg.NumTasks / cfg.TasksPerHIT
	assignments := scheduleAssignments(cfg, hits, rng)

	for t := range ds.Tasks {
		ds.Tasks[t] = Task{ID: t, Truth: voting.Vote(rng.Intn(2))}
	}
	for h := 0; h < hits; h++ {
		crew := assignments[h]
		// Arrival order of the crew within this HIT.
		order := append([]int(nil), crew...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for q := 0; q < cfg.TasksPerHIT; q++ {
			taskID := h*cfg.TasksPerHIT + q
			task := &ds.Tasks[taskID]
			task.Answers = make([]Answer, 0, len(order))
			for _, wid := range order {
				w := &ds.Workers[wid]
				vote := task.Truth
				if rng.Float64() >= w.TrueQuality {
					vote = task.Truth.Opposite()
				}
				task.Answers = append(task.Answers, Answer{WorkerID: wid, Vote: vote})
				w.Answered++
				if vote == task.Truth {
					w.Correct++
				}
			}
		}
	}
	return ds, nil
}

// latentQualities draws worker qualities matching the published profile:
// 40/128 high (0.80–0.92), 13/128 low (0.50–0.60), the rest mid
// (0.60–0.715), giving a mean near 0.71. Group sizes scale with n.
func latentQualities(n int, rng *rand.Rand) []float64 {
	high := (n*40 + 64) / 128
	low := (n*13 + 64) / 128
	if high+low > n {
		low = n - high
	}
	qs := make([]float64, 0, n)
	for i := 0; i < high; i++ {
		qs = append(qs, 0.80+0.12*rng.Float64())
	}
	for i := 0; i < low; i++ {
		qs = append(qs, 0.50+0.10*rng.Float64())
	}
	for len(qs) < n {
		qs = append(qs, 0.60+0.115*rng.Float64())
	}
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// scheduleAssignments builds, per HIT, the crew of VotesPerTask distinct
// workers: all heavy workers plus a greedy most-remaining-first fill from
// the one-HIT and regular workers.
func scheduleAssignments(cfg Config, hits int, rng *rand.Rand) [][]int {
	type budgetWorker struct {
		id        int
		remaining int
	}
	heavyEnd := cfg.HeavyWorkers
	oneEnd := heavyEnd + cfg.OneHITWorkers
	slotsPerHIT := cfg.VotesPerTask - cfg.HeavyWorkers
	totalSlots := hits * slotsPerHIT

	var pool []budgetWorker
	for id := heavyEnd; id < oneEnd; id++ {
		pool = append(pool, budgetWorker{id: id, remaining: 1})
	}
	regulars := cfg.NumWorkers - oneEnd
	remaining := totalSlots - cfg.OneHITWorkers
	for i := 0; i < regulars; i++ {
		share := remaining / regulars
		if i < remaining%regulars {
			share++
		}
		pool = append(pool, budgetWorker{id: oneEnd + i, remaining: share})
	}

	assignments := make([][]int, hits)
	for h := 0; h < hits; h++ {
		crew := make([]int, 0, cfg.VotesPerTask)
		for id := 0; id < heavyEnd; id++ {
			crew = append(crew, id)
		}
		// Most-remaining-first keeps the schedule feasible (no worker can
		// be needed twice in one HIT); random shuffle breaks ties fairly.
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].remaining > pool[j].remaining })
		picked := 0
		for i := range pool {
			if picked == slotsPerHIT {
				break
			}
			if pool[i].remaining > 0 {
				crew = append(crew, pool[i].id)
				pool[i].remaining--
				picked++
			}
		}
		assignments[h] = crew
	}
	return assignments
}

// TaskPool builds the candidate worker pool of a task for jury selection:
// the workers who answered it, with their *empirical* qualities and costs
// drawn from the given cost distribution (mean, std), clamped to a small
// positive floor — matching the paper's real-data JSP setup (Section 6.2.2).
func (ds *Dataset) TaskPool(taskID int, costMean, costStd float64, rng *rand.Rand) (worker.Pool, error) {
	if taskID < 0 || taskID >= len(ds.Tasks) {
		return nil, fmt.Errorf("amt: task %d out of range [0, %d)", taskID, len(ds.Tasks))
	}
	task := ds.Tasks[taskID]
	pool := make(worker.Pool, len(task.Answers))
	for i, ans := range task.Answers {
		cost := stats.Normal(rng, costMean, costStd)
		if cost < 0.001 {
			cost = 0.001
		}
		pool[i] = worker.Worker{
			ID:      fmt.Sprintf("w%d", ans.WorkerID),
			Quality: ds.Workers[ans.WorkerID].EmpiricalQuality(),
			Cost:    cost,
		}
	}
	return pool, nil
}

// Prefix returns the first z answers of a task (its answering sequence
// prefix) together with the voters' empirical qualities — the inputs of the
// Figure 10(d) JQ-versus-accuracy experiment.
func (ds *Dataset) Prefix(taskID, z int) (votes []voting.Vote, qualities []float64, err error) {
	if taskID < 0 || taskID >= len(ds.Tasks) {
		return nil, nil, fmt.Errorf("amt: task %d out of range [0, %d)", taskID, len(ds.Tasks))
	}
	task := ds.Tasks[taskID]
	if z < 0 || z > len(task.Answers) {
		return nil, nil, fmt.Errorf("amt: prefix %d out of range [0, %d]", z, len(task.Answers))
	}
	votes = make([]voting.Vote, z)
	qualities = make([]float64, z)
	for i := 0; i < z; i++ {
		votes[i] = task.Answers[i].Vote
		qualities[i] = ds.Workers[task.Answers[i].WorkerID].EmpiricalQuality()
	}
	return votes, qualities, nil
}

// Stats summarizes the dataset against the published profile.
type Stats struct {
	NumWorkers, NumTasks   int
	MeanEmpiricalQuality   float64
	MeanTrueQuality        float64
	WorkersAbove80         int
	WorkersBelow60         int
	AnswersPerWorkerMean   float64
	WorkersAnsweringAll    int
	WorkersAnsweringOneHIT int
}

// Stats computes the dataset summary.
func (ds *Dataset) Stats() Stats {
	s := Stats{NumWorkers: len(ds.Workers), NumTasks: len(ds.Tasks)}
	var sumEmp, sumTrue, sumAns float64
	maxAnswered := 0
	for _, w := range ds.Workers {
		if w.Answered > maxAnswered {
			maxAnswered = w.Answered
		}
	}
	for _, w := range ds.Workers {
		emp := w.EmpiricalQuality()
		sumEmp += emp
		sumTrue += w.TrueQuality
		sumAns += float64(w.Answered)
		if emp > 0.8 {
			s.WorkersAbove80++
		}
		if emp < 0.6 {
			s.WorkersBelow60++
		}
		if w.Answered == maxAnswered && maxAnswered == len(ds.Tasks) {
			s.WorkersAnsweringAll++
		}
	}
	// One-HIT workers answered exactly TasksPerHIT questions; infer the
	// HIT size from the most common minimal answer count.
	if len(ds.Workers) > 0 {
		minAns := ds.Workers[0].Answered
		for _, w := range ds.Workers {
			if w.Answered < minAns && w.Answered > 0 {
				minAns = w.Answered
			}
		}
		for _, w := range ds.Workers {
			if w.Answered == minAns {
				s.WorkersAnsweringOneHIT++
			}
		}
	}
	n := float64(len(ds.Workers))
	if n > 0 {
		s.MeanEmpiricalQuality = sumEmp / n
		s.MeanTrueQuality = sumTrue / n
		s.AnswersPerWorkerMean = sumAns / n
	}
	return s
}
