package amt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/voting"
)

func generateDefault(t *testing.T, seed int64) *Dataset {
	t.Helper()
	ds, err := Generate(DefaultConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{}, // all zero
		{NumWorkers: 10, NumTasks: 25, VotesPerTask: 5, TasksPerHIT: 20},                                    // not divisible
		{NumWorkers: 4, NumTasks: 20, VotesPerTask: 5, TasksPerHIT: 20},                                     // votes > workers
		{NumWorkers: 10, NumTasks: 20, VotesPerTask: 5, TasksPerHIT: 20, HeavyWorkers: 8, OneHITWorkers: 8}, // classes overflow
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v): expected validation error", i, c)
		}
	}
}

func TestGenerateRequiresRNG(t *testing.T) {
	if _, err := Generate(DefaultConfig(), nil); !errors.Is(err, ErrNilRNG) {
		t.Fatalf("err = %v, want ErrNilRNG", err)
	}
}

func TestGenerateShape(t *testing.T) {
	ds := generateDefault(t, 1)
	if len(ds.Workers) != 128 {
		t.Fatalf("workers = %d, want 128", len(ds.Workers))
	}
	if len(ds.Tasks) != 600 {
		t.Fatalf("tasks = %d, want 600", len(ds.Tasks))
	}
	for _, task := range ds.Tasks {
		if len(task.Answers) != 20 {
			t.Fatalf("task %d has %d answers, want 20", task.ID, len(task.Answers))
		}
		seen := map[int]bool{}
		for _, a := range task.Answers {
			if seen[a.WorkerID] {
				t.Fatalf("task %d: worker %d answered twice", task.ID, a.WorkerID)
			}
			seen[a.WorkerID] = true
		}
	}
}

func TestGenerateMatchesPublishedProfile(t *testing.T) {
	ds := generateDefault(t, 2)
	s := ds.Stats()
	// Paper: average quality 0.71; tolerate the simulator's sampling noise.
	if s.MeanEmpiricalQuality < 0.66 || s.MeanEmpiricalQuality > 0.76 {
		t.Errorf("mean empirical quality = %v, want ≈0.71", s.MeanEmpiricalQuality)
	}
	// Paper: 40 workers above 0.8. Empirical estimates are noisy; accept a
	// generous band.
	if s.WorkersAbove80 < 25 || s.WorkersAbove80 > 60 {
		t.Errorf("workers above 0.8 = %d, want ≈40", s.WorkersAbove80)
	}
	// Paper: about 10% below 0.6.
	if s.WorkersBelow60 < 5 || s.WorkersBelow60 > 30 {
		t.Errorf("workers below 0.6 = %d, want ≈13", s.WorkersBelow60)
	}
	// Paper: 600·20/128 = 93.75 answers per worker on average.
	if math.Abs(s.AnswersPerWorkerMean-93.75) > 1e-9 {
		t.Errorf("answers per worker = %v, want 93.75", s.AnswersPerWorkerMean)
	}
	// Two heavy workers answer all 600 questions.
	if s.WorkersAnsweringAll != 2 {
		t.Errorf("workers answering everything = %d, want 2", s.WorkersAnsweringAll)
	}
	// 67 workers answer exactly one 20-question HIT.
	if s.WorkersAnsweringOneHIT != 67 {
		t.Errorf("one-HIT workers = %d, want 67", s.WorkersAnsweringOneHIT)
	}
}

func TestEveryWorkerAnswersSomething(t *testing.T) {
	ds := generateDefault(t, 3)
	for _, w := range ds.Workers {
		if w.Answered == 0 {
			t.Fatalf("worker %d never answered", w.ID)
		}
		if w.Correct > w.Answered {
			t.Fatalf("worker %d: correct %d > answered %d", w.ID, w.Correct, w.Answered)
		}
	}
}

func TestEmpiricalQualityTracksTrueQuality(t *testing.T) {
	ds := generateDefault(t, 4)
	// Heavy workers have 600 answers; their empirical quality should be
	// within a few points of the latent one.
	for _, w := range ds.Workers {
		if w.Answered == len(ds.Tasks) {
			if math.Abs(w.EmpiricalQuality()-w.TrueQuality) > 0.06 {
				t.Errorf("heavy worker %d: empirical %v vs true %v",
					w.ID, w.EmpiricalQuality(), w.TrueQuality)
			}
		}
	}
}

func TestEmpiricalQualityNoAnswers(t *testing.T) {
	w := CrowdWorker{}
	if got := w.EmpiricalQuality(); got != 0.5 {
		t.Fatalf("EmpiricalQuality with no answers = %v, want 0.5", got)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := generateDefault(t, 42)
	b := generateDefault(t, 42)
	for i := range a.Tasks {
		if a.Tasks[i].Truth != b.Tasks[i].Truth {
			t.Fatalf("task %d truth differs", i)
		}
		for j := range a.Tasks[i].Answers {
			if a.Tasks[i].Answers[j] != b.Tasks[i].Answers[j] {
				t.Fatalf("task %d answer %d differs", i, j)
			}
		}
	}
}

func TestTaskPool(t *testing.T) {
	ds := generateDefault(t, 5)
	rng := rand.New(rand.NewSource(6))
	pool, err := ds.TaskPool(0, 0.05, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 20 {
		t.Fatalf("pool size = %d, want 20", len(pool))
	}
	if err := pool.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range pool {
		if w.Cost < 0.001 {
			t.Fatalf("cost %v below floor", w.Cost)
		}
	}
	if _, err := ds.TaskPool(-1, 0.05, 0.2, rng); err == nil {
		t.Fatal("no error for negative task id")
	}
	if _, err := ds.TaskPool(len(ds.Tasks), 0.05, 0.2, rng); err == nil {
		t.Fatal("no error for out-of-range task id")
	}
}

func TestPrefix(t *testing.T) {
	ds := generateDefault(t, 7)
	votes, quals, err := ds.Prefix(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 5 || len(quals) != 5 {
		t.Fatalf("prefix sizes = %d/%d, want 5/5", len(votes), len(quals))
	}
	task := ds.Tasks[3]
	for i := 0; i < 5; i++ {
		if votes[i] != task.Answers[i].Vote {
			t.Fatalf("vote %d mismatch", i)
		}
		want := ds.Workers[task.Answers[i].WorkerID].EmpiricalQuality()
		if quals[i] != want {
			t.Fatalf("quality %d = %v, want %v", i, quals[i], want)
		}
	}
	if _, _, err := ds.Prefix(3, 21); err == nil {
		t.Fatal("no error for oversized prefix")
	}
	if _, _, err := ds.Prefix(999, 5); err == nil {
		t.Fatal("no error for bad task id")
	}
	if _, _, err := ds.Prefix(3, -1); err == nil {
		t.Fatal("no error for negative prefix")
	}
}

func TestBVAccuracyBeatsIndividualWorkers(t *testing.T) {
	// End-to-end sanity: aggregating all 20 votes with BV should label
	// tasks more accurately than the mean single worker does.
	ds := generateDefault(t, 8)
	correct := 0
	for taskID := range ds.Tasks {
		votes, quals, err := ds.Prefix(taskID, 20)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := voting.Decide(voting.Bayesian{}, votes, quals, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dec == ds.Tasks[taskID].Truth {
			correct++
		}
	}
	accuracy := float64(correct) / float64(len(ds.Tasks))
	if accuracy < 0.9 {
		t.Fatalf("BV accuracy over the corpus = %v, want > 0.9", accuracy)
	}
}

func TestSmallConfig(t *testing.T) {
	cfg := Config{
		NumWorkers:    16,
		NumTasks:      40,
		VotesPerTask:  8,
		TasksPerHIT:   10,
		HeavyWorkers:  1,
		OneHITWorkers: 5,
	}
	ds, err := Generate(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Workers) != 16 || len(ds.Tasks) != 40 {
		t.Fatalf("shape = %d workers / %d tasks", len(ds.Workers), len(ds.Tasks))
	}
	for _, task := range ds.Tasks {
		if len(task.Answers) != 8 {
			t.Fatalf("task %d: %d answers, want 8", task.ID, len(task.Answers))
		}
	}
}
