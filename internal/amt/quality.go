package amt

import (
	"repro/internal/quality"
	"repro/internal/voting"
)

// QualityDataset converts the corpus into the sparse response matrix
// consumed by the quality-estimation package, enabling golden-question and
// Dawid–Skene EM estimation on the simulated crowd.
func (ds *Dataset) QualityDataset() quality.Dataset {
	out := quality.Dataset{NumTasks: len(ds.Tasks), NumWorkers: len(ds.Workers)}
	for _, task := range ds.Tasks {
		for _, ans := range task.Answers {
			out.Responses = append(out.Responses, quality.Response{
				Task: task.ID, Worker: ans.WorkerID, Vote: ans.Vote,
			})
		}
	}
	return out
}

// GoldenTruths returns the ground truth of the first n tasks, as a golden
// set for quality estimation. n is clamped to the corpus size.
func (ds *Dataset) GoldenTruths(n int) map[int]voting.Vote {
	if n > len(ds.Tasks) {
		n = len(ds.Tasks)
	}
	out := make(map[int]voting.Vote, n)
	for i := 0; i < n; i++ {
		out[ds.Tasks[i].ID] = ds.Tasks[i].Truth
	}
	return out
}
