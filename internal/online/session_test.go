package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/voting"
	"repro/internal/worker"
)

func TestSessionConfidentStop(t *testing.T) {
	s, err := NewSession(Config{Alpha: 0.5, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.State(); st.Done || st.Confidence != 0.5 {
		t.Fatalf("initial state = %+v", st)
	}
	// Two agreeing 0.8-votes: posterior odds 16:1 → confidence 16/17.
	if _, err := s.Observe(0.8, 1, voting.No); err != nil {
		t.Fatal(err)
	}
	st, err := s.Observe(0.8, 1, voting.No)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Stopped != StopConfident || st.Decision != voting.No {
		t.Fatalf("state = %+v", st)
	}
	if want := 16.0 / 17.0; math.Abs(st.Confidence-want) > 1e-12 {
		t.Fatalf("confidence = %v, want %v", st.Confidence, want)
	}
	if st.Votes != 2 || st.Cost != 2 {
		t.Fatalf("tallies = %+v", st)
	}
	if _, err := s.Observe(0.8, 1, voting.No); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("observe after done: %v", err)
	}
}

func TestSessionPriorAlreadyConfident(t *testing.T) {
	s, err := NewSession(Config{Alpha: 0.99, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	st := s.State()
	if !st.Done || st.Stopped != StopConfident || st.Votes != 0 || st.Decision != voting.No {
		t.Fatalf("state = %+v", st)
	}
}

func TestSessionBudgetAndMaxVotes(t *testing.T) {
	s, err := NewSession(Config{Alpha: 0.5, Confidence: 0.999999, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Affordable(3) || s.Affordable(3.5) {
		t.Fatal("Affordable wrong before any vote")
	}
	if _, err := s.Observe(0.6, 2, voting.Yes); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0.6, 2, voting.Yes); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over budget: %v", err)
	}
	if st := s.State(); st.Votes != 1 || st.Cost != 2 {
		t.Fatalf("failed observe mutated state: %+v", st)
	}

	s2, err := NewSession(Config{Alpha: 0.5, Confidence: 0.999999, MaxVotes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s2.Observe(0.6, 1, voting.Yes)
	st, err := s2.Observe(0.6, 1, voting.No)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Stopped != StopExhausted {
		t.Fatalf("MaxVotes stop = %+v", st)
	}
}

func TestSessionRejectsBadObservations(t *testing.T) {
	s, err := NewSession(Config{Alpha: 0.5, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(1.5, 1, voting.No); !errors.Is(err, ErrObservedRange) {
		t.Fatalf("quality 1.5: %v", err)
	}
	if _, err := s.Observe(0.6, -1, voting.No); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := NewSession(Config{Alpha: 2, Confidence: 0.9}); err == nil {
		t.Fatal("bad config accepted")
	}
}

// TestCollectMatchesManualSession cross-checks that Collect's posterior
// agrees with driving a Session by hand over the same vote sequence.
func TestCollectMatchesManualSession(t *testing.T) {
	pool := worker.NewPool(
		[]float64{0.9, 0.8, 0.7, 0.6},
		[]float64{4, 3, 2, 1},
	)
	cfg := Config{Alpha: 0.5, Confidence: 0.99}
	src := SimulatedSource{Pool: pool, Truth: voting.No, Rng: rand.New(rand.NewSource(7))}
	res, err := Collect(pool, src, QualityFirst{}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last State
	for i, idx := range res.Asked {
		last, err = sess.Observe(pool[idx].Quality, pool[idx].Cost, res.Votes[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Decision != res.Decision || math.Abs(last.Confidence-res.Confidence) > 1e-15 ||
		last.Cost != res.Cost {
		t.Fatalf("session %+v != collect %+v", last, res)
	}
}

// Regression test: reaching MaxVotes must report StopExhausted even when
// an unaffordable worker was skipped earlier — previously the budget skip
// overrode the vote cap and Collect reported StopBudget.
func TestCollectMaxVotesBeatsBudgetSkip(t *testing.T) {
	pool := worker.NewPool(
		[]float64{0.9, 0.6, 0.6, 0.6},
		[]float64{100, 1, 1, 1}, // the best worker never fits the budget
	)
	// QualityFirst tries (and skips) the unaffordable worker first, then
	// asks two cheap ones, exhausting MaxVotes.
	cfg := Config{Alpha: 0.5, Confidence: 0.999999, Budget: 10, MaxVotes: 2}
	src := SimulatedSource{Pool: pool, Truth: voting.No, Rng: rand.New(rand.NewSource(1))}
	res, err := Collect(pool, src, QualityFirst{}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Asked) != 2 {
		t.Fatalf("asked %d workers, want 2", len(res.Asked))
	}
	if res.Stopped != StopExhausted {
		t.Fatalf("Stopped = %v, want %v (MaxVotes reached)", res.Stopped, StopExhausted)
	}

	// Without a vote cap the same run must still report StopBudget when
	// only the unaffordable worker remains.
	cfg.MaxVotes = 0
	src = SimulatedSource{Pool: pool, Truth: voting.No, Rng: rand.New(rand.NewSource(1))}
	res, err = Collect(pool, src, QualityFirst{}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopBudget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, StopBudget)
	}
}
