package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/voting"
	"repro/internal/worker"
)

func pool(qs ...float64) worker.Pool {
	return worker.UniformCost(qs, 1)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: -0.1, Confidence: 0.9},
		{Alpha: 0.5, Confidence: 0.4},
		{Alpha: 0.5, Confidence: 1.01},
		{Alpha: 0.5, Confidence: 0.9, Budget: -1},
		{Alpha: 0.5, Confidence: 0.9, MaxVotes: -1},
		{Alpha: math.NaN(), Confidence: 0.9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v): no validation error", i, c)
		}
	}
	if err := (Config{Alpha: 0.5, Confidence: 0.95}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectValidation(t *testing.T) {
	p := pool(0.8)
	rng := rand.New(rand.NewSource(1))
	if _, err := Collect(nil, RecordedSource{}, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.9}, rng); err == nil {
		t.Error("no error for empty pool")
	}
	if _, err := Collect(p, nil, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.9}, rng); !errors.Is(err, ErrNilSource) {
		t.Errorf("nil source: err = %v", err)
	}
	if _, err := Collect(p, RecordedSource{}, QualityFirst{}, Config{Alpha: 2, Confidence: 0.9}, rng); err == nil {
		t.Error("no error for bad config")
	}
}

func TestCollectStopsWhenConfident(t *testing.T) {
	// One 0.95-quality worker voting "no" pushes the posterior to 0.95.
	p := pool(0.95, 0.6, 0.6)
	src := RecordedSource{Votes: []voting.Vote{voting.No, voting.No, voting.No}}
	res, err := Collect(p, src, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.94}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopConfident {
		t.Fatalf("Stopped = %v, want confident", res.Stopped)
	}
	if len(res.Asked) != 1 || res.Asked[0] != 0 {
		t.Fatalf("Asked = %v, want just the expert", res.Asked)
	}
	if res.Decision != voting.No {
		t.Fatalf("Decision = %v, want no", res.Decision)
	}
	if math.Abs(res.Confidence-0.95) > 1e-9 {
		t.Fatalf("Confidence = %v, want 0.95", res.Confidence)
	}
}

func TestCollectConfidentPriorNeedsNoVotes(t *testing.T) {
	p := pool(0.7)
	res, err := Collect(p, RecordedSource{Votes: []voting.Vote{voting.No}}, QualityFirst{},
		Config{Alpha: 0.99, Confidence: 0.95}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopConfident || len(res.Asked) != 0 {
		t.Fatalf("res = %+v, want immediate confident stop", res)
	}
	if res.Decision != voting.No {
		t.Fatalf("Decision = %v, want no (prior)", res.Decision)
	}
}

func TestCollectRespectsBudget(t *testing.T) {
	p := worker.NewPool([]float64{0.6, 0.6, 0.6}, []float64{1, 1, 5})
	src := RecordedSource{Votes: []voting.Vote{voting.No, voting.Yes, voting.No}}
	res, err := Collect(p, src, CheapestFirst{}, Config{Alpha: 0.5, Confidence: 0.999, Budget: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 2 {
		t.Fatalf("cost %v over budget", res.Cost)
	}
	if res.Stopped != StopBudget {
		t.Fatalf("Stopped = %v, want budget", res.Stopped)
	}
	if len(res.Asked) != 2 {
		t.Fatalf("Asked = %v, want the two affordable workers", res.Asked)
	}
}

func TestCollectMaxVotes(t *testing.T) {
	p := pool(0.55, 0.55, 0.55, 0.55)
	src := RecordedSource{Votes: []voting.Vote{voting.No, voting.No, voting.No, voting.No}}
	res, err := Collect(p, src, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.9999, MaxVotes: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Asked) != 2 {
		t.Fatalf("Asked %d workers, want 2", len(res.Asked))
	}
	if res.Stopped != StopExhausted {
		t.Fatalf("Stopped = %v, want exhausted", res.Stopped)
	}
}

func TestPolicyOrders(t *testing.T) {
	p := worker.Pool{
		{ID: "cheap-weak", Quality: 0.55, Cost: 0.1},
		{ID: "dear-strong", Quality: 0.95, Cost: 5},
		{ID: "balanced", Quality: 0.8, Cost: 1},
	}
	rng := rand.New(rand.NewSource(1))
	if got := (QualityFirst{}).Order(p, rng); got[0] != 1 {
		t.Errorf("QualityFirst order = %v, want expert first", got)
	}
	if got := (CheapestFirst{}).Order(p, rng); got[0] != 0 {
		t.Errorf("CheapestFirst order = %v, want cheap first", got)
	}
	if got := (EvidencePerCost{}).Order(p, rng); got[0] != 0 {
		// φ(0.55)/0.1 ≈ 2.0 > φ(0.8)/1 ≈ 1.39 > φ(0.95)/5 ≈ 0.59.
		t.Errorf("EvidencePerCost order = %v, want cheap-weak first", got)
	}
	order := (RandomOrder{}).Order(p, rng)
	if len(order) != 3 {
		t.Fatalf("RandomOrder length = %d", len(order))
	}
}

func TestLowQualityWorkerEvidenceFlips(t *testing.T) {
	// A q=0.1 worker voting "yes" is strong evidence for "no".
	p := pool(0.1)
	src := RecordedSource{Votes: []voting.Vote{voting.Yes}}
	res, err := Collect(p, src, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.85}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != voting.No {
		t.Fatalf("Decision = %v, want no (flipped evidence)", res.Decision)
	}
	if res.Stopped != StopConfident {
		t.Fatalf("Stopped = %v, want confident (q=0.1 carries φ(0.9))", res.Stopped)
	}
}

// Property: the realized accuracy of confident stops is at least roughly
// the confidence threshold (calibration of the posterior).
func TestConfidenceCalibrationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 2000
	confident, correct := 0, 0
	for trial := 0; trial < trials; trial++ {
		n := rng.Intn(10) + 5
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.55 + 0.4*rng.Float64()
		}
		p := pool(qs...)
		truth := voting.Vote(rng.Intn(2))
		src := SimulatedSource{Pool: p, Truth: truth, Rng: rng}
		res, err := Collect(p, src, RandomOrder{}, Config{Alpha: 0.5, Confidence: 0.9}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stopped == StopConfident {
			confident++
			if res.Decision == truth {
				correct++
			}
		}
	}
	if confident == 0 {
		t.Fatal("no confident stops at all")
	}
	acc := float64(correct) / float64(confident)
	if acc < 0.88 {
		t.Fatalf("confident-stop accuracy = %v, want ≥ ~0.9 (calibration)", acc)
	}
}

// Property: collection never exceeds budget or MaxVotes and the reported
// cost matches the asked workers.
func TestCollectInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		p := make(worker.Pool, n)
		for i := range p {
			p[i] = worker.Worker{Quality: rng.Float64(), Cost: rng.Float64()}
		}
		budget := rng.Float64() * 3
		maxVotes := rng.Intn(n + 1)
		truth := voting.Vote(rng.Intn(2))
		src := SimulatedSource{Pool: p, Truth: truth, Rng: rng}
		res, err := Collect(p, src, EvidencePerCost{}, Config{
			Alpha: 0.5, Confidence: 0.99, Budget: budget, MaxVotes: maxVotes,
		}, rng)
		if err != nil {
			return false
		}
		if budget > 0 && res.Cost > budget+1e-12 {
			return false
		}
		limit := maxVotes
		if limit == 0 {
			limit = n
		}
		if len(res.Asked) > limit {
			return false
		}
		var cost float64
		for _, idx := range res.Asked {
			cost += p[idx].Cost
		}
		return math.Abs(cost-res.Cost) < 1e-9 && len(res.Asked) == len(res.Votes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Sequential collection should need far fewer votes than the full jury
// when an expert answers early.
func TestOnlineSavesVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{0.97, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6, 0.6}
	p := pool(qs...)
	var totalAsked int
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		src := SimulatedSource{Pool: p, Truth: voting.Vote(rng.Intn(2)), Rng: rng}
		res, err := Collect(p, src, QualityFirst{}, Config{Alpha: 0.5, Confidence: 0.95}, rng)
		if err != nil {
			t.Fatal(err)
		}
		totalAsked += len(res.Asked)
	}
	mean := float64(totalAsked) / trials
	if mean > 3 {
		t.Fatalf("mean votes used = %v, want ≤ 3 with an early expert", mean)
	}
}

func TestStopReasonString(t *testing.T) {
	if StopConfident.String() != "confident" || StopBudget.String() != "budget" ||
		StopExhausted.String() != "exhausted" || StopReason(99).String() != "unknown" {
		t.Fatal("StopReason.String mismatch")
	}
}

func TestSimulatedSourceRange(t *testing.T) {
	src := SimulatedSource{Pool: pool(0.8), Truth: voting.No, Rng: rand.New(rand.NewSource(1))}
	if _, err := src.Vote(5); err == nil {
		t.Fatal("no error for out-of-range worker")
	}
}

func TestRecordedSourceRange(t *testing.T) {
	src := RecordedSource{Votes: []voting.Vote{voting.No}}
	if _, err := src.Vote(1); err == nil {
		t.Fatal("no error for missing recorded vote")
	}
}
