// Package online implements sequential (quality-sensitive) vote
// collection, the online-processing counterpart of the paper's offline
// jury selection (Section 8, "Online Processing", CDAS [25]): instead of
// committing to a jury up front, votes are requested one worker at a time
// and collection stops as soon as the Bayesian posterior is confident
// enough — or the budget runs out.
//
// The offline JSP answers "what is the best jury for budget B before any
// vote is seen"; the online collector answers "how few votes do I need on
// *this* task". Figure 10(d) of the paper — JQ of the first z voters
// versus realized accuracy — is the static view of exactly this process.
package online

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/voting"
	"repro/internal/worker"
)

// Config controls the stopping rule.
type Config struct {
	// Alpha is the prior P(t = 0).
	Alpha float64
	// Confidence stops collection once the posterior probability of the
	// leading answer reaches this threshold (e.g. 0.95).
	Confidence float64
	// Budget bounds the total cost of requested votes; 0 means unlimited.
	Budget float64
	// MaxVotes bounds the number of requested votes; 0 means all workers.
	MaxVotes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 || c.Alpha != c.Alpha {
		return fmt.Errorf("online: prior %v outside [0, 1]", c.Alpha)
	}
	if c.Confidence < 0.5 || c.Confidence > 1 || c.Confidence != c.Confidence {
		return fmt.Errorf("online: confidence %v outside [0.5, 1]", c.Confidence)
	}
	if c.Budget < 0 || c.Budget != c.Budget {
		return fmt.Errorf("online: negative budget %v", c.Budget)
	}
	if c.MaxVotes < 0 {
		return fmt.Errorf("online: negative MaxVotes %d", c.MaxVotes)
	}
	return nil
}

// VoteSource produces the vote of a pool worker when asked. Production
// systems back this with a crowdsourcing platform; tests and experiments
// use SimulatedSource.
type VoteSource interface {
	Vote(workerIndex int) (voting.Vote, error)
}

// SimulatedSource draws votes from the workers' qualities given a fixed
// latent truth.
type SimulatedSource struct {
	Pool  worker.Pool
	Truth voting.Vote
	Rng   *rand.Rand
}

// Vote implements VoteSource.
func (s SimulatedSource) Vote(i int) (voting.Vote, error) {
	if i < 0 || i >= len(s.Pool) {
		return 0, fmt.Errorf("online: worker %d out of range", i)
	}
	if s.Rng.Float64() < s.Pool[i].Quality {
		return s.Truth, nil
	}
	return s.Truth.Opposite(), nil
}

// RecordedSource replays pre-collected votes (e.g. from the AMT corpus).
type RecordedSource struct {
	Votes []voting.Vote
}

// Vote implements VoteSource.
func (s RecordedSource) Vote(i int) (voting.Vote, error) {
	if i < 0 || i >= len(s.Votes) {
		return 0, fmt.Errorf("online: no recorded vote for worker %d", i)
	}
	return s.Votes[i], nil
}

// Policy chooses the order in which workers are asked.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Order returns the indices of pool in asking order.
	Order(pool worker.Pool, rng *rand.Rand) []int
}

// QualityFirst asks the highest-quality workers first — maximal evidence
// per vote, ignoring cost.
type QualityFirst struct{}

// Name implements Policy.
func (QualityFirst) Name() string { return "quality-first" }

// Order implements Policy.
func (QualityFirst) Order(pool worker.Pool, _ *rand.Rand) []int {
	return orderBy(pool, func(a, b worker.Worker) bool {
		qa, qb := informativeness(a.Quality), informativeness(b.Quality)
		if qa != qb {
			return qa > qb
		}
		return a.Cost < b.Cost
	})
}

// CheapestFirst asks the cheapest workers first — maximal votes per unit
// of budget.
type CheapestFirst struct{}

// Name implements Policy.
func (CheapestFirst) Name() string { return "cheapest-first" }

// Order implements Policy.
func (CheapestFirst) Order(pool worker.Pool, _ *rand.Rand) []int {
	return orderBy(pool, func(a, b worker.Worker) bool {
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return informativeness(a.Quality) > informativeness(b.Quality)
	})
}

// EvidencePerCost asks workers in decreasing log-odds-per-cost order — the
// knapsack-density heuristic applied to sequential evidence gathering.
type EvidencePerCost struct{}

// Name implements Policy.
func (EvidencePerCost) Name() string { return "evidence-per-cost" }

// Order implements Policy.
func (EvidencePerCost) Order(pool worker.Pool, _ *rand.Rand) []int {
	density := func(w worker.Worker) float64 {
		info := informativeness(w.Quality)
		if w.Cost == 0 {
			return math.Inf(1)
		}
		return info / w.Cost
	}
	return orderBy(pool, func(a, b worker.Worker) bool {
		da, db := density(a), density(b)
		if da != db {
			return da > db
		}
		return a.Cost < b.Cost
	})
}

// RandomOrder asks workers uniformly at random — the arrival-order
// baseline matching the paper's Figure 10(d) prefixes.
type RandomOrder struct{}

// Name implements Policy.
func (RandomOrder) Name() string { return "random" }

// Order implements Policy.
func (RandomOrder) Order(pool worker.Pool, rng *rand.Rand) []int {
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// informativeness is |φ(q)|: the absolute Bayesian log-odds weight, so
// sub-0.5 workers count by their reinterpreted strength.
func informativeness(q float64) float64 {
	if q < 0.5 {
		q = 1 - q
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return math.Log(q / (1 - q))
}

func orderBy(pool worker.Pool, less func(a, b worker.Worker) bool) []int {
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return less(pool[order[i]], pool[order[j]]) })
	return order
}

// Result reports one collection run.
type Result struct {
	// Decision is the Bayesian decision on the collected votes.
	Decision voting.Vote
	// Confidence is the posterior probability of the decision.
	Confidence float64
	// Asked lists the workers queried, in order; Votes their answers.
	Asked []int
	Votes []voting.Vote
	// Cost is the total paid.
	Cost float64
	// Stopped explains why collection ended.
	Stopped StopReason
}

// StopReason enumerates why a collection run ended.
type StopReason int

// The collection stopping reasons.
const (
	// StopConfident: the posterior reached the confidence threshold.
	StopConfident StopReason = iota
	// StopBudget: no affordable worker remained.
	StopBudget
	// StopExhausted: every worker was asked (or MaxVotes reached).
	StopExhausted
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopConfident:
		return "confident"
	case StopBudget:
		return "budget"
	case StopExhausted:
		return "exhausted"
	default:
		return "unknown"
	}
}

// ErrNilSource is returned when Collect is called without a vote source.
var ErrNilSource = errors.New("online: nil vote source")

// Collect runs sequential vote collection: workers are asked in policy
// order, skipping anyone who no longer fits the remaining budget, and the
// posterior log-odds are updated after every vote. Collection stops as
// soon as the posterior confidence reaches cfg.Confidence (StopConfident),
// when no affordable worker remains (StopBudget), or when the pool or
// MaxVotes is exhausted (StopExhausted). Reaching MaxVotes reports
// StopExhausted even if an unaffordable worker was skipped along the way:
// the vote cap, not the budget, is what ended collection.
func Collect(pool worker.Pool, src VoteSource, policy Policy, cfg Config, rng *rand.Rand) (Result, error) {
	if err := pool.Validate(); err != nil {
		return Result{}, err
	}
	if src == nil {
		return Result{}, ErrNilSource
	}
	sessCfg := cfg
	if sessCfg.MaxVotes == 0 || sessCfg.MaxVotes > len(pool) {
		sessCfg.MaxVotes = len(pool)
	}
	sess, err := NewSession(sessCfg)
	if err != nil {
		return Result{}, err
	}

	res := Result{Stopped: StopExhausted}
	sync := func(st State) {
		res.Decision = st.Decision
		res.Confidence = st.Confidence
		res.Cost = st.Cost
	}
	sync(sess.State())
	if st := sess.State(); st.Done {
		res.Stopped = st.Stopped
		return res, nil
	}

	skippedForBudget := false
	for _, idx := range policy.Order(pool, rng) {
		w := pool[idx]
		if !sess.Affordable(w.Cost) {
			skippedForBudget = true
			continue
		}
		v, err := src.Vote(idx)
		if err != nil {
			return Result{}, err
		}
		st, err := sess.Observe(w.Quality, w.Cost, v)
		if err != nil {
			return Result{}, err
		}
		res.Asked = append(res.Asked, idx)
		res.Votes = append(res.Votes, v)
		sync(st)
		if st.Done {
			res.Stopped = st.Stopped
			return res, nil
		}
	}
	if skippedForBudget {
		res.Stopped = StopBudget
	}
	return res, nil
}

func priorLogOdds(alpha float64) float64 {
	switch {
	case alpha == 0:
		return math.Inf(-1)
	case alpha == 1:
		return math.Inf(1)
	default:
		return math.Log(alpha) - math.Log(1-alpha)
	}
}

// voteLogOdds is the evidence a vote contributes toward answer 0.
func voteLogOdds(q float64, v voting.Vote) float64 {
	switch q {
	case 0:
		q = 1e-12
	case 1:
		q = 1 - 1e-12
	}
	if v == voting.No {
		return math.Log(q) - math.Log(1-q)
	}
	return math.Log(1-q) - math.Log(q)
}
