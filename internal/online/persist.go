package online

import "math"

// SessionSnapshot is the complete serializable state of a Session, used
// by the durable serving layer to checkpoint live sessions. Restoring a
// snapshot reproduces the session bit-for-bit: the posterior log odds are
// carried as their IEEE-754 bit pattern, which survives JSON exactly even
// when the odds are ±Inf (a degenerate prior or a quality-0/1 vote).
type SessionSnapshot struct {
	Config Config `json:"config"`
	// LogOddsBits is math.Float64bits of the posterior log odds.
	LogOddsBits uint64  `json:"log_odds_bits"`
	Votes       int     `json:"votes"`
	Cost        float64 `json:"cost"`
	Done        bool    `json:"done"`
	// Stopped is meaningful only when Done is true. It must be persisted
	// rather than rederived: StopBudget is a caller-side verdict the
	// session state alone cannot reconstruct.
	Stopped StopReason `json:"stopped"`
}

// Snapshot captures the session's full state.
func (s *Session) Snapshot() SessionSnapshot {
	return SessionSnapshot{
		Config:      s.cfg,
		LogOddsBits: math.Float64bits(s.logOdds),
		Votes:       s.state.Votes,
		Cost:        s.state.Cost,
		Done:        s.state.Done,
		Stopped:     s.state.Stopped,
	}
}

// RestoreSession rebuilds a Session from a snapshot. Decision and
// Confidence are recomputed from the restored log odds, so a restored
// session reports byte-identical state to the one snapshotted.
func RestoreSession(snap SessionSnapshot) (*Session, error) {
	if err := snap.Config.Validate(); err != nil {
		return nil, err
	}
	s := &Session{cfg: snap.Config, logOdds: math.Float64frombits(snap.LogOddsBits)}
	s.refresh()
	s.state.Votes = snap.Votes
	s.state.Cost = snap.Cost
	s.state.Done = snap.Done
	s.state.Stopped = snap.Stopped
	return s, nil
}
