package online

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/voting"
)

// Session is the incremental core of sequential vote collection: a Bayesian
// posterior over the task's answer that is updated one observed vote at a
// time and reports when the stopping rule fires. Collect drives a Session
// over a pool in policy order; a serving layer can instead keep a Session
// alive across requests and feed it votes as they arrive from a real crowd.
//
// A Session is not safe for concurrent use; callers serialize access.
type Session struct {
	cfg     Config
	logOdds float64
	state   State
}

// State is a Session's externally visible progress.
type State struct {
	// Decision is the Bayesian decision on the votes observed so far.
	Decision voting.Vote
	// Confidence is the posterior probability of the decision.
	Confidence float64
	// Votes is the number of observed votes; Cost their total cost.
	Votes int
	Cost  float64
	// Done reports whether the stopping rule has fired; Stopped says why
	// (meaningful only when Done is true).
	Done    bool
	Stopped StopReason
}

// Errors returned by Session.Observe.
var (
	ErrSessionDone   = errors.New("online: session already stopped")
	ErrOverBudget    = errors.New("online: vote cost exceeds remaining budget")
	ErrObservedRange = errors.New("online: observed quality outside [0, 1]")
)

// NewSession starts a collection session under cfg. The initial state is
// the prior alone: if the prior already clears the confidence threshold the
// session starts Done with StopConfident and zero votes.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, logOdds: priorLogOdds(cfg.Alpha)}
	s.refresh()
	if s.state.Confidence >= cfg.Confidence {
		s.state.Done = true
		s.state.Stopped = StopConfident
	}
	return s, nil
}

// Config returns the session's stopping rule.
func (s *Session) Config() Config { return s.cfg }

// State returns the current progress.
func (s *Session) State() State { return s.state }

// Affordable reports whether a vote of the given cost still fits the
// session budget (always true when the budget is unlimited).
func (s *Session) Affordable(cost float64) bool {
	return s.cfg.Budget == 0 || s.state.Cost+cost <= s.cfg.Budget
}

// Check reports whether a vote of the given quality and cost would be
// accepted by Observe, without changing any state. It returns exactly the
// error Observe would: callers that must do work between validation and
// application (the durable server journals the vote in between) rely on
// Observe being infallible after a nil Check.
func (s *Session) Check(quality, cost float64) error {
	if s.state.Done {
		return ErrSessionDone
	}
	if quality < 0 || quality > 1 || quality != quality {
		return fmt.Errorf("%w: %v", ErrObservedRange, quality)
	}
	if cost < 0 || cost != cost {
		return fmt.Errorf("online: negative vote cost %v", cost)
	}
	if !s.Affordable(cost) {
		return fmt.Errorf("%w: cost %v with %v of %v spent",
			ErrOverBudget, cost, s.state.Cost, s.cfg.Budget)
	}
	return nil
}

// Observe folds one vote by a worker of the given quality and cost into the
// posterior and re-evaluates the stopping rule. It fails without changing
// state when the session is already Done, when the vote does not fit the
// remaining budget, or when quality is outside [0, 1].
func (s *Session) Observe(quality, cost float64, v voting.Vote) (State, error) {
	if err := s.Check(quality, cost); err != nil {
		return s.state, err
	}
	s.logOdds += voteLogOdds(quality, v)
	s.state.Votes++
	s.state.Cost += cost
	s.refresh()
	switch {
	case s.state.Confidence >= s.cfg.Confidence:
		s.state.Done = true
		s.state.Stopped = StopConfident
	case s.cfg.MaxVotes > 0 && s.state.Votes >= s.cfg.MaxVotes:
		s.state.Done = true
		s.state.Stopped = StopExhausted
	}
	return s.state, nil
}

// MarkBudgetExhausted finalizes the session with StopBudget: the caller
// has determined that no affordable vote source fits the remaining
// budget (the Session itself cannot know what votes could still be
// offered). It is a no-op on an already-Done session.
func (s *Session) MarkBudgetExhausted() State {
	if !s.state.Done {
		s.state.Done = true
		s.state.Stopped = StopBudget
	}
	return s.state
}

// refresh recomputes the decision and confidence from the log odds.
func (s *Session) refresh() {
	s.state.Decision = voting.No
	if s.logOdds < 0 {
		s.state.Decision = voting.Yes
	}
	s.state.Confidence = 1 / (1 + math.Exp(-math.Abs(s.logOdds)))
}
