package server

// The JSON wire types of the multi-choice (confusion-matrix) arm of the
// juryd HTTP API, shared with the public client in repro/jury/serve.
// Multi-choice workers live in named pools; every pool fixes one label
// count ℓ and every route operates on one pool.

// MultiWorkerSpec registers one multi-choice worker. Exactly one of
// Confusion and Quality must be set: Confusion is the full ℓ×ℓ
// row-stochastic matrix (entry [j][k] = P(vote k | truth j)), Quality
// builds the symmetric single-parameter matrix with diagonal *Quality —
// the natural generalization of the binary quality model.
// PriorStrength is the pseudo-count weight behind each confusion row
// when graded multi-label vote events fold into the worker's Dirichlet
// posterior; 0 selects the server default.
type MultiWorkerSpec struct {
	ID            string      `json:"id"`
	Confusion     [][]float64 `json:"confusion,omitempty"`
	Quality       *float64    `json:"quality,omitempty"`
	Cost          float64     `json:"cost"`
	PriorStrength float64     `json:"prior_strength,omitempty"`
}

// MultiWorkerInfo reports one registered multi-choice worker's state.
type MultiWorkerInfo struct {
	ID string `json:"id"`
	// Confusion is the current posterior-mean confusion matrix: row j is
	// the mean of the worker's Dirichlet posterior over votes given
	// truth j.
	Confusion [][]float64 `json:"confusion"`
	Cost      float64     `json:"cost"`
	// Informativeness scores how much the worker's votes reveal about
	// the truth, in [0, 1] (mean total-variation distance between
	// confusion rows; |2q−1| in the binary symmetric model).
	Informativeness float64 `json:"informativeness"`
	// Votes is the number of ingested graded vote events.
	Votes int `json:"votes"`
	// Version increments on every state change of this worker.
	Version int64 `json:"version"`
}

// MultiCreateRequest creates a multi-choice pool. Labels may be 0 when
// every worker carries an explicit Confusion matrix (ℓ is then inferred
// from the first); it is required when any worker is specified by
// Quality alone. Creation is atomic: an invalid worker rejects the
// whole pool.
type MultiCreateRequest struct {
	Name    string            `json:"name"`
	Labels  int               `json:"labels,omitempty"`
	Workers []MultiWorkerSpec `json:"workers,omitempty"`
}

// MultiPoolSummary is one pool in a listing.
type MultiPoolSummary struct {
	Name      string `json:"name"`
	Labels    int    `json:"labels"`
	Workers   int    `json:"workers"`
	Signature string `json:"signature"`
}

// MultiPoolsResponse lists the multi-choice pools in creation order.
type MultiPoolsResponse struct {
	Pools []MultiPoolSummary `json:"pools"`
}

// MultiPoolInfo is one pool's full state.
type MultiPoolInfo struct {
	Name    string            `json:"name"`
	Labels  int               `json:"labels"`
	Workers []MultiWorkerInfo `json:"workers"`
	// Signature identifies the exact pool state: it hashes the label
	// count and every worker's id, cost, and full confusion matrix, so
	// any posterior drift produces a new signature.
	Signature string `json:"signature"`
}

// MultiRegisterRequest adds workers to an existing pool. Registration
// is create-only and atomic, like the binary registry's.
type MultiRegisterRequest struct {
	Workers []MultiWorkerSpec `json:"workers"`
}

// MultiRegisterResponse confirms a registration (or pool creation).
type MultiRegisterResponse struct {
	Registered int    `json:"registered"`
	PoolSize   int    `json:"pool_size"`
	Signature  string `json:"signature"`
}

// MultiVoteEvent is one graded multi-label vote: worker w voted Vote on
// a task whose true label was Truth (both in {0, …, ℓ−1}). Ingesting it
// is one Dirichlet posterior step on row Truth of the worker's
// confusion matrix.
type MultiVoteEvent struct {
	WorkerID string `json:"worker_id"`
	Truth    int    `json:"truth"`
	Vote     int    `json:"vote"`
}

// MultiIngestRequest carries a batch of graded multi-label vote events.
type MultiIngestRequest struct {
	Events []MultiVoteEvent `json:"events"`
}

// MultiIngestResponse reports the ingestion outcome.
type MultiIngestResponse struct {
	Ingested int `json:"ingested"`
	// Updated lists the new state of every touched worker.
	Updated []MultiWorkerInfo `json:"updated"`
	// Signature is the pool signature after ingestion.
	Signature string `json:"signature"`
	// Duplicate reports that the request's Idempotency-Key was already
	// applied; see IngestResponse.Duplicate.
	Duplicate bool `json:"duplicate,omitempty"`
}

// MultiSelectRequest asks for the best multi-choice jury within a
// budget.
type MultiSelectRequest struct {
	Budget float64 `json:"budget"`
	// Prior is the task provider's distribution over the ℓ labels; nil
	// selects the uniform prior.
	Prior []float64 `json:"prior,omitempty"`
	// Strategy picks the search: "anneal" (default; simulated annealing
	// over the bucketed JQ estimate), "greedy" (informativeness-ranked
	// greedy), "exhaustive" (exact enumeration, small pools only).
	Strategy string `json:"strategy,omitempty"`
	// Buckets is the margin resolution of the bucketed JQ estimate;
	// 0 selects the default (50).
	Buckets int `json:"buckets,omitempty"`
	// WorkerIDs restricts the candidate pool to these workers; empty
	// selects over the whole pool.
	WorkerIDs []string `json:"worker_ids,omitempty"`
	// Seed overrides the server's annealing seed (part of the cache key
	// for the seeded "anneal" strategy).
	Seed *int64 `json:"seed,omitempty"`
}

// MultiJuryMember is one selected multi-choice worker as of the
// selection's pool snapshot.
type MultiJuryMember struct {
	ID              string  `json:"id"`
	Cost            float64 `json:"cost"`
	Informativeness float64 `json:"informativeness"`
}

// MultiSelectResponse is the selected multi-choice jury.
type MultiSelectResponse struct {
	Pool        string            `json:"pool"`
	Labels      int               `json:"labels"`
	Jury        []MultiJuryMember `json:"jury"`
	JQ          float64           `json:"jq"`
	Cost        float64           `json:"cost"`
	Budget      float64           `json:"budget"`
	Prior       []float64         `json:"prior"`
	Strategy    string            `json:"strategy"`
	Evaluations int               `json:"evaluations"`
	// Cached reports whether the selection was served from the cache.
	Cached bool `json:"cached"`
	// Signature identifies the exact pool state the jury was computed
	// against.
	Signature string `json:"signature"`
}

// MultiJQRequest asks for the Jury Quality of an explicit jury drawn
// from a pool, under the optimal (Bayesian) strategy.
type MultiJQRequest struct {
	WorkerIDs []string  `json:"worker_ids"`
	Prior     []float64 `json:"prior,omitempty"`
	// Buckets is the estimate resolution; ignored when Exact is set.
	Buckets int `json:"buckets,omitempty"`
	// Exact switches to the exponential exact computation (small juries
	// only; ℓ^n states are enumerated).
	Exact bool `json:"exact,omitempty"`
}

// MultiJQResponse reports the computed Jury Quality.
type MultiJQResponse struct {
	Pool      string    `json:"pool"`
	Labels    int       `json:"labels"`
	WorkerIDs []string  `json:"worker_ids"`
	JQ        float64   `json:"jq"`
	Prior     []float64 `json:"prior"`
	// Method is "estimate" (bucketed DP) or "exact" (enumeration).
	Method string `json:"method"`
	// Signature identifies the jury's pool-state snapshot.
	Signature string `json:"signature"`
}
