package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/wal/errfs"
)

// newDurableFaultServer opens a durable server on a fault-injecting
// filesystem and registers the paper pool.
func newDurableFaultServer(t *testing.T, faults ...errfs.Fault) (*Server, *httptest.Server, *errfs.FS) {
	t.Helper()
	fsys := errfs.New(wal.OSFS(), faults...)
	cfg := NewConfig()
	cfg.DataDir = t.TempDir()
	cfg.Fsync = true
	cfg.FS = fsys
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { s.ClosePersistence() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: paperPoolSpecs()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	return s, ts, fsys
}

func ingestOne(t *testing.T, url, worker string, key string) *http.Response {
	t.Helper()
	data, _ := json.Marshal(VoteEvent{WorkerID: worker, Correct: true})
	req, err := http.NewRequest("POST", url+"/v1/votes", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestDegradedReadOnlyMode(t *testing.T) {
	// WAL fsyncs fail from the 3rd record on (1 register + 1 ingest ok).
	s, ts, _ := newDurableFaultServer(t,
		errfs.Fault{Op: errfs.OpSync, Path: "wal-", After: 2})

	if resp := ingestOne(t, ts.URL, "w0", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: %d", resp.StatusCode)
	}

	// The failing mutation answers 503 with Retry-After and degrades the
	// server terminally.
	resp := ingestOne(t, ts.URL, "w1", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing ingest: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("failing ingest: missing Retry-After")
	}
	if degraded, cause := s.DegradedState(); !degraded || cause == nil {
		t.Fatalf("DegradedState() = %v, %v after WAL failure", degraded, cause)
	}

	// Later mutations are refused up front (before the body is decoded).
	resp, raw := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Confidence: 0.9})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation while degraded: %d %s, want 503", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "degraded") {
		t.Fatalf("degraded error body: %s", raw)
	}

	// Reads keep serving from recovered state and the cache.
	resp, raw = postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select while degraded: %d %s", resp.StatusCode, raw)
	}
	getResp, err := http.Get(ts.URL + "/v1/workers")
	if err != nil || getResp.StatusCode != http.StatusOK {
		t.Fatalf("list while degraded: %v %d", err, getResp.StatusCode)
	}
	getResp.Body.Close()

	// /healthz stays 200 (liveness) but reports degraded; /readyz is 503.
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hResp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %d", err, hResp.StatusCode)
	}
	var health struct {
		Degraded bool `json:"degraded"`
	}
	json.NewDecoder(hResp.Body).Decode(&health)
	hResp.Body.Close()
	if !health.Degraded {
		t.Fatal("healthz does not report degraded")
	}
	rResp, err := http.Get(ts.URL + "/readyz")
	if err != nil || rResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz: %v %d, want 503", err, rResp.StatusCode)
	}
	rResp.Body.Close()

	// Metrics expose the transition.
	mResp, _ := http.Get(ts.URL + "/metrics")
	body := new(bytes.Buffer)
	body.ReadFrom(mResp.Body)
	mResp.Body.Close()
	if !strings.Contains(body.String(), "juryd_degraded 1") {
		t.Fatal("metrics missing juryd_degraded 1")
	}
	if !strings.Contains(body.String(), "juryd_wal_errors_total 1") {
		t.Fatalf("metrics missing juryd_wal_errors_total 1:\n%s", body.String())
	}
}

func TestDrainRefusesMutationsServesReads(t *testing.T) {
	s, ts := newTestServer(t)
	s.BeginDrain()

	resp := ingestOne(t, ts.URL, "w0", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}
	sResp, raw := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 20})
	if sResp.StatusCode != http.StatusOK {
		t.Fatalf("select while draining: %d %s", sResp.StatusCode, raw)
	}
	rResp, err := http.Get(ts.URL + "/readyz")
	if err != nil || rResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %d, want 503", err, rResp.StatusCode)
	}
	rResp.Body.Close()
}

func TestAdmissionControlSheds(t *testing.T) {
	cfg := NewConfig()
	cfg.MaxInFlight = 1
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: paperPoolSpecs()})

	// Occupy the single admission slot directly — equivalent to a request
	// parked inside a handler.
	s.inflight <- struct{}{}

	resp, raw := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 20})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("select over limit: %d %s, want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// System routes stay exempt.
	hResp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hResp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under overload: %v %d", err, hResp.StatusCode)
	}
	hResp.Body.Close()

	<-s.inflight // free the slot
	resp, raw = postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select after release: %d %s", resp.StatusCode, raw)
	}
	mResp, _ := http.Get(ts.URL + "/metrics")
	body := new(bytes.Buffer)
	body.ReadFrom(mResp.Body)
	mResp.Body.Close()
	if !strings.Contains(body.String(), "juryd_load_shed_total 1") {
		t.Fatalf("metrics missing juryd_load_shed_total 1:\n%s", body.String())
	}
}

func TestRequestTimeout(t *testing.T) {
	cfg := NewConfig()
	cfg.RequestTimeout = 50 * time.Millisecond
	s := New(cfg)
	// Register a deliberately slow handler through the wrapped route
	// machinery to prove the deadline fires and answers 503 JSON.
	s.route("GET /test/slow", routeRead, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		writeJSON(w, r, http.StatusOK, map[string]any{"slept": true})
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	start := time.Now()
	resp, err := http.Get(ts.URL + "/test/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("slow request: %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("timeout body not JSON error: %v %+v", err, body)
	}
}

func TestIdempotentIngestHTTP(t *testing.T) {
	_, ts := newTestServer(t)

	first := ingestOne(t, ts.URL, "w0", "key-1")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first keyed ingest: %d", first.StatusCode)
	}
	// Concurrent retries with the same key: exactly one application.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ingestOne(t, ts.URL, "w0", "key-1")
		}()
	}
	wg.Wait()

	resp, raw := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 20})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, raw)
	}
	getResp, err := http.Get(ts.URL + "/v1/workers/w0")
	if err != nil {
		t.Fatal(err)
	}
	var info WorkerInfo
	json.NewDecoder(getResp.Body).Decode(&info)
	getResp.Body.Close()
	if info.Votes != 1 {
		t.Fatalf("w0 votes = %d after 9 same-key requests, want 1", info.Votes)
	}

	// A different key applies.
	ingestOne(t, ts.URL, "w0", "key-2")
	getResp, _ = http.Get(ts.URL + "/v1/workers/w0")
	json.NewDecoder(getResp.Body).Decode(&info)
	getResp.Body.Close()
	if info.Votes != 2 {
		t.Fatalf("w0 votes = %d after second key, want 2", info.Votes)
	}
}

func TestIdemTableEviction(t *testing.T) {
	tbl := newIdemTable()
	for i := 0; i < idemCapacity+10; i++ {
		tbl.add(string(rune('a')) + string(rune(i)))
	}
	if len(tbl.fifo) != idemCapacity || len(tbl.keys) != idemCapacity {
		t.Fatalf("table size %d/%d, want %d", len(tbl.fifo), len(tbl.keys), idemCapacity)
	}
	// Snapshot/load round-trips bit-exactly.
	snap := tbl.snapshot()
	clone := newIdemTable()
	clone.load(snap)
	snap2 := clone.snapshot()
	if len(snap) != len(snap2) {
		t.Fatalf("round-trip size %d != %d", len(snap2), len(snap))
	}
	for i := range snap {
		if snap[i] != snap2[i] {
			t.Fatalf("round-trip key %d: %q != %q", i, snap2[i], snap[i])
		}
	}
}
