// Package server is the serving subsystem behind the juryd daemon: a
// long-running jury-selection service over the paper's machinery. It keeps
// a concurrency-safe worker registry resident, ingests graded vote events
// online (each one a Bayesian posterior step on the voting worker's
// quality, in the spirit of the paper's Section 8 / CDAS sequential
// processing), and serves the Jury Selection Problem over HTTP with a
// selection cache that amortizes search cost across requests.
//
// Consistency model: cached selections are keyed by a signature hashing
// the exact (id, quality, cost) state of the candidate pool, so a cached
// jury can never be served stale — any quality drift changes the key and
// forces a recompute; superseded entries age out of the LRU. See the
// package documentation of repro (doc.go) for the full serving notes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conc"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/selection"
	"repro/internal/voting"
	"repro/internal/wal"
)

// Config configures a Server.
type Config struct {
	// Alpha is the default prior P(t=0) for selections and sessions that
	// do not specify one. The zero value selects the uniform prior 0.5
	// (a certain-"no" server-wide default would be a silent foot-gun;
	// requests that genuinely want a degenerate prior pass it
	// explicitly per request).
	Alpha float64
	// Seed drives the annealing search path of selections that do not
	// carry their own seed.
	Seed int64
	// Workers bounds the fan-out of batch selection requests; 0 selects
	// GOMAXPROCS-many.
	Workers int
	// CacheSize is the selection cache capacity; 0 selects
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// PriorStrength is the default pseudo-count weight behind registered
	// qualities; 0 selects DefaultPriorStrength.
	PriorStrength float64
	// DataDir, when non-empty, makes the server durable (see Open): every
	// mutation is journaled to a write-ahead log under this directory and
	// state is recovered from snapshot+log on boot. New ignores it.
	DataDir string
	// Fsync flushes the WAL to stable storage after every record —
	// durable against power loss, at the price of one disk flush per
	// mutation. Without it, mutations survive a process crash (kill -9)
	// but not necessarily a machine crash.
	Fsync bool
	// GroupCommit batches concurrent WAL appends into one fsync: each
	// mutation still blocks until its record is on stable storage, but
	// mutations that arrive while a flush is in flight share the next
	// one. Only meaningful with Fsync; without Fsync it is ignored and
	// the WAL behaves exactly as before.
	GroupCommit bool
	// MaxBatchBytes caps how many staged record bytes one group-commit
	// flush may carry before appenders are backpressured; 0 selects
	// wal.DefaultMaxBatchBytes.
	MaxBatchBytes int64
	// SegmentBytes is the WAL segment rotation threshold; 0 selects
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
	// MaxInFlight bounds concurrently served requests; excess requests
	// are shed immediately with 429 rather than queued (system routes —
	// health, readiness, metrics, debug — are exempt so the server stays
	// observable under overload). 0 disables admission control.
	MaxInFlight int
	// RequestTimeout is the per-request deadline on non-system routes: it
	// bounds handler execution and propagates as the request context's
	// deadline; an overrun answers 503. 0 disables.
	RequestTimeout time.Duration
	// MaxLag is the staleness bound of a follower's readiness: /readyz
	// answers 503 once the follower has not been caught up to the
	// primary's durable watermark for longer than this. 0 disables the
	// gate (a follower is ready whenever it is serving). Ignored on a
	// primary.
	MaxLag time.Duration
	// Quorum is the total number of log copies a mutation ack vouches
	// for: with Quorum=N, a primary acknowledges a mutation only after
	// N-1 distinct followers have confirmed its LSN on the replication
	// stream. 0 or 1 disables quorum gating (ack after local
	// durability, as before). A mutation whose quorum does not confirm
	// in time answers 503 (it is durable locally and may still
	// replicate; a keyed retry resolves the ambiguity).
	Quorum int
	// QuorumTimeout bounds how long a mutation ack waits for the
	// follower quorum; 0 selects a 5s default. Only meaningful with
	// Quorum > 1.
	QuorumTimeout time.Duration
	// FS is the filesystem persistence (WAL and snapshots) lives on; nil
	// selects the real one. Chaos tests substitute a fault injector
	// (internal/wal/errfs) here.
	FS wal.FS
	// TraceBuffer sizes the request-trace ring buffer behind
	// GET /debug/traces; 0 selects obs.DefaultRingSize, negative disables
	// tracing entirely (requests carry no trace, the debug endpoint
	// serves empty lists).
	TraceBuffer int
	// Logger receives structured request and lifecycle logs, each line
	// carrying the request's trace ID. nil discards them (tests, and
	// embedders that only want the HTTP surface).
	Logger *slog.Logger
}

// NewConfig returns the production defaults: uniform prior, seed 1.
func NewConfig() Config {
	return Config{Alpha: 0.5, Seed: 1}
}

// Server is the juryd HTTP service. Create with New (in-memory) or Open
// (durable), mount via Handler.
type Server struct {
	cfg      Config
	registry *Registry
	multi    *MultiRegistry
	cache    *SelectionCache
	sessions *sessionStore
	metrics  *Metrics
	recorder *obs.Recorder // nil when cfg.TraceBuffer < 0
	logger   *slog.Logger
	started  time.Time // process-visible start, for juryd_uptime_seconds
	mux      *http.ServeMux
	routes   []string     // registered patterns, for /metrics and the API reference test
	persist  *Persistence // nil without a data dir

	// degraded flips (once, terminally) when the WAL fails underneath a
	// mutation: reads keep serving, mutations answer 503. degradedCause
	// keeps the first disk error for /readyz and error bodies.
	degraded      atomic.Bool
	degradedMu    sync.Mutex
	degradedCause error
	// draining refuses new mutations during shutdown while in-flight
	// reads complete (BeginDrain).
	draining atomic.Bool
	// inflight is the admission-control token bucket (nil when
	// MaxInFlight is 0); a request that cannot take a token is shed.
	inflight chan struct{}
	// repl is non-nil in follower (read-only replica) mode: mutations
	// answer 421 with the primary's address, state advances only through
	// ApplyReplicated (see repl.go).
	repl atomic.Pointer[replState]
	// epochs is the replayed promotion history: which epoch governs which
	// LSN range. Zero value = implicit epoch 1 (see epoch.go).
	epochs epochTable
	// promoting serializes Promote and makes in-flight replicated applies
	// refuse cleanly while the switch happens.
	promoting atomic.Bool
	// Fence state: when fenceEpoch exceeds the node's current epoch, a
	// newer primary exists and mutations answer 421 (see epoch.go).
	fenceMu      sync.Mutex
	fenceEpoch   uint64
	fencePrimary string
	// quorum tracks per-follower confirmed LSNs for Quorum-gated acks.
	quorum quorumAcks
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PriorStrength <= 0 {
		cfg.PriorStrength = DefaultPriorStrength
	}
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		multi:    NewMultiRegistry(),
		cache:    NewSelectionCache(cfg.CacheSize),
		sessions: newSessionStore(),
		metrics:  NewMetrics(),
		logger:   cfg.Logger,
		started:  time.Now(),
	}
	if cfg.TraceBuffer >= 0 {
		s.recorder = obs.NewRecorder(cfg.TraceBuffer)
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.mux = http.NewServeMux()
	s.route("GET /healthz", routeSys, s.handleHealth)
	s.route("GET /readyz", routeSys, s.handleReady)
	s.route("GET /metrics", routeSys, s.handleMetrics)
	s.route("GET /debug/persistence", routeSys, s.handleDebugPersistence)
	s.route("GET /debug/traces", routeSys, s.handleDebugTraces)
	// Replication routes are system-plane: exempt from admission control
	// and the request deadline (the stream is a long poll, and a degraded
	// or overloaded primary must keep feeding its followers).
	s.route("GET /v1/repl/stream", routeSys, s.handleReplStream)
	s.route("GET /v1/repl/snapshot", routeSys, s.handleReplSnapshot)
	// Failover control plane: promotion, fencing, and follower
	// repointing are system routes too — they must work on a node that
	// is overloaded, fenced, or refusing ordinary mutations.
	s.route("POST /v1/repl/promote", routeSys, s.handlePromote)
	s.route("POST /v1/repl/fence", routeSys, s.handleFence)
	s.route("POST /v1/repl/repoint", routeSys, s.handleRepoint)
	s.route("POST /v1/workers", routeMut, s.handleRegister)
	s.route("GET /v1/workers", routeRead, s.handleListWorkers)
	s.route("GET /v1/workers/{id}", routeRead, s.handleGetWorker)
	s.route("PUT /v1/workers/{id}", routeMut, s.handleUpdateWorker)
	s.route("DELETE /v1/workers/{id}", routeMut, s.handleRemoveWorker)
	s.route("POST /v1/votes", routeMut, s.handleIngestOne)
	s.route("POST /v1/votes/batch", routeMut, s.handleIngestBatch)
	s.route("POST /v1/select", routeRead, s.handleSelect)
	s.route("POST /v1/select/batch", routeRead, s.handleSelectBatch)
	s.route("POST /v1/sessions", routeMut, s.handleOpenSession)
	s.route("GET /v1/sessions/{id}", routeRead, s.handleGetSession)
	s.route("POST /v1/sessions/{id}/votes", routeMut, s.handleSessionVote)
	s.route("DELETE /v1/sessions/{id}", routeMut, s.handleCloseSession)
	s.route("POST /v1/multi/pools", routeMut, s.handleMultiCreate)
	s.route("GET /v1/multi/pools", routeRead, s.handleMultiListPools)
	s.route("GET /v1/multi/pools/{pool}", routeRead, s.handleMultiGetPool)
	s.route("DELETE /v1/multi/pools/{pool}", routeMut, s.handleMultiDropPool)
	s.route("POST /v1/multi/pools/{pool}/workers", routeMut, s.handleMultiRegister)
	s.route("POST /v1/multi/pools/{pool}/votes", routeMut, s.handleMultiIngest)
	s.route("POST /v1/multi/pools/{pool}/select", routeRead, s.handleMultiSelect)
	s.route("POST /v1/multi/pools/{pool}/jq", routeRead, s.handleMultiJQ)
	return s
}

// Routes returns every registered route pattern ("METHOD /path"), in
// registration order. The API reference test diffs this against API.md.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the worker registry (used by the daemon for preloading
// and by tests).
func (s *Server) Registry() *Registry { return s.registry }

// CacheStats exposes the selection-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Metrics exposes the operational counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Recorder exposes the trace recorder (nil when tracing is disabled);
// used by tests and benchmarks.
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// routeKind classifies a route for the failure-domain wrappers.
type routeKind int

const (
	// routeSys is the observability plane: health, readiness, metrics,
	// debug. Exempt from admission control and deadlines — an overloaded
	// or degraded server must stay inspectable.
	routeSys routeKind = iota
	// routeRead serves from recovered state and the selection cache;
	// available in degraded mode and during drain.
	routeRead
	// routeMut journals to the WAL; refused (503) when degraded or
	// draining, before the body is decoded.
	routeMut
)

// timeoutBody is the JSON answer http.TimeoutHandler writes on a
// request-deadline overrun (it serves 503 with this literal body).
const timeoutBody = `{"error":"server: request deadline exceeded"}`

// route registers a handler wrapped by kind-dependent failure-domain
// middleware (degraded/drain refusal for mutations, per-request
// deadline and admission control for everything but system routes) and,
// outermost, per-route metrics and request tracing: every request gets
// a trace ID (the client's X-Request-Id when sane, a fresh one
// otherwise), echoed on the response, carried in the request context
// for stage spans and structured logs, and — with tracing enabled —
// recorded into the trace ring with per-stage latency histograms. Shed
// and refused requests are counted like any other response.
func (s *Server) route(pattern string, kind routeKind, h func(http.ResponseWriter, *http.Request)) {
	s.routes = append(s.routes, pattern)
	inner := h
	if kind == routeMut {
		inner = func(w http.ResponseWriter, r *http.Request) {
			if err := s.mutable(); err != nil {
				writeError(w, r, err)
				return
			}
			h(w, r)
		}
	}
	var handler http.Handler = http.HandlerFunc(inner)
	if kind != routeSys && s.cfg.RequestTimeout > 0 {
		handler = http.TimeoutHandler(handler, s.cfg.RequestTimeout, timeoutBody)
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := obs.CleanID(r.Header.Get(obs.RequestIDHeader))
		var tr *obs.Trace
		if s.recorder != nil {
			tr = obs.NewTrace(id, pattern)
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// RequestIDHeader is already canonical; direct assignment skips
		// Set's per-request canonicalization on the hot path.
		sw.Header()[obs.RequestIDHeader] = []string{id}
		// Every response carries the serving node's epoch, so clients and
		// the failover harness can spot a stale primary on any route.
		sw.Header()[EpochHeader] = []string{strconv.FormatUint(s.epochs.current(), 10)}
		if kind != routeSys && s.inflight != nil {
			admSpan := tr.Begin(obs.StageAdmission)
			select {
			case s.inflight <- struct{}{}:
				admSpan.End()
				defer func() { <-s.inflight }()
			default:
				admSpan.End()
				s.metrics.LoadShed()
				sw.Header().Set("Retry-After", "1")
				writeJSON(sw, r, http.StatusTooManyRequests,
					ErrorResponse{Error: "server: overloaded: in-flight request limit reached"})
				s.finishRequest(pattern, id, tr, sw.status, start)
				return
			}
		}
		handler.ServeHTTP(sw, r)
		s.finishRequest(pattern, id, tr, sw.status, start)
	})
}

// finishRequest settles one request's observability: the per-route
// metrics, the trace (published to the ring and the stage histograms),
// and a structured log line carrying the trace ID.
func (s *Server) finishRequest(pattern, id string, tr *obs.Trace, status int, start time.Time) {
	d := time.Since(start)
	s.metrics.Request(pattern, status, d)
	s.recorder.Finish(tr, status)
	level := slog.LevelDebug
	if status >= 500 {
		level = slog.LevelWarn
	} else if status >= 400 {
		level = slog.LevelInfo
	}
	s.logger.LogAttrs(context.Background(), level, "request",
		slog.String("request_id", id),
		slog.String("route", pattern),
		slog.Int("status", status),
		slog.Duration("duration", d))
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// maxBodyBytes bounds request bodies (1 MiB covers thousands of workers).
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// writeJSON encodes the response body; the request provides the trace
// the encode time is attributed to (nil-safe for callers without one).
func writeJSON(w http.ResponseWriter, r *http.Request, status int, body any) {
	var encSpan obs.SpanTimer
	if r != nil {
		encSpan = obs.TraceFrom(r.Context()).Begin(obs.StageEncode)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
	encSpan.End()
}

// writeError maps a service error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	var follower *FollowerError
	var fenced *FencedError
	switch {
	case errors.As(err, &follower):
		// Read-only replica: the mutation belongs on the primary, whose
		// address rides along so clients can redirect without config.
		status = http.StatusMisdirectedRequest
		if follower.Primary != "" {
			w.Header().Set(PrimaryHeader, follower.Primary)
		}
	case errors.As(err, &fenced):
		// Fenced ex-primary: to a client this is exactly a replica — the
		// write belongs on the newer primary.
		status = http.StatusMisdirectedRequest
		if fenced.Primary != "" {
			w.Header().Set(PrimaryHeader, fenced.Primary)
		}
	case errors.Is(err, ErrQuorumTimeout):
		// Durable locally but unconfirmed by the follower quorum; a
		// keyed retry resolves it once followers catch up.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrFenceStale), errors.Is(err, ErrNotFollower),
		errors.Is(err, ErrPromoting):
		status = http.StatusConflict
	case errors.Is(err, ErrWorkerUnknown), errors.Is(err, ErrSessionUnknown),
		errors.Is(err, ErrPoolUnknown):
		status = http.StatusNotFound
	case errors.Is(err, ErrWorkerExists), errors.Is(err, ErrDuplicateBatch),
		errors.Is(err, ErrPoolExists):
		status = http.StatusConflict
	case errors.Is(err, online.ErrSessionDone), errors.Is(err, online.ErrOverBudget):
		status = http.StatusConflict
	case errors.Is(err, ErrEmptyRegistry):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrDegraded):
		// Degraded is terminal for this process: the retry only helps once
		// an operator restarts it, so advertise a long backoff.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "30")
	case errors.Is(err, ErrDraining):
		// A drain resolves in seconds (restart, or a peer takes over).
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "2")
	}
	writeJSON(w, r, status, ErrorResponse{Error: err.Error()})
}

// ---------------------------------------------------------------------------
// Health and metrics.

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Liveness stays 200 even degraded — the process is up and serving
	// reads; readiness (/readyz) is what goes 503.
	degraded, _ := s.DegradedState()
	writeJSON(w, r, http.StatusOK, map[string]any{
		"status":      "ok",
		"degraded":    degraded,
		"draining":    s.Draining(),
		"pool":        s.registry.Len(),
		"sessions":    s.sessions.Len(),
		"multi_pools": s.multi.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w, s.cache.Stats(), s.registry.Len(), s.registry.Generation(),
		s.multi.Len(), s.degraded.Load())
	s.writeReplMetrics(w)
	s.recorder.WriteMetrics(w)
	writeRuntimeMetrics(w, s.started)
}

func (s *Server) handleDebugPersistence(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, s.PersistenceStatus())
}

// handleDebugTraces serves the trace ring: the most recent finished
// traces (?n= bounds the count, default 32) and the slowest seen since
// boot, each with its stage spans. With tracing disabled both lists are
// empty.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, r, fmt.Errorf("server: bad trace count %q", q))
			return
		}
		n = v
	}
	writeJSON(w, r, http.StatusOK, DebugTracesResponse{
		Enabled: s.recorder != nil,
		Count:   s.recorder.Count(),
		Recent:  s.recorder.Recent(n),
		Slowest: s.recorder.Slowest(),
	})
}

// ---------------------------------------------------------------------------
// Worker registry.

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if len(req.Workers) == 0 {
		writeError(w, r, errors.New("server: no workers in request"))
		return
	}
	defer s.mutationGuard()()
	sig, err := s.registry.Register(r.Context(), req.Workers, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, RegisterResponse{
		Registered: len(req.Workers),
		PoolSize:   s.registry.Len(),
		Signature:  sig,
	})
}

func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	list, sig := s.registry.List()
	writeJSON(w, r, http.StatusOK, ListResponse{Workers: list, Signature: sig})
}

func (s *Server) handleGetWorker(w http.ResponseWriter, r *http.Request) {
	info, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, info)
}

func (s *Server) handleUpdateWorker(w http.ResponseWriter, r *http.Request) {
	var spec WorkerSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, r, err)
		return
	}
	id := r.PathValue("id")
	if spec.ID != "" && spec.ID != id {
		writeError(w, r, fmt.Errorf("server: body id %q does not match path id %q", spec.ID, id))
		return
	}
	spec.ID = id
	defer s.mutationGuard()()
	info, err := s.registry.Update(r.Context(), spec, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, info)
}

func (s *Server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	defer s.mutationGuard()()
	if err := s.registry.Remove(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"removed": true})
}

// ---------------------------------------------------------------------------
// Vote ingestion.

func (s *Server) handleIngestOne(w http.ResponseWriter, r *http.Request) {
	var ev VoteEvent
	if err := decodeJSON(w, r, &ev); err != nil {
		writeError(w, r, err)
		return
	}
	s.ingest(w, r, []VoteEvent{ev}, idempotencyKey(r))
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, r, errors.New("server: no events in request"))
		return
	}
	s.ingest(w, r, req.Events, idempotencyKey(r))
}

// idempotencyKey extracts the client-generated Idempotency-Key header
// ("" when absent): a retried ingest carrying the same key is applied
// exactly once and answered with Duplicate set.
func idempotencyKey(r *http.Request) string {
	return r.Header.Get("Idempotency-Key")
}

func (s *Server) ingest(w http.ResponseWriter, r *http.Request, events []VoteEvent, key string) {
	defer s.mutationGuard()()
	updated, sig, dup, err := s.registry.IngestKeyed(r.Context(), events, key)
	if err != nil {
		writeError(w, r, err)
		return
	}
	if dup {
		s.metrics.IngestDuplicate()
		writeJSON(w, r, http.StatusOK, IngestResponse{Signature: sig, Duplicate: true})
		return
	}
	s.metrics.VotesIngested(len(events))
	writeJSON(w, r, http.StatusOK, IngestResponse{
		Ingested:  len(events),
		Updated:   updated,
		Signature: sig,
	})
}

// ---------------------------------------------------------------------------
// Jury selection.

// strategySelector maps a wire strategy name to the selection machinery.
// Every selector here is deterministic given (pool, budget, alpha, seed),
// which is what makes the cache sound. seeded reports whether the search
// actually consumes the seed — the cache key zeroes it otherwise, so the
// seed-independent strategies share one entry across request seeds.
func strategySelector(strategy string, seed int64) (sel selection.Selector, name string, seeded bool, err error) {
	switch strategy {
	case "", "bv":
		return selection.OPTJS(seed), "bv", true, nil
	case "mv":
		return selection.MVJS(seed), "mv", true, nil
	case "bv-exact":
		return selection.Exhaustive{Objective: selection.BVExactObjective{}}, "bv-exact", false, nil
	case "greedy":
		return selection.GreedyQuality{Objective: selection.BVObjective{}}, "greedy", false, nil
	default:
		return nil, "", false, fmt.Errorf("server: unknown strategy %q (want bv, mv, bv-exact or greedy)", strategy)
	}
}

// selectOne serves one selection request: cache lookup on the snapshot
// signature, then compute-and-fill on miss. The selection itself runs on
// the immutable snapshot, outside any lock.
func (s *Server) selectOne(ctx context.Context, req SelectRequest) (SelectResponse, error) {
	if req.Budget < 0 || req.Budget != req.Budget {
		return SelectResponse{}, fmt.Errorf("server: bad budget %v", req.Budget)
	}
	alpha := s.cfg.Alpha
	if req.Alpha != nil {
		alpha = *req.Alpha
	}
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return SelectResponse{}, fmt.Errorf("server: prior %v outside [0, 1]", alpha)
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	sel, strategyName, seeded, err := strategySelector(req.Strategy, seed)
	if err != nil {
		return SelectResponse{}, err
	}
	pool, ids, sig, err := s.registry.Snapshot(req.WorkerIDs)
	if err != nil {
		return SelectResponse{}, err
	}
	keySeed := seed
	if !seeded {
		keySeed = 0
	}
	tr := obs.TraceFrom(ctx)
	key := SelectionKey{Signature: sig, Strategy: strategyName, Budget: req.Budget, Alpha: alpha, Seed: keySeed}
	cacheSpan := tr.Begin(obs.StageCache)
	res, hit := s.cache.Get(key)
	cacheSpan.End()
	if hit {
		res.Cached = true
		return res, nil
	}
	start := time.Now()
	result, err := sel.Select(pool, req.Budget, alpha)
	if err != nil {
		return SelectResponse{}, err
	}
	tr.Add(obs.StageEval, start, time.Since(start))
	s.metrics.SelectionComputed(time.Since(start))
	res = SelectResponse{
		Jury:        make([]JuryMember, len(result.Indices)),
		JQ:          result.JQ,
		Cost:        result.Cost,
		Budget:      req.Budget,
		Alpha:       alpha,
		Strategy:    strategyName,
		Evaluations: result.Evaluations,
		Signature:   sig,
	}
	for i, idx := range result.Indices {
		res.Jury[i] = JuryMember{ID: ids[idx], Quality: pool[idx].Quality, Cost: pool[idx].Cost}
	}
	s.cache.Put(key, res)
	return res, nil
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	res, err := s.selectOne(r.Context(), req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, res)
}

// handleSelectBatch answers one selection per budget, fanning the budgets
// out over the server's conc pool. Results come back in request order —
// Selections[i] answers Budgets[i] — regardless of completion order.
func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if len(req.Budgets) == 0 {
		writeError(w, r, errors.New("server: no budgets in request"))
		return
	}
	results := make([]SelectResponse, len(req.Budgets))
	errs := make([]error, len(req.Budgets))
	conc.ForEach(s.cfg.Workers, len(req.Budgets), func(i int) {
		results[i], errs[i] = s.selectOne(r.Context(), SelectRequest{
			Budget:    req.Budgets[i],
			Alpha:     req.Alpha,
			Strategy:  req.Strategy,
			WorkerIDs: req.WorkerIDs,
			Seed:      req.Seed,
		})
	})
	for _, err := range errs {
		if err != nil {
			writeError(w, r, err)
			return
		}
	}
	writeJSON(w, r, http.StatusOK, BatchSelectResponse{Selections: results})
}

// ---------------------------------------------------------------------------
// Online collection sessions.

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	alpha := s.cfg.Alpha
	if req.Alpha != nil {
		alpha = *req.Alpha
	}
	defer s.mutationGuard()()
	state, err := s.sessions.Open(r.Context(), online.Config{
		Alpha:      alpha,
		Confidence: req.Confidence,
		Budget:     req.Budget,
		MaxVotes:   req.MaxVotes,
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	s.metrics.SessionOpened()
	writeJSON(w, r, http.StatusCreated, state)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	state, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, state)
}

func (s *Server) handleSessionVote(w http.ResponseWriter, r *http.Request) {
	var req SessionVoteRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if req.Vote != voting.No && req.Vote != voting.Yes {
		writeError(w, r, fmt.Errorf("server: bad vote %d (want 0 or 1)", req.Vote))
		return
	}
	info, err := s.registry.Get(req.WorkerID)
	if err != nil {
		writeError(w, r, err)
		return
	}
	id := r.PathValue("id")
	defer s.mutationGuard()()
	state, err := s.sessions.Observe(r.Context(), id, info.Quality, info.Cost, req.Vote)
	if errors.Is(err, online.ErrOverBudget) {
		// The vote does not fit. If no registered worker fits the
		// remaining budget either, collection cannot continue at all:
		// finalize the session with the "budget" stop reason (the
		// rejected vote is not folded in) instead of erroring.
		if remaining, bounded, rerr := s.sessions.BudgetRemaining(id); rerr == nil &&
			bounded && !s.registry.AnyAffordable(remaining) {
			state, err = s.sessions.MarkBudgetExhausted(r.Context(), id)
			if err == nil {
				s.metrics.SessionFinished()
				writeJSON(w, r, http.StatusOK, state)
				return
			}
		}
	}
	if err != nil {
		writeError(w, r, err)
		return
	}
	if state.Done {
		s.metrics.SessionFinished()
	}
	writeJSON(w, r, http.StatusOK, state)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	defer s.mutationGuard()()
	if err := s.sessions.Close(r.Context(), r.PathValue("id")); err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"closed": true})
}

// Preload registers an initial worker pool, for daemon startup (-pool).
// On a durable server the registration is journaled like any other, so a
// preloaded pool also survives restarts; re-preloading the same file into
// a recovered registry fails with ErrWorkerExists, which the daemon
// treats as "already recovered" and skips.
func (s *Server) Preload(specs []WorkerSpec) error {
	if len(specs) == 0 {
		return nil
	}
	defer s.mutationGuard()()
	_, err := s.registry.Register(context.Background(), specs, s.cfg.PriorStrength)
	return err
}
