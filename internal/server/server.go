// Package server is the serving subsystem behind the juryd daemon: a
// long-running jury-selection service over the paper's machinery. It keeps
// a concurrency-safe worker registry resident, ingests graded vote events
// online (each one a Bayesian posterior step on the voting worker's
// quality, in the spirit of the paper's Section 8 / CDAS sequential
// processing), and serves the Jury Selection Problem over HTTP with a
// selection cache that amortizes search cost across requests.
//
// Consistency model: cached selections are keyed by a signature hashing
// the exact (id, quality, cost) state of the candidate pool, so a cached
// jury can never be served stale — any quality drift changes the key and
// forces a recompute; superseded entries age out of the LRU. See the
// package documentation of repro (doc.go) for the full serving notes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"repro/internal/conc"
	"repro/internal/online"
	"repro/internal/selection"
	"repro/internal/voting"
)

// Config configures a Server.
type Config struct {
	// Alpha is the default prior P(t=0) for selections and sessions that
	// do not specify one. The zero value selects the uniform prior 0.5
	// (a certain-"no" server-wide default would be a silent foot-gun;
	// requests that genuinely want a degenerate prior pass it
	// explicitly per request).
	Alpha float64
	// Seed drives the annealing search path of selections that do not
	// carry their own seed.
	Seed int64
	// Workers bounds the fan-out of batch selection requests; 0 selects
	// GOMAXPROCS-many.
	Workers int
	// CacheSize is the selection cache capacity; 0 selects
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// PriorStrength is the default pseudo-count weight behind registered
	// qualities; 0 selects DefaultPriorStrength.
	PriorStrength float64
	// DataDir, when non-empty, makes the server durable (see Open): every
	// mutation is journaled to a write-ahead log under this directory and
	// state is recovered from snapshot+log on boot. New ignores it.
	DataDir string
	// Fsync flushes the WAL to stable storage after every record —
	// durable against power loss, at the price of one disk flush per
	// mutation. Without it, mutations survive a process crash (kill -9)
	// but not necessarily a machine crash.
	Fsync bool
	// SegmentBytes is the WAL segment rotation threshold; 0 selects
	// wal.DefaultSegmentBytes.
	SegmentBytes int64
}

// NewConfig returns the production defaults: uniform prior, seed 1.
func NewConfig() Config {
	return Config{Alpha: 0.5, Seed: 1}
}

// Server is the juryd HTTP service. Create with New (in-memory) or Open
// (durable), mount via Handler.
type Server struct {
	cfg      Config
	registry *Registry
	multi    *MultiRegistry
	cache    *SelectionCache
	sessions *sessionStore
	metrics  *Metrics
	mux      *http.ServeMux
	routes   []string     // registered patterns, for /metrics and the API reference test
	persist  *Persistence // nil without a data dir
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PriorStrength <= 0 {
		cfg.PriorStrength = DefaultPriorStrength
	}
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(),
		multi:    NewMultiRegistry(),
		cache:    NewSelectionCache(cfg.CacheSize),
		sessions: newSessionStore(),
		metrics:  NewMetrics(),
	}
	s.mux = http.NewServeMux()
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /metrics", s.handleMetrics)
	s.route("GET /debug/persistence", s.handleDebugPersistence)
	s.route("POST /v1/workers", s.handleRegister)
	s.route("GET /v1/workers", s.handleListWorkers)
	s.route("GET /v1/workers/{id}", s.handleGetWorker)
	s.route("PUT /v1/workers/{id}", s.handleUpdateWorker)
	s.route("DELETE /v1/workers/{id}", s.handleRemoveWorker)
	s.route("POST /v1/votes", s.handleIngestOne)
	s.route("POST /v1/votes/batch", s.handleIngestBatch)
	s.route("POST /v1/select", s.handleSelect)
	s.route("POST /v1/select/batch", s.handleSelectBatch)
	s.route("POST /v1/sessions", s.handleOpenSession)
	s.route("GET /v1/sessions/{id}", s.handleGetSession)
	s.route("POST /v1/sessions/{id}/votes", s.handleSessionVote)
	s.route("DELETE /v1/sessions/{id}", s.handleCloseSession)
	s.route("POST /v1/multi/pools", s.handleMultiCreate)
	s.route("GET /v1/multi/pools", s.handleMultiListPools)
	s.route("GET /v1/multi/pools/{pool}", s.handleMultiGetPool)
	s.route("DELETE /v1/multi/pools/{pool}", s.handleMultiDropPool)
	s.route("POST /v1/multi/pools/{pool}/workers", s.handleMultiRegister)
	s.route("POST /v1/multi/pools/{pool}/votes", s.handleMultiIngest)
	s.route("POST /v1/multi/pools/{pool}/select", s.handleMultiSelect)
	s.route("POST /v1/multi/pools/{pool}/jq", s.handleMultiJQ)
	return s
}

// Routes returns every registered route pattern ("METHOD /path"), in
// registration order. The API reference test diffs this against API.md.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the worker registry (used by the daemon for preloading
// and by tests).
func (s *Server) Registry() *Registry { return s.registry }

// CacheStats exposes the selection-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Metrics exposes the operational counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// route registers a handler wrapped with per-route metrics: a request
// counter and a latency histogram, both labeled by the route pattern.
func (s *Server) route(pattern string, h func(http.ResponseWriter, *http.Request)) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.Request(pattern, sw.status, time.Since(start))
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// maxBodyBytes bounds request bodies (1 MiB covers thousands of workers).
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// writeError maps a service error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrWorkerUnknown), errors.Is(err, ErrSessionUnknown),
		errors.Is(err, ErrPoolUnknown):
		status = http.StatusNotFound
	case errors.Is(err, ErrWorkerExists), errors.Is(err, ErrDuplicateBatch),
		errors.Is(err, ErrPoolExists):
		status = http.StatusConflict
	case errors.Is(err, online.ErrSessionDone), errors.Is(err, online.ErrOverBudget):
		status = http.StatusConflict
	case errors.Is(err, ErrEmptyRegistry):
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// ---------------------------------------------------------------------------
// Health and metrics.

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"pool":        s.registry.Len(),
		"sessions":    s.sessions.Len(),
		"multi_pools": s.multi.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteText(w, s.cache.Stats(), s.registry.Len(), s.registry.Generation(), s.multi.Len())
}

func (s *Server) handleDebugPersistence(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.PersistenceStatus())
}

// ---------------------------------------------------------------------------
// Worker registry.

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Workers) == 0 {
		writeError(w, errors.New("server: no workers in request"))
		return
	}
	defer s.mutationGuard()()
	sig, err := s.registry.Register(req.Workers, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, RegisterResponse{
		Registered: len(req.Workers),
		PoolSize:   s.registry.Len(),
		Signature:  sig,
	})
}

func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	list, sig := s.registry.List()
	writeJSON(w, http.StatusOK, ListResponse{Workers: list, Signature: sig})
}

func (s *Server) handleGetWorker(w http.ResponseWriter, r *http.Request) {
	info, err := s.registry.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUpdateWorker(w http.ResponseWriter, r *http.Request) {
	var spec WorkerSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	if spec.ID != "" && spec.ID != id {
		writeError(w, fmt.Errorf("server: body id %q does not match path id %q", spec.ID, id))
		return
	}
	spec.ID = id
	defer s.mutationGuard()()
	info, err := s.registry.Update(spec, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRemoveWorker(w http.ResponseWriter, r *http.Request) {
	defer s.mutationGuard()()
	if err := s.registry.Remove(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": true})
}

// ---------------------------------------------------------------------------
// Vote ingestion.

func (s *Server) handleIngestOne(w http.ResponseWriter, r *http.Request) {
	var ev VoteEvent
	if err := decodeJSON(w, r, &ev); err != nil {
		writeError(w, err)
		return
	}
	s.ingest(w, []VoteEvent{ev})
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, errors.New("server: no events in request"))
		return
	}
	s.ingest(w, req.Events)
}

func (s *Server) ingest(w http.ResponseWriter, events []VoteEvent) {
	defer s.mutationGuard()()
	updated, sig, err := s.registry.Ingest(events)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.VotesIngested(len(events))
	writeJSON(w, http.StatusOK, IngestResponse{
		Ingested:  len(events),
		Updated:   updated,
		Signature: sig,
	})
}

// ---------------------------------------------------------------------------
// Jury selection.

// strategySelector maps a wire strategy name to the selection machinery.
// Every selector here is deterministic given (pool, budget, alpha, seed),
// which is what makes the cache sound. seeded reports whether the search
// actually consumes the seed — the cache key zeroes it otherwise, so the
// seed-independent strategies share one entry across request seeds.
func strategySelector(strategy string, seed int64) (sel selection.Selector, name string, seeded bool, err error) {
	switch strategy {
	case "", "bv":
		return selection.OPTJS(seed), "bv", true, nil
	case "mv":
		return selection.MVJS(seed), "mv", true, nil
	case "bv-exact":
		return selection.Exhaustive{Objective: selection.BVExactObjective{}}, "bv-exact", false, nil
	case "greedy":
		return selection.GreedyQuality{Objective: selection.BVObjective{}}, "greedy", false, nil
	default:
		return nil, "", false, fmt.Errorf("server: unknown strategy %q (want bv, mv, bv-exact or greedy)", strategy)
	}
}

// selectOne serves one selection request: cache lookup on the snapshot
// signature, then compute-and-fill on miss. The selection itself runs on
// the immutable snapshot, outside any lock.
func (s *Server) selectOne(req SelectRequest) (SelectResponse, error) {
	if req.Budget < 0 || req.Budget != req.Budget {
		return SelectResponse{}, fmt.Errorf("server: bad budget %v", req.Budget)
	}
	alpha := s.cfg.Alpha
	if req.Alpha != nil {
		alpha = *req.Alpha
	}
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return SelectResponse{}, fmt.Errorf("server: prior %v outside [0, 1]", alpha)
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	sel, strategyName, seeded, err := strategySelector(req.Strategy, seed)
	if err != nil {
		return SelectResponse{}, err
	}
	pool, ids, sig, err := s.registry.Snapshot(req.WorkerIDs)
	if err != nil {
		return SelectResponse{}, err
	}
	keySeed := seed
	if !seeded {
		keySeed = 0
	}
	key := SelectionKey{Signature: sig, Strategy: strategyName, Budget: req.Budget, Alpha: alpha, Seed: keySeed}
	if res, ok := s.cache.Get(key); ok {
		res.Cached = true
		return res, nil
	}
	start := time.Now()
	result, err := sel.Select(pool, req.Budget, alpha)
	if err != nil {
		return SelectResponse{}, err
	}
	s.metrics.SelectionComputed(time.Since(start))
	res := SelectResponse{
		Jury:        make([]JuryMember, len(result.Indices)),
		JQ:          result.JQ,
		Cost:        result.Cost,
		Budget:      req.Budget,
		Alpha:       alpha,
		Strategy:    strategyName,
		Evaluations: result.Evaluations,
		Signature:   sig,
	}
	for i, idx := range result.Indices {
		res.Jury[i] = JuryMember{ID: ids[idx], Quality: pool[idx].Quality, Cost: pool[idx].Cost}
	}
	s.cache.Put(key, res)
	return res, nil
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.selectOne(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleSelectBatch answers one selection per budget, fanning the budgets
// out over the server's conc pool. Results come back in request order —
// Selections[i] answers Budgets[i] — regardless of completion order.
func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Budgets) == 0 {
		writeError(w, errors.New("server: no budgets in request"))
		return
	}
	results := make([]SelectResponse, len(req.Budgets))
	errs := make([]error, len(req.Budgets))
	conc.ForEach(s.cfg.Workers, len(req.Budgets), func(i int) {
		results[i], errs[i] = s.selectOne(SelectRequest{
			Budget:    req.Budgets[i],
			Alpha:     req.Alpha,
			Strategy:  req.Strategy,
			WorkerIDs: req.WorkerIDs,
			Seed:      req.Seed,
		})
	})
	for _, err := range errs {
		if err != nil {
			writeError(w, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, BatchSelectResponse{Selections: results})
}

// ---------------------------------------------------------------------------
// Online collection sessions.

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	alpha := s.cfg.Alpha
	if req.Alpha != nil {
		alpha = *req.Alpha
	}
	defer s.mutationGuard()()
	state, err := s.sessions.Open(online.Config{
		Alpha:      alpha,
		Confidence: req.Confidence,
		Budget:     req.Budget,
		MaxVotes:   req.MaxVotes,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.SessionOpened()
	writeJSON(w, http.StatusCreated, state)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	state, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleSessionVote(w http.ResponseWriter, r *http.Request) {
	var req SessionVoteRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Vote != voting.No && req.Vote != voting.Yes {
		writeError(w, fmt.Errorf("server: bad vote %d (want 0 or 1)", req.Vote))
		return
	}
	info, err := s.registry.Get(req.WorkerID)
	if err != nil {
		writeError(w, err)
		return
	}
	id := r.PathValue("id")
	defer s.mutationGuard()()
	state, err := s.sessions.Observe(id, info.Quality, info.Cost, req.Vote)
	if errors.Is(err, online.ErrOverBudget) {
		// The vote does not fit. If no registered worker fits the
		// remaining budget either, collection cannot continue at all:
		// finalize the session with the "budget" stop reason (the
		// rejected vote is not folded in) instead of erroring.
		if remaining, bounded, rerr := s.sessions.BudgetRemaining(id); rerr == nil &&
			bounded && !s.registry.AnyAffordable(remaining) {
			state, err = s.sessions.MarkBudgetExhausted(id)
			if err == nil {
				s.metrics.SessionFinished()
				writeJSON(w, http.StatusOK, state)
				return
			}
		}
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if state.Done {
		s.metrics.SessionFinished()
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	defer s.mutationGuard()()
	if err := s.sessions.Close(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"closed": true})
}

// Preload registers an initial worker pool, for daemon startup (-pool).
// On a durable server the registration is journaled like any other, so a
// preloaded pool also survives restarts; re-preloading the same file into
// a recovered registry fails with ErrWorkerExists, which the daemon
// treats as "already recovered" and skips.
func (s *Server) Preload(specs []WorkerSpec) error {
	if len(specs) == 0 {
		return nil
	}
	defer s.mutationGuard()()
	_, err := s.registry.Register(specs, s.cfg.PriorStrength)
	return err
}
