package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/multichoice"
	"repro/internal/obs"
)

// The multi-choice (confusion-matrix) arm of the HTTP surface: named
// pools of workers with Dirichlet-row posteriors, served through the
// same signature-keyed selection cache as the binary routes.

func (s *Server) handleMultiCreate(w http.ResponseWriter, r *http.Request) {
	var req MultiCreateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	defer s.mutationGuard()()
	sig, err := s.multi.CreatePool(r.Context(), req.Name, req.Labels, req.Workers, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, MultiRegisterResponse{
		Registered: len(req.Workers),
		PoolSize:   len(req.Workers),
		Signature:  sig,
	})
}

func (s *Server) handleMultiListPools(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, MultiPoolsResponse{Pools: s.multi.List()})
}

func (s *Server) handleMultiGetPool(w http.ResponseWriter, r *http.Request) {
	info, err := s.multi.Get(r.PathValue("pool"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, info)
}

func (s *Server) handleMultiDropPool(w http.ResponseWriter, r *http.Request) {
	defer s.mutationGuard()()
	if err := s.multi.DropPool(r.Context(), r.PathValue("pool")); err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"dropped": true})
}

func (s *Server) handleMultiRegister(w http.ResponseWriter, r *http.Request) {
	var req MultiRegisterRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	defer s.mutationGuard()()
	sig, size, err := s.multi.Register(r.Context(), r.PathValue("pool"), req.Workers, s.cfg.PriorStrength)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, MultiRegisterResponse{
		Registered: len(req.Workers),
		PoolSize:   size,
		Signature:  sig,
	})
}

func (s *Server) handleMultiIngest(w http.ResponseWriter, r *http.Request) {
	var req MultiIngestRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	defer s.mutationGuard()()
	updated, sig, dup, err := s.multi.IngestKeyed(r.Context(), r.PathValue("pool"), req.Events, idempotencyKey(r))
	if err != nil {
		writeError(w, r, err)
		return
	}
	if dup {
		s.metrics.IngestDuplicate()
		writeJSON(w, r, http.StatusOK, MultiIngestResponse{Signature: sig, Duplicate: true})
		return
	}
	s.metrics.VotesIngested(len(req.Events))
	writeJSON(w, r, http.StatusOK, MultiIngestResponse{
		Ingested:  len(req.Events),
		Updated:   updated,
		Signature: sig,
	})
}

// resolvePrior validates a request prior against ℓ labels, defaulting to
// uniform. The returned slice is owned by the caller.
func resolvePrior(prior []float64, labels int) (multichoice.Prior, error) {
	if prior == nil {
		return multichoice.UniformPrior(labels), nil
	}
	p := multichoice.Prior(append([]float64(nil), prior...))
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p) != labels {
		return nil, fmt.Errorf("%w: prior has %d labels, pool %d", multichoice.ErrArity, len(p), labels)
	}
	return p, nil
}

// multiSelectionKey identifies one cacheable multi-choice selection: the
// pool name and the exact matrix-state signature, plus every parameter
// the search depends on (including the full prior vector).
type multiSelectionKey struct {
	Pool      string
	Signature string
	Strategy  string
	Budget    float64
	Buckets   int
	Seed      int64
	Prior     multichoice.Prior
}

// String renders the canonical cache key. The "multi|" prefix keeps the
// key space disjoint from the binary selection keys sharing the cache.
func (k multiSelectionKey) String() string {
	var b strings.Builder
	b.WriteString("multi|")
	b.WriteString(k.Pool)
	b.WriteByte('|')
	b.WriteString(k.Signature)
	b.WriteByte('|')
	b.WriteString(k.Strategy)
	b.WriteString("|b=")
	b.WriteString(strconv.FormatUint(math.Float64bits(k.Budget), 16))
	b.WriteString("|k=")
	b.WriteString(strconv.Itoa(k.Buckets))
	b.WriteString("|s=")
	b.WriteString(strconv.FormatInt(k.Seed, 10))
	b.WriteString("|p=")
	for _, v := range k.Prior {
		b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
		b.WriteByte(',')
	}
	return b.String()
}

// multiStrategy maps a wire strategy name to the multi-choice selection
// machinery. Every selector is deterministic given (pool, budget, prior,
// buckets, seed), which is what makes the cache sound; seeded reports
// whether the search consumes the seed (the cache key zeroes it
// otherwise, so seed-independent strategies share one entry).
func multiStrategy(strategy string) (name string, seeded bool, err error) {
	switch strategy {
	case "", "anneal":
		return "anneal", true, nil
	case "greedy":
		return "greedy", false, nil
	case "exhaustive":
		return "exhaustive", false, nil
	default:
		return "", false, fmt.Errorf("server: unknown strategy %q (want anneal, greedy or exhaustive)", strategy)
	}
}

// selectMulti serves one multi-choice selection: cache lookup on the
// snapshot signature, then compute-and-fill on miss. The selection runs
// on the immutable snapshot, outside any lock.
func (s *Server) selectMulti(ctx context.Context, poolName string, req MultiSelectRequest) (MultiSelectResponse, error) {
	if req.Budget < 0 || req.Budget != req.Budget {
		return MultiSelectResponse{}, fmt.Errorf("server: bad budget %v", req.Budget)
	}
	if req.Buckets < 0 {
		return MultiSelectResponse{}, fmt.Errorf("server: negative buckets %d", req.Buckets)
	}
	if req.Buckets == 0 {
		// Normalize to the resolved default before keying, like the other
		// cache-key parameters: buckets 0 and the explicit default are the
		// same computation and must share one cache entry.
		req.Buckets = multichoice.DefaultEstimateBuckets
	}
	strategyName, seeded, err := multiStrategy(req.Strategy)
	if err != nil {
		return MultiSelectResponse{}, err
	}
	seed := s.cfg.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	pool, ids, sig, labels, err := s.multi.Snapshot(poolName, req.WorkerIDs)
	if err != nil {
		return MultiSelectResponse{}, err
	}
	prior, err := resolvePrior(req.Prior, labels)
	if err != nil {
		return MultiSelectResponse{}, err
	}
	keySeed := seed
	if !seeded {
		keySeed = 0
	}
	key := multiSelectionKey{
		Pool: poolName, Signature: sig, Strategy: strategyName,
		Budget: req.Budget, Buckets: req.Buckets, Seed: keySeed, Prior: prior,
	}
	tr := obs.TraceFrom(ctx)
	cacheSpan := tr.Begin(obs.StageCache)
	res, hit := s.cache.GetMulti(key)
	cacheSpan.End()
	if hit {
		res.Cached = true
		return res, nil
	}
	obj := multichoice.EstimateObjective(req.Buckets)
	start := time.Now()
	var result multichoice.SelectionResult
	switch strategyName {
	case "anneal":
		result, err = multichoice.SelectAnnealing(pool, req.Budget, prior, obj, seed)
	case "greedy":
		result, err = multichoice.GreedyByInformativeness(pool, req.Budget, prior, obj)
	case "exhaustive":
		result, err = multichoice.SelectExhaustive(pool, req.Budget, prior, obj)
	}
	if err != nil {
		return MultiSelectResponse{}, err
	}
	tr.Add(obs.StageEval, start, time.Since(start))
	s.metrics.SelectionComputed(time.Since(start))
	res = MultiSelectResponse{
		Pool:        poolName,
		Labels:      labels,
		Jury:        make([]MultiJuryMember, len(result.Indices)),
		JQ:          result.JQ,
		Cost:        result.Cost,
		Budget:      req.Budget,
		Prior:       prior,
		Strategy:    strategyName,
		Evaluations: result.Evaluations,
		Signature:   sig,
	}
	for i, idx := range result.Indices {
		res.Jury[i] = MultiJuryMember{
			ID:              ids[idx],
			Cost:            pool[idx].Cost,
			Informativeness: multichoice.InformativenessScore(pool[idx].Confusion),
		}
	}
	s.cache.PutMulti(key, res)
	return res, nil
}

func (s *Server) handleMultiSelect(w http.ResponseWriter, r *http.Request) {
	var req MultiSelectRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	res, err := s.selectMulti(r.Context(), r.PathValue("pool"), req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, res)
}

// handleMultiJQ computes the Jury Quality of an explicit jury under the
// optimal (Bayesian) strategy — the JQ-estimate endpoint. Uncached: the
// computation is a single evaluation, not a search.
func (s *Server) handleMultiJQ(w http.ResponseWriter, r *http.Request) {
	var req MultiJQRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if len(req.WorkerIDs) == 0 {
		writeError(w, r, errors.New("server: no worker ids in request"))
		return
	}
	if req.Buckets < 0 {
		writeError(w, r, fmt.Errorf("server: negative buckets %d", req.Buckets))
		return
	}
	poolName := r.PathValue("pool")
	pool, ids, sig, labels, err := s.multi.Snapshot(poolName, req.WorkerIDs)
	if err != nil {
		writeError(w, r, err)
		return
	}
	prior, err := resolvePrior(req.Prior, labels)
	if err != nil {
		writeError(w, r, err)
		return
	}
	method := "estimate"
	var jq float64
	if req.Exact {
		method = "exact"
		jq, err = multichoice.ExactBV(pool, prior)
	} else {
		jq, err = multichoice.EstimateBV(pool, prior, req.Buckets)
	}
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, MultiJQResponse{
		Pool:      poolName,
		Labels:    labels,
		WorkerIDs: ids,
		JQ:        jq,
		Prior:     prior,
		Method:    method,
		Signature: sig,
	})
}

// PreloadMulti creates a multi-choice pool at daemon startup
// (-multi-pool). On a durable server the creation is journaled like any
// other mutation, so a preloaded pool also survives restarts;
// re-preloading the same file into a recovered registry fails with
// ErrPoolExists, which the daemon treats as "already recovered" and
// skips.
func (s *Server) PreloadMulti(req MultiCreateRequest) error {
	defer s.mutationGuard()()
	_, err := s.multi.CreatePool(context.Background(), req.Name, req.Labels, req.Workers, s.cfg.PriorStrength)
	return err
}

// MultiRegistry exposes the multi-choice registry (used by the daemon
// for preloading and by tests).
func (s *Server) MultiRegistry() *MultiRegistry { return s.multi }
