package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/wal"
)

// Durability. With Config.DataDir set, every registry and session
// mutation is journaled to a write-ahead log (internal/wal) before it is
// applied in memory — validation runs first, then the record reserves its
// LSN under the same lock that orders the mutation, then the mutation is
// applied, so the WAL order and the in-memory order are identical. The
// journal is two-phase: the append (LSN reservation) happens under the
// registry lock and returns a commit, and the handler acknowledges only
// after the commit reports the record durable — under group commit the
// commit waits on the shared flush watermark with the registry lock
// released, so independent registries, sessions and pools share one
// fsync. A failed reservation changes nothing; a failed commit leaves the
// mutation applied but unacknowledged and flips the server into degraded
// read-only mode (the record never reached stable storage, so a restart
// recovers exactly the acknowledged prefix). Recovery (Open) loads the
// newest snapshot, replays the WAL tail through the same Apply code paths
// the snapshot state was built from, and resumes journaling; because
// replay is deterministic, a recovered registry carries bit-identical
// posteriors and therefore produces bit-identical pool signatures — the
// selection cache (which starts empty after a restart) refills under
// exactly the keys the pre-crash process was using.

// RecordType tags one WAL record.
type RecordType string

// The journaled mutation types.
const (
	RecRegister      RecordType = "register"
	RecUpdate        RecordType = "update"
	RecRemove        RecordType = "remove"
	RecIngest        RecordType = "ingest"
	RecSessionOpen   RecordType = "session-open"
	RecSessionVote   RecordType = "session-vote"
	RecSessionBudget RecordType = "session-budget"
	RecSessionClose  RecordType = "session-close"
	RecSessionReap   RecordType = "session-reap"
	RecMultiCreate   RecordType = "multi-create"
	RecMultiRegister RecordType = "multi-register"
	RecMultiIngest   RecordType = "multi-ingest"
	RecMultiDrop     RecordType = "multi-drop"
	// RecEpoch opens a new primary epoch: the first record a promoted
	// follower writes. It carries its own LSN (StartLSN) so the epoch
	// table replays self-contained from any snapshot+tail combination.
	RecEpoch RecordType = "epoch"
)

// Record is one durable mutation, the unit of WAL replay. Every input a
// mutation depends on is captured in the record itself (the resolved
// prior strength, the voting worker's quality at ingest time, the session
// id counter), so replay needs no environment and reconstructs state
// bit-identically regardless of configuration or clock.
type Record struct {
	T RecordType `json:"t"`
	// Key is the client-generated idempotency key of a keyed ingest
	// (RecIngest, RecMultiIngest); "" for unkeyed mutations. Dedup runs
	// before journaling, so a key appears in the log at most once; replay
	// re-adds it to the dedup table, which is what makes exactly-once
	// survive crash recovery.
	Key string `json:"key,omitempty"`
	// Specs carries the registered (RecRegister) or replacement
	// (RecUpdate, single element) worker specs.
	Specs []WorkerSpec `json:"specs,omitempty"`
	// Strength is the resolved default prior strength behind Specs.
	Strength float64 `json:"strength,omitempty"`
	// WorkerID names the removed worker (RecRemove).
	WorkerID string `json:"worker_id,omitempty"`
	// Events carries an ingested vote batch (RecIngest).
	Events []VoteEvent `json:"events,omitempty"`
	// Session carries the session-record payload (RecSession*).
	Session *SessionRecord `json:"session,omitempty"`
	// Multi carries the multi-choice registry payload (RecMulti*).
	Multi *MultiRecord `json:"multi,omitempty"`
	// Epoch and StartLSN carry a promotion (RecEpoch): the new epoch
	// number and the LSN of this record itself.
	Epoch    uint64 `json:"epoch,omitempty"`
	StartLSN uint64 `json:"start_lsn,omitempty"`
}

// MultiRecord is the multi-choice-mutation payload of a Record.
type MultiRecord struct {
	// Pool names the pool acted on (all types).
	Pool string `json:"pool"`
	// Labels is the created pool's resolved label count (RecMultiCreate).
	Labels int `json:"labels,omitempty"`
	// Specs carries the registered worker specs (RecMultiCreate,
	// RecMultiRegister) and Strength the resolved default prior strength
	// behind them, so replay needs no configuration.
	Specs    []MultiWorkerSpec `json:"specs,omitempty"`
	Strength float64           `json:"strength,omitempty"`
	// Events carries an ingested multi-label vote batch (RecMultiIngest).
	Events []MultiVoteEvent `json:"events,omitempty"`
}

// SessionRecord is the session-mutation payload of a Record.
type SessionRecord struct {
	// ID is the session acted on (all types but reap).
	ID string `json:"id,omitempty"`
	// Next is the id counter value the open consumed (RecSessionOpen).
	Next uint64 `json:"next,omitempty"`
	// Config is the opened session's stopping rule (RecSessionOpen).
	Config *online.Config `json:"config,omitempty"`
	// Quality and Cost are the voting worker's registry state at ingest
	// time and Vote the answer (RecSessionVote) — captured in the record
	// so replay does not depend on the registry's replay position.
	Quality float64 `json:"quality,omitempty"`
	Cost    float64 `json:"cost,omitempty"`
	Vote    int     `json:"vote,omitempty"`
	// Reaped lists the sessions dropped by one reap pass (RecSessionReap).
	Reaped []string `json:"reaped,omitempty"`
}

// serverState is the JSON snapshot document: the full durable state of a
// Server as of one WAL position.
type serverState struct {
	Registry registryState      `json:"registry"`
	Sessions sessionsState      `json:"sessions"`
	Multi    multiRegistryState `json:"multi"`
	// Epochs is the promotion history (empty on a never-promoted
	// cluster; omitted then, so pre-failover snapshots replay unchanged).
	Epochs []EpochEntry `json:"epochs,omitempty"`
}

// multiRegistryState serializes the multi-choice registry, pools in
// creation order.
type multiRegistryState struct {
	Gen   uint64             `json:"gen"`
	Pools []multiPoolPersist `json:"pools,omitempty"`
	// Idem is the ingest idempotency-key table in insertion order.
	Idem []string `json:"idem,omitempty"`
}

// multiPoolPersist is one pool's full state.
type multiPoolPersist struct {
	Name    string               `json:"name"`
	Labels  int                  `json:"labels"`
	Workers []multiWorkerPersist `json:"workers"`
}

// multiWorkerPersist is one multi-choice worker's full Dirichlet state.
// Both the pseudo-counts and the derived confusion matrix travel in the
// snapshot (Go's JSON encoder round-trips float64s exactly), so recovery
// is bit-identical without re-deriving rows.
type multiWorkerPersist struct {
	ID        string      `json:"id"`
	Cost      float64     `json:"cost"`
	Counts    [][]float64 `json:"counts"`
	Confusion [][]float64 `json:"confusion"`
	Votes     int         `json:"votes"`
	Version   int64       `json:"version"`
}

// registryState serializes the worker registry in registration order.
type registryState struct {
	Gen     uint64          `json:"gen"`
	Workers []workerPersist `json:"workers"`
	// Idem is the ingest idempotency-key table in insertion order.
	Idem []string `json:"idem,omitempty"`
}

// workerPersist is one worker's full posterior state. Go's JSON encoder
// emits float64s with round-trip precision, so A/B/Quality/Cost survive
// the snapshot bit-identically.
type workerPersist struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	A       float64 `json:"a"`
	B       float64 `json:"b"`
	Votes   int     `json:"votes"`
	Correct int     `json:"correct"`
	Version int64   `json:"version"`
}

// sessionsState serializes the live sessions, ordered by id.
type sessionsState struct {
	Next     uint64           `json:"next"`
	Sessions []sessionPersist `json:"sessions,omitempty"`
}

type sessionPersist struct {
	ID    string                 `json:"id"`
	State online.SessionSnapshot `json:"state"`
}

// Persistence binds a Server to its WAL and snapshot files.
type Persistence struct {
	dir string
	fs  wal.FS
	log *wal.Log
	// freeze orders mutations against snapshot capture: every mutating
	// request path holds it shared for the whole journal-then-apply
	// critical section (Server.mutationGuard), and snapshot capture holds
	// it exclusively, so a snapshot sees either all or none of each
	// mutation and its LSN watermark is exact.
	freeze sync.RWMutex

	mu           sync.Mutex // guards the fields below
	fsync        bool
	group        bool
	haveSnapshot bool
	lastSnapshot wal.LSN
	snapshots    uint64
	recovery     RecoveryStatus
	recoveredAt  time.Time
}

// Open builds a Server like New and, when cfg.DataDir is set, makes it
// durable: recover state from the newest snapshot plus the WAL tail
// (truncating a torn trailing record), then journal every subsequent
// mutation. With an empty DataDir it is exactly New.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = wal.OSFS()
	}
	p := &Persistence{dir: cfg.DataDir, fs: fsys, fsync: cfg.Fsync, group: cfg.Fsync && cfg.GroupCommit}
	lsn, payload, found, err := wal.LatestSnapshotFS(fsys, cfg.DataDir)
	if err != nil {
		return nil, fmt.Errorf("server: load snapshot: %w", err)
	}
	from := wal.LSN(0)
	if found {
		var st serverState
		if err := json.Unmarshal(payload, &st); err != nil {
			return nil, fmt.Errorf("server: snapshot at lsn %d: %w", lsn, err)
		}
		if err := s.registry.load(st.Registry); err != nil {
			return nil, fmt.Errorf("server: snapshot at lsn %d: %w", lsn, err)
		}
		if err := s.sessions.load(st.Sessions); err != nil {
			return nil, fmt.Errorf("server: snapshot at lsn %d: %w", lsn, err)
		}
		if err := s.multi.load(st.Multi); err != nil {
			return nil, fmt.Errorf("server: snapshot at lsn %d: %w", lsn, err)
		}
		if err := s.epochs.load(st.Epochs); err != nil {
			return nil, fmt.Errorf("server: snapshot at lsn %d: %w", lsn, err)
		}
		from = lsn
		p.haveSnapshot = true
		p.lastSnapshot = lsn
		p.recovery.SnapshotLSN = uint64(lsn)
	}
	log, info, err := wal.Open(cfg.DataDir, wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Fsync:        cfg.Fsync,
		// The resolved fsys, not the raw cfg.FS: snapshots already fall
		// back to OSFS, and the log must never land on a different
		// filesystem than them.
		FS:            fsys,
		GroupCommit:   cfg.GroupCommit,
		MaxBatchBytes: cfg.MaxBatchBytes,
		OnFlush:       func(records int) { s.metrics.WALBatch(records) },
	})
	if err != nil {
		return nil, fmt.Errorf("server: open wal: %w", err)
	}
	if info.NextLSN < from+1 {
		log.Close()
		return nil, fmt.Errorf("%w: snapshot covers lsn %d but the log ends at %d",
			wal.ErrCorrupt, from, info.NextLSN-1)
	}
	p.recovery.TornBytesTruncated = info.TornBytes
	replayErr := log.Replay(from+1, func(l wal.LSN, payload []byte) error {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("record at lsn %d: %w", l, err)
		}
		if err := s.applyRecord(&rec); err != nil {
			return fmt.Errorf("record at lsn %d: %w", l, err)
		}
		p.recovery.RecordsReplayed++
		return nil
	})
	if replayErr != nil {
		log.Close()
		return nil, fmt.Errorf("server: replay: %w", replayErr)
	}
	p.log = log
	p.recovery.WorkersRestored = s.registry.Len()
	p.recovery.SessionsRestored = s.sessions.Len()
	p.recovery.MultiPoolsRestored = s.multi.Len()
	p.recoveredAt = time.Now()
	journal := func(ctx context.Context, rec *Record) (func() error, error) {
		tr := obs.TraceFrom(ctx)
		encSpan := tr.Begin(obs.StageWALEncode)
		payload, err := json.Marshal(rec)
		encSpan.End()
		if err != nil {
			return nil, fmt.Errorf("server: journal encode: %w", err)
		}
		appendStart := time.Now()
		pend, err := log.Begin(payload)
		appendDur := time.Since(appendStart)
		if err != nil {
			// The record is not durable and the mutation must not be
			// applied; the log is now poisoned (wal.ErrFailed is sticky),
			// so the server transitions to degraded read-only mode: this
			// and every later mutation answers 503 while reads keep
			// serving. The span is error-tagged so the exact request that
			// poisoned the log stays visible in /debug/traces.
			tr.AddErr(obs.StageWALAppend, appendStart, appendDur)
			s.metrics.WALError()
			s.enterDegraded(err)
			return nil, fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		// Quorum gating rides on the commit: it runs after the mutator
		// releases its ordering lock, so waiting for follower
		// confirmations there blocks only the acknowledging request.
		lsn := pend.LSN()
		if pend.Done() {
			// Per-record path: the append (and under -fsync, its flush)
			// completed inside Begin. The fsync runs at the tail of the
			// append interval, so its span starts where the write ends.
			fsync := pend.FsyncDuration()
			tr.Add(obs.StageWALAppend, appendStart, appendDur-fsync)
			if fsync > 0 {
				tr.Add(obs.StageWALFsync, appendStart.Add(appendDur-fsync), fsync)
			}
			if cfg.Quorum > 1 {
				return func() error { return s.quorumWait(lsn) }, nil
			}
			return commitNoop, nil
		}
		// Group commit: the LSN is reserved and the record staged. The
		// commit — run by the mutator after it releases its ordering lock —
		// blocks until the shared flush watermark covers the record.
		tr.Add(obs.StageWALAppend, appendStart, appendDur)
		commit := func() error {
			flushStart := time.Now()
			err := pend.Wait()
			flushDur := time.Since(flushStart)
			if err != nil {
				// Applied in memory but not durable: degrade. The record
				// never reached stable storage, so recovery serves exactly
				// the acknowledged prefix.
				tr.AddErr(obs.StageWALFlush, flushStart, flushDur)
				s.metrics.WALError()
				s.enterDegraded(err)
				return fmt.Errorf("%w: %w", ErrDegraded, err)
			}
			tr.Add(obs.StageWALFlush, flushStart, flushDur)
			if fsync := pend.FsyncDuration(); fsync > 0 {
				tr.Add(obs.StageWALFsync, flushStart, fsync)
			}
			if cfg.Quorum > 1 {
				return s.quorumWait(lsn)
			}
			return nil
		}
		return commit, nil
	}
	// barrier is the duplicate-ack durability wait: a keyed-ingest retry
	// may only re-acknowledge once the original record it dedups against
	// is itself on stable storage.
	barrier := func() error {
		if err := log.WaitDurable(); err != nil {
			s.metrics.WALError()
			s.enterDegraded(err)
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		if cfg.Quorum > 1 {
			// A duplicate re-ack vouches for the original record, so it too
			// must be quorum-confirmed. The whole-log watermark is a
			// conservative stand-in for the original's LSN.
			return s.quorumWait(log.NextLSN() - 1)
		}
		return nil
	}
	s.registry.journal = journal
	s.registry.barrier = barrier
	s.sessions.journal = journal
	s.multi.journal = journal
	s.multi.barrier = barrier
	// A durable fence outlives the process: a fenced ex-primary that
	// restarts is still fenced until it rejoins and replays the epoch
	// that outranks the fence.
	if doc, ok, err := loadFence(fsys, cfg.DataDir); err != nil {
		log.Close()
		return nil, fmt.Errorf("server: load fence: %w", err)
	} else if ok {
		s.fenceMu.Lock()
		s.fenceEpoch = doc.Epoch
		s.fencePrimary = doc.Primary
		s.fenceMu.Unlock()
	}
	s.persist = p
	return s, nil
}

// commitNoop is the commit of a journaled mutation that is already
// durable when its reservation returns (the per-record WAL path).
func commitNoop() error { return nil }

// applyRecord replays one journaled record — the recovery path shared by
// WAL replay and (via the walltest harness) reference replays.
func (s *Server) applyRecord(rec *Record) error {
	switch rec.T {
	case RecRegister, RecUpdate, RecRemove, RecIngest:
		return s.registry.Apply(rec)
	case RecSessionOpen, RecSessionVote, RecSessionBudget, RecSessionClose, RecSessionReap:
		return s.sessions.Apply(rec)
	case RecMultiCreate, RecMultiRegister, RecMultiIngest, RecMultiDrop:
		return s.multi.Apply(rec)
	case RecEpoch:
		return s.epochs.add(rec.Epoch, wal.LSN(rec.StartLSN))
	default:
		return fmt.Errorf("server: unknown record type %q", rec.T)
	}
}

// mutationGuard blocks snapshot capture for the duration of one mutation
// (journal append plus in-memory apply). Mutating request paths call it
// before touching the registry or sessions and release afterward; with
// persistence disabled it is free.
func (s *Server) mutationGuard() func() {
	if s.persist == nil {
		return func() {}
	}
	s.persist.freeze.RLock()
	return s.persist.freeze.RUnlock
}

// SnapshotNow captures a consistent snapshot of the full server state,
// installs it atomically, and truncates WAL segments the snapshot covers.
// It is a no-op without persistence or when nothing changed since the
// last snapshot. A failure is counted in juryd_snapshot_errors_total
// but is NOT degrading: the WAL still holds every mutation, the
// previous snapshot (if any) is still installed, and a later attempt
// can succeed — the caller should log and keep serving.
func (s *Server) SnapshotNow() error {
	err := s.snapshotNow()
	if err != nil {
		s.metrics.SnapshotError()
	}
	return err
}

func (s *Server) snapshotNow() error {
	p := s.persist
	if p == nil {
		return nil
	}
	p.freeze.Lock()
	state := s.captureState()
	upTo := p.log.NextLSN() - 1
	p.freeze.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.haveSnapshot && upTo == p.lastSnapshot {
		return nil
	}
	if !p.haveSnapshot && upTo == 0 {
		return nil // nothing ever journaled: the empty state needs no file
	}
	payload, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("server: snapshot encode: %w", err)
	}
	if err := wal.WriteSnapshotFS(p.fs, p.dir, upTo, payload); err != nil {
		return fmt.Errorf("server: snapshot write: %w", err)
	}
	p.haveSnapshot = true
	p.lastSnapshot = upTo
	p.snapshots++
	if _, err := p.log.TruncateBefore(upTo + 1); err != nil {
		return fmt.Errorf("server: wal truncate: %w", err)
	}
	return nil
}

// ClosePersistence syncs and closes the WAL. Mutations after it fail;
// call it only on shutdown (after a final SnapshotNow, if desired). A
// non-nil error means the close was dirty — the log was poisoned or the
// final flush failed, so an unsynced tail may not have reached stable
// storage — and the process should exit non-zero after reporting it.
func (s *Server) ClosePersistence() error {
	if s.persist == nil {
		return nil
	}
	return s.persist.log.Close()
}

// PersistenceStatus reports the durability state for /debug/persistence.
func (s *Server) PersistenceStatus() PersistenceStatus {
	p := s.persist
	if p == nil {
		return PersistenceStatus{Enabled: false}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rec := p.recovery
	fenced, fenceEpoch, fencePrimary := s.FencedState()
	return PersistenceStatus{
		Enabled:          true,
		DataDir:          p.dir,
		Fsync:            p.fsync,
		GroupCommit:      p.group,
		NextLSN:          uint64(p.log.NextLSN()),
		DurableLSN:       uint64(p.log.Synced()),
		Segments:         p.log.Segments(),
		LastSnapshotLSN:  uint64(p.lastSnapshot),
		SnapshotsWritten: p.snapshots,
		RecoveredAt:      p.recoveredAt.UTC().Format(time.RFC3339Nano),
		Recovery:         &rec,
		StateSHA256:      s.stateSHA(),
		Repl:             s.ReplStatus(),
		Epoch:            s.epochs.current(),
		Quorum:           s.cfg.Quorum,
		Fenced:           fenced,
		FenceEpoch:       fenceEpoch,
		FencePrimary:     fencePrimary,
	}
}

// captureState assembles the full durable state (the snapshot document).
// Callers that need an exact LSN watermark hold p.freeze exclusively
// around it; read-only diagnostics may call it bare.
func (s *Server) captureState() serverState {
	return serverState{
		Registry: s.registry.persistState(),
		Sessions: s.sessions.persistState(),
		Multi:    s.multi.persistState(),
		Epochs:   s.epochs.snapshot(),
	}
}

// DebugState marshals the full durable state (the snapshot document) of
// the server, persistence enabled or not — the bit-exact comparison
// surface used by the crash-recovery harness, the replication harness,
// and /debug tooling.
func (s *Server) DebugState() ([]byte, error) {
	return json.Marshal(s.captureState())
}

// sessionOrdinal extracts the numeric part of a session id ("s17" -> 17)
// for stable persist ordering; non-conforming ids sort last, lexically.
func sessionOrdinal(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// sessionIDLess orders session ids numerically (s2 before s10).
func sessionIDLess(a, b string) bool {
	na, oka := sessionOrdinal(a)
	nb, okb := sessionOrdinal(b)
	if oka && okb {
		return na < nb
	}
	if oka != okb {
		return oka
	}
	return a < b
}

// sortSessionIDs orders ids numerically (s2 before s10).
func sortSessionIDs(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return sessionIDLess(ids[i], ids[j]) })
}
