package server

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
)

func fp(v float64) *float64 { return &v }

// colorPoolRequest is the standard 3-label test pool: one symmetric
// worker, one explicit-matrix worker, one weak symmetric worker.
func colorPoolRequest() MultiCreateRequest {
	return MultiCreateRequest{
		Name:   "colors",
		Labels: 3,
		Workers: []MultiWorkerSpec{
			{ID: "m0", Quality: fp(0.8), Cost: 2},
			{ID: "m1", Confusion: [][]float64{
				{0.9, 0.05, 0.05}, {0.1, 0.8, 0.1}, {0.2, 0.2, 0.6},
			}, Cost: 3},
			{ID: "m2", Quality: fp(0.6), Cost: 1},
		},
	}
}

func newMultiTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/multi/pools", colorPoolRequest())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create pool: %d %s", resp.StatusCode, raw)
	}
	return s, ts
}

func TestMultiPoolHTTPLifecycle(t *testing.T) {
	_, ts := newMultiTestServer(t)

	// Listing shows the pool with its label count and signature.
	resp, err := http.Get(ts.URL + "/v1/multi/pools")
	if err != nil {
		t.Fatal(err)
	}
	var pools MultiPoolsResponse
	raw := readBody(t, resp)
	mustDecode(t, raw, &pools)
	if len(pools.Pools) != 1 || pools.Pools[0].Labels != 3 ||
		pools.Pools[0].Workers != 3 || pools.Pools[0].Signature == "" {
		t.Fatalf("pools = %+v", pools)
	}

	// Pool detail: posterior-mean matrices and informativeness scores.
	resp, err = http.Get(ts.URL + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	var info MultiPoolInfo
	mustDecode(t, readBody(t, resp), &info)
	if len(info.Workers) != 3 || info.Workers[1].ID != "m1" {
		t.Fatalf("pool info = %+v", info)
	}
	if got := info.Workers[0].Confusion[0][0]; got != 0.8 {
		t.Fatalf("m0 diagonal = %v, want 0.8", got)
	}
	if info.Workers[2].Informativeness >= info.Workers[0].Informativeness {
		t.Fatalf("weak worker not ranked less informative: %+v", info.Workers)
	}

	// Duplicate pool creation is a 409; unknown pool a 404.
	resp, _ = postJSON(t, ts.URL+"/v1/multi/pools", colorPoolRequest())
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate pool: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/multi/pools/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost pool: %d", resp.StatusCode)
	}

	// Late registration grows the pool and changes the signature.
	before := pools.Pools[0].Signature
	var reg MultiRegisterResponse
	resp, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/workers",
		MultiRegisterRequest{Workers: []MultiWorkerSpec{{ID: "m3", Quality: fp(0.7), Cost: 2}}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &reg)
	if reg.PoolSize != 4 || reg.Signature == before {
		t.Fatalf("register response = %+v (before %s)", reg, before)
	}

	// A worker with the wrong label count is rejected whole.
	resp, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/workers",
		MultiRegisterRequest{Workers: []MultiWorkerSpec{
			{ID: "bad", Confusion: [][]float64{{0.9, 0.1}, {0.2, 0.8}}, Cost: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("label mismatch: %d %s", resp.StatusCode, raw)
	}

	// Specs must set exactly one of confusion and quality.
	resp, _ = postJSON(t, ts.URL+"/v1/multi/pools",
		MultiCreateRequest{Name: "bad", Labels: 2,
			Workers: []MultiWorkerSpec{{ID: "x", Cost: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("spec without matrix or quality: %d", resp.StatusCode)
	}

	// Drop, then 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/multi/pools/colors", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drop pool: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/multi/pools/colors")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dropped pool still readable: %d", resp.StatusCode)
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMultiIngestDirichletPosterior pins the posterior math: registering
// a symmetric matrix with strength s seeds each row with s pseudo-counts
// distributed as the row, and each graded event adds one count to the
// (truth, vote) cell before re-normalizing that row — other rows are
// untouched.
func TestMultiIngestDirichletPosterior(t *testing.T) {
	r := NewMultiRegistry()
	if _, err := r.CreatePool(context.Background(), "p", 3, []MultiWorkerSpec{
		{ID: "w", Quality: fp(0.8), Cost: 1},
	}, 8); err != nil {
		t.Fatal(err)
	}
	updated, sig, err := r.Ingest(context.Background(), "p", []MultiVoteEvent{{WorkerID: "w", Truth: 0, Vote: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sig == "" || len(updated) != 1 || updated[0].Votes != 1 {
		t.Fatalf("ingest = %+v, sig %q", updated, sig)
	}
	m := updated[0].Confusion
	// Row 0 was [0.8, 0.1, 0.1]·8; the event adds one count to cell
	// (0, 1) and the row is re-normalized. The expectation replays the
	// exact float operations (seed counts, +1, ordered row sum, divide)
	// so the comparison is bit-exact.
	q, strength := 0.8, 8.0 // variables: constant folding would be exact where the runtime is not
	off := (1 - q) / 2
	counts := []float64{q * strength, off*strength + 1, off * strength}
	rowSum := 0.0
	for _, c := range counts {
		rowSum += c
	}
	for k, c := range counts {
		if want := c / rowSum; math.Float64bits(m[0][k]) != math.Float64bits(want) {
			t.Fatalf("row 0 = %v, want cell %d = %v", m[0], k, want)
		}
	}
	// Rows 1 and 2 still sum to 1 and keep the symmetric shape.
	for j := 1; j < 3; j++ {
		if m[j][j] != 0.8 {
			t.Fatalf("row %d drifted without evidence: %v", j, m[j])
		}
	}
	// Ingest with out-of-range labels or unknown workers is rejected
	// whole, leaving the version untouched.
	if _, _, err := r.Ingest(context.Background(), "p", []MultiVoteEvent{{WorkerID: "w", Truth: 3, Vote: 0}}); err == nil {
		t.Fatal("out-of-range truth accepted")
	}
	if _, _, err := r.Ingest(context.Background(), "p", []MultiVoteEvent{{WorkerID: "ghost", Truth: 0, Vote: 0}}); err == nil {
		t.Fatal("unknown worker accepted")
	}
	info, _ := r.Get("p")
	if info.Workers[0].Version != 2 {
		t.Fatalf("failed ingests bumped version: %+v", info.Workers[0])
	}
}

// TestMultiSelectCacheInvalidationOnDrift is the consistency-model test
// for the multi arm: repeated selections hit the cache, and a single
// graded vote event — which drifts one Dirichlet row — changes the
// full-matrix signature and structurally invalidates the cached jury.
func TestMultiSelectCacheInvalidationOnDrift(t *testing.T) {
	_, ts := newMultiTestServer(t)

	var first MultiSelectResponse
	resp, raw := postJSON(t, ts.URL+"/v1/multi/pools/colors/select", MultiSelectRequest{Budget: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &first)
	if first.Cached || len(first.Jury) == 0 || first.Cost > 5 || first.Labels != 3 {
		t.Fatalf("first select = %+v", first)
	}

	var second MultiSelectResponse
	_, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/select", MultiSelectRequest{Budget: 5})
	mustDecode(t, raw, &second)
	if !second.Cached {
		t.Fatal("repeated multi selection not served from cache")
	}
	if math.Float64bits(second.JQ) != math.Float64bits(first.JQ) {
		t.Fatalf("cached JQ differs: %v vs %v", second.JQ, first.JQ)
	}
	// Buckets 0 (the default) and the explicit default are the same
	// computation and must share one cache entry.
	var explicit MultiSelectResponse
	_, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
		MultiSelectRequest{Budget: 5, Buckets: 50})
	mustDecode(t, raw, &explicit)
	if !explicit.Cached {
		t.Fatal("explicit default buckets missed the default-keyed cache entry")
	}

	// One graded event drifts m0's row 1: the signature must change and
	// the cached jury must become unreachable.
	var ing MultiIngestResponse
	resp, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/votes",
		MultiIngestRequest{Events: []MultiVoteEvent{{WorkerID: "m0", Truth: 1, Vote: 2}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &ing)
	if ing.Signature == first.Signature {
		t.Fatal("pool signature unchanged after posterior drift")
	}

	var third MultiSelectResponse
	_, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/select", MultiSelectRequest{Budget: 5})
	mustDecode(t, raw, &third)
	if third.Cached {
		t.Fatal("selection after drift served from stale cache")
	}
	if third.Signature != ing.Signature {
		t.Fatalf("selection signature %s != post-ingest signature %s", third.Signature, ing.Signature)
	}
}

func TestMultiSelectStrategiesAndJQ(t *testing.T) {
	_, ts := newMultiTestServer(t)

	jqs := map[string]float64{}
	for _, strategy := range []string{"anneal", "greedy", "exhaustive"} {
		var res MultiSelectResponse
		resp, raw := postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
			MultiSelectRequest{Budget: 6, Strategy: strategy})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select %s: %d %s", strategy, resp.StatusCode, raw)
		}
		mustDecode(t, raw, &res)
		if res.Strategy != strategy || res.Cost > 6 {
			t.Fatalf("select %s = %+v", strategy, res)
		}
		jqs[strategy] = res.JQ
	}
	// Annealing and exhaustive agree on this 3-worker pool.
	if math.Abs(jqs["anneal"]-jqs["exhaustive"]) > 1e-9 {
		t.Fatalf("anneal %v vs exhaustive %v", jqs["anneal"], jqs["exhaustive"])
	}
	resp, _ := postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
		MultiSelectRequest{Budget: 6, Strategy: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: %d", resp.StatusCode)
	}

	// Subset selection stays inside the subset.
	var sub MultiSelectResponse
	_, raw := postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
		MultiSelectRequest{Budget: 100, WorkerIDs: []string{"m0", "m2"}})
	mustDecode(t, raw, &sub)
	for _, m := range sub.Jury {
		if m.ID != "m0" && m.ID != "m2" {
			t.Fatalf("jury member outside subset: %+v", m)
		}
	}

	// A bad prior (wrong arity) is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
		MultiSelectRequest{Budget: 6, Prior: []float64{0.5, 0.5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad prior: %d", resp.StatusCode)
	}

	// JQ endpoint: the estimate of the full pool matches the selection's
	// JQ at unlimited budget, and the exact method agrees closely.
	var est, exact MultiJQResponse
	resp, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/jq",
		MultiJQRequest{WorkerIDs: []string{"m0", "m1", "m2"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jq: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &est)
	_, raw = postJSON(t, ts.URL+"/v1/multi/pools/colors/jq",
		MultiJQRequest{WorkerIDs: []string{"m0", "m1", "m2"}, Exact: true})
	mustDecode(t, raw, &exact)
	if est.Method != "estimate" || exact.Method != "exact" {
		t.Fatalf("methods = %q, %q", est.Method, exact.Method)
	}
	if math.Abs(est.JQ-exact.JQ) > 0.02 {
		t.Fatalf("estimate %v far from exact %v", est.JQ, exact.JQ)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/multi/pools/colors/jq", MultiJQRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty jq request: %d", resp.StatusCode)
	}
}

// TestMultiConcurrentIngestSelect races graded multi-label ingests
// against selections and JQ queries on one pool (run under -race in CI):
// every acknowledged event must land, and selections must never observe
// a torn matrix (each response's signature matches a state that existed).
func TestMultiConcurrentIngestSelect(t *testing.T) {
	s, ts := newMultiTestServer(t)

	const writers, events = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				id := fmt.Sprintf("m%d", w%3)
				resp, _ := postJSON(t, ts.URL+"/v1/multi/pools/colors/votes",
					MultiIngestRequest{Events: []MultiVoteEvent{
						{WorkerID: id, Truth: i % 3, Vote: (i + w) % 3}}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest: %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, raw := postJSON(t, ts.URL+"/v1/multi/pools/colors/select",
					MultiSelectRequest{Budget: float64(2 + i%5)})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("select: %d %s", resp.StatusCode, raw)
					return
				}
				resp, _ = postJSON(t, ts.URL+"/v1/multi/pools/colors/jq",
					MultiJQRequest{WorkerIDs: []string{"m0", "m1"}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("jq: %d", resp.StatusCode)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	info, err := s.MultiRegistry().Get("colors")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range info.Workers {
		total += w.Votes
		var sum float64
		for _, row := range w.Confusion {
			for _, v := range row {
				sum += v
			}
		}
		if math.Abs(sum-3) > 1e-9 {
			t.Fatalf("worker %s matrix rows no longer stochastic: %v", w.ID, w.Confusion)
		}
	}
	if total != writers*events {
		t.Fatalf("votes landed = %d, want %d", total, writers*events)
	}
}

// TestMultiDurableReplayBitExact drives multi mutations through a
// durable server, crashes it (no final snapshot), reopens, and asserts
// the recovered Dirichlet state — dump bytes and pool signature — is
// bit-identical.
func TestMultiDurableReplayBitExact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	cfg := Config{Alpha: 0.5, Seed: 1, DataDir: dir}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := colorPoolRequest()
	if err := s.PreloadMulti(req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.multi.Ingest(context.Background(), "colors", []MultiVoteEvent{
		{WorkerID: "m0", Truth: 0, Vote: 2},
		{WorkerID: "m1", Truth: 2, Vote: 2},
	}); err != nil {
		t.Fatal(err)
	}
	want, err := s.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	wantInfo, _ := s.multi.Get("colors")
	if err := s.ClosePersistence(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.ClosePersistence()
	got, err := r.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}
	gotInfo, err := r.multi.Get("colors")
	if err != nil {
		t.Fatal(err)
	}
	if gotInfo.Signature != wantInfo.Signature {
		t.Fatalf("recovered signature %q != %q", gotInfo.Signature, wantInfo.Signature)
	}
	if r.PersistenceStatus().Recovery.MultiPoolsRestored != 1 {
		t.Fatalf("recovery status = %+v", r.PersistenceStatus().Recovery)
	}
}

// TestMetricsLatencyHistograms: every served route exposes a Prometheus
// histogram with cumulative buckets, a sum, and a count equal to its
// request counter.
func TestMetricsLatencyHistograms(t *testing.T) {
	_, ts := newMultiTestServer(t)
	postJSON(t, ts.URL+"/v1/multi/pools/colors/select", MultiSelectRequest{Budget: 5})
	postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 5}) // 422: empty binary registry

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, resp))
	for _, want := range []string{
		`juryd_request_duration_seconds_bucket{route="POST /v1/multi/pools/{pool}/select",le="+Inf"} 1`,
		`juryd_request_duration_seconds_count{route="POST /v1/multi/pools/{pool}/select"} 1`,
		`juryd_request_duration_seconds_sum{route="POST /v1/multi/pools/{pool}/select"}`,
		`juryd_request_duration_seconds_bucket{route="POST /v1/select",le="+Inf"} 1`,
		`juryd_requests_total{route="POST /v1/multi/pools"} 1`,
		"juryd_multi_pools 1",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMultiCreateRejectsHugeLabelCounts: ℓ is capped (MaxLabels), so a
// single unauthenticated create request cannot allocate O(ℓ²) matrices
// and OOM the daemon — via explicit labels, the inferred path, or replay.
func TestMultiCreateRejectsHugeLabelCounts(t *testing.T) {
	_, ts := newMultiTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/multi/pools", MultiCreateRequest{
		Name: "huge", Labels: 50000,
		Workers: []MultiWorkerSpec{{ID: "a", Quality: fp(0.8), Cost: 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge labels: %d %s", resp.StatusCode, raw)
	}
	r := NewMultiRegistry()
	if err := r.Apply(&Record{T: RecMultiCreate, Multi: &MultiRecord{
		Pool: "huge", Labels: 50000, Strength: 8,
	}}); err == nil {
		t.Fatal("replay accepted a huge label count")
	}
}

// TestMultiLoadRejectsCorruptCounts: snapshots are plain JSON (no CRC),
// so load must validate the Dirichlet count matrices — a short, negative,
// or zero-sum row would otherwise recover cleanly and panic (or emit NaN
// rows) on the next ingest, poisoning the journaled log.
func TestMultiLoadRejectsCorruptCounts(t *testing.T) {
	good := func() multiPoolPersist {
		return multiPoolPersist{
			Name: "p", Labels: 2,
			Workers: []multiWorkerPersist{{
				ID: "w", Cost: 1,
				Counts:    [][]float64{{4, 1}, {1, 4}},
				Confusion: [][]float64{{0.8, 0.2}, {0.2, 0.8}},
				Votes:     0, Version: 1,
			}},
		}
	}
	load := func(mutate func(*multiPoolPersist)) error {
		pp := good()
		mutate(&pp)
		return NewMultiRegistry().load(multiRegistryState{Pools: []multiPoolPersist{pp}})
	}
	if err := load(func(*multiPoolPersist) {}); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := map[string]func(*multiPoolPersist){
		"short-counts-row":    func(p *multiPoolPersist) { p.Workers[0].Counts[0] = []float64{4} },
		"negative-count":      func(p *multiPoolPersist) { p.Workers[0].Counts[1][0] = -1 },
		"nan-count":           func(p *multiPoolPersist) { p.Workers[0].Counts[0][0] = math.NaN() },
		"zero-sum-row":        func(p *multiPoolPersist) { p.Workers[0].Counts[0] = []float64{0, 0} },
		"wrong-confusion-dim": func(p *multiPoolPersist) { p.Workers[0].Confusion = [][]float64{{1}} },
	}
	for name, mutate := range cases {
		if err := load(mutate); err == nil {
			t.Errorf("%s: corrupt snapshot recovered cleanly", name)
		}
	}
}
