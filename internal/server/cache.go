package server

import (
	"container/list"
	"math"
	"strconv"
	"sync"
)

// DefaultCacheSize is the selection cache's default entry capacity.
const DefaultCacheSize = 4096

// SelectionKey identifies one cacheable selection: the exact candidate
// pool state (its signature) plus every parameter the search depends on.
// Because the signature hashes the workers' posterior-mean qualities, a
// quality-drifting vote ingest changes the key — stale juries can never
// be returned, only recomputed.
type SelectionKey struct {
	Signature string
	Strategy  string
	Budget    float64
	Alpha     float64
	Seed      int64
}

// String renders the canonical cache key.
func (k SelectionKey) String() string {
	return k.Signature + "|" + k.Strategy +
		"|b=" + strconv.FormatUint(math.Float64bits(k.Budget), 16) +
		"|a=" + strconv.FormatUint(math.Float64bits(k.Alpha), 16) +
		"|s=" + strconv.FormatInt(k.Seed, 10)
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries, Capacity       int
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// SelectionCache is a bounded LRU cache of completed selections — both
// binary (SelectResponse) and multi-choice (MultiSelectResponse), whose
// key spaces are disjoint by construction. Keys embed the pool
// signature, so entries computed against superseded worker states become
// unreachable the moment a vote ingest (or any registry mutation)
// changes a quality, cost, or confusion-matrix entry; LRU eviction
// reclaims them. The cache is safe for concurrent use.
type SelectionCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	stats   CacheStats
}

type cacheEntry struct {
	key string
	res any // SelectResponse or MultiSelectResponse
}

// NewSelectionCache builds a cache holding up to capacity entries;
// capacity 0 selects DefaultCacheSize, negative capacity disables caching
// (every lookup misses).
func NewSelectionCache(capacity int) *SelectionCache {
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	return &SelectionCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get looks up a binary selection, promoting the entry on hit.
func (c *SelectionCache) Get(key SelectionKey) (SelectResponse, bool) {
	v, ok := c.lookup(key.String())
	if !ok {
		return SelectResponse{}, false
	}
	return v.(SelectResponse), true
}

// Put stores a completed binary selection.
func (c *SelectionCache) Put(key SelectionKey, res SelectResponse) {
	c.store(key.String(), res)
}

// GetMulti looks up a multi-choice selection, promoting the entry on hit.
func (c *SelectionCache) GetMulti(key multiSelectionKey) (MultiSelectResponse, bool) {
	v, ok := c.lookup(key.String())
	if !ok {
		return MultiSelectResponse{}, false
	}
	return v.(MultiSelectResponse), true
}

// PutMulti stores a completed multi-choice selection.
func (c *SelectionCache) PutMulti(key multiSelectionKey, res MultiSelectResponse) {
	c.store(key.String(), res)
}

// lookup finds an entry by canonical key string, promoting it on hit.
func (c *SelectionCache) lookup(k string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// store inserts a completed selection, evicting the least recently used
// entry when full. Storing under an existing key overwrites it (the
// result is deterministic given the key, so both writers agree).
func (c *SelectionCache) store(k string, res any) {
	if c.cap < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Flush drops every entry (stats are kept).
func (c *SelectionCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

// Stats returns a snapshot of the counters.
func (c *SelectionCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.cap
	return s
}
