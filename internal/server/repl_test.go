package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// journalSome drives n single-vote ingests (plus one registration)
// through the HTTP API, journaling n+1 records.
func journalSome(t *testing.T, url string, n int) {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/workers", RegisterRequest{Workers: []WorkerSpec{
		{ID: "ann", Quality: 0.8, Cost: 3}, {ID: "bob", Quality: 0.7, Cost: 2},
	}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	for i := 0; i < n; i++ {
		resp, raw := postJSON(t, url+"/v1/votes/batch", IngestRequest{Events: []VoteEvent{
			{WorkerID: "ann", Correct: i%2 == 0},
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: %d %s", i, resp.StatusCode, raw)
		}
	}
}

// scanStream decodes a stream response body (raw WAL framing) into
// payloads.
func scanStream(t *testing.T, body []byte) [][]byte {
	t.Helper()
	var payloads [][]byte
	_, torn, err := wal.ScanSegment(bytes.NewReader(body), func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil || torn {
		t.Fatalf("stream body scan: err %v, torn %v", err, torn)
	}
	return payloads
}

func TestReplStreamProtocol(t *testing.T) {
	// Small segments: every record rotates, so the snapshot-truncation at
	// the end physically removes history (whole segments only).
	s, err := Open(Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir(), SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	journalSome(t, ts.URL, 4) // 5 records

	// Full read from LSN 0.
	resp, err := http.Get(ts.URL + "/v1/repl/stream?from=0&wait_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(ReplFirstLSNHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", ReplFirstLSNHeader, got)
	}
	if got := resp.Header.Get(ReplCountHeader); got != "5" {
		t.Fatalf("%s = %q, want 5", ReplCountHeader, got)
	}
	if got := resp.Header.Get(ReplDurableLSNHeader); got != "5" {
		t.Fatalf("%s = %q, want 5", ReplDurableLSNHeader, got)
	}
	if n := len(scanStream(t, body)); n != 5 {
		t.Fatalf("stream body holds %d records, want 5", n)
	}

	// Mid-log read delivers only the tail.
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=3&wait_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(scanStream(t, body)) != 2 {
		t.Fatalf("tail stream: %d, %d records, want 200 with 2", resp.StatusCode, len(scanStream(t, body)))
	}
	if got := resp.Header.Get(ReplFirstLSNHeader); got != "4" {
		t.Fatalf("%s = %q, want 4", ReplFirstLSNHeader, got)
	}

	// Caught up: 204 with the watermark, after the (short) long poll.
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=5&wait_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up stream: %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get(ReplDurableLSNHeader); got != "5" {
		t.Fatalf("204 %s = %q, want 5", ReplDurableLSNHeader, got)
	}

	// A follower claiming records the log never committed: divergence.
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diverged stream: %d, want 409", resp.StatusCode)
	}

	// Bad parameters.
	for _, q := range []string{"from=x", "wait_ms=x", "max_bytes=0"} {
		resp, err := http.Get(ts.URL + "/v1/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stream?%s: %d, want 400", q, resp.StatusCode)
		}
	}

	// max_bytes bounds a batch but still makes progress (>= 1 record).
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=0&max_bytes=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(scanStream(t, body)) != 1 {
		t.Fatalf("bounded stream: %d with %d records, want 200 with 1", resp.StatusCode, len(scanStream(t, body)))
	}

	// Snapshot + truncation strands pre-horizon readers: 410 with the
	// oldest retained LSN advertised.
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/repl/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("truncated stream: %d %s, want 410", resp.StatusCode, body)
	}
	if oldest, _ := strconv.Atoi(resp.Header.Get(ReplOldestLSNHeader)); oldest <= 1 {
		t.Fatalf("410 %s = %d, want > 1", ReplOldestLSNHeader, oldest)
	}
}

// TestQuorumAckRequiresLogMatch: a stream poll contributes to the
// quorum ack table only after every divergence check passes — a
// diverged or stale caller (e.g. a resurrected ex-primary whose `from`
// counts journaled-but-never-shipped records under a forked history)
// must not vouch for LSNs this log never shipped, or quorum could ack
// writes no genuine follower holds. A poll without `epoch` never ran
// the log-matching check, so it never vouches either.
func TestQuorumAckRequiresLogMatch(t *testing.T) {
	s, _ := durable(t)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	journalSome(t, ts.URL, 2) // 3 records

	get := func(q string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// A log-matched poll registers the follower's applied LSN.
	if code := get("from=2&epoch=1&follower_id=good&wait_ms=1"); code != http.StatusOK {
		t.Fatalf("matching poll: %d, want 200", code)
	}
	if acks := s.quorum.snapshot(); acks["good"] != 2 {
		t.Fatalf("acks = %v, want good=2", acks)
	}

	// Claiming records beyond the log end is divergence: 409, no ack.
	if code := get("from=9&epoch=1&follower_id=beyond"); code != http.StatusConflict {
		t.Fatalf("beyond-log poll: %d, want 409", code)
	}
	// No epoch means the log-matching check never ran: served, no ack.
	if code := get("from=2&follower_id=unverified&wait_ms=1"); code != http.StatusOK {
		t.Fatalf("epochless poll: %d, want 200", code)
	}
	// A poll from a higher epoch self-fences this node: 409, no ack.
	if code := get("from=2&epoch=5&follower_id=future"); code != http.StatusConflict {
		t.Fatalf("future-epoch poll: %d, want 409", code)
	}
	if fenced, epoch, _ := s.FencedState(); !fenced || epoch != 5 {
		t.Fatalf("fenced state after future-epoch poll = %v/%d, want fenced at 5", fenced, epoch)
	}
	acks := s.quorum.snapshot()
	for _, id := range []string{"beyond", "unverified", "future"} {
		if _, ok := acks[id]; ok {
			t.Errorf("unverified caller %q registered a quorum ack (%v)", id, acks)
		}
	}
}

func TestReplStreamLongPollWakesOnCommit(t *testing.T) {
	s, _ := durable(t)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	journalSome(t, ts.URL, 0) // 1 record

	type result struct {
		status  int
		records int
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/repl/stream?from=1&wait_ms=30000")
		if err != nil {
			ch <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		n := 0
		wal.ScanSegment(bytes.NewReader(body), func([]byte) error { n++; return nil })
		ch <- result{status: resp.StatusCode, records: n}
	}()

	time.Sleep(30 * time.Millisecond) // let the poller park on the watermark
	resp, raw := postJSON(t, ts.URL+"/v1/votes/batch", IngestRequest{Events: []VoteEvent{
		{WorkerID: "ann", Correct: true},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, raw)
	}
	select {
	case r := <-ch:
		if r.err != nil || r.status != http.StatusOK || r.records != 1 {
			t.Fatalf("long poll woke with %+v, want 200 carrying 1 record", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll did not wake on commit")
	}
}

func TestReplEndpointsRequirePersistence(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/v1/repl/stream", "/v1/repl/snapshot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPreconditionFailed {
			t.Fatalf("%s on an in-memory server: %d, want 412", path, resp.StatusCode)
		}
	}
}

func TestReplSnapshotEndpoint(t *testing.T) {
	// Nothing journaled: 204 with LSN 0.
	empty, _ := durable(t)
	tsEmpty := httptest.NewServer(empty.Handler())
	t.Cleanup(tsEmpty.Close)
	resp, err := http.Get(tsEmpty.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || resp.Header.Get(ReplSnapshotLSNHeader) != "0" {
		t.Fatalf("empty snapshot: %d lsn %q, want 204 lsn 0", resp.StatusCode, resp.Header.Get(ReplSnapshotLSNHeader))
	}

	// With history: the document covers exactly the journaled prefix and
	// equals the state dump.
	s, _ := durable(t)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	journalSome(t, ts.URL, 2) // 3 records
	resp, err = http.Get(ts.URL + "/v1/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, payload)
	}
	if got := resp.Header.Get(ReplSnapshotLSNHeader); got != "3" {
		t.Fatalf("%s = %q, want 3", ReplSnapshotLSNHeader, got)
	}
	want, err := s.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want) {
		t.Fatalf("snapshot payload differs from the state dump:\n%s\nvs\n%s", payload, want)
	}
}

func TestApplyReplicatedContiguity(t *testing.T) {
	// A primary's real stream, decoded into (lsn, payload) pairs.
	p, _ := durable(t)
	tsP := httptest.NewServer(p.Handler())
	t.Cleanup(tsP.Close)
	journalSome(t, tsP.URL, 3) // 4 records
	frames, count, err := p.persist.log.ReadCommitted(1, 0)
	if err != nil || count != 4 {
		t.Fatalf("ReadCommitted: %d records, %v", count, err)
	}
	payloads := scanStream(t, frames)

	f, _ := durable(t)
	f.SetFollower(tsP.URL)

	// A gap is refused before anything is journaled.
	if err := f.ApplyReplicated(2, payloads[1]); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped apply: %v, want a replication-gap error", err)
	}
	for i, payload := range payloads {
		if err := f.ApplyReplicated(wal.LSN(i+1), payload); err != nil {
			t.Fatalf("apply lsn %d: %v", i+1, err)
		}
	}
	// Re-applying an old record is also a gap (already journaled).
	if err := f.ApplyReplicated(2, payloads[1]); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("replayed apply: %v, want a replication-gap error", err)
	}
	// The follower is bit-identical to the primary.
	dp, err := p.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	df, err := f.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dp, df) {
		t.Fatalf("replicated state differs:\n%s\nvs\n%s", dp, df)
	}
	// And without persistence, replication is refused outright.
	m := New(Config{Alpha: 0.5, Seed: 1})
	m.SetFollower(tsP.URL)
	if err := m.ApplyReplicated(1, payloads[0]); err == nil {
		t.Fatal("in-memory ApplyReplicated succeeded, want an error")
	}
}

func TestFollowerMutationRoutesAnswer421(t *testing.T) {
	s, _ := durable(t)
	s.SetFollower("http://primary.example:7171")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	mutations := []struct{ method, path string }{
		{"POST", "/v1/workers"},
		{"PUT", "/v1/workers/ann"},
		{"DELETE", "/v1/workers/ann"},
		{"POST", "/v1/votes"},
		{"POST", "/v1/votes/batch"},
		{"POST", "/v1/sessions"},
		{"POST", "/v1/sessions/s1/votes"},
		{"DELETE", "/v1/sessions/s1"},
		{"POST", "/v1/multi/pools"},
		{"DELETE", "/v1/multi/pools/p"},
		{"POST", "/v1/multi/pools/p/workers"},
		{"POST", "/v1/multi/pools/p/votes"},
	}
	for _, m := range mutations {
		req, err := http.NewRequest(m.method, ts.URL+m.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("%s %s = %d, want 421", m.method, m.path, resp.StatusCode)
		}
		if got := resp.Header.Get(PrimaryHeader); got != "http://primary.example:7171" {
			t.Errorf("%s %s %s = %q, want the primary's address", m.method, m.path, PrimaryHeader, got)
		}
	}
	// Reads still serve.
	resp, err := http.Get(ts.URL + "/v1/workers")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower read: %v %d, want 200", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFollowerReadyzGatesOnMaxLag(t *testing.T) {
	cfg := Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir(), MaxLag: 50 * time.Millisecond}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFollower("http://primary.example:7171")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Never caught up and past the bound: stale.
	time.Sleep(60 * time.Millisecond)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"stale":true`) {
		t.Fatalf("stale follower readyz: %d %s, want 503 stale", resp.StatusCode, body)
	}

	// One caught-up contact makes it ready.
	s.ReplObserve(0, true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"follower":true`) {
		t.Fatalf("caught-up follower readyz: %d %s, want 200 follower", resp.StatusCode, body)
	}
}

func TestFollowerMetricsExposition(t *testing.T) {
	s, _ := durable(t)
	s.SetFollower("http://primary.example:7171")
	s.ReplObserve(7, true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"juryd_follower 1",
		"juryd_repl_connected 1",
		"juryd_repl_applied_lsn 0",
		"juryd_repl_primary_durable_lsn 7",
		"juryd_repl_lag_records 7",
		"juryd_repl_lag_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A primary exposes none of the follower gauges.
	p, _ := durable(t)
	tsP := httptest.NewServer(p.Handler())
	t.Cleanup(tsP.Close)
	resp, err = http.Get(tsP.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "juryd_follower") {
		t.Error("primary metrics expose juryd_follower")
	}
}

// TestReplStatusInPersistenceDebug asserts the follower block and the
// convergence fingerprint surface in GET /debug/persistence.
func TestReplStatusInPersistenceDebug(t *testing.T) {
	s, _ := durable(t)
	s.SetFollower("http://primary.example:7171")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/debug/persistence")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st PersistenceStatus
	mustDecode(t, raw, &st)
	if st.Repl == nil || st.Repl.Primary != "http://primary.example:7171" {
		t.Fatalf("persistence status repl = %+v, want the follower block", st.Repl)
	}
	if st.StateSHA256 == "" || len(st.StateSHA256) != 64 {
		t.Fatalf("state_sha256 = %q, want a sha-256 hex digest", st.StateSHA256)
	}
	if st.DurableLSN != 0 {
		t.Fatalf("durable_lsn = %d, want 0 on an empty log", st.DurableLSN)
	}
}
