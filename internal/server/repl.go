package server

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Replication. A durable primary serves its committed WAL prefix over
// GET /v1/repl/stream (long-poll: the handler parks on the durability
// watermark until new records commit) and its full state over
// GET /v1/repl/snapshot (for followers bootstrapping from scratch or
// stranded behind the log-truncation horizon). A follower (SetFollower)
// appends the shipped frames to its own WAL and applies them through the
// same Apply paths recovery uses, so its state — posteriors, sessions,
// pool signatures, and therefore selection-cache keys — is bit-identical
// to the primary's at every applied LSN. Followers serve every read
// route and reject mutations with 421 plus the primary's address in the
// X-Juryd-Primary header.
//
// Only records at or below the primary's durability watermark are ever
// shipped: a follower can never apply a record that a primary power loss
// would revoke, so "follower applied LSN <= primary durable LSN" is an
// invariant, not a race.

// PrimaryHeader is the response header carrying the primary's address on
// a 421 mutation rejection from a follower.
const PrimaryHeader = "X-Juryd-Primary"

// Replication stream/snapshot headers.
const (
	// ReplFirstLSNHeader is the LSN of the first record in a stream body.
	ReplFirstLSNHeader = "X-Repl-First-Lsn"
	// ReplCountHeader is the number of records in a stream body.
	ReplCountHeader = "X-Repl-Count"
	// ReplDurableLSNHeader is the primary's durability watermark at
	// response time (also on 204, so an idle follower still tracks lag).
	ReplDurableLSNHeader = "X-Repl-Durable-Lsn"
	// ReplOldestLSNHeader is the primary's truncation horizon, sent with
	// 410 so a stranded follower knows how far behind it is.
	ReplOldestLSNHeader = "X-Repl-Oldest-Lsn"
	// ReplSnapshotLSNHeader is the LSN a shipped snapshot covers.
	ReplSnapshotLSNHeader = "X-Repl-Snapshot-Lsn"
)

// Stream request bounds.
const (
	defaultStreamWait     = 10 * time.Second
	maxStreamWait         = 60 * time.Second
	// streamWaitSlice chunks the long poll so a vanished follower (closed
	// request context) releases its handler quickly instead of pinning
	// graceful shutdown for the full wait.
	streamWaitSlice = 250 * time.Millisecond
	defaultStreamMaxBytes = 1 << 20
	maxStreamMaxBytes     = 8 << 20
)

// FollowerError is the mutation-rejection error of a read-only replica:
// it maps to 421 (Misdirected Request) with the primary's address in
// X-Juryd-Primary, so a follower-aware client can redirect the write.
type FollowerError struct {
	// Primary is the primary's base URL, as configured by -follow.
	Primary string
}

func (e *FollowerError) Error() string {
	return fmt.Sprintf("server: read-only replica: send mutations to the primary at %s", e.Primary)
}

// replState is the follower-mode state of a Server.
type replState struct {
	since time.Time

	mu             sync.Mutex
	primary        string // mutable: Repoint retargets it after a promotion
	connected      bool
	primaryDurable wal.LSN
	lastContact    time.Time
	lastCaughtUp   time.Time
}

// primaryURL reads the current primary base URL under the lock.
func (rs *replState) primaryURL() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary
}

// setPrimary retargets the follower at a new primary (Repoint).
func (rs *replState) setPrimary(url string) {
	rs.mu.Lock()
	rs.primary = url
	rs.mu.Unlock()
}

// SetFollower puts the server in follower (read-only replica) mode:
// every mutation route answers 421 with the primary's address, and
// ReplStatus starts reporting lag. Call it once, before serving traffic;
// records arrive via ApplyReplicated (driven by internal/repl).
func (s *Server) SetFollower(primary string) {
	s.repl.Store(&replState{primary: primary, since: time.Now()})
}

// IsFollower reports whether SetFollower was called.
func (s *Server) IsFollower() bool { return s.repl.Load() != nil }

// ReplObserve records one contact with the primary: its durability
// watermark as reported on the stream response, and whether the stream
// is currently healthy. The follower loop calls it after every response
// (connected) and on every transport failure (not connected).
func (s *Server) ReplObserve(primaryDurable wal.LSN, connected bool) {
	rs := s.repl.Load()
	if rs == nil {
		return
	}
	now := time.Now()
	applied := s.AppliedLSN()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.connected = connected
	if connected {
		rs.lastContact = now
		if primaryDurable > rs.primaryDurable {
			rs.primaryDurable = primaryDurable
		}
		if applied >= rs.primaryDurable {
			rs.lastCaughtUp = now
		}
	}
}

// AppliedLSN is the LSN of the last record in the local log — on a
// follower, the last replicated record it has applied. 0 without
// persistence.
func (s *Server) AppliedLSN() wal.LSN {
	if s.persist == nil {
		return 0
	}
	return s.persist.log.NextLSN() - 1
}

// ReplStatus reports the follower's replication position and lag, nil on
// a primary (or any non-follower server).
func (s *Server) ReplStatus() *ReplStatus {
	rs := s.repl.Load()
	if rs == nil {
		return nil
	}
	applied := s.AppliedLSN()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	st := &ReplStatus{
		Primary:           rs.primary,
		Epoch:             s.epochs.current(),
		Connected:         rs.connected,
		AppliedLSN:        uint64(applied),
		PrimaryDurableLSN: uint64(rs.primaryDurable),
	}
	if rs.primaryDurable > applied {
		st.LagRecords = uint64(rs.primaryDurable - applied)
	}
	// Staleness: how long since this follower was last provably caught up
	// to the primary's durable watermark. Caught-up-right-now reports 0.
	switch {
	case st.LagRecords == 0 && rs.connected && !rs.lastCaughtUp.IsZero():
		st.LagSeconds = 0
	case !rs.lastCaughtUp.IsZero():
		st.LagSeconds = time.Since(rs.lastCaughtUp).Seconds()
	default:
		st.LagSeconds = time.Since(rs.since).Seconds()
	}
	if !rs.lastContact.IsZero() {
		st.LastContact = rs.lastContact.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// ApplyReplicated journals one shipped record to the local WAL and
// applies it in memory — the follower's (only) mutation path. lsn must
// be exactly AppliedLSN()+1: the stream is contiguous, and a gap means
// the follower and primary have diverged. A local WAL failure degrades
// the server exactly like a primary's journal failure would: replication
// stops advancing, reads keep serving the last applied state.
func (s *Server) ApplyReplicated(lsn wal.LSN, payload []byte) error {
	// A node mid-promotion (or already promoted) must not apply another
	// shipped frame: its log now continues under its own epoch. The stream
	// loop maps this to a clean stop, not an error.
	if s.promoting.Load() || s.repl.Load() == nil {
		return ErrNotFollower
	}
	p := s.persist
	if p == nil {
		return errors.New("server: replication requires persistence (-data-dir)")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("server: replicated record at lsn %d: %w", lsn, err)
	}
	defer s.mutationGuard()()
	if next := p.log.NextLSN(); lsn != next {
		return fmt.Errorf("server: replication gap: shipped lsn %d, local log expects %d", lsn, next)
	}
	pend, err := p.log.Begin(payload)
	if err != nil {
		s.metrics.WALError()
		s.enterDegraded(err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	if got := pend.LSN(); got != lsn {
		return fmt.Errorf("server: replication lsn skew: reserved %d, want %d", got, lsn)
	}
	if err := pend.Wait(); err != nil {
		s.metrics.WALError()
		s.enterDegraded(err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	if err := s.applyRecord(&rec); err != nil {
		// The record is in the local log but not in memory: terminal
		// inconsistency for this process. Degrade so /readyz flags it.
		s.enterDegraded(err)
		return fmt.Errorf("server: replicated apply at lsn %d: %w", lsn, err)
	}
	return nil
}

// writeReplMetrics appends the follower gauges to /metrics; no-op on a
// primary.
func (s *Server) writeReplMetrics(w io.Writer) {
	st := s.ReplStatus()
	if st == nil {
		return
	}
	connected := 0
	if st.Connected {
		connected = 1
	}
	fmt.Fprintf(w, `# HELP juryd_follower Whether this process is a read-only replica (1) following a primary.
# TYPE juryd_follower gauge
juryd_follower 1
# HELP juryd_repl_connected Whether the replication stream to the primary is currently healthy.
# TYPE juryd_repl_connected gauge
juryd_repl_connected %d
# HELP juryd_repl_applied_lsn Last replicated WAL record applied locally.
# TYPE juryd_repl_applied_lsn gauge
juryd_repl_applied_lsn %d
# HELP juryd_repl_primary_durable_lsn Primary durability watermark as of the last stream contact.
# TYPE juryd_repl_primary_durable_lsn gauge
juryd_repl_primary_durable_lsn %d
# HELP juryd_repl_lag_records Records the primary has committed that this follower has not applied.
# TYPE juryd_repl_lag_records gauge
juryd_repl_lag_records %d
# HELP juryd_repl_lag_seconds Seconds since this follower was last caught up to the primary's durable watermark.
# TYPE juryd_repl_lag_seconds gauge
juryd_repl_lag_seconds %g
`, connected, st.AppliedLSN, st.PrimaryDurableLSN, st.LagRecords, st.LagSeconds)
}

// ---------------------------------------------------------------------------
// Primary-side endpoints.

// parseLSNParam parses a query parameter as an LSN; empty means 0.
func parseLSNParam(v string) (wal.LSN, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("server: bad lsn %q", v)
	}
	return wal.LSN(n), nil
}

// handleReplStream is GET /v1/repl/stream?from=<lsn>: the log-shipping
// long poll. from is the LSN the follower has applied through ("send me
// from+1 onward"); the response body is raw WAL framing (ScanSegment
// decodes it), covering only records at or below the durability
// watermark. 204 means nothing new committed within the wait; 410 means
// the requested records are behind the truncation horizon and the
// follower must re-bootstrap from /v1/repl/snapshot; 409 means the
// follower claims records this primary never committed (divergence).
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	p := s.persist
	if p == nil {
		writeJSON(w, r, http.StatusPreconditionFailed,
			ErrorResponse{Error: "server: replication requires a durable primary (start it with -data-dir)"})
		return
	}
	q := r.URL.Query()
	from, err := parseLSNParam(q.Get("from"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	wait := defaultStreamWait
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			writeError(w, r, fmt.Errorf("server: bad wait_ms %q", v))
			return
		}
		wait = min(time.Duration(ms)*time.Millisecond, maxStreamWait)
	}
	maxBytes := defaultStreamMaxBytes
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil || n == 0 {
			writeError(w, r, fmt.Errorf("server: bad max_bytes %q", v))
			return
		}
		maxBytes = int(min(int64(n), maxStreamMaxBytes))
	}
	var reqEpoch uint64
	if v := q.Get("epoch"); v != "" {
		reqEpoch, err = strconv.ParseUint(v, 10, 64)
		if err != nil || reqEpoch == 0 {
			writeError(w, r, fmt.Errorf("server: bad epoch %q", v))
			return
		}
	}
	// Every stream response names this node's epoch, so a follower of a
	// deposed primary can tell "stale primary" (retry elsewhere) from
	// genuine divergence.
	cur := s.epochs.current()
	w.Header().Set(ReplEpochHeader, strconv.FormatUint(cur, 10))
	if reqEpoch > cur {
		// The caller has seen a newer epoch than we ever wrote: a newer
		// primary exists, so this node must fence itself — a poll from the
		// future is as much proof as an explicit fence call. The in-memory
		// fence holds even if the durable marker fails, but a marker
		// failure means a crash would resurrect this node unfenced — so it
		// must not pass silently.
		if ferr := s.Fence(reqEpoch, ""); ferr != nil {
			s.metrics.FenceError()
			s.logger.Error("durable fence marker failed; fence is memory-only until delivered again",
				"fence_epoch", reqEpoch, "error", ferr)
		}
		writeJSON(w, r, http.StatusConflict, ErrorResponse{Error: fmt.Sprintf(
			"server: stale primary: caller has seen epoch %d, this node is at epoch %d", reqEpoch, cur)})
		return
	}
	// Log matching: the epoch the follower applied `from` under must be
	// the epoch this primary wrote it under, or the logs forked there —
	// e.g. an old primary rejoining with acked-but-never-shipped records.
	if reqEpoch > 0 && from > 0 {
		if have := s.epochs.at(from); have != reqEpoch {
			writeJSON(w, r, http.StatusConflict, ErrorResponse{Error: fmt.Sprintf(
				"server: replication divergence: follower applied lsn %d under epoch %d but this primary wrote it under epoch %d",
				from, reqEpoch, have)})
			return
		}
	}
	if from >= p.log.NextLSN() {
		writeJSON(w, r, http.StatusConflict, ErrorResponse{Error: fmt.Sprintf(
			"server: replication divergence: follower applied through lsn %d but this primary's log ends at %d",
			from, p.log.NextLSN()-1)})
		return
	}
	// The follower's applied LSN doubles as its durability confirmation
	// for quorum-gated acks (piggybacked: no extra round trips). Recorded
	// only after every divergence check above passed, and only when the
	// caller presented its epoch so the log-matching check actually ran: a
	// diverged caller — e.g. a resurrected ex-primary whose `from` counts
	// journaled-but-never-shipped records under a forked epoch — must not
	// vouch for LSNs this log never shipped, or quorum could ack writes no
	// genuine follower holds.
	if id := q.Get("follower_id"); id != "" && reqEpoch > 0 {
		s.quorum.observe(id, uint64(from))
	}
	synced := p.log.Synced()
	// Long poll for new commits, in slices so a disconnected follower is
	// noticed between waits. A poisoned (degraded) log will never advance
	// the watermark again, but its committed prefix is still perfectly
	// servable — followers converge to the durable LSN and hold there,
	// which is exactly the invariant we want; so the poison error is not
	// terminal here, it just ends the wait.
	deadline := time.Now().Add(wait)
	for synced <= from && r.Context().Err() == nil {
		slice := min(time.Until(deadline), streamWaitSlice)
		if slice <= 0 {
			break
		}
		synced, err = p.log.WaitSynced(from, slice)
		if err != nil {
			if errors.Is(err, wal.ErrClosed) {
				writeJSON(w, r, http.StatusServiceUnavailable, ErrorResponse{Error: "server: log closed"})
				return
			}
			break
		}
	}
	w.Header().Set(ReplDurableLSNHeader, strconv.FormatUint(uint64(synced), 10))
	if synced <= from {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	tr := obs.TraceFrom(r.Context())
	span := tr.Begin(obs.StageReplRead)
	frames, count, err := p.log.ReadCommitted(from+1, maxBytes)
	span.End()
	switch {
	case errors.Is(err, wal.ErrTruncated):
		w.Header().Set(ReplOldestLSNHeader, strconv.FormatUint(uint64(p.log.OldestLSN()), 10))
		writeJSON(w, r, http.StatusGone, ErrorResponse{Error: fmt.Sprintf(
			"server: lsn %d is behind the truncation horizon; bootstrap from /v1/repl/snapshot", from+1)})
		return
	case err != nil:
		writeJSON(w, r, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	case count == 0:
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(ReplFirstLSNHeader, strconv.FormatUint(uint64(from+1), 10))
	w.Header().Set(ReplCountHeader, strconv.Itoa(count))
	w.WriteHeader(http.StatusOK)
	w.Write(frames)
}

// handleReplSnapshot is GET /v1/repl/snapshot: the follower bootstrap.
// It captures the full state under the snapshot freeze (so the LSN
// watermark is exact), waits for the captured prefix to be durable (a
// follower must never receive state containing records a primary power
// loss could revoke), and ships the snapshot document with its covered
// LSN in X-Repl-Snapshot-Lsn. 204 means the primary has never journaled
// anything — the follower starts from LSN 0 with empty state.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	p := s.persist
	if p == nil {
		writeJSON(w, r, http.StatusPreconditionFailed,
			ErrorResponse{Error: "server: replication requires a durable primary (start it with -data-dir)"})
		return
	}
	p.freeze.Lock()
	state := s.captureState()
	upTo := p.log.NextLSN() - 1
	p.freeze.Unlock()
	if err := p.log.WaitDurable(); err != nil {
		// The captured state may include applied-but-unsynced records
		// (group commit); shipping it would violate the durable-prefix
		// invariant, so a poisoned primary refuses bootstraps.
		writeError(w, r, fmt.Errorf("%w: %w", ErrDegraded, err))
		return
	}
	if upTo == 0 {
		w.Header().Set(ReplSnapshotLSNHeader, "0")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	payload, err := json.Marshal(state)
	if err != nil {
		writeJSON(w, r, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ReplSnapshotLSNHeader, strconv.FormatUint(uint64(upTo), 10))
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// stateSHA is the hex SHA-256 of the canonical state document — the
// cheap cross-node convergence check surfaced in /debug/persistence: two
// nodes with equal next_lsn and equal state_sha256 hold bit-identical
// state.
func (s *Server) stateSHA() string {
	doc, err := s.DebugState()
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%x", sha256.Sum256(doc))
}
