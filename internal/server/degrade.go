package server

import (
	"errors"
	"fmt"
	"net/http"
)

// Failure-domain errors: both map to 503 with a Retry-After header.
var (
	// ErrDegraded marks a server whose write-ahead log failed: recovered
	// state is intact and reads keep serving, but no mutation can be made
	// durable, so all are refused until the process is restarted against
	// a healthy disk.
	ErrDegraded = errors.New("server: degraded read-only mode: write-ahead log failed")
	// ErrDraining marks a server in shutdown drain: in-flight reads
	// complete, new mutations are refused so the final checkpoint is the
	// last word.
	ErrDraining = errors.New("server: draining for shutdown")
)

// enterDegraded transitions the server into degraded read-only mode,
// remembering the first cause. The transition is terminal for the
// process lifetime: the WAL poison is sticky (wal.ErrFailed), so a
// "recovered" disk would still leave an un-journaled gap — only a
// restart, which replays the log from a known-good prefix, exits the
// mode.
func (s *Server) enterDegraded(cause error) {
	s.degradedMu.Lock()
	if s.degradedCause == nil {
		s.degradedCause = cause
	}
	s.degradedMu.Unlock()
	s.degraded.Store(true)
}

// DegradedState reports whether the server is degraded and the first
// disk error that caused it.
func (s *Server) DegradedState() (bool, error) {
	if !s.degraded.Load() {
		return false, nil
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedCause
}

// BeginDrain refuses mutations from now on (503 + Retry-After) while
// reads keep serving. Call it before http.Server.Shutdown so nothing
// mutates state between the final checkpoint and process exit.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// mutable is the fast-path admission check for mutation routes: it
// fails when the server is a read-only replica, degraded, or draining,
// before the request body is even decoded.
func (s *Server) mutable() error {
	if rs := s.repl.Load(); rs != nil {
		return &FollowerError{Primary: rs.primaryURL()}
	}
	if fenced, epoch, primary := s.FencedState(); fenced {
		// A fenced ex-primary must never acknowledge another write: a
		// newer primary holds a higher epoch. 421 like a follower, with
		// the new primary's address when the fence carried one.
		return &FencedError{Epoch: epoch, Primary: primary}
	}
	if degraded, cause := s.DegradedState(); degraded {
		return fmt.Errorf("%w (%v)", ErrDegraded, cause)
	}
	if s.draining.Load() {
		return ErrDraining
	}
	return nil
}

// handleReady is GET /readyz: readiness as a load balancer or orchestra-
// tor sees it. Unlike /healthz (liveness: the process is up and can
// answer), readiness goes false — 503 — when the server should stop
// receiving writes: degraded read-only mode or shutdown drain.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if degraded, cause := s.DegradedState(); degraded {
		writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
			"ready":    false,
			"degraded": true,
			"cause":    cause.Error(),
		})
		return
	}
	if s.Draining() {
		writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
			"ready":    false,
			"draining": true,
		})
		return
	}
	if fenced, epoch, primary := s.FencedState(); fenced {
		// A fenced ex-primary serves reads but must receive no writes:
		// not ready, and the body names where writes belong now.
		writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
			"ready":   false,
			"fenced":  true,
			"epoch":   epoch,
			"primary": primary,
		})
		return
	}
	if st := s.ReplStatus(); st != nil {
		// A follower is ready while it is fresh enough: past the -max-lag
		// staleness bound it goes 503 so load balancers stop routing
		// reads that need recency to it. MaxLag 0 means "any lag is fine".
		if s.cfg.MaxLag > 0 && st.LagSeconds > s.cfg.MaxLag.Seconds() {
			writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
				"ready":       false,
				"follower":    true,
				"stale":       true,
				"lag_records": st.LagRecords,
				"lag_seconds": st.LagSeconds,
			})
			return
		}
		writeJSON(w, r, http.StatusOK, map[string]any{
			"ready":       true,
			"follower":    true,
			"lag_records": st.LagRecords,
		})
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]any{"ready": true})
}
