package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/wal"
)

// Promotion and fencing. Every primary writes under a monotonically
// increasing epoch. Epoch 1 is implicit (a freshly initialized log needs
// no boot record); each promotion journals a RecEpoch record carrying the
// new epoch number and its own LSN, so the epoch history replays from the
// WAL like any other state and every node that has applied the same
// prefix agrees on which epoch governs every LSN. The stream handler uses
// that agreement as a Raft-style log-matching check: a follower's request
// names the epoch of its last applied record, and a mismatch against the
// primary's own epoch-at-that-LSN is divergence, caught before a single
// forked record ships.
//
// Fencing is how a deposed primary is kept from accepting writes it can
// no longer replicate: an explicit POST /v1/repl/fence (or a stream
// request from a higher epoch) records "a newer primary holds epoch E".
// The fence is in effect while the fence epoch exceeds the node's own
// current epoch — so it clears itself if the node later rejoins as a
// follower and replays the RecEpoch record that outranks it — and it is
// persisted to fence.json so a fenced primary stays fenced across a
// restart.

// EpochHeader is stamped on every HTTP response: the epoch of the serving
// node, so clients and operators can spot a stale primary at a glance.
const EpochHeader = "X-Juryd-Epoch"

// ReplEpochHeader carries the answering node's current epoch on every
// replication stream response. A follower that sees a LOWER epoch than
// its own in a stream 409 knows the primary is stale (retry/repoint, not
// divergence).
const ReplEpochHeader = "X-Repl-Epoch"

// fenceFile is the durable fence marker in the data dir. It is not log
// state (DirHasState ignores it): a wiped-and-rebootstrapped node starts
// unfenced by construction.
const fenceFile = "fence.json"

// defaultQuorumTimeout bounds the ack wait for quorum-gated mutations
// when Config.QuorumTimeout is zero.
const defaultQuorumTimeout = 5 * time.Second

var (
	// ErrQuorumTimeout marks a mutation that is durable on the primary but
	// was not confirmed by enough followers within the timeout. The
	// mutation may still replicate; a keyed retry resolves either way
	// (dedup answers it once the quorum recovers).
	ErrQuorumTimeout = errors.New("server: quorum not reached: mutation durable locally but unconfirmed by followers")
	// ErrNotFollower is returned by follower-only operations (repoint,
	// replicated applies) on a node serving as primary.
	ErrNotFollower = errors.New("server: not a follower")
	// ErrPromoting is returned when a promotion is already in flight.
	ErrPromoting = errors.New("server: promotion already in progress")
	// ErrFenceStale rejects a fence request whose epoch does not outrank
	// the node's current epoch — fencing the legitimate holder of an epoch
	// with its own (or an older) epoch would be a correctness bug, not an
	// operation.
	ErrFenceStale = errors.New("server: fence epoch is not newer than the current epoch")
)

// FencedError is the mutation-rejection error of a fenced ex-primary: a
// newer primary holds a higher epoch, so this node must never acknowledge
// another write. Maps to 421 with the new primary's address (when known)
// in X-Juryd-Primary, exactly like a follower's rejection — to a client,
// "fenced primary" and "replica" mean the same thing: write elsewhere.
type FencedError struct {
	// Epoch is the fencing (newer) epoch.
	Epoch uint64
	// Primary is the new primary's base URL; may be empty when the fence
	// arrived without one (e.g. via a stream request from a higher epoch).
	Primary string
}

func (e *FencedError) Error() string {
	if e.Primary == "" {
		return fmt.Sprintf("server: fenced: a newer primary holds epoch %d; this node is read-only", e.Epoch)
	}
	return fmt.Sprintf("server: fenced: a newer primary at %s holds epoch %d; this node is read-only", e.Primary, e.Epoch)
}

// ---------------------------------------------------------------------------
// Epoch table.

// EpochEntry records that Epoch governs records from StartLSN onward
// (until a later entry's StartLSN). The table replays from RecEpoch
// records and travels in snapshots, so it is part of the bit-exact state.
type EpochEntry struct {
	Epoch    uint64 `json:"epoch"`
	StartLSN uint64 `json:"start_lsn"`
}

// epochTable is the replayed promotion history. The zero value is epoch 1
// with no recorded entries.
type epochTable struct {
	mu      sync.RWMutex
	entries []EpochEntry
}

// current is the newest epoch; 1 when no promotion was ever recorded.
func (t *epochTable) current() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.entries) == 0 {
		return 1
	}
	return t.entries[len(t.entries)-1].Epoch
}

// at is the epoch governing lsn: the newest entry with StartLSN <= lsn,
// or 1 before any recorded promotion.
func (t *epochTable) at(lsn wal.LSN) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// First entry with StartLSN > lsn; the one before it governs.
	i := sort.Search(len(t.entries), func(i int) bool {
		return t.entries[i].StartLSN > uint64(lsn)
	})
	if i == 0 {
		return 1
	}
	return t.entries[i-1].Epoch
}

// add appends one promotion. Epochs and start LSNs must be strictly
// increasing — a violation means the log being replayed was forked.
func (t *epochTable) add(epoch uint64, start wal.LSN) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) > 0 {
		last := t.entries[len(t.entries)-1]
		if epoch <= last.Epoch || uint64(start) <= last.StartLSN {
			return fmt.Errorf("server: epoch record (%d @ lsn %d) does not advance (%d @ lsn %d)",
				epoch, start, last.Epoch, last.StartLSN)
		}
	} else if epoch <= 1 {
		return fmt.Errorf("server: epoch record %d does not advance the implicit epoch 1", epoch)
	}
	t.entries = append(t.entries, EpochEntry{Epoch: epoch, StartLSN: uint64(start)})
	return nil
}

// snapshot copies the table for the snapshot document.
func (t *epochTable) snapshot() []EpochEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.entries) == 0 {
		return nil
	}
	return append([]EpochEntry(nil), t.entries...)
}

// load replaces the table from a snapshot document.
func (t *epochTable) load(entries []EpochEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i < len(entries); i++ {
		if entries[i].Epoch <= entries[i-1].Epoch || entries[i].StartLSN <= entries[i-1].StartLSN {
			return fmt.Errorf("server: epoch table not increasing at entry %d", i)
		}
	}
	if len(entries) > 0 && entries[0].Epoch <= 1 {
		return fmt.Errorf("server: epoch table starts at %d (epoch 1 is implicit)", entries[0].Epoch)
	}
	t.entries = append(t.entries[:0], entries...)
	return nil
}

// CurrentEpoch is the epoch this node believes is newest — on a primary,
// the epoch it writes under.
func (s *Server) CurrentEpoch() uint64 { return s.epochs.current() }

// EpochAt is the epoch governing lsn in this node's replayed history
// (what a follower reports on its stream requests for log matching).
func (s *Server) EpochAt(lsn wal.LSN) uint64 { return s.epochs.at(lsn) }

// ---------------------------------------------------------------------------
// Fencing.

// fenceDoc is the fence.json document.
type fenceDoc struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
}

// loadFence reads the durable fence marker; ok is false when none exists.
func loadFence(fsys wal.FS, dir string) (fenceDoc, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, fenceFile))
	if errors.Is(err, os.ErrNotExist) {
		return fenceDoc{}, false, nil
	}
	if err != nil {
		return fenceDoc{}, false, err
	}
	var doc fenceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fenceDoc{}, false, fmt.Errorf("server: %s: %w", fenceFile, err)
	}
	return doc, true, nil
}

// saveFence atomically installs the fence marker (write temp, sync,
// rename) so a crash mid-write leaves either the old fence or the new.
func saveFence(fsys wal.FS, dir string, doc fenceDoc) error {
	payload, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fenceFile)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}

// FencedState reports whether the node is currently fenced, and by which
// epoch and primary. The fence is live only while its epoch exceeds the
// node's own: a node that catches up past the fencing epoch (by replaying
// the promotion as a follower, or by being promoted itself) is no longer
// the stale primary the fence was guarding against.
func (s *Server) FencedState() (fenced bool, epoch uint64, primary string) {
	s.fenceMu.Lock()
	epoch, primary = s.fenceEpoch, s.fencePrimary
	s.fenceMu.Unlock()
	if epoch == 0 {
		return false, 0, ""
	}
	return epoch > s.epochs.current(), epoch, primary
}

// Fence records that a newer primary holds epoch (with its base URL, when
// known): this node must not acknowledge writes under any older epoch.
// Idempotent: re-fencing at or below an existing fence epoch keeps the
// higher fence (and fills in a missing primary URL). epoch must outrank
// the node's current epoch (ErrFenceStale otherwise). The fence takes
// effect in memory before the durable marker is written; a marker write
// failure is returned but does NOT lift the in-memory fence.
func (s *Server) Fence(epoch uint64, primary string) error {
	// fenceMu spans the stale-check and the install, so FencedState readers
	// see them as one atomic step. A concurrent Promote can still advance
	// s.epochs between the check and a reader's re-evaluation — that race
	// is benign by construction: FencedState re-compares the fence epoch
	// against the current epoch on every call, so a fence outranked by a
	// promotion is inert, and the worst outcome here is a spurious
	// ErrFenceStale for a caller racing the promotion it lost to.
	s.fenceMu.Lock()
	if cur := s.epochs.current(); epoch <= cur {
		s.fenceMu.Unlock()
		return fmt.Errorf("%w: fence epoch %d, current epoch %d", ErrFenceStale, epoch, cur)
	}
	if epoch > s.fenceEpoch {
		s.fenceEpoch = epoch
		s.fencePrimary = primary
	} else if epoch == s.fenceEpoch && s.fencePrimary == "" && primary != "" {
		s.fencePrimary = primary
	}
	doc := fenceDoc{Epoch: s.fenceEpoch, Primary: s.fencePrimary}
	s.fenceMu.Unlock()
	if p := s.persist; p != nil {
		if err := saveFence(p.fs, p.dir, doc); err != nil {
			return fmt.Errorf("server: fenced in memory, but persisting %s failed: %w", fenceFile, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Quorum acks.

// quorumAcks tracks, per follower, the highest applied LSN it has
// confirmed (piggybacked on the stream long-poll's from parameter). With
// Config.Quorum = N, a mutation is acknowledged only once N-1 distinct
// followers have confirmed its LSN — which is what makes "promote the
// most-caught-up follower" provably preserve every acknowledged mutation.
type quorumAcks struct {
	mu      sync.Mutex
	acks    map[string]uint64
	waiters map[*quorumWaiter]struct{}
}

type quorumWaiter struct {
	lsn  uint64
	need int
	ch   chan struct{}
}

// observe records follower id's confirmed applied LSN and releases any
// waiter the new watermark satisfies.
func (q *quorumAcks) observe(id string, lsn uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.acks == nil {
		q.acks = make(map[string]uint64)
	}
	if lsn <= q.acks[id] {
		return
	}
	q.acks[id] = lsn
	for w := range q.waiters {
		if q.confirmedLocked(w.lsn) >= w.need {
			close(w.ch)
			delete(q.waiters, w)
		}
	}
}

// confirmedLocked counts followers whose confirmed LSN covers lsn.
func (q *quorumAcks) confirmedLocked(lsn uint64) int {
	n := 0
	for _, v := range q.acks {
		if v >= lsn {
			n++
		}
	}
	return n
}

// wait blocks until need followers confirm lsn, or the timeout expires.
func (q *quorumAcks) wait(lsn uint64, need int, timeout time.Duration) error {
	q.mu.Lock()
	if q.confirmedLocked(lsn) >= need {
		q.mu.Unlock()
		return nil
	}
	w := &quorumWaiter{lsn: lsn, need: need, ch: make(chan struct{})}
	if q.waiters == nil {
		q.waiters = make(map[*quorumWaiter]struct{})
	}
	q.waiters[w] = struct{}{}
	q.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return nil
	case <-t.C:
		q.mu.Lock()
		delete(q.waiters, w)
		q.mu.Unlock()
		// Raced with a late observe: the waiter may have been satisfied
		// between the timer firing and the delete.
		select {
		case <-w.ch:
			return nil
		default:
		}
		return fmt.Errorf("timeout after %s", timeout)
	}
}

// snapshot copies the ack table (for status/debug).
func (q *quorumAcks) snapshot() map[string]uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.acks) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(q.acks))
	for k, v := range q.acks {
		out[k] = v
	}
	return out
}

// quorumWait gates one mutation ack on the follower quorum; a no-op
// unless Config.Quorum > 1.
func (s *Server) quorumWait(lsn wal.LSN) error {
	need := s.cfg.Quorum - 1
	if need <= 0 {
		return nil
	}
	timeout := s.cfg.QuorumTimeout
	if timeout <= 0 {
		timeout = defaultQuorumTimeout
	}
	if err := s.quorum.wait(uint64(lsn), need, timeout); err != nil {
		s.metrics.QuorumTimeout()
		return fmt.Errorf("%w: lsn %d needs %d follower confirmation(s): %v", ErrQuorumTimeout, lsn, need, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Promotion and repointing.

// fenceClient delivers the best-effort fence call to the old primary
// during a promotion; short timeout — a dead primary must not stall the
// failover it caused.
var fenceClient = &http.Client{Timeout: 2 * time.Second}

// Promote turns this follower into a writable primary under a new epoch:
// it stops accepting replicated frames, drains in-flight applies (the
// snapshot freeze doubles as the barrier), journals the RecEpoch record
// opening epoch N+1 at the next LSN, switches out of follower mode, and
// best-effort fences the old primary (advertise is the base URL the
// promoted node should be reached at; it rides along on the fence so
// clients bounced by the old primary land here). Promoting an
// already-primary node is an idempotent no-op (AlreadyPrimary).
func (s *Server) Promote(ctx context.Context, advertise string) (PromoteResponse, error) {
	rs := s.repl.Load()
	if rs == nil {
		return PromoteResponse{
			AlreadyPrimary: true,
			Epoch:          s.epochs.current(),
			AppliedLSN:     uint64(s.AppliedLSN()),
		}, nil
	}
	if degraded, cause := s.DegradedState(); degraded {
		return PromoteResponse{}, fmt.Errorf("server: cannot promote a degraded follower: %w (%v)", ErrDegraded, cause)
	}
	if s.draining.Load() {
		return PromoteResponse{}, fmt.Errorf("server: cannot promote: %w", ErrDraining)
	}
	p := s.persist
	if p == nil {
		return PromoteResponse{}, errors.New("server: promotion requires persistence (-data-dir)")
	}
	if !s.promoting.CompareAndSwap(false, true) {
		return PromoteResponse{}, ErrPromoting
	}
	defer s.promoting.Store(false)
	// The exclusive freeze drains every in-flight ApplyReplicated (each
	// holds the freeze shared for its whole journal-then-apply section),
	// so the epoch record lands directly after the last applied frame.
	p.freeze.Lock()
	newEpoch := s.epochs.current() + 1
	// A fenced follower knows a newer primary held the fence epoch; its
	// promotion must open an epoch past that one, or the node would come
	// up as a "primary" still outranked by its own fence marker —
	// answering every mutation with 421 toward a possibly-dead primary.
	// Cascaded failovers hit this: epochs.current() lags the fence when
	// the fencing primary died before shipping its RecEpoch record.
	var supersededFence uint64
	s.fenceMu.Lock()
	if s.fenceEpoch >= newEpoch {
		supersededFence = s.fenceEpoch
		newEpoch = s.fenceEpoch + 1
	}
	s.fenceMu.Unlock()
	start := p.log.NextLSN()
	rec := &Record{T: RecEpoch, Epoch: newEpoch, StartLSN: uint64(start)}
	payload, err := json.Marshal(rec)
	if err != nil {
		p.freeze.Unlock()
		return PromoteResponse{}, fmt.Errorf("server: promote encode: %w", err)
	}
	pend, err := p.log.Begin(payload)
	if err != nil {
		p.freeze.Unlock()
		s.metrics.WALError()
		s.enterDegraded(err)
		return PromoteResponse{}, fmt.Errorf("server: promote journal: %w: %w", ErrDegraded, err)
	}
	if err := pend.Wait(); err != nil {
		p.freeze.Unlock()
		s.metrics.WALError()
		s.enterDegraded(err)
		return PromoteResponse{}, fmt.Errorf("server: promote flush: %w: %w", ErrDegraded, err)
	}
	if err := s.epochs.add(newEpoch, start); err != nil {
		p.freeze.Unlock()
		return PromoteResponse{}, err
	}
	p.freeze.Unlock()
	oldPrimary := rs.primaryURL()
	// Order matters: the epoch record is durable before the node starts
	// acknowledging writes under it.
	s.repl.Store(nil)
	s.logger.Info("promoted to primary", "epoch", newEpoch, "epoch_record_lsn", uint64(start),
		"old_primary", oldPrimary, "superseded_fence_epoch", supersededFence)
	res := PromoteResponse{
		Promoted:             true,
		Epoch:                newEpoch,
		AppliedLSN:           uint64(start),
		OldPrimary:           oldPrimary,
		SupersededFenceEpoch: supersededFence,
	}
	if oldPrimary != "" {
		res.OldPrimaryFenced = fenceRemote(ctx, oldPrimary, newEpoch, advertise)
	}
	return res, nil
}

// fenceRemote posts the fence call to base; false means it did not land
// (dead primary — deliver the fence when it resurrects, or wipe it).
func fenceRemote(ctx context.Context, base string, epoch uint64, advertise string) bool {
	body, err := json.Marshal(FenceRequest{Epoch: epoch, Primary: advertise})
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/repl/fence", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := fenceClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode < 300
}

// Repoint retargets a follower's replication at a new primary base URL
// (after a promotion elsewhere). The stream loop picks the new target up
// on its next poll. ErrNotFollower on a primary.
func (s *Server) Repoint(primary string) error {
	rs := s.repl.Load()
	if rs == nil {
		return ErrNotFollower
	}
	rs.setPrimary(primary)
	return nil
}

// PrimaryURL is the primary this follower currently replicates from; ""
// on a primary. The follower stream loop re-reads it every poll, so a
// Repoint takes effect without restarting the loop.
func (s *Server) PrimaryURL() string {
	rs := s.repl.Load()
	if rs == nil {
		return ""
	}
	return rs.primaryURL()
}

// ---------------------------------------------------------------------------
// HTTP handlers.

// decodeJSONOptional is decodeJSON tolerating an absent/empty body (the
// promote call commonly needs no parameters).
func decodeJSONOptional(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("server: bad request body: %w", err)
}

// handlePromote is POST /v1/repl/promote: fence-and-switch this follower
// into a writable primary under the next epoch (see Promote).
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if err := decodeJSONOptional(r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	res, err := s.Promote(r.Context(), req.Advertise)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, res)
}

// handleFence is POST /v1/repl/fence: record that a newer primary holds
// the given epoch; this node stops acknowledging writes (421) until it
// catches up past that epoch as a follower.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	var req FenceRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if req.Epoch == 0 {
		writeError(w, r, errors.New("server: fence needs an epoch"))
		return
	}
	if err := s.Fence(req.Epoch, req.Primary); err != nil {
		writeError(w, r, err)
		return
	}
	fenced, epoch, primary := s.FencedState()
	writeJSON(w, r, http.StatusOK, FenceResponse{
		Fenced:       fenced,
		Epoch:        epoch,
		Primary:      primary,
		CurrentEpoch: s.epochs.current(),
	})
}

// handleRepoint is POST /v1/repl/repoint: retarget this follower's
// replication stream at a new primary (after a promotion elsewhere).
func (s *Server) handleRepoint(w http.ResponseWriter, r *http.Request) {
	var req RepointRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, r, err)
		return
	}
	if req.Primary == "" {
		writeError(w, r, errors.New("server: repoint needs a primary url"))
		return
	}
	if err := s.Repoint(req.Primary); err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, RepointResponse{Primary: req.Primary})
}
