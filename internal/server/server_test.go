package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func mustDecode(t *testing.T, raw []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
}

func paperPoolSpecs() []WorkerSpec {
	// The paper's running-example pool (Figure 1).
	qs := []float64{0.77, 0.70, 0.80, 0.65, 0.60, 0.60, 0.75}
	cs := []float64{9, 5, 6, 7, 5, 2, 3}
	specs := make([]WorkerSpec, len(qs))
	for i := range qs {
		specs[i] = WorkerSpec{ID: fmt.Sprintf("w%d", i), Quality: qs[i], Cost: cs[i]}
	}
	return specs
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: paperPoolSpecs()})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	return s, ts
}

func TestHTTPLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	// List.
	resp, err = http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var list ListResponse
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	mustDecode(t, raw, &list)
	if len(list.Workers) != 7 || list.Signature == "" {
		t.Fatalf("list = %+v", list)
	}

	// Get one.
	resp, err = http.Get(ts.URL + "/v1/workers/w2")
	if err != nil {
		t.Fatal(err)
	}
	var info WorkerInfo
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	mustDecode(t, raw, &info)
	if info.Quality != 0.80 || info.Cost != 6 {
		t.Fatalf("w2 = %+v", info)
	}

	// Unknown worker is a 404.
	resp, err = http.Get(ts.URL + "/v1/workers/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status = %d", resp.StatusCode)
	}

	// Duplicate registration is a 409.
	resp, raw = postJSON(t, ts.URL+"/v1/workers",
		RegisterRequest{Workers: []WorkerSpec{{ID: "w0", Quality: 0.5, Cost: 1}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: %d %s", resp.StatusCode, raw)
	}
}

func TestHTTPSelectAndCacheCounter(t *testing.T) {
	s, ts := newTestServer(t)

	var first SelectResponse
	resp, raw := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &first)
	if first.Cached || len(first.Jury) == 0 || first.JQ <= 0.5 || first.Cost > 15 {
		t.Fatalf("first select = %+v", first)
	}

	var second SelectResponse
	_, raw = postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15})
	mustDecode(t, raw, &second)
	if !second.Cached {
		t.Fatal("repeated selection not served from cache")
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Hits)
	}

	// Batch ingest a quality-changing event stream over HTTP...
	events := IngestRequest{Events: []VoteEvent{
		{WorkerID: "w5", Correct: true},
		{WorkerID: "w5", Correct: true},
		{WorkerID: "w0", Correct: false},
	}}
	var ing IngestResponse
	resp, raw = postJSON(t, ts.URL+"/v1/votes/batch", events)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &ing)
	if ing.Ingested != 3 || len(ing.Updated) != 2 {
		t.Fatalf("ingest response = %+v", ing)
	}
	if ing.Signature == first.Signature {
		t.Fatal("pool signature unchanged after ingest")
	}

	// ...and the cached jury is no longer served.
	var third SelectResponse
	_, raw = postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15})
	mustDecode(t, raw, &third)
	if third.Cached {
		t.Fatal("selection after ingest served from stale cache")
	}
	if third.Signature != ing.Signature {
		t.Fatalf("selection signature %s != post-ingest signature %s", third.Signature, ing.Signature)
	}

	// Single-event ingest endpoint.
	resp, raw = postJSON(t, ts.URL+"/v1/votes", VoteEvent{WorkerID: "w1", Correct: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single ingest: %d %s", resp.StatusCode, raw)
	}
	// Unknown worker in an event is a 404.
	resp, _ = postJSON(t, ts.URL+"/v1/votes", VoteEvent{WorkerID: "ghost", Correct: true})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost ingest: %d", resp.StatusCode)
	}
}

func TestHTTPSelectStrategiesAndSubsets(t *testing.T) {
	_, ts := newTestServer(t)

	for _, strategy := range []string{"bv", "mv", "bv-exact", "greedy"} {
		var res SelectResponse
		resp, raw := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15, Strategy: strategy})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select %s: %d %s", strategy, resp.StatusCode, raw)
		}
		mustDecode(t, raw, &res)
		if res.Strategy != strategy || res.Cost > 15 {
			t.Fatalf("select %s = %+v", strategy, res)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15, Strategy: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy: %d", resp.StatusCode)
	}

	// Subset selection only uses the named workers.
	var res SelectResponse
	_, raw := postJSON(t, ts.URL+"/v1/select",
		SelectRequest{Budget: 100, WorkerIDs: []string{"w4", "w5", "w6"}})
	mustDecode(t, raw, &res)
	if len(res.Jury) == 0 {
		t.Fatalf("subset jury empty: %+v", res)
	}
	for _, m := range res.Jury {
		if m.ID != "w4" && m.ID != "w5" && m.ID != "w6" {
			t.Fatalf("jury member outside subset: %+v", m)
		}
	}

	// Negative budget is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative budget: %d", resp.StatusCode)
	}
}

func TestHTTPSelectBatch(t *testing.T) {
	_, ts := newTestServer(t)
	var res BatchSelectResponse
	resp, raw := postJSON(t, ts.URL+"/v1/select/batch",
		BatchSelectRequest{Budgets: []float64{20, 5, 10}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch select: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &res)
	if len(res.Selections) != 3 {
		t.Fatalf("selections = %+v", res.Selections)
	}
	// Results align with the request order; JQ is monotone in budget.
	byBudget := map[float64]float64{}
	for i, sel := range res.Selections {
		if sel.Budget != []float64{20, 5, 10}[i] {
			t.Fatalf("budget order does not match request: %+v", res.Selections)
		}
		byBudget[sel.Budget] = sel.JQ
	}
	if byBudget[5] > byBudget[10]+1e-12 || byBudget[10] > byBudget[20]+1e-12 {
		t.Fatalf("JQ not monotone over budgets: %+v", byBudget)
	}
}

func TestHTTPSessions(t *testing.T) {
	_, ts := newTestServer(t)

	var st SessionState
	resp, raw := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Confidence: 0.9})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &st)
	if st.ID == "" || st.Done || st.Votes != 0 {
		t.Fatalf("initial session = %+v", st)
	}
	id := st.ID

	// Feed agreeing votes from good workers until confident.
	for i := 0; i < 7 && !st.Done; i++ {
		wid := fmt.Sprintf("w%d", i%7)
		resp, raw = postJSON(t, ts.URL+"/v1/sessions/"+id+"/votes",
			SessionVoteRequest{WorkerID: wid, Vote: 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session vote: %d %s", resp.StatusCode, raw)
		}
		mustDecode(t, raw, &st)
	}
	if !st.Done || st.Stopped != "confident" || st.Decision != 0 {
		t.Fatalf("session did not stop confident: %+v", st)
	}

	// Voting into a finished session conflicts.
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+id+"/votes",
		SessionVoteRequest{WorkerID: "w0", Vote: 0})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("vote into done session: %d", resp.StatusCode)
	}

	// State is readable, then the session can be closed exactly once.
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("close session: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("closed session still readable: %d", resp.StatusCode)
	}
}

// TestHTTPSessionBudgetExhausted covers the "budget" terminal state: a
// vote that exceeds the remaining budget, when no registered worker is
// affordable either, finalizes the session instead of erroring forever.
func TestHTTPSessionBudgetExhausted(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/workers",
		RegisterRequest{Workers: []WorkerSpec{{ID: "x", Quality: 0.6, Cost: 5}}})

	var st SessionState
	resp, raw := postJSON(t, ts.URL+"/v1/sessions",
		SessionRequest{Confidence: 0.999999, Budget: 8})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &st)

	resp, raw = postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/votes",
		SessionVoteRequest{WorkerID: "x", Vote: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first vote: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &st)
	if st.Done || st.Cost != 5 {
		t.Fatalf("after first vote: %+v", st)
	}

	// Second vote costs 5 > remaining 3, and no worker fits 3: the
	// session finalizes with stopped="budget" (the vote is not counted).
	resp, raw = postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/votes",
		SessionVoteRequest{WorkerID: "x", Vote: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget-exhausting vote: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &st)
	if !st.Done || st.Stopped != "budget" || st.Votes != 1 || st.Cost != 5 {
		t.Fatalf("budget stop = %+v", st)
	}
}

// TestHTTPSessionOverBudgetWithAffordableWorker: the same rejection is a
// 409 when a cheaper worker could still continue the session.
func TestHTTPSessionOverBudgetWithAffordableWorker(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: []WorkerSpec{
		{ID: "pricey", Quality: 0.8, Cost: 5},
		{ID: "cheap", Quality: 0.6, Cost: 1},
	}})
	var st SessionState
	_, raw := postJSON(t, ts.URL+"/v1/sessions",
		SessionRequest{Confidence: 0.999999, Budget: 8})
	mustDecode(t, raw, &st)
	postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/votes",
		SessionVoteRequest{WorkerID: "pricey", Vote: 0})
	resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/votes",
		SessionVoteRequest{WorkerID: "pricey", Vote: 0})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("over-budget vote with affordable alternative: %d", resp.StatusCode)
	}
	var got SessionState
	_, raw = postJSON(t, ts.URL+"/v1/sessions/"+st.ID+"/votes",
		SessionVoteRequest{WorkerID: "cheap", Vote: 0})
	mustDecode(t, raw, &got)
	if got.Votes != 2 || got.Done {
		t.Fatalf("cheap vote after rejection: %+v", got)
	}
}

func TestHTTPMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15})
	postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 15})
	postJSON(t, ts.URL+"/v1/votes", VoteEvent{WorkerID: "w0", Correct: true})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"juryd_cache_hits_total 1",
		"juryd_cache_misses_total 1",
		"juryd_votes_ingested_total 1",
		"juryd_selections_computed_total 1",
		"juryd_pool_size 7",
		`juryd_requests_total{route="POST /v1/select"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestZeroConfigDefaultsToUniformPrior: server.New must not leave the
// zero-value Alpha (a certain-"no" prior) in effect.
func TestZeroConfigDefaultsToUniformPrior(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var st SessionState
	resp, raw := postJSON(t, ts.URL+"/v1/sessions", SessionRequest{Confidence: 0.9})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, raw)
	}
	mustDecode(t, raw, &st)
	if st.Done || st.Confidence != 0.5 {
		t.Fatalf("zero-config session born at prior %v (done=%v), want uniform 0.5", st.Confidence, st.Done)
	}
}

// TestHTTPUpdateWorkerIDMismatch: a body id that contradicts the path id
// is a caller bug and must be rejected, not silently rewritten.
func TestHTTPUpdateWorkerIDMismatch(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(WorkerSpec{ID: "w2", Quality: 0.9, Cost: 1})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/workers/w1", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched PUT: %d, want 400", resp.StatusCode)
	}
	// w1 must be untouched.
	var info WorkerInfo
	getResp, err := http.Get(ts.URL + "/v1/workers/w1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	mustDecode(t, raw, &info)
	if info.Quality != 0.70 {
		t.Fatalf("mismatched PUT was applied: %+v", info)
	}
}

// TestUnseededStrategiesShareCacheAcrossSeeds: greedy and bv-exact ignore
// the seed, so requests differing only in seed must share one cache entry.
func TestUnseededStrategiesShareCacheAcrossSeeds(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	if _, err := s.registry.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	seed1, seed2 := int64(1), int64(2)
	first, err := s.selectOne(context.Background(), SelectRequest{Budget: 6, Strategy: "greedy", Seed: &seed1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.selectOne(context.Background(), SelectRequest{Budget: 6, Strategy: "greedy", Seed: &seed2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("greedy did not share cache across seeds: %v / %v", first.Cached, second.Cached)
	}
	// The seeded search must still discriminate.
	third, err := s.selectOne(context.Background(), SelectRequest{Budget: 6, Strategy: "bv", Seed: &seed1})
	if err != nil {
		t.Fatal(err)
	}
	fourth, err := s.selectOne(context.Background(), SelectRequest{Budget: 6, Strategy: "bv", Seed: &seed2})
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached || fourth.Cached {
		t.Fatalf("seeded bv wrongly shared cache across seeds: %v / %v", third.Cached, fourth.Cached)
	}
}

func TestHTTPEmptyRegistrySelect(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/v1/select", SelectRequest{Budget: 10})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty registry select: %d", resp.StatusCode)
	}
}
