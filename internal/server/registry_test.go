package server

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func specs3() []WorkerSpec {
	return []WorkerSpec{
		{ID: "a", Quality: 0.8, Cost: 3},
		{ID: "b", Quality: 0.7, Cost: 2},
		{ID: "c", Quality: 0.6, Cost: 1},
	}
}

func TestRegistryRegisterListGet(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	list, sig := r.List()
	if len(list) != 3 || list[0].ID != "a" || list[2].ID != "c" {
		t.Fatalf("List order wrong: %+v", list)
	}
	if sig == "" {
		t.Fatal("List returned empty signature for non-empty registry")
	}
	got, err := r.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Quality != 0.7 || got.Cost != 2 || got.Version != 1 {
		t.Fatalf("Get(b) = %+v", got)
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), []WorkerSpec{{ID: "", Quality: 0.5, Cost: 1}}, 0); !errors.Is(err, ErrEmptyID) {
		t.Fatalf("empty id: %v", err)
	}
	if _, err := r.Register(context.Background(), []WorkerSpec{{ID: "x", Quality: 1.5, Cost: 1}}, 0); err == nil {
		t.Fatal("quality out of range accepted")
	}
	dup := []WorkerSpec{{ID: "x", Quality: 0.5, Cost: 1}, {ID: "x", Quality: 0.6, Cost: 1}}
	if _, err := r.Register(context.Background(), dup, 0); !errors.Is(err, ErrDuplicateBatch) {
		t.Fatalf("duplicate batch: %v", err)
	}
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	// Atomicity: a batch with one existing id registers nothing.
	batch := []WorkerSpec{{ID: "new", Quality: 0.5, Cost: 1}, {ID: "a", Quality: 0.5, Cost: 1}}
	if _, err := r.Register(context.Background(), batch, 0); !errors.Is(err, ErrWorkerExists) {
		t.Fatalf("existing id: %v", err)
	}
	if _, err := r.Get("new"); !errors.Is(err, ErrWorkerUnknown) {
		t.Fatal("partial batch was applied")
	}
}

func TestRegistryIngestPosterior(t *testing.T) {
	r := NewRegistry()
	// Prior strength 8 at quality 0.8: Beta(6.4, 1.6).
	if _, err := r.Register(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}, 8); err != nil {
		t.Fatal(err)
	}
	updated, _, err := r.Ingest(context.Background(), []VoteEvent{{WorkerID: "a", Correct: false}})
	if err != nil {
		t.Fatal(err)
	}
	want := 6.4 / (6.4 + 2.6)
	if len(updated) != 1 || math.Abs(updated[0].Quality-want) > 1e-12 {
		t.Fatalf("posterior after one incorrect vote: %+v, want quality %v", updated, want)
	}
	if updated[0].Votes != 1 || updated[0].Correct != 0 || updated[0].Version != 2 {
		t.Fatalf("tallies wrong: %+v", updated[0])
	}
	// Many correct votes pull the posterior mean upward.
	events := make([]VoteEvent, 50)
	for i := range events {
		events[i] = VoteEvent{WorkerID: "a", Correct: true}
	}
	updated, _, err = r.Ingest(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	if q := updated[0].Quality; q <= 0.8 || q >= 1 {
		t.Fatalf("posterior after 50 correct votes = %v, want in (0.8, 1)", q)
	}
}

func TestRegistryIngestAtomicity(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	events := []VoteEvent{{WorkerID: "a", Correct: true}, {WorkerID: "ghost", Correct: true}}
	if _, _, err := r.Ingest(context.Background(), events); !errors.Is(err, ErrWorkerUnknown) {
		t.Fatalf("unknown worker: %v", err)
	}
	got, _ := r.Get("a")
	if got.Votes != 0 {
		t.Fatal("partial ingest was applied")
	}
}

func TestSnapshotSignatureDriftsWithQuality(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	_, _, sig1, err := r.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sig2, _ := r.Snapshot(nil)
	if sig1 != sig2 {
		t.Fatalf("signature not stable: %s vs %s", sig1, sig2)
	}
	if _, _, err := r.Ingest(context.Background(), []VoteEvent{{WorkerID: "b", Correct: true}}); err != nil {
		t.Fatal(err)
	}
	_, _, sig3, _ := r.Snapshot(nil)
	if sig3 == sig1 {
		t.Fatal("signature did not drift with a quality-changing ingest")
	}
}

func TestSnapshotSubsetCanonicalization(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	pool1, ids1, sig1, err := r.Snapshot([]string{"c", "a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	_, ids2, sig2, err := r.Snapshot([]string{"a", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if sig1 != sig2 {
		t.Fatalf("equivalent subsets got different signatures: %s vs %s", sig1, sig2)
	}
	if len(pool1) != 2 || ids1[0] != "a" || ids1[1] != "c" || ids2[0] != "a" {
		t.Fatalf("subset not canonicalized: %v %v", ids1, ids2)
	}
	if _, _, _, err := r.Snapshot([]string{"ghost"}); !errors.Is(err, ErrWorkerUnknown) {
		t.Fatalf("unknown subset member: %v", err)
	}
	empty := NewRegistry()
	if _, _, _, err := empty.Snapshot(nil); !errors.Is(err, ErrEmptyRegistry) {
		t.Fatalf("empty registry: %v", err)
	}
}

// TestSignatureUnambiguousWithCraftedIDs: without length-prefixed ids, a
// single worker whose id embeds another worker's serialized bytes hashes
// to the same stream as a two-worker pool — which would let a crafted
// registration alias two different pool states in the selection cache.
func TestSignatureUnambiguousWithCraftedIDs(t *testing.T) {
	q1, c1 := 0.8, 3.0
	var buf [8]byte
	crafted := []byte{'x', 0}
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(q1))
	crafted = append(crafted, buf[:]...)
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c1))
	crafted = append(crafted, buf[:]...)
	crafted = append(crafted, 'y')

	r1 := NewRegistry()
	if _, err := r1.Register(context.Background(), []WorkerSpec{{ID: string(crafted), Quality: 0.7, Cost: 2}}, 0); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if _, err := r2.Register(context.Background(), []WorkerSpec{
		{ID: "x", Quality: q1, Cost: c1},
		{ID: "y", Quality: 0.7, Cost: 2},
	}, 0); err != nil {
		t.Fatal(err)
	}
	sig1, err := r1.Signature()
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := r2.Signature()
	if err != nil {
		t.Fatal(err)
	}
	if sig1 == sig2 {
		t.Fatalf("crafted single-worker pool aliases a two-worker pool: %s", sig1)
	}
}

func TestRegistryUpdateRemove(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Ingest(context.Background(), []VoteEvent{{WorkerID: "a", Correct: false}}); err != nil {
		t.Fatal(err)
	}
	info, err := r.Update(context.Background(), WorkerSpec{ID: "a", Quality: 0.9, Cost: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Quality != 0.9 || info.Cost != 5 || info.Votes != 0 {
		t.Fatalf("update did not reset posterior: %+v", info)
	}
	if info.Version < 2 {
		t.Fatalf("version not bumped: %+v", info)
	}
	if err := r.Remove(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
	if err := r.Remove(context.Background(), "b"); !errors.Is(err, ErrWorkerUnknown) {
		t.Fatalf("double remove: %v", err)
	}
	list, _ := r.List()
	if list[0].ID != "a" || list[1].ID != "c" {
		t.Fatalf("order after remove: %+v", list)
	}
}
