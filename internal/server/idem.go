package server

// idemCapacity bounds one registry's idempotency-key table. Keys are
// evicted FIFO: a client retrying within any realistic backoff horizon
// is thousands of mutations away from eviction, while an unbounded
// table would let every keyed ingest leak memory forever.
const idemCapacity = 4096

// idemTable remembers the idempotency keys of applied ingests so a
// retried request (client timeout, 503 during drain, crash between ack
// and receipt) is applied exactly once. It is NOT internally locked:
// each table is owned by one registry and accessed under that
// registry's mutex, which also makes the insertion order identical to
// the WAL order — so a table rebuilt by replay matches the pre-crash
// table bit-exactly, eviction decisions included.
type idemTable struct {
	keys map[string]bool
	fifo []string // insertion order, oldest first
}

func newIdemTable() *idemTable {
	return &idemTable{keys: make(map[string]bool)}
}

// has reports whether key was seen (and not yet evicted).
func (t *idemTable) has(key string) bool { return t.keys[key] }

// add records key, evicting the oldest entry beyond capacity.
func (t *idemTable) add(key string) {
	if t.keys[key] {
		return
	}
	t.keys[key] = true
	t.fifo = append(t.fifo, key)
	if len(t.fifo) > idemCapacity {
		evict := t.fifo[0]
		t.fifo = t.fifo[1:]
		delete(t.keys, evict)
	}
}

// snapshot returns the live keys in insertion order, for persistence.
func (t *idemTable) snapshot() []string {
	if len(t.fifo) == 0 {
		return nil
	}
	return append([]string(nil), t.fifo...)
}

// load replaces the table contents with a snapshot's keys.
func (t *idemTable) load(keys []string) {
	t.keys = make(map[string]bool, len(keys))
	t.fifo = t.fifo[:0]
	for _, k := range keys {
		t.add(k)
	}
}
