package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugRoutes lists the routes served by DebugHandler, in the same
// "METHOD /path" shape as Server.Routes so the API-reference coverage
// test can hold API.md to them too.
func DebugRoutes() []string {
	return []string{
		"GET /debug/pprof/",
		"GET /debug/pprof/cmdline",
		"GET /debug/pprof/profile",
		"GET /debug/pprof/symbol",
		"GET /debug/pprof/trace",
	}
}

// DebugHandler serves net/http/pprof on a mux of its own. juryd binds it
// to a separate -debug-addr listener (typically loopback-only) so
// profiling endpoints never share a port with the public API: pprof's
// CPU profile and execution trace handlers can hold a request open for
// tens of seconds and expose internals no client should see.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}
