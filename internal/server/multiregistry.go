package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/multichoice"
	"repro/internal/obs"
)

// MaxLabels bounds a pool's label count. Confusion matrices are dense
// ℓ×ℓ (two per worker, counts plus posterior means) and the bucketed JQ
// DP is exponential in ℓ, so an unbounded ℓ would let one unauthenticated
// create request allocate arbitrary memory; real multi-choice tasks have
// a handful of labels.
const MaxLabels = 64

// Errors returned by the multi-choice registry.
var (
	ErrPoolUnknown   = errors.New("server: unknown multi-choice pool")
	ErrPoolExists    = errors.New("server: multi-choice pool already exists")
	ErrEmptyPoolName = errors.New("server: empty pool name")
	ErrBadSpec       = errors.New("server: bad multi-choice worker spec")
	ErrBadEvent      = errors.New("server: bad multi-choice vote event")
)

// multiWorkerState is the registry's record of one multi-choice worker:
// the public parameters plus a Dirichlet posterior per confusion row.
// confusion is kept equal to the per-row posterior means.
type multiWorkerState struct {
	id   string
	cost float64
	// counts[j][k] is the Dirichlet pseudo-count of voting k when the
	// truth is j, seeded from the registered matrix scaled by the prior
	// strength; each ingested event adds one count.
	counts    [][]float64
	confusion multichoice.ConfusionMatrix
	votes     int
	version   int64
}

func (w *multiWorkerState) info() MultiWorkerInfo {
	return MultiWorkerInfo{
		ID:              w.id,
		Confusion:       copyMatrix(w.confusion),
		Cost:            w.cost,
		Informativeness: multichoice.InformativenessScore(w.confusion),
		Votes:           w.votes,
		Version:         w.version,
	}
}

func copyMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// multiPool is one named pool: a label count and its workers in
// registration order.
type multiPool struct {
	name    string
	labels  int
	workers map[string]*multiWorkerState
	order   []string
	// sig is the memoized full-pool signature, refreshed by every
	// mutation under the registry's write lock.
	sig string
}

// MultiRegistry is the concurrency-safe resident store of multi-choice
// pools: pool creation, worker registration, and Dirichlet posterior
// re-estimation from graded multi-label vote events. Like the binary
// Registry, every observable pool state is identified by a signature —
// here a hash over the label count and each worker's (id, cost, full
// confusion matrix) — so the selection cache's consistency token covers
// the complete matrix state and any posterior drift invalidates
// structurally.
type MultiRegistry struct {
	mu    sync.RWMutex
	pools map[string]*multiPool
	order []string // creation order, for deterministic listings/snapshots
	gen   uint64
	// journal follows the binary Registry's contract: every mutation is
	// reserved under the write lock after validation, before it is
	// applied in memory, and the returned commit — which blocks until the
	// record is durable — runs after the lock is released (the context
	// carries the request trace).
	journal func(context.Context, *Record) (func() error, error)
	// barrier follows Registry.barrier: the duplicate-ack durability
	// wait, called without r.mu held.
	barrier func() error
	// idem remembers applied ingest idempotency keys registry-wide (one
	// table across pools; keys are client-unique regardless of target).
	// Guarded by mu, like the binary Registry's — see that field's note
	// on replay bit-exactness.
	idem *idemTable
}

// NewMultiRegistry returns an empty multi-choice registry.
func NewMultiRegistry() *MultiRegistry {
	return &MultiRegistry{pools: make(map[string]*multiPool), idem: newIdemTable()}
}

func (r *MultiRegistry) logLocked(ctx context.Context, rec *Record) (func() error, error) {
	if r.journal == nil {
		return commitNoop, nil
	}
	return r.journal(ctx, rec)
}

// resolveLabels determines the pool's label count from the request:
// explicit labels win; otherwise ℓ is inferred from the first explicit
// confusion matrix.
func resolveLabels(labels int, specs []MultiWorkerSpec) (int, error) {
	if labels == 0 {
		for _, spec := range specs {
			if spec.Confusion != nil {
				labels = len(spec.Confusion)
				break
			}
		}
		if labels == 0 {
			return 0, fmt.Errorf("%w: label count neither given nor inferable from a confusion matrix", ErrBadSpec)
		}
	}
	return labels, checkLabels(labels)
}

// checkLabels enforces the 2..MaxLabels range.
func checkLabels(labels int) error {
	if labels < 2 {
		return fmt.Errorf("%w: need at least 2 labels, got %d", multichoice.ErrBadMatrix, labels)
	}
	if labels > MaxLabels {
		return fmt.Errorf("%w: %d labels exceeds the maximum %d", multichoice.ErrBadMatrix, labels, MaxLabels)
	}
	return nil
}

// specMatrix materializes and validates the spec's confusion matrix for
// a pool with ℓ labels.
func specMatrix(spec MultiWorkerSpec, labels int) (multichoice.ConfusionMatrix, error) {
	if (spec.Confusion == nil) == (spec.Quality == nil) {
		return nil, fmt.Errorf("%w: worker %q must set exactly one of confusion and quality", ErrBadSpec, spec.ID)
	}
	if spec.Quality != nil {
		m, err := multichoice.NewSymmetricConfusion(labels, *spec.Quality)
		if err != nil {
			return nil, fmt.Errorf("worker %q: %w", spec.ID, err)
		}
		return m, nil
	}
	m := multichoice.ConfusionMatrix(copyMatrix(spec.Confusion))
	w := multichoice.Worker{ID: spec.ID, Confusion: m, Cost: spec.Cost}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if m.Labels() != labels {
		return nil, fmt.Errorf("%w: worker %q has %d labels, pool has %d",
			multichoice.ErrArity, spec.ID, m.Labels(), labels)
	}
	return m, nil
}

// validateMultiSpecs checks a registration batch against a pool of ℓ
// labels — ids non-empty and batch-unique, matrices valid, costs and
// prior strengths sane — and returns the materialized confusion matrix
// per spec, so the apply paths need not rebuild them.
func validateMultiSpecs(specs []MultiWorkerSpec, labels int) ([]multichoice.ConfusionMatrix, error) {
	seen := make(map[string]bool, len(specs))
	matrices := make([]multichoice.ConfusionMatrix, len(specs))
	for i, spec := range specs {
		if spec.ID == "" {
			return nil, ErrEmptyID
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateBatch, spec.ID)
		}
		seen[spec.ID] = true
		if spec.PriorStrength < 0 || spec.PriorStrength != spec.PriorStrength {
			return nil, fmt.Errorf("%w: %v (worker %q)", ErrBadPrior, spec.PriorStrength, spec.ID)
		}
		if spec.Cost < 0 || spec.Cost != spec.Cost {
			return nil, fmt.Errorf("%w: worker %q has negative cost %v", ErrBadSpec, spec.ID, spec.Cost)
		}
		m, err := specMatrix(spec, labels)
		if err != nil {
			return nil, err
		}
		matrices[i] = m
	}
	return matrices, nil
}

// newMultiState builds the Dirichlet-seeded state for a spec whose
// matrix m has been materialized by validateMultiSpecs: registering
// matrix C with strength s is treated as s past votes per row distributed
// as C's row, so early events move each row's posterior quickly without
// discarding the registered matrix outright.
func newMultiState(spec MultiWorkerSpec, m multichoice.ConfusionMatrix, defaultStrength float64) *multiWorkerState {
	s := spec.PriorStrength
	if s == 0 {
		s = defaultStrength
	}
	labels := m.Labels()
	counts := make([][]float64, labels)
	for j := range counts {
		counts[j] = make([]float64, labels)
		for k := range counts[j] {
			counts[j][k] = m[j][k] * s
		}
	}
	return &multiWorkerState{
		id:        spec.ID,
		cost:      spec.Cost,
		counts:    counts,
		confusion: m,
		version:   1,
	}
}

// CreatePool creates a new pool atomically with its initial workers (the
// worker list may be empty when labels is explicit). It returns the new
// pool's signature.
func (r *MultiRegistry) CreatePool(ctx context.Context, name string, labels int, specs []MultiWorkerSpec, defaultStrength float64) (string, error) {
	if name == "" {
		return "", ErrEmptyPoolName
	}
	if defaultStrength <= 0 {
		defaultStrength = DefaultPriorStrength
	}
	l, err := resolveLabels(labels, specs)
	if err != nil {
		return "", err
	}
	matrices, err := validateMultiSpecs(specs, l)
	if err != nil {
		return "", err
	}
	sig, commit, err := func() (string, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.pools[name]; ok {
			return "", nil, fmt.Errorf("%w: %q", ErrPoolExists, name)
		}
		rec := &Record{T: RecMultiCreate, Multi: &MultiRecord{
			Pool: name, Labels: l, Specs: specs, Strength: defaultStrength,
		}}
		commit, err := r.logLocked(ctx, rec)
		if err != nil {
			return "", nil, err
		}
		defer obs.TraceFrom(ctx).Begin(obs.StageApply).End()
		return r.applyCreateLocked(name, l, specs, matrices, defaultStrength), commit, nil
	}()
	if err != nil {
		return "", err
	}
	if err := commit(); err != nil {
		return "", err
	}
	return sig, nil
}

// applyCreateLocked performs a validated pool creation; shared by the
// live path and WAL replay. Callers hold r.mu and pass the matrices
// validateMultiSpecs materialized.
func (r *MultiRegistry) applyCreateLocked(name string, labels int, specs []MultiWorkerSpec, matrices []multichoice.ConfusionMatrix, strength float64) string {
	p := &multiPool{name: name, labels: labels, workers: make(map[string]*multiWorkerState, len(specs))}
	for i, spec := range specs {
		p.workers[spec.ID] = newMultiState(spec, matrices[i], strength)
		p.order = append(p.order, spec.ID)
	}
	r.pools[name] = p
	r.order = append(r.order, name)
	r.gen++
	p.sig = p.signature()
	return p.sig
}

// Register adds new workers to an existing pool atomically.
func (r *MultiRegistry) Register(ctx context.Context, pool string, specs []MultiWorkerSpec, defaultStrength float64) (string, int, error) {
	if len(specs) == 0 {
		return "", 0, fmt.Errorf("%w: no workers in request", ErrBadSpec)
	}
	if defaultStrength <= 0 {
		defaultStrength = DefaultPriorStrength
	}
	sig, workers, commit, err := func() (string, int, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		p, ok := r.pools[pool]
		if !ok {
			return "", 0, nil, fmt.Errorf("%w: %q", ErrPoolUnknown, pool)
		}
		matrices, err := validateMultiSpecs(specs, p.labels)
		if err != nil {
			return "", 0, nil, err
		}
		for _, spec := range specs {
			if _, ok := p.workers[spec.ID]; ok {
				return "", 0, nil, fmt.Errorf("%w: %q", ErrWorkerExists, spec.ID)
			}
		}
		rec := &Record{T: RecMultiRegister, Multi: &MultiRecord{
			Pool: pool, Specs: specs, Strength: defaultStrength,
		}}
		commit, err := r.logLocked(ctx, rec)
		if err != nil {
			return "", 0, nil, err
		}
		applySpan := obs.TraceFrom(ctx).Begin(obs.StageApply)
		r.applyRegisterLocked(p, specs, matrices, defaultStrength)
		applySpan.End()
		return p.sig, len(p.order), commit, nil
	}()
	if err != nil {
		return "", 0, err
	}
	if err := commit(); err != nil {
		return "", 0, err
	}
	return sig, workers, nil
}

// applyRegisterLocked performs a validated registration into an existing
// pool; shared by the live path and WAL replay. Callers hold r.mu and
// pass the matrices validateMultiSpecs materialized.
func (r *MultiRegistry) applyRegisterLocked(p *multiPool, specs []MultiWorkerSpec, matrices []multichoice.ConfusionMatrix, strength float64) {
	for i, spec := range specs {
		p.workers[spec.ID] = newMultiState(spec, matrices[i], strength)
		p.order = append(p.order, spec.ID)
	}
	r.gen++
	p.sig = p.signature()
}

// DropPool deletes a pool and all its workers.
func (r *MultiRegistry) DropPool(ctx context.Context, name string) error {
	commit, err := func() (func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.pools[name]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrPoolUnknown, name)
		}
		commit, err := r.logLocked(ctx, &Record{T: RecMultiDrop, Multi: &MultiRecord{Pool: name}})
		if err != nil {
			return nil, err
		}
		r.applyDropLocked(name)
		return commit, nil
	}()
	if err != nil {
		return err
	}
	return commit()
}

// applyDropLocked deletes a known pool; shared by the live path and WAL
// replay. Callers hold r.mu.
func (r *MultiRegistry) applyDropLocked(name string) {
	delete(r.pools, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.gen++
}

// validateEvents checks an ingest batch against a pool.
func validateEvents(p *multiPool, events []MultiVoteEvent) error {
	for _, ev := range events {
		if _, ok := p.workers[ev.WorkerID]; !ok {
			return fmt.Errorf("%w: %q", ErrWorkerUnknown, ev.WorkerID)
		}
		if ev.Truth < 0 || ev.Truth >= p.labels || ev.Vote < 0 || ev.Vote >= p.labels {
			return fmt.Errorf("%w: truth %d, vote %d outside [0, %d)",
				ErrBadEvent, ev.Truth, ev.Vote, p.labels)
		}
	}
	return nil
}

// Ingest applies a batch of graded multi-label vote events atomically.
// Each event is one Dirichlet posterior step: the (truth, vote) cell of
// the worker's pseudo-count matrix gains one count and row `truth` of
// the confusion matrix becomes that row's new posterior mean. It
// returns the updated states of the touched workers, in first-touch
// order, and the post-ingest pool signature.
func (r *MultiRegistry) Ingest(ctx context.Context, pool string, events []MultiVoteEvent) ([]MultiWorkerInfo, string, error) {
	out, sig, _, err := r.IngestKeyed(ctx, pool, events, "")
	return out, sig, err
}

// IngestKeyed is Ingest with a client-generated idempotency key,
// following Registry.IngestKeyed's contract: a repeated key applies
// nothing, journals nothing, and reports duplicate (with the pool's
// current signature when the pool still exists).
func (r *MultiRegistry) IngestKeyed(ctx context.Context, pool string, events []MultiVoteEvent, key string) (updated []MultiWorkerInfo, sig string, duplicate bool, err error) {
	if len(events) == 0 {
		return nil, "", false, fmt.Errorf("%w: no events in request", ErrBadEvent)
	}
	tr := obs.TraceFrom(ctx)
	updated, sig, duplicate, commit, err := func() ([]MultiWorkerInfo, string, bool, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if key != "" {
			idemSpan := tr.Begin(obs.StageIdem)
			dup := r.idem.has(key)
			idemSpan.End()
			if dup {
				sig := ""
				if p, ok := r.pools[pool]; ok {
					sig = p.sig
				}
				return nil, sig, true, commitNoop, nil
			}
		}
		p, ok := r.pools[pool]
		if !ok {
			return nil, "", false, nil, fmt.Errorf("%w: %q", ErrPoolUnknown, pool)
		}
		if err := validateEvents(p, events); err != nil {
			return nil, "", false, nil, err
		}
		rec := &Record{T: RecMultiIngest, Key: key, Multi: &MultiRecord{Pool: pool, Events: events}}
		commit, err := r.logLocked(ctx, rec)
		if err != nil {
			return nil, "", false, nil, err
		}
		if key != "" {
			r.idem.add(key)
		}
		applySpan := tr.Begin(obs.StageApply)
		touchOrder := r.applyIngestLocked(p, events)
		applySpan.End()
		out := make([]MultiWorkerInfo, len(touchOrder))
		for i, id := range touchOrder {
			out[i] = p.workers[id].info()
		}
		return out, p.sig, false, commit, nil
	}()
	if err != nil {
		return nil, "", false, err
	}
	if duplicate {
		// Same duplicate-ack rule as the binary registry: the original
		// record may still be in an unflushed batch, so wait out the
		// durability watermark before re-acknowledging it.
		if r.barrier != nil {
			if err := r.barrier(); err != nil {
				return nil, "", false, err
			}
		}
		return nil, sig, true, nil
	}
	if err := commit(); err != nil {
		return nil, "", false, err
	}
	return updated, sig, false, nil
}

// applyIngestLocked performs a validated ingest and returns the touched
// worker ids in first-touch order; shared by the live path and WAL
// replay. Callers hold r.mu and have validated every event.
func (r *MultiRegistry) applyIngestLocked(p *multiPool, events []MultiVoteEvent) []string {
	touched := make(map[string]bool, len(events))
	var touchOrder []string
	for _, ev := range events {
		w := p.workers[ev.WorkerID]
		w.counts[ev.Truth][ev.Vote]++
		var rowSum float64
		for _, c := range w.counts[ev.Truth] {
			rowSum += c
		}
		for k, c := range w.counts[ev.Truth] {
			w.confusion[ev.Truth][k] = c / rowSum
		}
		w.votes++
		w.version++
		if !touched[ev.WorkerID] {
			touched[ev.WorkerID] = true
			touchOrder = append(touchOrder, ev.WorkerID)
		}
	}
	r.gen++
	p.sig = p.signature()
	return touchOrder
}

// List returns every pool's summary in creation order.
func (r *MultiRegistry) List() []MultiPoolSummary {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MultiPoolSummary, len(r.order))
	for i, name := range r.order {
		p := r.pools[name]
		out[i] = MultiPoolSummary{Name: name, Labels: p.labels, Workers: len(p.order), Signature: p.sig}
	}
	return out
}

// Get returns one pool's full state.
func (r *MultiRegistry) Get(name string) (MultiPoolInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pools[name]
	if !ok {
		return MultiPoolInfo{}, fmt.Errorf("%w: %q", ErrPoolUnknown, name)
	}
	info := MultiPoolInfo{Name: name, Labels: p.labels, Signature: p.sig,
		Workers: make([]MultiWorkerInfo, len(p.order))}
	for i, id := range p.order {
		info.Workers[i] = p.workers[id].info()
	}
	return info, nil
}

// Len returns the number of pools.
func (r *MultiRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Snapshot materializes an immutable candidate pool for multi-choice
// selection: the named pool's workers (all, or the given subset) as a
// multichoice.Pool whose matrices share nothing with the registry, their
// ids, the state signature, and the label count. Subset requests are
// canonicalized (sorted, deduplicated) like the binary registry's.
func (r *MultiRegistry) Snapshot(pool string, ids []string) (multichoice.Pool, []string, string, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pools[pool]
	if !ok {
		return nil, nil, "", 0, fmt.Errorf("%w: %q", ErrPoolUnknown, pool)
	}
	sig := ""
	if len(ids) == 0 {
		if len(p.order) == 0 {
			return nil, nil, "", 0, ErrEmptyRegistry
		}
		ids = p.order
		sig = p.sig
	} else {
		for _, id := range ids {
			if _, ok := p.workers[id]; !ok {
				return nil, nil, "", 0, fmt.Errorf("%w: %q", ErrWorkerUnknown, id)
			}
		}
		uniq := make([]string, 0, len(ids))
		seen := make(map[string]bool, len(ids))
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				uniq = append(uniq, id)
			}
		}
		sort.Strings(uniq)
		ids = uniq
	}
	out := make(multichoice.Pool, len(ids))
	outIDs := make([]string, len(ids))
	for i, id := range ids {
		w := p.workers[id]
		out[i] = multichoice.Worker{ID: w.id, Confusion: copyMatrix(w.confusion), Cost: w.cost}
		outIDs[i] = id
	}
	if sig == "" {
		sig = p.signatureOf(ids)
	}
	return out, outIDs, sig, p.labels, nil
}

// Apply replays one journaled multi-registry record without
// re-journaling it — the recovery path. It revalidates like the live
// mutators so a logically corrupt log fails recovery instead of
// silently diverging.
func (r *MultiRegistry) Apply(rec *Record) error {
	mr := rec.Multi
	if mr == nil {
		return fmt.Errorf("server: %s record without multi payload", rec.T)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch rec.T {
	case RecMultiCreate:
		if mr.Pool == "" {
			return ErrEmptyPoolName
		}
		if _, ok := r.pools[mr.Pool]; ok {
			return fmt.Errorf("%w: %q", ErrPoolExists, mr.Pool)
		}
		if err := checkLabels(mr.Labels); err != nil {
			return err
		}
		matrices, err := validateMultiSpecs(mr.Specs, mr.Labels)
		if err != nil {
			return err
		}
		r.applyCreateLocked(mr.Pool, mr.Labels, mr.Specs, matrices, resolvedStrength(mr.Strength))
	case RecMultiRegister:
		p, ok := r.pools[mr.Pool]
		if !ok {
			return fmt.Errorf("%w: %q", ErrPoolUnknown, mr.Pool)
		}
		matrices, err := validateMultiSpecs(mr.Specs, p.labels)
		if err != nil {
			return err
		}
		for _, spec := range mr.Specs {
			if _, ok := p.workers[spec.ID]; ok {
				return fmt.Errorf("%w: %q", ErrWorkerExists, spec.ID)
			}
		}
		r.applyRegisterLocked(p, mr.Specs, matrices, resolvedStrength(mr.Strength))
	case RecMultiIngest:
		p, ok := r.pools[mr.Pool]
		if !ok {
			return fmt.Errorf("%w: %q", ErrPoolUnknown, mr.Pool)
		}
		if err := validateEvents(p, mr.Events); err != nil {
			return err
		}
		if rec.Key != "" {
			r.idem.add(rec.Key)
		}
		r.applyIngestLocked(p, mr.Events)
	case RecMultiDrop:
		if _, ok := r.pools[mr.Pool]; !ok {
			return fmt.Errorf("%w: %q", ErrPoolUnknown, mr.Pool)
		}
		r.applyDropLocked(mr.Pool)
	default:
		return fmt.Errorf("server: record type %q is not a multi-registry record", rec.T)
	}
	return nil
}

func resolvedStrength(s float64) float64 {
	if s <= 0 {
		return DefaultPriorStrength
	}
	return s
}

// persistState serializes the full multi registry (Dirichlet posteriors
// included) for a snapshot, pools in creation order.
func (r *MultiRegistry) persistState() multiRegistryState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := multiRegistryState{Gen: r.gen}
	for _, name := range r.order {
		p := r.pools[name]
		pp := multiPoolPersist{Name: name, Labels: p.labels,
			Workers: make([]multiWorkerPersist, len(p.order))}
		for i, id := range p.order {
			w := p.workers[id]
			pp.Workers[i] = multiWorkerPersist{
				ID:        w.id,
				Cost:      w.cost,
				Counts:    copyMatrix(w.counts),
				Confusion: copyMatrix(w.confusion),
				Votes:     w.votes,
				Version:   w.version,
			}
		}
		st.Pools = append(st.Pools, pp)
	}
	st.Idem = r.idem.snapshot()
	return st
}

// load replaces the registry contents with a snapshot's state — the
// recovery path, called before the server starts serving. The confusion
// matrices travel in the snapshot (rather than being re-derived from the
// counts) so recovered state is bit-identical to the pre-crash state.
func (r *MultiRegistry) load(st multiRegistryState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	pools := make(map[string]*multiPool, len(st.Pools))
	order := make([]string, 0, len(st.Pools))
	for _, pp := range st.Pools {
		if pp.Name == "" {
			return ErrEmptyPoolName
		}
		if _, ok := pools[pp.Name]; ok {
			return fmt.Errorf("%w: %q", ErrPoolExists, pp.Name)
		}
		if err := checkLabels(pp.Labels); err != nil {
			return fmt.Errorf("pool %q: %w", pp.Name, err)
		}
		p := &multiPool{name: pp.Name, labels: pp.Labels,
			workers: make(map[string]*multiWorkerState, len(pp.Workers))}
		for _, wp := range pp.Workers {
			if wp.ID == "" {
				return ErrEmptyID
			}
			if _, ok := p.workers[wp.ID]; ok {
				return fmt.Errorf("%w: %q", ErrDuplicateBatch, wp.ID)
			}
			m := multichoice.ConfusionMatrix(copyMatrix(wp.Confusion))
			if err := m.Validate(); err != nil {
				return fmt.Errorf("pool %q worker %q: %w", pp.Name, wp.ID, err)
			}
			if m.Labels() != pp.Labels || len(wp.Counts) != pp.Labels {
				return fmt.Errorf("%w: pool %q worker %q matrix shape", multichoice.ErrArity, pp.Name, wp.ID)
			}
			// The counts matrix feeds future ingests (row renormalization
			// indexes and divides by row sums), so a corrupt snapshot must
			// fail recovery here rather than panic or emit NaN rows later.
			for j, row := range wp.Counts {
				if len(row) != pp.Labels {
					return fmt.Errorf("%w: pool %q worker %q counts row %d", multichoice.ErrArity, pp.Name, wp.ID, j)
				}
				var rowSum float64
				for k, c := range row {
					if c < 0 || c != c || math.IsInf(c, 0) {
						return fmt.Errorf("%w: pool %q worker %q counts[%d][%d] = %v",
							multichoice.ErrBadMatrix, pp.Name, wp.ID, j, k, c)
					}
					rowSum += c
				}
				if rowSum <= 0 {
					return fmt.Errorf("%w: pool %q worker %q counts row %d sums to %v",
						multichoice.ErrBadMatrix, pp.Name, wp.ID, j, rowSum)
				}
			}
			p.workers[wp.ID] = &multiWorkerState{
				id:        wp.ID,
				cost:      wp.Cost,
				counts:    copyMatrix(wp.Counts),
				confusion: m,
				votes:     wp.Votes,
				version:   wp.Version,
			}
			p.order = append(p.order, wp.ID)
		}
		p.sig = p.signature()
		pools[pp.Name] = p
		order = append(order, pp.Name)
	}
	r.pools = pools
	r.order = order
	r.gen = st.Gen
	r.idem.load(st.Idem)
	return nil
}

// signature hashes the whole pool in registration order.
func (p *multiPool) signature() string {
	if len(p.order) == 0 {
		return p.signatureOf(nil)
	}
	return p.signatureOf(p.order)
}

// signatureOf hashes the label count and the (id, cost, confusion
// matrix) state of the given workers, in order. The full ℓ² matrix goes
// into the hash, so any Dirichlet posterior drift — in any row —
// changes the signature and structurally invalidates cached selections.
// Callers must hold the registry lock (either mode).
func (p *multiPool) signatureOf(ids []string) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.labels))
	h.Write(buf[:])
	for _, id := range ids {
		w := p.workers[id]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(id)))
		h.Write(buf[:])
		h.Write([]byte(id))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.cost))
		h.Write(buf[:])
		for _, row := range w.confusion {
			for _, v := range row {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
