package server

import (
	"repro/internal/obs"
	"repro/internal/voting"
)

// The JSON wire types of the juryd HTTP API, shared with the public client
// in repro/jury/serve. All endpoints speak JSON; errors are returned as
// ErrorResponse with a non-2xx status.

// WorkerSpec registers or updates one worker. Quality is the initial
// estimate of the worker's correctness probability; PriorStrength is the
// pseudo-count weight behind it (how many past votes the initial quality
// is worth when posterior updates fold in new evidence; 0 selects the
// server default).
type WorkerSpec struct {
	ID            string  `json:"id"`
	Quality       float64 `json:"quality"`
	Cost          float64 `json:"cost"`
	PriorStrength float64 `json:"prior_strength,omitempty"`
}

// WorkerInfo reports one registered worker's current state.
type WorkerInfo struct {
	ID string `json:"id"`
	// Quality is the posterior-mean correctness probability.
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
	// Votes is the number of ingested vote events; Correct how many of
	// them agreed with the ground truth.
	Votes   int `json:"votes"`
	Correct int `json:"correct"`
	// Version increments on every state change of this worker.
	Version int64 `json:"version"`
}

// RegisterRequest registers a batch of new workers. Registration is
// create-only and atomic: a batch containing any already-registered id is
// rejected whole with a 409. Use PUT /v1/workers/{id} to change an
// existing worker.
type RegisterRequest struct {
	Workers []WorkerSpec `json:"workers"`
}

// RegisterResponse confirms a registration.
type RegisterResponse struct {
	Registered int    `json:"registered"`
	PoolSize   int    `json:"pool_size"`
	Signature  string `json:"signature"`
}

// ListResponse lists the registry in registration order.
type ListResponse struct {
	Workers   []WorkerInfo `json:"workers"`
	Signature string       `json:"signature"`
}

// VoteEvent is one graded vote: worker w answered a task and the answer
// was or was not correct. Ingesting it updates the worker's Bayesian
// posterior (Beta pseudo-counts), which is what drifts qualities and
// invalidates cached selections.
type VoteEvent struct {
	WorkerID string `json:"worker_id"`
	Correct  bool   `json:"correct"`
}

// IngestRequest carries a batch of vote events.
type IngestRequest struct {
	Events []VoteEvent `json:"events"`
}

// IngestResponse reports the ingestion outcome.
type IngestResponse struct {
	Ingested int `json:"ingested"`
	// Updated lists the new state of every touched worker.
	Updated []WorkerInfo `json:"updated"`
	// Signature is the pool signature after ingestion.
	Signature string `json:"signature"`
	// Duplicate reports that the request's Idempotency-Key was already
	// applied: nothing changed (Ingested is 0) and the original
	// application stands — the retry succeeded by finding its work done.
	Duplicate bool `json:"duplicate,omitempty"`
}

// SelectRequest asks for the best jury within a budget.
type SelectRequest struct {
	Budget float64 `json:"budget"`
	// Alpha is the prior P(t=0); nil selects the server default.
	Alpha *float64 `json:"alpha,omitempty"`
	// Strategy picks the objective/search pair: "bv" (default; OPTJS),
	// "mv" (MVJS baseline), "bv-exact" (exact small-pool reference),
	// "greedy" (quality-descending greedy).
	Strategy string `json:"strategy,omitempty"`
	// WorkerIDs restricts the candidate pool to these workers; empty
	// selects over the whole registry.
	WorkerIDs []string `json:"worker_ids,omitempty"`
	// Seed overrides the server's annealing seed (it is part of the
	// cache key: different seeds may anneal to different juries).
	Seed *int64 `json:"seed,omitempty"`
}

// JuryMember is one selected worker as of the selection's pool snapshot.
type JuryMember struct {
	ID      string  `json:"id"`
	Quality float64 `json:"quality"`
	Cost    float64 `json:"cost"`
}

// SelectResponse is the selected jury.
type SelectResponse struct {
	Jury        []JuryMember `json:"jury"`
	JQ          float64      `json:"jq"`
	Cost        float64      `json:"cost"`
	Budget      float64      `json:"budget"`
	Alpha       float64      `json:"alpha"`
	Strategy    string       `json:"strategy"`
	Evaluations int          `json:"evaluations"`
	// Cached reports whether the selection was served from the cache.
	Cached bool `json:"cached"`
	// Signature identifies the exact candidate-pool state the jury was
	// computed against.
	Signature string `json:"signature"`
}

// BatchSelectRequest solves one selection per budget (a budget–quality
// table); the server fans the budgets out over its worker pool. The
// response's Selections[i] answers Budgets[i].
type BatchSelectRequest struct {
	Budgets   []float64 `json:"budgets"`
	Alpha     *float64  `json:"alpha,omitempty"`
	Strategy  string    `json:"strategy,omitempty"`
	WorkerIDs []string  `json:"worker_ids,omitempty"`
	Seed      *int64    `json:"seed,omitempty"`
}

// BatchSelectResponse carries one SelectResponse per requested budget, in
// request order.
type BatchSelectResponse struct {
	Selections []SelectResponse `json:"selections"`
}

// SessionRequest opens an online collection session (sequential vote
// collection with a Bayesian stopping rule).
type SessionRequest struct {
	// Alpha is the prior; nil selects the server default.
	Alpha *float64 `json:"alpha,omitempty"`
	// Confidence is the posterior threshold that stops collection.
	Confidence float64 `json:"confidence"`
	// Budget bounds the total vote cost; 0 means unlimited.
	Budget float64 `json:"budget,omitempty"`
	// MaxVotes bounds the number of votes; 0 means unlimited.
	MaxVotes int `json:"max_votes,omitempty"`
}

// SessionVoteRequest feeds one observed vote into a session. The vote's
// evidence weight is the worker's current registry quality. A vote whose
// cost exceeds the session's remaining budget is rejected with a 409 —
// unless no registered worker is affordable anymore, in which case the
// session finalizes with Stopped = "budget" (the rejected vote is not
// folded in) and the final state is returned. The affordability check is
// time-of-rejection: a worker registered concurrently with the rejected
// vote may or may not avert finalization, exactly as a worker hired a
// moment after a collection run ends would not reopen it.
type SessionVoteRequest struct {
	WorkerID string      `json:"worker_id"`
	Vote     voting.Vote `json:"vote"`
}

// SessionState reports a session's progress.
type SessionState struct {
	ID         string  `json:"id"`
	Decision   int     `json:"decision"`
	Confidence float64 `json:"confidence"`
	Votes      int     `json:"votes"`
	Cost       float64 `json:"cost"`
	Done       bool    `json:"done"`
	// Stopped is "confident", "budget" or "exhausted" when Done.
	Stopped string `json:"stopped,omitempty"`
}

// PersistenceStatus is the GET /debug/persistence body: the durability
// state of the daemon. Enabled is false (and every other field zero) for
// an in-memory server.
type PersistenceStatus struct {
	Enabled bool   `json:"enabled"`
	DataDir string `json:"data_dir,omitempty"`
	// Fsync reports whether the WAL flushes to stable storage per record.
	Fsync bool `json:"fsync,omitempty"`
	// GroupCommit reports whether concurrent mutations share fsyncs.
	GroupCommit bool `json:"group_commit,omitempty"`
	// NextLSN is the log sequence number the next mutation will get;
	// NextLSN-1 identifies the last journaled mutation (on a follower:
	// the last replicated record applied).
	NextLSN uint64 `json:"next_lsn,omitempty"`
	// DurableLSN is the durability watermark: every record at or below
	// it is on stable storage. Only records at or below it are shipped
	// to followers.
	DurableLSN uint64 `json:"durable_lsn,omitempty"`
	// Segments is the number of live WAL segment files.
	Segments int `json:"segments,omitempty"`
	// LastSnapshotLSN is the WAL position the newest snapshot covers.
	LastSnapshotLSN uint64 `json:"last_snapshot_lsn,omitempty"`
	// SnapshotsWritten counts snapshots taken by this process.
	SnapshotsWritten uint64 `json:"snapshots_written,omitempty"`
	// RecoveredAt is when this process finished recovery (RFC 3339).
	RecoveredAt string `json:"recovered_at,omitempty"`
	// Recovery describes what boot-time recovery found.
	Recovery *RecoveryStatus `json:"recovery,omitempty"`
	// StateSHA256 is the hex SHA-256 of the canonical state document —
	// the cross-node convergence check: two nodes with equal NextLSN and
	// equal StateSHA256 hold bit-identical state.
	StateSHA256 string `json:"state_sha256,omitempty"`
	// Repl reports the replication position of a follower; nil on a
	// primary.
	Repl *ReplStatus `json:"repl,omitempty"`
	// Epoch is the node's current promotion epoch (1 on a never-promoted
	// cluster; every promotion increments it).
	Epoch uint64 `json:"epoch,omitempty"`
	// Quorum is the configured total-copies requirement behind each
	// mutation ack (0 or 1: local durability only).
	Quorum int `json:"quorum,omitempty"`
	// Fenced reports that a newer primary holds FenceEpoch and this node
	// refuses all writes (421) until it rejoins as a follower.
	Fenced bool `json:"fenced,omitempty"`
	// FenceEpoch is the epoch that fenced this node; FencePrimary the new
	// primary's base URL when the fence carried one.
	FenceEpoch   uint64 `json:"fence_epoch,omitempty"`
	FencePrimary string `json:"fence_primary,omitempty"`
}

// ReplStatus reports a follower's replication position and lag (part of
// GET /debug/persistence on a follower; nil on a primary).
type ReplStatus struct {
	// Primary is the primary's base URL (the -follow flag).
	Primary string `json:"primary"`
	// Connected reports whether the replication stream is currently
	// healthy (the last contact succeeded).
	Connected bool `json:"connected"`
	// AppliedLSN is the last replicated record applied locally.
	AppliedLSN uint64 `json:"applied_lsn"`
	// PrimaryDurableLSN is the primary's durability watermark as of the
	// last stream contact.
	PrimaryDurableLSN uint64 `json:"primary_durable_lsn"`
	// LagRecords is PrimaryDurableLSN - AppliedLSN (0 when caught up).
	LagRecords uint64 `json:"lag_records"`
	// LagSeconds is how long the follower has gone without being provably
	// caught up to the primary's durable watermark; 0 when caught up now.
	LagSeconds float64 `json:"lag_seconds"`
	// LastContact is when the primary last answered a stream request
	// (RFC 3339); empty before the first contact.
	LastContact string `json:"last_contact,omitempty"`
	// Epoch is the epoch of the last applied promotion record (1 before
	// any promotion reached this follower).
	Epoch uint64 `json:"epoch,omitempty"`
}

// PromoteRequest is the body of POST /v1/repl/promote (may be empty).
type PromoteRequest struct {
	// Advertise is the base URL the promoted node should be reached at;
	// it rides along on the fence call to the old primary so clients
	// bounced there with 421 land on the new primary.
	Advertise string `json:"advertise,omitempty"`
}

// PromoteResponse reports a promotion's outcome.
type PromoteResponse struct {
	// Promoted is true when this call performed the follower→primary
	// switch; AlreadyPrimary when the node needed no promotion.
	Promoted       bool `json:"promoted"`
	AlreadyPrimary bool `json:"already_primary,omitempty"`
	// Epoch is the epoch the node now writes under; AppliedLSN the LSN
	// of the promotion record that opened it.
	Epoch      uint64 `json:"epoch"`
	AppliedLSN uint64 `json:"applied_lsn"`
	// OldPrimary is the primary this node was following; OldPrimaryFenced
	// whether the best-effort fence call landed there. When false the old
	// primary was unreachable (usually: dead) — deliver the fence before
	// letting it serve again, or wipe and re-bootstrap it.
	OldPrimary       string `json:"old_primary,omitempty"`
	OldPrimaryFenced bool   `json:"old_primary_fenced,omitempty"`
	// SupersededFenceEpoch is set when the node was fenced at promotion
	// time: the new epoch was opened past the fence epoch (fence+1 rather
	// than current+1) so the promoted primary is not outranked by its own
	// fence marker. Zero when the node was unfenced.
	SupersededFenceEpoch uint64 `json:"superseded_fence_epoch,omitempty"`
}

// FenceRequest is the body of POST /v1/repl/fence: a newer primary
// (epoch Epoch, reachable at Primary) exists; the receiving node must
// stop acknowledging writes.
type FenceRequest struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
}

// FenceResponse confirms a fence call.
type FenceResponse struct {
	// Fenced reports whether the node is now refusing writes (false only
	// if it has itself already advanced past the fencing epoch).
	Fenced bool `json:"fenced"`
	// Epoch and Primary echo the effective fence.
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
	// CurrentEpoch is the node's own epoch.
	CurrentEpoch uint64 `json:"current_epoch"`
}

// RepointRequest is the body of POST /v1/repl/repoint: retarget this
// follower's replication stream at a new primary after a promotion.
type RepointRequest struct {
	Primary string `json:"primary"`
}

// RepointResponse confirms a repoint.
type RepointResponse struct {
	Primary string `json:"primary"`
}

// RecoveryStatus reports what boot-time recovery reconstructed.
type RecoveryStatus struct {
	// SnapshotLSN is the WAL position of the snapshot recovery loaded;
	// 0 means no snapshot existed and the whole log was replayed.
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// RecordsReplayed is how many WAL records were applied on top.
	RecordsReplayed int `json:"records_replayed"`
	// TornBytesTruncated is how many trailing bytes of the newest WAL
	// segment were dropped as a torn (crash-interrupted) record.
	TornBytesTruncated int64 `json:"torn_bytes_truncated"`
	// WorkersRestored, SessionsRestored and MultiPoolsRestored count the
	// recovered state.
	WorkersRestored    int `json:"workers_restored"`
	SessionsRestored   int `json:"sessions_restored"`
	MultiPoolsRestored int `json:"multi_pools_restored"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DebugTracesResponse is the body of GET /debug/traces: the most recent
// finished request traces and the slowest seen since boot, each with its
// stage-level spans.
type DebugTracesResponse struct {
	// Enabled reports whether tracing is on (Config.TraceBuffer >= 0).
	Enabled bool `json:"enabled"`
	// Count is how many traces have been recorded since boot (the ring
	// only retains the newest Config.TraceBuffer of them).
	Count uint64 `json:"count"`
	// Recent holds the newest finished traces, newest first.
	Recent []obs.TraceSnapshot `json:"recent"`
	// Slowest holds the slowest finished traces, slowest first.
	Slowest []obs.TraceSnapshot `json:"slowest"`
}
