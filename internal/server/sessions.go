package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/online"
	"repro/internal/voting"
)

// ErrSessionUnknown is returned for requests against a missing session id.
var ErrSessionUnknown = errors.New("server: unknown session")

// defaultMaxSessions bounds resident sessions. When the cap is hit, Open
// first reaps finished and long-idle sessions; only if every resident
// session is live does opening another one fail.
const defaultMaxSessions = 10000

// sessionIdleTTL is how long an unfinished session may sit untouched
// before the reaper may reclaim it under cap pressure.
const sessionIdleTTL = time.Hour

// sessionStore holds the live online-collection sessions. Each session
// wraps an online.Session (the incremental Bayesian stopping rule) behind
// its own lock so votes for different sessions never contend.
type sessionStore struct {
	mu   sync.RWMutex
	next uint64
	cap  int
	now  func() time.Time // injectable clock for tests
	live map[string]*liveSession
}

type liveSession struct {
	mu        sync.Mutex
	id        string
	sess      *online.Session
	lastTouch time.Time
}

func newSessionStore() *sessionStore {
	return &sessionStore{
		cap:  defaultMaxSessions,
		now:  time.Now,
		live: make(map[string]*liveSession),
	}
}

// Open starts a session and returns its id and initial state.
func (st *sessionStore) Open(cfg online.Config) (SessionState, error) {
	sess, err := online.NewSession(cfg)
	if err != nil {
		return SessionState{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.live) >= st.cap {
		st.reapLocked()
	}
	if len(st.live) >= st.cap {
		return SessionState{}, fmt.Errorf("server: session limit (%d) reached", st.cap)
	}
	st.next++
	id := "s" + strconv.FormatUint(st.next, 10)
	ls := &liveSession{id: id, sess: sess, lastTouch: st.now()}
	st.live[id] = ls
	return sessionState(id, sess.State()), nil
}

// reapLocked drops sessions that are Done (their result has been
// delivered to the caller that finished them) or idle past
// sessionIdleTTL (abandoned by their client). Callers hold st.mu.
func (st *sessionStore) reapLocked() {
	cutoff := st.now().Add(-sessionIdleTTL)
	for id, ls := range st.live {
		ls.mu.Lock()
		dead := ls.sess.State().Done || ls.lastTouch.Before(cutoff)
		ls.mu.Unlock()
		if dead {
			delete(st.live, id)
		}
	}
}

// Get returns a session's current state.
func (st *sessionStore) Get(id string) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.lastTouch = st.now()
	return sessionState(id, ls.sess.State()), nil
}

// Observe feeds one vote (weighted by the worker's quality and cost) into
// a session.
func (st *sessionStore) Observe(id string, quality, cost float64, v voting.Vote) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.lastTouch = st.now()
	state, err := ls.sess.Observe(quality, cost, v)
	return sessionState(id, state), err
}

// BudgetRemaining returns how much of the session's budget is unspent,
// and whether the session is budget-bounded at all.
func (st *sessionStore) BudgetRemaining(id string) (float64, bool, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return 0, false, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	cfg := ls.sess.Config()
	if cfg.Budget == 0 {
		return 0, false, nil
	}
	return cfg.Budget - ls.sess.State().Cost, true, nil
}

// MarkBudgetExhausted finalizes a session with the "budget" stop reason.
func (st *sessionStore) MarkBudgetExhausted(id string) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return sessionState(id, ls.sess.MarkBudgetExhausted()), nil
}

// Close removes a session.
func (st *sessionStore) Close(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.live[id]; !ok {
		return fmt.Errorf("%w: %q", ErrSessionUnknown, id)
	}
	delete(st.live, id)
	return nil
}

// Len returns the number of live sessions.
func (st *sessionStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.live)
}

func (st *sessionStore) lookup(id string) (*liveSession, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ls, ok := st.live[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
	}
	return ls, nil
}

func sessionState(id string, s online.State) SessionState {
	out := SessionState{
		ID:         id,
		Decision:   int(s.Decision),
		Confidence: s.Confidence,
		Votes:      s.Votes,
		Cost:       s.Cost,
		Done:       s.Done,
	}
	if s.Done {
		out.Stopped = s.Stopped.String()
	}
	return out
}
