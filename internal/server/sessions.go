package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/voting"
)

// ErrSessionUnknown is returned for requests against a missing session id.
var ErrSessionUnknown = errors.New("server: unknown session")

// defaultMaxSessions bounds resident sessions. When the cap is hit, Open
// first reaps finished and long-idle sessions; only if every resident
// session is live does opening another one fail.
const defaultMaxSessions = 10000

// sessionIdleTTL is how long an unfinished session may sit untouched
// before the reaper may reclaim it under cap pressure.
const sessionIdleTTL = time.Hour

// sessionStore holds the live online-collection sessions. Each session
// wraps an online.Session (the incremental Bayesian stopping rule) behind
// its own lock so votes for different sessions never contend.
type sessionStore struct {
	mu   sync.RWMutex
	next uint64
	cap  int
	now  func() time.Time // injectable clock for tests
	live map[string]*liveSession
	// journal, when set, reserves a WAL record for every session mutation
	// under the lock that orders it, after validation but before the
	// mutation is applied; the returned commit blocks until the record is
	// durable and must run after that lock is released (see
	// Registry.journal for the contract; the context carries the request
	// trace).
	journal func(context.Context, *Record) (func() error, error)
}

type liveSession struct {
	mu        sync.Mutex
	id        string
	sess      *online.Session
	lastTouch time.Time
	// closed marks a session whose close/reap record is already in the
	// journal. It is set under mu in the same critical section that
	// journals the deletion, and every per-session mutator checks it
	// after locking mu: a voter that looked the session up just before
	// it was closed must not journal a vote *after* the close record —
	// replay would apply the close first and fail on the orphaned vote,
	// poisoning the log.
	closed bool
}

func newSessionStore() *sessionStore {
	return &sessionStore{
		cap:  defaultMaxSessions,
		now:  time.Now,
		live: make(map[string]*liveSession),
	}
}

// Open starts a session and returns its id and initial state.
func (st *sessionStore) Open(ctx context.Context, cfg online.Config) (SessionState, error) {
	sess, err := online.NewSession(cfg)
	if err != nil {
		return SessionState{}, err
	}
	state, commits, err := func() (SessionState, []func() error, error) {
		st.mu.Lock()
		defer st.mu.Unlock()
		var commits []func() error
		if len(st.live) >= st.cap {
			reapCommit, err := st.reapLocked(ctx)
			if err != nil {
				return SessionState{}, nil, err
			}
			commits = append(commits, reapCommit)
		}
		if len(st.live) >= st.cap {
			// The reap (if any) is already journaled; its commit still
			// runs below even though the open itself fails.
			return SessionState{}, commits, fmt.Errorf("server: session limit (%d) reached", st.cap)
		}
		n := st.next + 1
		id := "s" + strconv.FormatUint(n, 10)
		commit := commitNoop
		if st.journal != nil {
			cfgCopy := cfg
			var err error
			commit, err = st.journal(ctx, &Record{T: RecSessionOpen, Session: &SessionRecord{
				ID: id, Next: n, Config: &cfgCopy,
			}})
			if err != nil {
				return SessionState{}, commits, err
			}
		}
		st.next = n
		ls := &liveSession{id: id, sess: sess, lastTouch: st.now()}
		st.live[id] = ls
		return sessionState(id, sess.State()), append(commits, commit), nil
	}()
	for _, commit := range commits {
		if cerr := commit(); cerr != nil {
			return SessionState{}, cerr
		}
	}
	if err != nil {
		return SessionState{}, err
	}
	return state, nil
}

// reapLocked drops sessions that are Done (their result has been
// delivered to the caller that finished them) or idle past
// sessionIdleTTL (abandoned by their client). The dropped ids are
// journaled as one reap record — reaping depends on the wall clock, so
// replay must take the decision from the log, not remake it. Every dead
// session's lock is held from the liveness check through the journal
// reservation and the closed-mark, so no concurrent voter can slip a
// vote record behind the reap record (see liveSession.closed). Callers
// hold st.mu, run the returned commit after releasing it, and hold
// several ls.mu at once safely because reap and Close (the only
// deletion paths) are serialized by st.mu, and voters never hold more
// than one.
func (st *sessionStore) reapLocked(ctx context.Context) (func() error, error) {
	cutoff := st.now().Add(-sessionIdleTTL)
	var dead []*liveSession
	for _, ls := range st.live {
		ls.mu.Lock()
		if ls.sess.State().Done || ls.lastTouch.Before(cutoff) {
			dead = append(dead, ls) // keep locked until deletion commits
		} else {
			ls.mu.Unlock()
		}
	}
	if len(dead) == 0 {
		return commitNoop, nil
	}
	sort.Slice(dead, func(i, j int) bool { return sessionIDLess(dead[i].id, dead[j].id) })
	ids := make([]string, len(dead))
	for i, ls := range dead {
		ids[i] = ls.id
	}
	commit := commitNoop
	if st.journal != nil {
		var err error
		commit, err = st.journal(ctx, &Record{T: RecSessionReap, Session: &SessionRecord{Reaped: ids}})
		if err != nil {
			for _, ls := range dead {
				ls.mu.Unlock()
			}
			return nil, err
		}
	}
	for _, ls := range dead {
		ls.closed = true
		ls.mu.Unlock()
		delete(st.live, ls.id)
	}
	return commit, nil
}

// Get returns a session's current state.
func (st *sessionStore) Get(id string) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return SessionState{}, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
	}
	ls.lastTouch = st.now()
	return sessionState(id, ls.sess.State()), nil
}

// Observe feeds one vote (weighted by the worker's quality and cost) into
// a session.
func (st *sessionStore) Observe(ctx context.Context, id string, quality, cost float64, v voting.Vote) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	state, commit, err := func() (SessionState, func() error, error) {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		if ls.closed {
			return SessionState{}, nil, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
		}
		ls.lastTouch = st.now()
		if err := ls.sess.Check(quality, cost); err != nil {
			return sessionState(id, ls.sess.State()), nil, err
		}
		commit := commitNoop
		if st.journal != nil {
			// The worker's quality and cost at ingest time travel in the
			// record, so replaying the vote is exact whatever the registry
			// looked like.
			var err error
			commit, err = st.journal(ctx, &Record{T: RecSessionVote, Session: &SessionRecord{
				ID: id, Quality: quality, Cost: cost, Vote: int(v),
			}})
			if err != nil {
				return sessionState(id, ls.sess.State()), nil, err
			}
		}
		applySpan := obs.TraceFrom(ctx).Begin(obs.StageApply)
		state, err := ls.sess.Observe(quality, cost, v)
		applySpan.End()
		return sessionState(id, state), commit, err
	}()
	if err != nil {
		return state, err
	}
	if err := commit(); err != nil {
		return state, err
	}
	return state, nil
}

// BudgetRemaining returns how much of the session's budget is unspent,
// and whether the session is budget-bounded at all.
func (st *sessionStore) BudgetRemaining(id string) (float64, bool, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return 0, false, err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return 0, false, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
	}
	cfg := ls.sess.Config()
	if cfg.Budget == 0 {
		return 0, false, nil
	}
	return cfg.Budget - ls.sess.State().Cost, true, nil
}

// MarkBudgetExhausted finalizes a session with the "budget" stop reason.
func (st *sessionStore) MarkBudgetExhausted(ctx context.Context, id string) (SessionState, error) {
	ls, err := st.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	state, commit, err := func() (SessionState, func() error, error) {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		if ls.closed {
			return SessionState{}, nil, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
		}
		commit := commitNoop
		if !ls.sess.State().Done && st.journal != nil {
			var err error
			commit, err = st.journal(ctx, &Record{T: RecSessionBudget, Session: &SessionRecord{ID: id}})
			if err != nil {
				return sessionState(id, ls.sess.State()), nil, err
			}
		}
		return sessionState(id, ls.sess.MarkBudgetExhausted()), commit, nil
	}()
	if err != nil {
		return state, err
	}
	if err := commit(); err != nil {
		return state, err
	}
	return state, nil
}

// Close removes a session. The close record is journaled while holding
// the session's own lock, so a voter racing the close either lands its
// vote record before the close record (and replay applies both, in
// order) or observes the closed mark and journals nothing.
func (st *sessionStore) Close(ctx context.Context, id string) error {
	commit, err := func() (func() error, error) {
		st.mu.Lock()
		defer st.mu.Unlock()
		ls, ok := st.live[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
		}
		ls.mu.Lock()
		commit := commitNoop
		if st.journal != nil {
			var err error
			commit, err = st.journal(ctx, &Record{T: RecSessionClose, Session: &SessionRecord{ID: id}})
			if err != nil {
				ls.mu.Unlock()
				return nil, err
			}
		}
		ls.closed = true
		ls.mu.Unlock()
		delete(st.live, id)
		return commit, nil
	}()
	if err != nil {
		return err
	}
	return commit()
}

// Len returns the number of live sessions.
func (st *sessionStore) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.live)
}

func (st *sessionStore) lookup(id string) (*liveSession, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ls, ok := st.live[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionUnknown, id)
	}
	return ls, nil
}

// Apply replays one journaled session record without re-journaling it —
// the recovery path. Replay bypasses the session cap and the reaper:
// which sessions exist is decided by the log, not remade from the clock.
func (st *sessionStore) Apply(rec *Record) error {
	sr := rec.Session
	if sr == nil {
		return fmt.Errorf("server: %s record without session payload", rec.T)
	}
	switch rec.T {
	case RecSessionOpen:
		if sr.Config == nil {
			return fmt.Errorf("server: session-open record without config")
		}
		sess, err := online.NewSession(*sr.Config)
		if err != nil {
			return err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		if _, ok := st.live[sr.ID]; ok {
			return fmt.Errorf("server: replayed duplicate session %q", sr.ID)
		}
		if sr.Next > st.next {
			st.next = sr.Next
		}
		st.live[sr.ID] = &liveSession{id: sr.ID, sess: sess, lastTouch: st.now()}
	case RecSessionVote:
		ls, err := st.lookup(sr.ID)
		if err != nil {
			return err
		}
		ls.mu.Lock()
		defer ls.mu.Unlock()
		if _, err := ls.sess.Observe(sr.Quality, sr.Cost, voting.Vote(sr.Vote)); err != nil {
			return fmt.Errorf("server: replay vote on %q: %w", sr.ID, err)
		}
	case RecSessionBudget:
		ls, err := st.lookup(sr.ID)
		if err != nil {
			return err
		}
		ls.mu.Lock()
		defer ls.mu.Unlock()
		ls.sess.MarkBudgetExhausted()
	case RecSessionClose:
		st.mu.Lock()
		defer st.mu.Unlock()
		if _, ok := st.live[sr.ID]; !ok {
			return fmt.Errorf("%w: %q", ErrSessionUnknown, sr.ID)
		}
		delete(st.live, sr.ID)
	case RecSessionReap:
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, id := range sr.Reaped {
			if _, ok := st.live[id]; !ok {
				return fmt.Errorf("%w: reaped %q", ErrSessionUnknown, id)
			}
			delete(st.live, id)
		}
	default:
		return fmt.Errorf("server: record type %q is not a session record", rec.T)
	}
	return nil
}

// persistState serializes the live sessions for a snapshot, ordered by
// session id so the document is deterministic.
func (st *sessionStore) persistState() sessionsState {
	st.mu.RLock()
	defer st.mu.RUnlock()
	ids := make([]string, 0, len(st.live))
	for id := range st.live {
		ids = append(ids, id)
	}
	sortSessionIDs(ids)
	out := sessionsState{Next: st.next}
	for _, id := range ids {
		ls := st.live[id]
		ls.mu.Lock()
		out.Sessions = append(out.Sessions, sessionPersist{ID: id, State: ls.sess.Snapshot()})
		ls.mu.Unlock()
	}
	return out
}

// load replaces the store contents with a snapshot's state — the
// recovery path, called before the server starts serving. Idle clocks
// restart at recovery time: a session that survived a crash should not be
// reaped for pre-crash idleness.
func (st *sessionStore) load(state sessionsState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	live := make(map[string]*liveSession, len(state.Sessions))
	for _, sp := range state.Sessions {
		if sp.ID == "" {
			return errors.New("server: session snapshot with empty id")
		}
		if _, ok := live[sp.ID]; ok {
			return fmt.Errorf("server: duplicate session %q in snapshot", sp.ID)
		}
		sess, err := online.RestoreSession(sp.State)
		if err != nil {
			return fmt.Errorf("server: restore session %q: %w", sp.ID, err)
		}
		live[sp.ID] = &liveSession{id: sp.ID, sess: sess, lastTouch: st.now()}
	}
	st.live = live
	st.next = state.Next
	return nil
}

func sessionState(id string, s online.State) SessionState {
	out := SessionState{
		ID:         id,
		Decision:   int(s.Decision),
		Confidence: s.Confidence,
		Votes:      s.Votes,
		Cost:       s.Cost,
		Done:       s.Done,
	}
	if s.Done {
		out.Stopped = s.Stopped.String()
	}
	return out
}
