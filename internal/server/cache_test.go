package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func key(sig string, budget float64) SelectionKey {
	return SelectionKey{Signature: sig, Strategy: "bv", Budget: budget, Alpha: 0.5, Seed: 1}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewSelectionCache(8)
	k := key("sig1", 10)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, SelectResponse{JQ: 0.9})
	res, ok := c.Get(k)
	if !ok || res.JQ != 0.9 {
		t.Fatalf("Get after Put = %+v, %v", res, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewSelectionCache(8)
	base := SelectionKey{Signature: "sig", Strategy: "bv", Budget: 10, Alpha: 0.5, Seed: 1}
	c.Put(base, SelectResponse{JQ: 1})
	variants := []SelectionKey{
		{Signature: "sig2", Strategy: "bv", Budget: 10, Alpha: 0.5, Seed: 1},
		{Signature: "sig", Strategy: "mv", Budget: 10, Alpha: 0.5, Seed: 1},
		{Signature: "sig", Strategy: "bv", Budget: 11, Alpha: 0.5, Seed: 1},
		{Signature: "sig", Strategy: "bv", Budget: 10, Alpha: 0.6, Seed: 1},
		{Signature: "sig", Strategy: "bv", Budget: 10, Alpha: 0.5, Seed: 2},
	}
	for _, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %v aliased with %v", k, base)
		}
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("base key lost")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewSelectionCache(2)
	c.Put(key("s", 1), SelectResponse{JQ: 1})
	c.Put(key("s", 2), SelectResponse{JQ: 2})
	if _, ok := c.Get(key("s", 1)); !ok { // promote budget 1
		t.Fatal("entry 1 missing")
	}
	c.Put(key("s", 3), SelectResponse{JQ: 3}) // evicts budget 2 (LRU)
	if _, ok := c.Get(key("s", 2)); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get(key("s", 1)); !ok {
		t.Fatal("promoted entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewSelectionCache(-1)
	c.Put(key("s", 1), SelectResponse{JQ: 1})
	if _, ok := c.Get(key("s", 1)); ok {
		t.Fatal("disabled cache served an entry")
	}
}

// TestServerCacheInvalidationOnDrift is the acceptance-criteria test at the
// server level: a repeated selection on an unchanged pool hits the cache,
// and a quality-changing vote ingest invalidates it (the recompute sees
// the drifted pool).
func TestServerCacheInvalidationOnDrift(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	if _, err := s.registry.Register(context.Background(), specs3(), 0); err != nil {
		t.Fatal(err)
	}
	req := SelectRequest{Budget: 6}

	first, err := s.selectOne(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first selection claims to be cached")
	}
	second, err := s.selectOne(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated selection on unchanged pool was not served from cache")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache counters = %+v, want 1 hit / 1 miss", st)
	}
	if second.JQ != first.JQ || second.Signature != first.Signature {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}

	// Quality-changing ingest: the pool signature drifts, so the cached
	// jury is unreachable and the next selection recomputes.
	if _, _, err := s.registry.Ingest(context.Background(), []VoteEvent{{WorkerID: "a", Correct: false}}); err != nil {
		t.Fatal(err)
	}
	third, err := s.selectOne(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("selection after quality drift was served from a stale cache entry")
	}
	if third.Signature == first.Signature {
		t.Fatal("signature did not change after ingest")
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("cache counters after drift = %+v, want 1 hit / 2 misses", st)
	}
}

// TestConcurrentIngestAndSelect exercises the registry/cache pair under
// concurrent quality drift and selection; run with -race it is the
// subsystem's data-race gate.
func TestConcurrentIngestAndSelect(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1, CacheSize: 64})
	specs := make([]WorkerSpec, 12)
	for i := range specs {
		specs[i] = WorkerSpec{
			ID:      fmt.Sprintf("w%d", i),
			Quality: 0.55 + 0.03*float64(i%10),
			Cost:    1 + float64(i%4),
		}
	}
	if _, err := s.registry.Register(context.Background(), specs, 0); err != nil {
		t.Fatal(err)
	}
	const perWorker = 30
	var wg sync.WaitGroup
	errs := make(chan error, 4*perWorker)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ev := VoteEvent{WorkerID: fmt.Sprintf("w%d", (g*7+i)%len(specs)), Correct: i%3 != 0}
				if _, _, err := s.registry.Ingest(context.Background(), []VoteEvent{ev}); err != nil {
					errs <- err
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.selectOne(context.Background(), SelectRequest{Budget: float64(3 + (g+i)%5)}); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits+st.Misses != 2*perWorker {
		t.Fatalf("lookup count = %d, want %d", st.Hits+st.Misses, 2*perWorker)
	}
}
