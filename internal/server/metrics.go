package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the upper bounds (seconds) of the per-route request
// latency histogram, log-spaced from 100µs to 2.5s; observations above
// the last bound land in the implicit +Inf bucket. The range covers the
// serving spectrum from cache hits (~sub-millisecond) to cold annealing
// searches on large pools.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics collects the daemon's operational counters. All methods are safe
// for concurrent use; rendering is Prometheus-style text exposition so the
// /metrics endpoint can be scraped or eyeballed with curl.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics // per-route counters and histograms
	errors uint64                   // non-2xx replies

	votesIngested    atomic.Uint64
	selections       atomic.Uint64 // selections computed (cache misses)
	selectionLatency atomic.Int64  // cumulative compute time, nanoseconds
	sessionsOpened   atomic.Uint64
	sessionsFinished atomic.Uint64

	walErrors        atomic.Uint64 // WAL append/fsync failures (each one degrades)
	snapshotErrors   atomic.Uint64 // failed snapshot attempts (non-degrading)
	loadShed         atomic.Uint64 // requests shed with 429 by admission control
	ingestDuplicates atomic.Uint64 // keyed ingests answered from the dedup table
	quorumTimeouts   atomic.Uint64 // mutations durable locally but unconfirmed by the follower quorum
	fenceErrors      atomic.Uint64 // fence marker persist failures (fence held in memory only)

	// walBatch is a histogram of records-per-flush under group commit:
	// bucket i counts flushes with at most walBatchBuckets[i] records,
	// the last element the overflow; walBatchSum totals the records.
	walBatch    [len(walBatchBuckets) + 1]atomic.Uint64
	walBatchSum atomic.Uint64
}

// walBatchBuckets are the upper bounds of the juryd_wal_batch_records
// histogram: how many journal records one fsync absorbed. Powers of two
// up to 256 cover everything a sane MaxBatchBytes allows.
var walBatchBuckets = [...]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// routeMetrics is one route's completed-request count, its non-2xx
// count, and its latency histogram: buckets holds non-cumulative counts
// per LatencyBuckets bound, with the final element the +Inf overflow;
// sum is total observed seconds.
type routeMetrics struct {
	requests uint64
	errors   uint64
	buckets  []uint64
	sum      float64
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeMetrics)}
}

// Request records one completed request for a route pattern: the
// counter, the error counter for non-2xx statuses, and the latency
// histogram observation.
func (m *Metrics) Request(route string, status int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{buckets: make([]uint64, len(LatencyBuckets)+1)}
		m.routes[route] = rm
	}
	rm.requests++
	rm.sum += secs
	idx := len(LatencyBuckets) // +Inf
	for i, le := range LatencyBuckets {
		if secs <= le {
			idx = i
			break
		}
	}
	rm.buckets[idx]++
	if status >= 400 {
		rm.errors++
		m.errors++
	}
	m.mu.Unlock()
}

// VoteIngested adds n ingested vote events.
func (m *Metrics) VotesIngested(n int) { m.votesIngested.Add(uint64(n)) }

// SelectionComputed records one cache-missing selection and its latency.
func (m *Metrics) SelectionComputed(d time.Duration) {
	m.selections.Add(1)
	m.selectionLatency.Add(int64(d))
}

// SessionOpened / SessionFinished track online-session lifecycle.
func (m *Metrics) SessionOpened()   { m.sessionsOpened.Add(1) }
func (m *Metrics) SessionFinished() { m.sessionsFinished.Add(1) }

// WALError records one WAL disk failure (the append that degraded the
// server, or would have if it were not already degraded).
func (m *Metrics) WALError() { m.walErrors.Add(1) }

// SnapshotError records one failed snapshot attempt.
func (m *Metrics) SnapshotError() { m.snapshotErrors.Add(1) }

// LoadShed records one request refused with 429 by admission control.
func (m *Metrics) LoadShed() { m.loadShed.Add(1) }

// IngestDuplicate records one keyed ingest deduplicated server-side.
func (m *Metrics) IngestDuplicate() { m.ingestDuplicates.Add(1) }

// QuorumTimeout records one mutation refused with 503 because the
// follower quorum did not confirm its LSN in time.
func (m *Metrics) QuorumTimeout() { m.quorumTimeouts.Add(1) }

// FenceError records one failed fence.json persist: the fence holds in
// memory but would not survive a restart until delivered again.
func (m *Metrics) FenceError() { m.fenceErrors.Add(1) }

// WALBatch records one group-commit flush that made n records durable
// with a single fsync.
func (m *Metrics) WALBatch(n int) {
	if n <= 0 {
		return
	}
	idx := len(walBatchBuckets) // +Inf
	for i, le := range walBatchBuckets {
		if uint64(n) <= le {
			idx = i
			break
		}
	}
	m.walBatch[idx].Add(1)
	m.walBatchSum.Add(uint64(n))
}

// SnapshotErrors exposes the failed-snapshot counter (for tests and the
// daemon's shutdown log).
func (m *Metrics) SnapshotErrors() uint64 { return m.snapshotErrors.Load() }

// WriteText renders the metrics (plus the given cache and registry state)
// in Prometheus text exposition format, including one
// juryd_request_duration_seconds histogram per route.
func (m *Metrics) WriteText(w io.Writer, cache CacheStats, poolSize int, generation uint64, multiPools int, degraded bool) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	stats := make([]routeMetrics, len(routes))
	for i, r := range routes {
		rm := m.routes[r]
		stats[i] = routeMetrics{
			requests: rm.requests,
			errors:   rm.errors,
			buckets:  append([]uint64(nil), rm.buckets...),
			sum:      rm.sum,
		}
	}
	errs := m.errors
	m.mu.Unlock()

	for i, r := range routes {
		fmt.Fprintf(w, "juryd_requests_total{route=%q} %d\n", r, stats[i].requests)
	}
	for i, r := range routes {
		var cum uint64
		for b, le := range LatencyBuckets {
			cum += stats[i].buckets[b]
			fmt.Fprintf(w, "juryd_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += stats[i].buckets[len(LatencyBuckets)]
		fmt.Fprintf(w, "juryd_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(w, "juryd_request_duration_seconds_sum{route=%q} %g\n", r, stats[i].sum)
		fmt.Fprintf(w, "juryd_request_duration_seconds_count{route=%q} %d\n", r, cum)
	}
	// Per-route error series first, then the pre-existing global line —
	// the same family, so scrapes that only knew the unlabeled series
	// keep working.
	for i, r := range routes {
		if stats[i].errors > 0 {
			fmt.Fprintf(w, "juryd_request_errors_total{route=%q} %d\n", r, stats[i].errors)
		}
	}
	fmt.Fprintf(w, "juryd_request_errors_total %d\n", errs)
	fmt.Fprintf(w, "juryd_votes_ingested_total %d\n", m.votesIngested.Load())
	fmt.Fprintf(w, "juryd_selections_computed_total %d\n", m.selections.Load())
	fmt.Fprintf(w, "juryd_selection_seconds_total %g\n",
		time.Duration(m.selectionLatency.Load()).Seconds())
	fmt.Fprintf(w, "juryd_sessions_opened_total %d\n", m.sessionsOpened.Load())
	fmt.Fprintf(w, "juryd_sessions_finished_total %d\n", m.sessionsFinished.Load())
	fmt.Fprintf(w, "juryd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "juryd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "juryd_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "juryd_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "juryd_cache_hit_rate %g\n", cache.HitRate())
	fmt.Fprintf(w, "juryd_pool_size %d\n", poolSize)
	fmt.Fprintf(w, "juryd_pool_generation %d\n", generation)
	fmt.Fprintf(w, "juryd_multi_pools %d\n", multiPools)
	deg := 0
	if degraded {
		deg = 1
	}
	fmt.Fprintf(w, "juryd_degraded %d\n", deg)
	fmt.Fprintf(w, "juryd_wal_errors_total %d\n", m.walErrors.Load())
	// The batch histogram only appears once group commit has flushed
	// something, so per-record deployments keep their scrape unchanged.
	var batchFlushes uint64
	for i := range m.walBatch {
		batchFlushes += m.walBatch[i].Load()
	}
	if batchFlushes > 0 {
		var cum uint64
		for i, le := range walBatchBuckets {
			cum += m.walBatch[i].Load()
			fmt.Fprintf(w, "juryd_wal_batch_records_bucket{le=\"%d\"} %d\n", le, cum)
		}
		fmt.Fprintf(w, "juryd_wal_batch_records_bucket{le=\"+Inf\"} %d\n", batchFlushes)
		fmt.Fprintf(w, "juryd_wal_batch_records_sum %d\n", m.walBatchSum.Load())
		fmt.Fprintf(w, "juryd_wal_batch_records_count %d\n", batchFlushes)
	}
	fmt.Fprintf(w, "juryd_snapshot_errors_total %d\n", m.snapshotErrors.Load())
	fmt.Fprintf(w, "juryd_load_shed_total %d\n", m.loadShed.Load())
	fmt.Fprintf(w, "juryd_ingest_duplicates_total %d\n", m.ingestDuplicates.Load())
	fmt.Fprintf(w, "juryd_quorum_timeouts_total %d\n", m.quorumTimeouts.Load())
	fmt.Fprintf(w, "juryd_fence_errors_total %d\n", m.fenceErrors.Load())
}

// Snapshot returns the counters used by tests.
func (m *Metrics) Snapshot() (requests map[string]uint64, errors, votes, selections uint64) {
	m.mu.Lock()
	requests = make(map[string]uint64, len(m.routes))
	for r, rm := range m.routes {
		requests[r] = rm.requests
	}
	errors = m.errors
	m.mu.Unlock()
	return requests, errors, m.votesIngested.Load(), m.selections.Load()
}

// writeRuntimeMetrics renders process-level gauges: build identity,
// uptime, and the Go runtime state an operator checks first when a
// daemon misbehaves (goroutine count, live heap, cumulative GC pauses).
func writeRuntimeMetrics(w io.Writer, started time.Time) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	fmt.Fprintf(w, "juryd_build_info{version=%q,go_version=%q} 1\n", version, runtime.Version())
	fmt.Fprintf(w, "juryd_uptime_seconds %g\n", time.Since(started).Seconds())
	fmt.Fprintf(w, "juryd_goroutines %d\n", runtime.NumGoroutine())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "juryd_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(w, "juryd_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "juryd_gc_runs_total %d\n", ms.NumGC)
}
