package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics collects the daemon's operational counters. All methods are safe
// for concurrent use; rendering is Prometheus-style text exposition so the
// /metrics endpoint can be scraped or eyeballed with curl.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // per-route completed request counts
	errors   uint64            // non-2xx replies

	votesIngested    atomic.Uint64
	selections       atomic.Uint64 // selections computed (cache misses)
	selectionLatency atomic.Int64  // cumulative compute time, nanoseconds
	sessionsOpened   atomic.Uint64
	sessionsFinished atomic.Uint64
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{requests: make(map[string]uint64)}
}

// Request records one completed request for a route pattern.
func (m *Metrics) Request(route string, status int) {
	m.mu.Lock()
	m.requests[route]++
	if status >= 400 {
		m.errors++
	}
	m.mu.Unlock()
}

// VoteIngested adds n ingested vote events.
func (m *Metrics) VotesIngested(n int) { m.votesIngested.Add(uint64(n)) }

// SelectionComputed records one cache-missing selection and its latency.
func (m *Metrics) SelectionComputed(d time.Duration) {
	m.selections.Add(1)
	m.selectionLatency.Add(int64(d))
}

// SessionOpened / SessionFinished track online-session lifecycle.
func (m *Metrics) SessionOpened()   { m.sessionsOpened.Add(1) }
func (m *Metrics) SessionFinished() { m.sessionsFinished.Add(1) }

// WriteText renders the metrics (plus the given cache and registry state)
// in Prometheus text exposition format.
func (m *Metrics) WriteText(w io.Writer, cache CacheStats, poolSize int, generation uint64) {
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	counts := make([]uint64, len(routes))
	for i, r := range routes {
		counts[i] = m.requests[r]
	}
	errs := m.errors
	m.mu.Unlock()

	for i, r := range routes {
		fmt.Fprintf(w, "juryd_requests_total{route=%q} %d\n", r, counts[i])
	}
	fmt.Fprintf(w, "juryd_request_errors_total %d\n", errs)
	fmt.Fprintf(w, "juryd_votes_ingested_total %d\n", m.votesIngested.Load())
	fmt.Fprintf(w, "juryd_selections_computed_total %d\n", m.selections.Load())
	fmt.Fprintf(w, "juryd_selection_seconds_total %g\n",
		time.Duration(m.selectionLatency.Load()).Seconds())
	fmt.Fprintf(w, "juryd_sessions_opened_total %d\n", m.sessionsOpened.Load())
	fmt.Fprintf(w, "juryd_sessions_finished_total %d\n", m.sessionsFinished.Load())
	fmt.Fprintf(w, "juryd_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "juryd_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "juryd_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "juryd_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "juryd_cache_hit_rate %g\n", cache.HitRate())
	fmt.Fprintf(w, "juryd_pool_size %d\n", poolSize)
	fmt.Fprintf(w, "juryd_pool_generation %d\n", generation)
}

// Snapshot returns the counters used by tests.
func (m *Metrics) Snapshot() (requests map[string]uint64, errors, votes, selections uint64) {
	m.mu.Lock()
	requests = make(map[string]uint64, len(m.requests))
	for r, c := range m.requests {
		requests[r] = c
	}
	errors = m.errors
	m.mu.Unlock()
	return requests, errors, m.votesIngested.Load(), m.selections.Load()
}
