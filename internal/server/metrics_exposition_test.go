package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// metricSample is one parsed exposition line: name, sorted label pairs, value.
type metricSample struct {
	name   string
	labels string // canonical form: k1="v1",k2="v2" sorted by key
	value  float64
}

var expositionLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$`)

// parseExposition parses the Prometheus text format strictly enough to catch
// the bugs that break real scrapers: malformed lines, duplicate series, and
// non-numeric values.
func parseExposition(t *testing.T, body string) []metricSample {
	t.Helper()
	var out []metricSample
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed exposition line: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: non-numeric value in %q: %v", ln+1, line, err)
		}
		labels := ""
		if m[2] != "" {
			pairs := splitLabelPairs(t, m[2])
			sort.Strings(pairs)
			labels = strings.Join(pairs, ",")
		}
		out = append(out, metricSample{name: m[1], labels: labels, value: v})
	}
	return out
}

// splitLabelPairs splits `a="x",b="y"` respecting quoted commas.
func splitLabelPairs(t *testing.T, s string) []string {
	t.Helper()
	var pairs []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				pairs = append(pairs, s[start:i])
				start = i + 1
			}
		}
	}
	pairs = append(pairs, s[start:])
	for _, p := range pairs {
		if !strings.Contains(p, "=\"") || !strings.HasSuffix(p, "\"") {
			t.Fatalf("malformed label pair %q in %q", p, s)
		}
	}
	return pairs
}

// scrapeMetrics drives real traffic through a server and returns the parsed
// /metrics payload.
func scrapeMetrics(t *testing.T) []metricSample {
	t.Helper()
	s := New(NewConfig())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := `{"workers":[` +
		`{"id":"w1","quality":0.9,"cost":1},` +
		`{"id":"w2","quality":0.8,"cost":1},` +
		`{"id":"w3","quality":0.7,"cost":1}]}`
	resp, err := http.Post(ts.URL+"/v1/workers", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 3; i++ {
		resp, err = http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(`{"budget":3}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One guaranteed error to exercise the per-route error counters.
	resp, err = http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(`{"budget":`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(raw))
}

// TestMetricsExpositionWellFormed asserts structural invariants any Prometheus
// scraper relies on: no duplicate series, cumulative monotone histogram
// buckets, and _count equal to the +Inf bucket.
func TestMetricsExpositionWellFormed(t *testing.T) {
	samples := scrapeMetrics(t)
	if len(samples) == 0 {
		t.Fatal("no samples parsed from /metrics")
	}

	seen := make(map[string]bool)
	for _, s := range samples {
		key := s.name + "{" + s.labels + "}"
		if seen[key] {
			t.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}

	// Group histogram buckets by (base name, non-le labels).
	type histKey struct{ name, labels string }
	buckets := make(map[histKey][]struct {
		le    float64
		count float64
	})
	counts := make(map[histKey]float64)
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_bucket") {
			base := strings.TrimSuffix(s.name, "_bucket")
			var rest []string
			le := math.NaN()
			for _, p := range strings.Split(s.labels, ",") {
				if v, ok := strings.CutPrefix(p, `le="`); ok {
					v = strings.TrimSuffix(v, `"`)
					if v == "+Inf" {
						le = math.Inf(1)
					} else {
						f, err := strconv.ParseFloat(v, 64)
						if err != nil {
							t.Fatalf("bad le label %q: %v", p, err)
						}
						le = f
					}
				} else if p != "" {
					rest = append(rest, p)
				}
			}
			if math.IsNaN(le) {
				t.Fatalf("bucket series %s{%s} has no le label", s.name, s.labels)
			}
			k := histKey{base, strings.Join(rest, ",")}
			buckets[k] = append(buckets[k], struct{ le, count float64 }{le, s.value})
		}
		if strings.HasSuffix(s.name, "_count") {
			counts[histKey{strings.TrimSuffix(s.name, "_count"), s.labels}] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets found on /metrics")
	}
	for k, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		if !math.IsInf(bs[len(bs)-1].le, 1) {
			t.Errorf("%s{%s}: missing +Inf bucket", k.name, k.labels)
			continue
		}
		prev := -1.0
		for _, b := range bs {
			if b.count < prev {
				t.Errorf("%s{%s}: bucket le=%g count %g < previous %g (not cumulative)",
					k.name, k.labels, b.le, b.count, prev)
			}
			prev = b.count
		}
		c, ok := counts[k]
		if !ok {
			t.Errorf("%s{%s}: histogram has buckets but no _count series", k.name, k.labels)
		} else if c != bs[len(bs)-1].count {
			t.Errorf("%s{%s}: _count %g != +Inf bucket %g", k.name, k.labels, c, bs[len(bs)-1].count)
		}
	}
}

// TestMetricsPerRouteErrorsAndRuntime covers the satellite additions: the
// labeled per-route error counter alongside the legacy global line, build
// info, uptime, and runtime gauges.
func TestMetricsPerRouteErrorsAndRuntime(t *testing.T) {
	samples := scrapeMetrics(t)
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.name+"{"+s.labels+"}"] = s.value
	}

	if v, ok := byKey[`juryd_request_errors_total{route="POST /v1/select"}`]; !ok || v < 1 {
		t.Errorf("per-route error counter missing or zero: got %v ok=%v", v, ok)
	}
	if v, ok := byKey["juryd_request_errors_total{}"]; !ok || v < 1 {
		t.Errorf("global juryd_request_errors_total missing or zero: got %v ok=%v", v, ok)
	}

	wantPresent := []string{
		"juryd_uptime_seconds{}",
		"juryd_goroutines{}",
		"juryd_heap_inuse_bytes{}",
		"juryd_gc_pause_seconds_total{}",
	}
	for _, k := range wantPresent {
		if _, ok := byKey[k]; !ok {
			t.Errorf("missing runtime metric %s", k)
		}
	}
	found := false
	for k, v := range byKey {
		if strings.HasPrefix(k, "juryd_build_info{") {
			found = true
			if v != 1 {
				t.Errorf("juryd_build_info value = %g, want 1", v)
			}
			if !strings.Contains(k, `go_version="go`) {
				t.Errorf("juryd_build_info missing go_version label: %s", k)
			}
		}
	}
	if !found {
		t.Error("juryd_build_info not found on /metrics")
	}
}

// TestMetricsStageHistogramsAppear asserts that stage timing histograms from
// the trace recorder make it onto /metrics after traffic flows.
func TestMetricsStageHistogramsAppear(t *testing.T) {
	samples := scrapeMetrics(t)
	stages := make(map[string]bool)
	for _, s := range samples {
		if s.name == "juryd_stage_duration_seconds_count" {
			for _, p := range strings.Split(s.labels, ",") {
				if v, ok := strings.CutPrefix(p, `stage="`); ok {
					stages[strings.TrimSuffix(v, `"`)] = true
				}
			}
		}
	}
	for _, want := range []string{"cache_lookup", "evaluate", "encode"} {
		if !stages[want] {
			t.Errorf("stage %q missing from juryd_stage_duration_seconds (have %v)", want, stages)
		}
	}
}

// TestTraceDisabledServerStillServes covers TraceBuffer < 0: the recorder is
// nil, /debug/traces reports disabled, and requests still succeed.
func TestTraceDisabledServerStillServes(t *testing.T) {
	cfg := NewConfig()
	cfg.TraceBuffer = -1
	s := New(cfg)
	if s.Recorder() != nil {
		t.Fatal("recorder should be nil when TraceBuffer < 0")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	if _, err := s.registry.Register(context.Background(), []WorkerSpec{{ID: "w1", Quality: 0.9, Cost: 1}}, s.cfg.PriorStrength); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(`{"budget":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select with tracing disabled: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"enabled":false`) {
		t.Fatalf("/debug/traces with tracing disabled = %s, want enabled:false", raw)
	}
}

// TestDebugTracesEndToEnd issues a select and an ingest with client-supplied
// request IDs and asserts both traces come back from /debug/traces with their
// stage breakdowns.
func TestDebugTracesEndToEnd(t *testing.T) {
	s := New(NewConfig())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(path, reqID, body string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", reqID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: status %d body %s", path, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-Request-Id"); got != reqID {
			t.Fatalf("POST %s: echoed request id %q, want %q", path, got, reqID)
		}
	}

	post("/v1/workers", "trace-reg-1", `{"workers":[{"id":"w1","quality":0.9,"cost":1},{"id":"w2","quality":0.6,"cost":1}]}`)
	post("/v1/select", "trace-sel-1", `{"budget":2}`)
	post("/v1/votes", "trace-ing-1", `{"worker_id":"w1","correct":true}`)

	resp, err := http.Get(ts.URL + "/debug/traces?n=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, id := range []string{"trace-sel-1", "trace-ing-1"} {
		if !strings.Contains(body, fmt.Sprintf("%q", id)) {
			t.Errorf("/debug/traces missing trace for request id %s: %s", id, body)
		}
	}
	for _, stage := range []string{"cache_lookup", "evaluate", "apply", "encode"} {
		if !strings.Contains(body, fmt.Sprintf(`"stage":%q`, stage)) {
			t.Errorf("/debug/traces missing stage %q spans: %s", stage, body)
		}
	}
}

// TestDebugTracesCarryWALSpans issues mutations against a durable
// -fsync server and asserts the WAL encode/append/fsync and apply
// stages show up both in the traces and as the dedicated fsync
// histogram on /metrics.
func TestDebugTracesCarryWALSpans(t *testing.T) {
	s, err := Open(Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir(), Fsync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.ClosePersistence() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}
	post("/v1/workers", `{"workers":[{"id":"w1","quality":0.9,"cost":1},{"id":"w2","quality":0.6,"cost":1}]}`)
	post("/v1/select", `{"budget":2}`)
	post("/v1/votes", `{"worker_id":"w1","correct":true}`)

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"wal_encode", "wal_append", "wal_fsync", "apply"} {
		if !strings.Contains(string(raw), fmt.Sprintf(`"stage":%q`, stage)) {
			t.Errorf("/debug/traces missing stage %q on a durable -fsync server: %s", stage, raw)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "juryd_wal_fsync_seconds_count") {
		t.Error("juryd_wal_fsync_seconds histogram missing from /metrics under -fsync")
	}
}
