package server

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/online"
	"repro/internal/voting"
)

// durable opens a durable server rooted in a fresh temp dir.
func durable(t *testing.T) (*Server, Config) {
	t.Helper()
	cfg := Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, cfg
}

// reopen crash-stops s and recovers a fresh server from the same dir.
func reopen(t *testing.T, s *Server, cfg Config) *Server {
	t.Helper()
	if err := s.ClosePersistence(); err != nil {
		t.Fatalf("ClosePersistence: %v", err)
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return s2
}

func TestOpenWithoutDataDirIsInMemory(t *testing.T) {
	s, err := Open(Config{Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.PersistenceStatus(); st.Enabled {
		t.Fatalf("in-memory server reports persistence enabled: %+v", st)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow without persistence: %v", err)
	}
	if err := s.ClosePersistence(); err != nil {
		t.Fatalf("ClosePersistence without persistence: %v", err)
	}
}

// TestJournalFailureAbortsMutation: a failed WAL append must leave the
// in-memory registry untouched (write-ahead, not write-behind).
func TestJournalFailureAbortsMutation(t *testing.T) {
	s, _ := durable(t)
	if _, err := s.registry.Register(context.Background(), []WorkerSpec{{ID: "ok", Quality: 0.8, Cost: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	s.registry.journal = func(context.Context, *Record) (func() error, error) { return nil, boom }
	if _, err := s.registry.Register(context.Background(), []WorkerSpec{{ID: "lost", Quality: 0.7, Cost: 1}}, 0); !errors.Is(err, boom) {
		t.Fatalf("Register with failing journal: %v, want %v", err, boom)
	}
	if _, _, err := s.registry.Ingest(context.Background(), []VoteEvent{{WorkerID: "ok", Correct: true}}); !errors.Is(err, boom) {
		t.Fatalf("Ingest with failing journal: %v, want %v", err, boom)
	}
	if got := s.registry.Len(); got != 1 {
		t.Fatalf("registry len after aborted register = %d, want 1", got)
	}
	info, err := s.registry.Get("ok")
	if err != nil || info.Votes != 0 {
		t.Fatalf("worker mutated by aborted ingest: %+v, %v", info, err)
	}
}

// TestRecoveryRoundTrip: mutate, crash, recover; the recovered dump is
// byte-identical and the signature (the selection-cache key component)
// matches.
func TestRecoveryRoundTrip(t *testing.T) {
	s, cfg := durable(t)
	if _, err := s.registry.Register(context.Background(), []WorkerSpec{
		{ID: "a", Quality: 0.8, Cost: 3},
		{ID: "b", Quality: 0.7, Cost: 2},
	}, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.registry.Ingest(context.Background(), []VoteEvent{
		{WorkerID: "a", Correct: true},
		{WorkerID: "b", Correct: false},
		{WorkerID: "a", Correct: true},
	}); err != nil {
		t.Fatal(err)
	}
	wantDump, err := s.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	wantSig, _ := s.registry.Signature()

	s2 := reopen(t, s, cfg)
	gotDump, err := s2.DebugState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("recovered dump differs\nwant %s\ngot  %s", wantDump, gotDump)
	}
	gotSig, _ := s2.registry.Signature()
	if wantSig != gotSig {
		t.Fatalf("recovered signature %q != pre-crash %q", gotSig, wantSig)
	}
}

// TestConcurrentIngestRecovery is the acceptance scenario: sustained
// concurrent vote ingestion, then a crash; the recovered posteriors and
// pool signature must be bit-identical to the pre-crash state, which
// requires the WAL order to match the lock (application) order exactly.
func TestConcurrentIngestRecovery(t *testing.T) {
	s, cfg := durable(t)
	specs := make([]WorkerSpec, 8)
	for i := range specs {
		specs[i] = WorkerSpec{ID: string(rune('a' + i)), Quality: 0.6, Cost: 1}
	}
	if _, err := s.registry.Register(context.Background(), specs, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ev := VoteEvent{WorkerID: specs[(g+i)%len(specs)].ID, Correct: i%3 != 0}
				if _, _, err := s.registry.Ingest(context.Background(), []VoteEvent{ev}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wantDump, _ := s.DebugState()
	wantSig, _ := s.registry.Signature()

	s2 := reopen(t, s, cfg)
	gotDump, _ := s2.DebugState()
	gotSig, _ := s2.registry.Signature()
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("recovered state differs from pre-crash state\nwant %s\ngot  %s", wantDump, gotDump)
	}
	if wantSig != gotSig {
		t.Fatalf("recovered signature %q != pre-crash %q", gotSig, wantSig)
	}
	if st := s2.PersistenceStatus(); st.Recovery.RecordsReplayed != 1+8*40 {
		t.Fatalf("RecordsReplayed = %d, want %d", st.Recovery.RecordsReplayed, 1+8*40)
	}
}

// TestVoteCloseRaceKeepsLogReplayable is the regression test for the
// journal-ordering hole: a voter that looked a session up just before a
// concurrent close must never journal its vote record after the close
// record — such a log would fail replay on every subsequent boot. The
// hammer drives votes and closes concurrently and then proves the WAL
// still recovers.
func TestVoteCloseRaceKeepsLogReplayable(t *testing.T) {
	for iter := 0; iter < 15; iter++ {
		s, cfg := durable(t)
		st, err := s.sessions.Open(context.Background(), online.Config{Alpha: 0.5, Confidence: 0.999})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 10; i++ {
					// Unknown/done conflicts are expected mid-race.
					s.sessions.Observe(context.Background(), st.ID, 0.6, 1, voting.Yes)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.sessions.Close(context.Background(), st.ID)
		}()
		close(start)
		wg.Wait()
		// The only assertion that matters: recovery must succeed.
		s2 := reopen(t, s, cfg)
		if _, err := s2.sessions.Get(st.ID); err == nil {
			t.Fatal("closed session resurrected by replay")
		}
		if err := s2.ClosePersistence(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReapIsJournaled: the reaper's wall-clock decision must come from
// the log on replay, never be remade — otherwise replay would resurrect
// or lose sessions depending on when recovery runs.
func TestReapIsJournaled(t *testing.T) {
	s, cfg := durable(t)
	s.sessions.cap = 2
	// Confidence 0.5 is satisfied by the uniform prior: these sessions
	// are born Done and thus reapable.
	done := online.Config{Alpha: 0.5, Confidence: 0.5}
	for i := 0; i < 2; i++ {
		if _, err := s.sessions.Open(context.Background(), done); err != nil {
			t.Fatal(err)
		}
	}
	// The third open trips the cap, reaps s1 and s2, and must journal it.
	live := online.Config{Alpha: 0.5, Confidence: 0.99}
	if _, err := s.sessions.Open(context.Background(), live); err != nil {
		t.Fatal(err)
	}
	if got := s.sessions.Len(); got != 1 {
		t.Fatalf("live sessions after reap = %d, want 1", got)
	}
	wantDump, _ := s.DebugState()
	s2 := reopen(t, s, cfg)
	if got := s2.sessions.Len(); got != 1 {
		t.Fatalf("recovered sessions = %d, want 1 (reap must replay from the log)", got)
	}
	gotDump, _ := s2.DebugState()
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("recovered dump differs\nwant %s\ngot  %s", wantDump, gotDump)
	}
}

// TestBudgetExhaustedStopPersists: StopBudget is a caller-side verdict;
// it must survive a crash via its own record type.
func TestBudgetExhaustedStopPersists(t *testing.T) {
	s, cfg := durable(t)
	st, err := s.sessions.Open(context.Background(), online.Config{Alpha: 0.5, Confidence: 0.99, Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.sessions.MarkBudgetExhausted(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s, cfg)
	got, err := s2.sessions.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done || got.Stopped != "budget" {
		t.Fatalf("recovered session = %+v, want Done with Stopped=budget", got)
	}
}

// TestSessionWithInfiniteLogOddsSurvives: a degenerate prior drives the
// posterior log odds to ±Inf, which plain JSON floats cannot carry; the
// bit-pattern encoding must round-trip it through snapshot + recovery.
func TestSessionWithInfiniteLogOddsSurvives(t *testing.T) {
	s, cfg := durable(t)
	st, err := s.sessions.Open(context.Background(), online.Config{Alpha: 1, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Confidence != 1 {
		t.Fatalf("degenerate-prior session = %+v, want Done at confidence 1", st)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow over Inf log odds: %v", err)
	}
	wantDump, _ := s.DebugState()
	s2 := reopen(t, s, cfg)
	gotDump, _ := s2.DebugState()
	if !bytes.Equal(wantDump, gotDump) {
		t.Fatalf("Inf log odds did not survive recovery\nwant %s\ngot  %s", wantDump, gotDump)
	}
}

// TestSnapshotSkipsWhenUnchanged: idle snapshot ticks must not churn
// files.
func TestSnapshotSkipsWhenUnchanged(t *testing.T) {
	s, _ := durable(t)
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if got := s.PersistenceStatus().SnapshotsWritten; got != 0 {
		t.Fatalf("snapshot of a never-mutated server written (%d), want skipped", got)
	}
	if _, err := s.registry.Register(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if got := s.PersistenceStatus().SnapshotsWritten; got != 1 {
		t.Fatalf("SnapshotsWritten = %d, want 1 (second tick unchanged)", got)
	}
}

// TestPersistenceStatusFields sanity-checks the /debug/persistence
// payload after a recovery.
func TestPersistenceStatusFields(t *testing.T) {
	s, cfg := durable(t)
	if _, err := s.registry.Register(context.Background(), []WorkerSpec{{ID: "a", Quality: 0.8, Cost: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s, cfg)
	st := s2.PersistenceStatus()
	if !st.Enabled || st.DataDir != cfg.DataDir {
		t.Fatalf("status = %+v, want enabled in %s", st, cfg.DataDir)
	}
	if st.NextLSN != 2 {
		t.Fatalf("NextLSN = %d, want 2 after one record", st.NextLSN)
	}
	if st.Recovery == nil || st.Recovery.RecordsReplayed != 1 || st.Recovery.WorkersRestored != 1 {
		t.Fatalf("recovery status = %+v, want 1 record replayed, 1 worker", st.Recovery)
	}
	if !strings.Contains(st.RecoveredAt, "T") {
		t.Fatalf("RecoveredAt = %q, want RFC 3339", st.RecoveredAt)
	}
}

// TestPreloadIsJournaled: a -pool preload must survive restarts like any
// registration.
func TestPreloadIsJournaled(t *testing.T) {
	s, cfg := durable(t)
	if err := s.Preload([]WorkerSpec{{ID: "p", Quality: 0.9, Cost: 2}}); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, s, cfg)
	if got := s2.registry.Len(); got != 1 {
		t.Fatalf("recovered preloaded registry len = %d, want 1", got)
	}
	// Re-preloading the same pool file into recovered state conflicts.
	if err := s2.Preload([]WorkerSpec{{ID: "p", Quality: 0.9, Cost: 2}}); !errors.Is(err, ErrWorkerExists) {
		t.Fatalf("re-preload: %v, want ErrWorkerExists", err)
	}
}
