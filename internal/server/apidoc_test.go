package server

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// routeHeading matches the API.md route headings, e.g. "### `POST
// /v1/workers`". The heading format is part of the documentation
// contract: every registered route must appear as exactly one such
// heading.
var routeHeading = regexp.MustCompile("(?m)^### `(GET|POST|PUT|DELETE) (/[^`]*)`")

// TestAPIReferenceCoversRoutes diffs API.md against the server's live
// route table: the reference must document every registered route
// (method and pattern, verbatim) and must not document routes that do
// not exist, so the API documentation cannot silently rot.
func TestAPIReferenceCoversRoutes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "API.md"))
	if err != nil {
		t.Fatalf("API.md is missing (it documents the HTTP surface this package serves): %v", err)
	}
	documented := make(map[string]bool)
	for _, m := range routeHeading.FindAllStringSubmatch(string(data), -1) {
		route := m[1] + " " + m[2]
		if documented[route] {
			t.Errorf("API.md documents %q twice", route)
		}
		documented[route] = true
	}
	if len(documented) == 0 {
		t.Fatal("API.md contains no route headings of the form \"### `METHOD /path`\"")
	}

	// The documented surface is the public API plus the pprof routes
	// juryd serves on its separate -debug-addr listener.
	registered := append(New(NewConfig()).Routes(), DebugRoutes()...)
	sort.Strings(registered)
	for _, route := range registered {
		if !documented[route] {
			t.Errorf("route %q is served but undocumented in API.md", route)
		}
		delete(documented, route)
	}
	for route := range documented {
		t.Errorf("API.md documents %q, which the server does not register", route)
	}
}
