package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/wal"
)

// TestEpochTableLookup: the zero table is the implicit epoch 1
// everywhere; each recorded promotion governs from its StartLSN until the
// next one.
func TestEpochTableLookup(t *testing.T) {
	var tab epochTable
	if tab.current() != 1 || tab.at(0) != 1 || tab.at(1<<40) != 1 {
		t.Fatalf("zero table = current %d, at(0) %d, at(big) %d, want 1 everywhere",
			tab.current(), tab.at(0), tab.at(1<<40))
	}
	if err := tab.add(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := tab.add(4, 9); err != nil { // epochs may skip, LSNs may not repeat
		t.Fatal(err)
	}
	for lsn, want := range map[wal.LSN]uint64{1: 1, 4: 1, 5: 2, 8: 2, 9: 4, 1000: 4} {
		if got := tab.at(lsn); got != want {
			t.Fatalf("at(%d) = %d, want %d", lsn, got, want)
		}
	}
	if tab.current() != 4 {
		t.Fatalf("current = %d, want 4", tab.current())
	}
}

// TestEpochTableRejectsNonAdvancingRecords: a replay that does not
// strictly advance both epoch and StartLSN is a forked log, not a state.
func TestEpochTableRejectsNonAdvancingRecords(t *testing.T) {
	var tab epochTable
	if err := tab.add(1, 3); err == nil {
		t.Fatal("epoch 1 record accepted; epoch 1 is implicit")
	}
	if err := tab.add(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := tab.add(2, 9); err == nil {
		t.Fatal("repeated epoch accepted")
	}
	if err := tab.add(3, 5); err == nil {
		t.Fatal("repeated start LSN accepted")
	}
	if err := tab.add(3, 4); err == nil {
		t.Fatal("backward start LSN accepted")
	}
	if got := tab.current(); got != 2 {
		t.Fatalf("rejected records mutated the table: current = %d, want 2", got)
	}
}

// TestEpochTableSnapshotLoadRoundTrip: the table round-trips through the
// snapshot document, and load applies the same fork checks as add.
func TestEpochTableSnapshotLoadRoundTrip(t *testing.T) {
	var tab epochTable
	tab.add(2, 5)
	tab.add(3, 11)
	var loaded epochTable
	if err := loaded.load(tab.snapshot()); err != nil {
		t.Fatal(err)
	}
	if loaded.current() != 3 || loaded.at(5) != 2 || loaded.at(10) != 2 || loaded.at(11) != 3 {
		t.Fatalf("loaded table disagrees: current %d, at(5) %d, at(11) %d",
			loaded.current(), loaded.at(5), loaded.at(11))
	}
	var bad epochTable
	if err := bad.load([]EpochEntry{{Epoch: 1, StartLSN: 4}}); err == nil {
		t.Fatal("load accepted an epoch-1 entry")
	}
	if err := bad.load([]EpochEntry{{Epoch: 3, StartLSN: 9}, {Epoch: 3, StartLSN: 12}}); err == nil {
		t.Fatal("load accepted a non-increasing table")
	}
}

// TestFenceRequiresNewerEpoch: fencing with the node's own (or an older)
// epoch is ErrFenceStale; a genuine fence takes effect, is idempotent,
// and a higher re-fence wins.
func TestFenceRequiresNewerEpoch(t *testing.T) {
	s := New(Config{Alpha: 0.5, Seed: 1})
	if err := s.Fence(1, "http://new"); err == nil {
		t.Fatal("fence at the current epoch accepted")
	}
	if err := s.Fence(2, "http://new"); err != nil {
		t.Fatal(err)
	}
	fenced, epoch, primary := s.FencedState()
	if !fenced || epoch != 2 || primary != "http://new" {
		t.Fatalf("fenced state = %v/%d/%q", fenced, epoch, primary)
	}
	// Re-fencing lower keeps the higher fence; higher replaces it.
	if err := s.Fence(1, "http://older"); err == nil {
		t.Fatal("stale re-fence accepted")
	}
	if err := s.Fence(3, "http://newer"); err != nil {
		t.Fatal(err)
	}
	if _, epoch, primary := s.FencedState(); epoch != 3 || primary != "http://newer" {
		t.Fatalf("re-fence = %d/%q, want 3/http://newer", epoch, primary)
	}
}

// TestFencedMutationIs421WithPrimary: a fenced node answers mutations
// exactly like a read-only replica — 421 plus the new primary's address.
func TestFencedMutationIs421WithPrimary(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Fence(2, "http://promoted.example"); err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: []WorkerSpec{{ID: "x", Quality: 0.7, Cost: 1}}})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("fenced mutation: %d %s, want 421", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(PrimaryHeader); got != "http://promoted.example" {
		t.Fatalf("%s = %q, want the fencing primary", PrimaryHeader, got)
	}
	// Reads keep working: fenced means write-elsewhere, not down.
	r2, err := http.Get(ts.URL + "/v1/workers")
	if err != nil || r2.StatusCode != http.StatusOK {
		t.Fatalf("fenced read: %v %v", r2, err)
	}
	r2.Body.Close()
}

// TestEpochHeaderStampedEverywhere: every response — success, error, and
// system routes — names the serving node's epoch.
func TestEpochHeaderStampedEverywhere(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/healthz", "/v1/workers", "/v1/workers/ghost", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(EpochHeader); got != "1" {
			t.Fatalf("GET %s: %s = %q, want 1", path, EpochHeader, got)
		}
	}
}

// TestFenceHandlerValidation: epoch 0 is a 400 (malformed), the node's
// own epoch is a 409 (stale — fencing the legitimate holder).
func TestFenceHandlerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/repl/fence", FenceRequest{Primary: "http://x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fence without epoch: %d %s, want 400", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/repl/fence", FenceRequest{Epoch: 1})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("fence at current epoch: %d %s, want 409", resp.StatusCode, raw)
	}
}

// TestRepointHandlerValidation: an empty primary is a 400; repointing a
// node that is not a follower is a 409.
func TestRepointHandlerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/repl/repoint", RepointRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("repoint without primary: %d %s, want 400", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/repl/repoint", RepointRequest{Primary: "http://p"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("repoint on a primary: %d %s, want 409", resp.StatusCode, raw)
	}
}

// TestPromoteOnPrimaryIsIdempotentNoOp: promoting a node that is already
// primary reports AlreadyPrimary with its standing epoch — safe to call
// from a confused operator or a retried script.
func TestPromoteOnPrimaryIsIdempotentNoOp(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/repl/promote", PromoteRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote on primary: %d %s", resp.StatusCode, raw)
	}
	var out PromoteResponse
	mustDecode(t, raw, &out)
	if !out.AlreadyPrimary || out.Promoted || out.Epoch != 1 {
		t.Fatalf("promote on primary = %+v, want AlreadyPrimary at epoch 1", out)
	}
}

// TestPromoteFencedFollowerSupersedesFence: a fenced follower promoted
// after cascaded failovers must come up as a real primary — the new
// epoch opens past the fence epoch (fence+1, not current+1), so the
// node is never left answering 421 against its own fence marker, and
// the response reports the fence it outranked.
func TestPromoteFencedFollowerSupersedesFence(t *testing.T) {
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(primary.Close)
	s, err := Open(Config{Alpha: 0.5, Seed: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFollower(primary.URL)
	if err := s.Fence(7, primary.URL); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/repl/promote", PromoteRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote fenced follower: %d %s", resp.StatusCode, raw)
	}
	var out PromoteResponse
	mustDecode(t, raw, &out)
	if !out.Promoted || out.Epoch != 8 || out.SupersededFenceEpoch != 7 {
		t.Fatalf("promote = %+v, want epoch 8 superseding fence 7", out)
	}
	if fenced, epoch, _ := s.FencedState(); fenced {
		t.Fatalf("promoted node still fenced at epoch %d", epoch)
	}
	// And it acknowledges writes again.
	resp, raw = postJSON(t, ts.URL+"/v1/workers", RegisterRequest{Workers: []WorkerSpec{{ID: "x", Quality: 0.7, Cost: 1}}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mutation on promoted node: %d %s, want 201", resp.StatusCode, raw)
	}
}

// TestPromoteRequiresPersistence: a memory-only follower cannot journal
// the epoch record, so promotion must refuse rather than silently open an
// epoch that would not survive a restart.
func TestPromoteRequiresPersistence(t *testing.T) {
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(primary.Close)
	s := New(Config{Alpha: 0.5, Seed: 1})
	s.SetFollower(primary.URL)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/repl/promote", PromoteRequest{})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("memory-only follower promoted: %s", raw)
	}
}
