package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/worker"
)

// DefaultPriorStrength is the pseudo-count weight given to a worker's
// registered quality: registering quality q is treated as q·s past correct
// votes out of s, so early vote events move the posterior quickly without
// discarding the prior outright.
const DefaultPriorStrength = 8.0

// Errors returned by the registry.
var (
	ErrWorkerExists   = errors.New("server: worker already registered")
	ErrWorkerUnknown  = errors.New("server: unknown worker")
	ErrEmptyID        = errors.New("server: empty worker id")
	ErrEmptyRegistry  = errors.New("server: no workers registered")
	ErrBadPrior       = errors.New("server: negative prior strength")
	ErrDuplicateBatch = errors.New("server: duplicate worker id in batch")
)

// workerState is the registry's record of one worker: the public Worker
// parameters plus the Beta posterior over its correctness probability.
// Quality is kept equal to the posterior mean a/(a+b).
type workerState struct {
	id      string
	quality float64
	cost    float64
	// a and b are the Beta pseudo-counts: evidence for voting correctly
	// and incorrectly, seeded from the registered quality.
	a, b float64
	// votes and correct tally ingested events.
	votes   int
	correct int
	// version increments on every state change.
	version int64
}

func (w *workerState) info() WorkerInfo {
	return WorkerInfo{
		ID:      w.id,
		Quality: w.quality,
		Cost:    w.cost,
		Votes:   w.votes,
		Correct: w.correct,
		Version: w.version,
	}
}

// Registry is the concurrency-safe resident worker pool: registration,
// updates, and Bayesian posterior re-estimation from ingested vote events.
// Every observable state is identified by a Signature — a hash over the
// ordered (id, quality, cost) triples — which selection caching uses as
// its consistency token: any quality drift changes the signature.
type Registry struct {
	mu      sync.RWMutex
	workers map[string]*workerState
	order   []string // registration order, the pool order of snapshots
	gen     uint64   // bumps on every mutation, for observability
	// fullSig is the signature of the whole pool, refreshed by every
	// mutating method under the write lock, so the hot read paths
	// (selection cache lookups, listings) never re-hash the pool.
	fullSig string
	// journal, when set, reserves a WAL record for every mutation under
	// the write lock after validation but before the mutation is applied:
	// a failed reservation aborts the mutation with memory untouched, and
	// the log order always matches the lock (application) order. The
	// returned commit blocks until the record is durable and MUST be
	// called after the write lock is released — under group commit that
	// is what lets independent mutations share one fsync — and the
	// mutation acknowledged only if it returns nil. The context carries
	// the request trace, so the journal can attribute its encode, append,
	// flush and fsync time to the request that paid for it.
	journal func(context.Context, *Record) (func() error, error)
	// barrier, when set, blocks until every WAL record reserved so far is
	// durable — the duplicate-ack wait: a keyed-ingest retry may only be
	// re-acknowledged once the original record it dedups against is
	// itself on stable storage. Called without r.mu held.
	barrier func() error
	// idem remembers applied ingest idempotency keys. Guarded by mu, so
	// its insertion order is the WAL order and replay rebuilds it
	// bit-exactly; dedup runs BEFORE journaling, so the log itself never
	// carries a duplicate key.
	idem *idemTable
}

// logLocked reserves a WAL record for rec if a journal is attached,
// returning the commit to run once r.mu is released. Callers hold r.mu.
func (r *Registry) logLocked(ctx context.Context, rec *Record) (func() error, error) {
	if r.journal == nil {
		return commitNoop, nil
	}
	return r.journal(ctx, rec)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{workers: make(map[string]*workerState), idem: newIdemTable()}
}

// validateSpec checks one registration spec.
func validateSpec(spec WorkerSpec) error {
	if spec.ID == "" {
		return ErrEmptyID
	}
	if spec.PriorStrength < 0 || spec.PriorStrength != spec.PriorStrength {
		return fmt.Errorf("%w: %v (worker %q)", ErrBadPrior, spec.PriorStrength, spec.ID)
	}
	w := worker.Worker{ID: spec.ID, Quality: spec.Quality, Cost: spec.Cost}
	return w.Validate()
}

// newState builds the posterior-seeded state for a spec.
func newState(spec WorkerSpec, defaultStrength float64) *workerState {
	s := spec.PriorStrength
	if s == 0 {
		s = defaultStrength
	}
	return &workerState{
		id:      spec.ID,
		quality: spec.Quality,
		cost:    spec.Cost,
		a:       spec.Quality * s,
		b:       (1 - spec.Quality) * s,
		version: 1,
	}
}

// Register adds a batch of new workers atomically: either every spec is
// registered or none is. defaultStrength seeds the posterior of specs
// without an explicit PriorStrength. The returned signature identifies
// the pool state after registration, computed under the same lock.
func (r *Registry) Register(ctx context.Context, specs []WorkerSpec, defaultStrength float64) (string, error) {
	if defaultStrength <= 0 {
		defaultStrength = DefaultPriorStrength
	}
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if err := validateSpec(spec); err != nil {
			return "", err
		}
		if seen[spec.ID] {
			return "", fmt.Errorf("%w: %q", ErrDuplicateBatch, spec.ID)
		}
		seen[spec.ID] = true
	}
	sig, commit, err := func() (string, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		for _, spec := range specs {
			if _, ok := r.workers[spec.ID]; ok {
				return "", nil, fmt.Errorf("%w: %q", ErrWorkerExists, spec.ID)
			}
		}
		commit, err := r.logLocked(ctx, &Record{T: RecRegister, Specs: specs, Strength: defaultStrength})
		if err != nil {
			return "", nil, err
		}
		defer obs.TraceFrom(ctx).Begin(obs.StageApply).End()
		return r.applyRegisterLocked(specs, defaultStrength), commit, nil
	}()
	if err != nil {
		return "", err
	}
	if err := commit(); err != nil {
		return "", err
	}
	return sig, nil
}

// applyRegisterLocked performs a validated registration; shared by the
// live path and WAL replay. Callers hold r.mu.
func (r *Registry) applyRegisterLocked(specs []WorkerSpec, defaultStrength float64) string {
	for _, spec := range specs {
		r.workers[spec.ID] = newState(spec, defaultStrength)
		r.order = append(r.order, spec.ID)
	}
	r.gen++
	return r.refreshFullSigLocked()
}

// refreshFullSigLocked recomputes the memoized full-pool signature; every
// mutating method calls it before releasing the write lock.
func (r *Registry) refreshFullSigLocked() string {
	if len(r.order) == 0 {
		r.fullSig = ""
	} else {
		r.fullSig = r.signatureLocked(r.order)
	}
	return r.fullSig
}

// Update replaces a worker's quality and cost, re-seeding its posterior
// from the new quality (an operator override discards accumulated vote
// evidence by design).
func (r *Registry) Update(ctx context.Context, spec WorkerSpec, defaultStrength float64) (WorkerInfo, error) {
	if defaultStrength <= 0 {
		defaultStrength = DefaultPriorStrength
	}
	if err := validateSpec(spec); err != nil {
		return WorkerInfo{}, err
	}
	info, commit, err := func() (WorkerInfo, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.workers[spec.ID]; !ok {
			return WorkerInfo{}, nil, fmt.Errorf("%w: %q", ErrWorkerUnknown, spec.ID)
		}
		commit, err := r.logLocked(ctx, &Record{T: RecUpdate, Specs: []WorkerSpec{spec}, Strength: defaultStrength})
		if err != nil {
			return WorkerInfo{}, nil, err
		}
		defer obs.TraceFrom(ctx).Begin(obs.StageApply).End()
		return r.applyUpdateLocked(spec, defaultStrength), commit, nil
	}()
	if err != nil {
		return WorkerInfo{}, err
	}
	if err := commit(); err != nil {
		return WorkerInfo{}, err
	}
	return info, nil
}

// applyUpdateLocked performs a validated update; shared by the live path
// and WAL replay. Callers hold r.mu and have checked existence.
func (r *Registry) applyUpdateLocked(spec WorkerSpec, defaultStrength float64) WorkerInfo {
	w := r.workers[spec.ID]
	fresh := newState(spec, defaultStrength)
	fresh.version = w.version + 1
	*w = *fresh
	r.gen++
	r.refreshFullSigLocked()
	return w.info()
}

// Remove deletes a worker.
func (r *Registry) Remove(ctx context.Context, id string) error {
	commit, err := func() (func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.workers[id]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrWorkerUnknown, id)
		}
		commit, err := r.logLocked(ctx, &Record{T: RecRemove, WorkerID: id})
		if err != nil {
			return nil, err
		}
		defer obs.TraceFrom(ctx).Begin(obs.StageApply).End()
		r.applyRemoveLocked(id)
		return commit, nil
	}()
	if err != nil {
		return err
	}
	return commit()
}

// applyRemoveLocked deletes a known worker; shared by the live path and
// WAL replay. Callers hold r.mu and have checked existence.
func (r *Registry) applyRemoveLocked(id string) {
	delete(r.workers, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.gen++
	r.refreshFullSigLocked()
}

// Get returns one worker's state.
func (r *Registry) Get(id string) (WorkerInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	w, ok := r.workers[id]
	if !ok {
		return WorkerInfo{}, fmt.Errorf("%w: %q", ErrWorkerUnknown, id)
	}
	return w.info(), nil
}

// List returns every worker in registration order together with the pool
// signature of exactly that state (both read under one lock, so they are
// mutually consistent). The signature is "" for an empty registry.
func (r *Registry) List() ([]WorkerInfo, string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]WorkerInfo, len(r.order))
	for i, id := range r.order {
		out[i] = r.workers[id].info()
	}
	return out, r.fullSig
}

// Len returns the number of registered workers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Generation returns the mutation counter.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Ingest applies a batch of vote events atomically: every referenced
// worker must exist or nothing is applied. Each event is one Bayesian
// posterior step — a correct vote adds one pseudo-count of correctness
// evidence, an incorrect one the opposite — and the worker's quality
// becomes the new posterior mean. It returns the updated states of the
// touched workers, in first-touch order, and the post-ingest pool
// signature (computed under the same lock, so it matches the returned
// states exactly).
func (r *Registry) Ingest(ctx context.Context, events []VoteEvent) ([]WorkerInfo, string, error) {
	out, sig, _, err := r.IngestKeyed(ctx, events, "")
	return out, sig, err
}

// IngestKeyed is Ingest with a client-generated idempotency key: when
// key is non-empty and an earlier ingest already carried it, nothing is
// applied (or journaled) and duplicate is true. The key travels in the
// WAL record and the dedup table in snapshots, so exactly-once holds
// through crash recovery: a retry that lands after a replayed restart
// still deduplicates.
func (r *Registry) IngestKeyed(ctx context.Context, events []VoteEvent, key string) (updated []WorkerInfo, sig string, duplicate bool, err error) {
	tr := obs.TraceFrom(ctx)
	updated, sig, duplicate, commit, err := func() ([]WorkerInfo, string, bool, func() error, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if key != "" {
			idemSpan := tr.Begin(obs.StageIdem)
			dup := r.idem.has(key)
			idemSpan.End()
			if dup {
				return nil, r.fullSig, true, commitNoop, nil
			}
		}
		for _, ev := range events {
			if _, ok := r.workers[ev.WorkerID]; !ok {
				return nil, "", false, nil, fmt.Errorf("%w: %q", ErrWorkerUnknown, ev.WorkerID)
			}
		}
		commit := commitNoop
		if len(events) > 0 {
			var err error
			commit, err = r.logLocked(ctx, &Record{T: RecIngest, Events: events, Key: key})
			if err != nil {
				return nil, "", false, nil, err
			}
			if key != "" {
				r.idem.add(key)
			}
		}
		applySpan := tr.Begin(obs.StageApply)
		touchOrder := r.applyIngestLocked(events)
		applySpan.End()
		out := make([]WorkerInfo, len(touchOrder))
		for i, id := range touchOrder {
			out[i] = r.workers[id].info()
		}
		return out, r.fullSig, false, commit, nil
	}()
	if err != nil {
		return nil, "", false, err
	}
	if duplicate {
		// A duplicate ack promises the original ingest is durable. The
		// original's record is already in the WAL (dedup runs after
		// replay-visible state), but under group commit it may still be
		// waiting for its fsync — hold this retry until the watermark
		// passes so a crash cannot eat a mutation the retry acked.
		if r.barrier != nil {
			if err := r.barrier(); err != nil {
				return nil, "", false, err
			}
		}
		return nil, sig, true, nil
	}
	if err := commit(); err != nil {
		return nil, "", false, err
	}
	return updated, sig, false, nil
}

// applyIngestLocked performs a validated ingest and returns the touched
// worker ids in first-touch order; shared by the live path and WAL
// replay. Callers hold r.mu and have checked that every worker exists.
func (r *Registry) applyIngestLocked(events []VoteEvent) []string {
	touched := make(map[string]bool, len(events))
	var touchOrder []string
	for _, ev := range events {
		w := r.workers[ev.WorkerID]
		if ev.Correct {
			w.a++
			w.correct++
		} else {
			w.b++
		}
		w.votes++
		w.quality = w.a / (w.a + w.b)
		w.version++
		if !touched[ev.WorkerID] {
			touched[ev.WorkerID] = true
			touchOrder = append(touchOrder, ev.WorkerID)
		}
	}
	if len(events) > 0 {
		r.gen++
		r.refreshFullSigLocked()
	}
	return touchOrder
}

// Apply replays one journaled registry record without re-journaling it —
// the recovery path. It revalidates like the live mutators so a
// logically corrupt log fails recovery instead of silently diverging.
func (r *Registry) Apply(rec *Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch rec.T {
	case RecRegister:
		seen := make(map[string]bool, len(rec.Specs))
		for _, spec := range rec.Specs {
			if err := validateSpec(spec); err != nil {
				return err
			}
			if seen[spec.ID] {
				return fmt.Errorf("%w: %q", ErrDuplicateBatch, spec.ID)
			}
			seen[spec.ID] = true
			if _, ok := r.workers[spec.ID]; ok {
				return fmt.Errorf("%w: %q", ErrWorkerExists, spec.ID)
			}
		}
		strength := rec.Strength
		if strength <= 0 {
			strength = DefaultPriorStrength
		}
		r.applyRegisterLocked(rec.Specs, strength)
	case RecUpdate:
		if len(rec.Specs) != 1 {
			return fmt.Errorf("server: update record carries %d specs", len(rec.Specs))
		}
		spec := rec.Specs[0]
		if err := validateSpec(spec); err != nil {
			return err
		}
		if _, ok := r.workers[spec.ID]; !ok {
			return fmt.Errorf("%w: %q", ErrWorkerUnknown, spec.ID)
		}
		strength := rec.Strength
		if strength <= 0 {
			strength = DefaultPriorStrength
		}
		r.applyUpdateLocked(spec, strength)
	case RecRemove:
		if _, ok := r.workers[rec.WorkerID]; !ok {
			return fmt.Errorf("%w: %q", ErrWorkerUnknown, rec.WorkerID)
		}
		r.applyRemoveLocked(rec.WorkerID)
	case RecIngest:
		for _, ev := range rec.Events {
			if _, ok := r.workers[ev.WorkerID]; !ok {
				return fmt.Errorf("%w: %q", ErrWorkerUnknown, ev.WorkerID)
			}
		}
		if rec.Key != "" {
			r.idem.add(rec.Key)
		}
		r.applyIngestLocked(rec.Events)
	default:
		return fmt.Errorf("server: record type %q is not a registry record", rec.T)
	}
	return nil
}

// persistState serializes the full registry (posteriors included) for a
// snapshot, in registration order.
func (r *Registry) persistState() registryState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := registryState{Gen: r.gen, Workers: make([]workerPersist, len(r.order))}
	for i, id := range r.order {
		w := r.workers[id]
		st.Workers[i] = workerPersist{
			ID:      w.id,
			Quality: w.quality,
			Cost:    w.cost,
			A:       w.a,
			B:       w.b,
			Votes:   w.votes,
			Correct: w.correct,
			Version: w.version,
		}
	}
	st.Idem = r.idem.snapshot()
	return st
}

// load replaces the registry contents with a snapshot's state — the
// recovery path, called before the server starts serving.
func (r *Registry) load(st registryState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	workers := make(map[string]*workerState, len(st.Workers))
	order := make([]string, 0, len(st.Workers))
	for _, wp := range st.Workers {
		if wp.ID == "" {
			return ErrEmptyID
		}
		if _, ok := workers[wp.ID]; ok {
			return fmt.Errorf("%w: %q", ErrDuplicateBatch, wp.ID)
		}
		workers[wp.ID] = &workerState{
			id:      wp.ID,
			quality: wp.Quality,
			cost:    wp.Cost,
			a:       wp.A,
			b:       wp.B,
			votes:   wp.Votes,
			correct: wp.Correct,
			version: wp.Version,
		}
		order = append(order, wp.ID)
	}
	r.workers = workers
	r.order = order
	r.gen = st.Gen
	r.idem.load(st.Idem)
	r.refreshFullSigLocked()
	return nil
}

// AnyAffordable reports whether some registered worker costs at most
// budget — the "can collection possibly continue" check behind the
// online sessions' budget stop.
func (r *Registry) AnyAffordable(budget float64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, w := range r.workers {
		if w.cost <= budget {
			return true
		}
	}
	return false
}

// Snapshot materializes an immutable candidate pool for selection: the
// workers (all of them, or the given subset) as a worker.Pool in stable
// order, their ids, and the state signature. The returned pool shares
// nothing with the registry, so selection can run without holding locks.
// Full-pool snapshots reuse the memoized signature; subset snapshots hash
// their canonicalized members.
func (r *Registry) Snapshot(ids []string) (worker.Pool, []string, string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sig := ""
	if len(ids) == 0 {
		if len(r.order) == 0 {
			return nil, nil, "", ErrEmptyRegistry
		}
		ids = r.order
		sig = r.fullSig
	} else {
		for _, id := range ids {
			if _, ok := r.workers[id]; !ok {
				return nil, nil, "", fmt.Errorf("%w: %q", ErrWorkerUnknown, id)
			}
		}
		// Canonicalize: selection treats the pool as a set, so a subset
		// request is ordered by id and deduplicated to make equivalent
		// requests share one signature (and one cache entry).
		uniq := make([]string, 0, len(ids))
		seen := make(map[string]bool, len(ids))
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				uniq = append(uniq, id)
			}
		}
		sort.Strings(uniq)
		ids = uniq
	}
	pool := make(worker.Pool, len(ids))
	outIDs := make([]string, len(ids))
	for i, id := range ids {
		w := r.workers[id]
		pool[i] = worker.Worker{ID: w.id, Quality: w.quality, Cost: w.cost}
		outIDs[i] = id
	}
	if sig == "" {
		sig = r.signatureLocked(ids)
	}
	return pool, outIDs, sig, nil
}

// Signature returns the memoized full-pool signature.
func (r *Registry) Signature() (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.order) == 0 {
		return "", ErrEmptyRegistry
	}
	return r.fullSig, nil
}

// signatureLocked hashes the (id, quality, cost) triples of the given
// workers, in order, into the pool signature. Each id is length-prefixed
// so the byte stream parses unambiguously regardless of the bytes ids
// contain; with SHA-256 truncated to 128 bits, that keeps accidental and
// adversarially crafted collisions out of reach — which is what lets the
// selection cache treat "same signature" as "same pool state". Callers
// must hold r.mu (either mode).
func (r *Registry) signatureLocked(ids []string) string {
	h := sha256.New()
	var buf [8]byte
	for _, id := range ids {
		w := r.workers[id]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(id)))
		h.Write(buf[:])
		h.Write([]byte(id))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.quality))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.cost))
		h.Write(buf[:])
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
