package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/voting"
)

func TestSessionStoreReapsUnderCapPressure(t *testing.T) {
	st := newSessionStore()
	st.cap = 2
	now := time.Unix(1000, 0)
	st.now = func() time.Time { return now }
	cfg := online.Config{Alpha: 0.5, Confidence: 0.95}

	s1, err := st.Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Open(context.Background(), cfg); err == nil {
		t.Fatal("cap not enforced with two live sessions")
	}

	// Finishing s1 makes it reapable: the next Open succeeds.
	if state, err := st.Observe(context.Background(), s1.ID, 0.99, 0, voting.No); err != nil || !state.Done {
		t.Fatalf("observe: %+v, %v", state, err)
	}
	s3, err := st.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("open after finishing a session: %v", err)
	}
	if _, err := st.Get(s1.ID); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("finished session not reaped: %v", err)
	}

	// Sessions idle past the TTL are reapable too.
	now = now.Add(sessionIdleTTL + time.Minute)
	if _, err := st.Open(context.Background(), cfg); err != nil {
		t.Fatalf("open after idle TTL: %v", err)
	}
	if _, err := st.Get(s3.ID); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("idle session not reaped: %v", err)
	}
}

func TestSessionStoreBudgetRemaining(t *testing.T) {
	st := newSessionStore()
	unbounded, err := st.Open(context.Background(), online.Config{Alpha: 0.5, Confidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if _, bounded, err := st.BudgetRemaining(unbounded.ID); err != nil || bounded {
		t.Fatalf("unbounded session reported a budget: %v, %v", bounded, err)
	}
	s, err := st.Open(context.Background(), online.Config{Alpha: 0.5, Confidence: 0.999999, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Observe(context.Background(), s.ID, 0.6, 4, voting.No); err != nil {
		t.Fatal(err)
	}
	remaining, bounded, err := st.BudgetRemaining(s.ID)
	if err != nil || !bounded || remaining != 6 {
		t.Fatalf("remaining = %v, %v, %v; want 6, true, nil", remaining, bounded, err)
	}
}
