package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(rng, 0.7, 0.2)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-0.7) > 0.005 {
		t.Errorf("mean = %v, want ~0.7", s.Mean)
	}
	if math.Abs(s.Std-0.2) > 0.005 {
		t.Errorf("std = %v, want ~0.2", s.Std)
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := TruncatedNormal(rng, 0.7, 0.3, 0.5, 0.99)
		if x < 0.5 || x > 0.99 {
			t.Fatalf("sample %v outside [0.5, 0.99]", x)
		}
	}
}

func TestTruncatedNormalDegenerateSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := TruncatedNormal(rng, 0.7, 0, 0.5, 0.99); got != 0.7 {
		t.Fatalf("sigma=0: got %v, want 0.7", got)
	}
	if got := TruncatedNormal(rng, 2.0, 0, 0.5, 0.99); got != 0.99 {
		t.Fatalf("sigma=0 clamp: got %v, want 0.99", got)
	}
}

func TestTruncatedNormalFarTailFallsBackToClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Interval 40 sigmas away: rejection will never hit; must clamp into range.
	x := TruncatedNormal(rng, 0, 0.01, 0.4, 0.41)
	if x < 0.4 || x > 0.41 {
		t.Fatalf("far-tail sample %v outside [0.4, 0.41]", x)
	}
}

func TestTruncatedNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inverted bounds")
		}
	}()
	TruncatedNormal(rand.New(rand.NewSource(1)), 0, 1, 1, 0)
}

func TestSummarizeKnownSample(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Median != 3 {
		t.Errorf("median = %v, want 3", s.Median)
	}
	if math.Abs(s.SampleVariance-2.5) > 1e-12 {
		t.Errorf("sample variance = %v, want 2.5", s.SampleVariance)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("Summary of empty = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {0.25, 17.5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(-0.5) // under
	h.Add(0)    // bin 0
	h.Add(0.05) // bin 0
	h.Add(0.95) // bin 9
	h.Add(1)    // over (range is half-open)
	h.Add(2)    // over
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("Counts[0] = %d, want 2", h.Counts[0])
	}
	if h.Counts[9] != 1 {
		t.Errorf("Counts[9] = %d, want 1", h.Counts[9])
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramBinGeometry(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if got := h.BinCenter(0); math.Abs(got-0.125) > 1e-15 {
		t.Errorf("BinCenter(0) = %v, want 0.125", got)
	}
	if got := h.BinLow(2); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("BinLow(2) = %v, want 0.5", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":      func() { NewHistogram(0, 1, 0) },
		"inverted range": func() { NewHistogram(1, 0, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestRangeCounterTable3Layout(t *testing.T) {
	// The paper's Table 3 ranges, in percentage points.
	rc := NewRangeCounter(0, 0.01, 0.1, 1, 3)
	rc.Add(0)     // [0, 0.01]
	rc.Add(0.01)  // [0, 0.01] (closed right edge of first range)
	rc.Add(0.05)  // (0.01, 0.1]
	rc.Add(0.1)   // (0.01, 0.1]
	rc.Add(0.5)   // (0.1, 1]
	rc.Add(2)     // (1, 3]
	rc.Add(10)    // (3, +inf)
	rc.Add(-1e-9) // tiny negative rounds into the first range
	want := []int{3, 2, 1, 1, 1}
	for i, c := range rc.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", rc.Counts, want)
		}
	}
	if rc.Total() != 8 {
		t.Fatalf("Total = %d, want 8", rc.Total())
	}
	labels := rc.Labels()
	wantLabels := []string{"[0,0.01]", "(0.01,0.1]", "(0.1,1]", "(1,3]", "(3,+inf)"}
	for i := range labels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("Labels = %v, want %v", labels, wantLabels)
		}
	}
}

func TestRangeCounterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"one edge":      func() { NewRangeCounter(0) },
		"non-ascending": func() { NewRangeCounter(0, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// Property: histogram conserves observations across bins + under/over.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 7)
		count := int(n%500) + 1
		for i := 0; i < count; i++ {
			h.Add(rng.NormFloat64())
		}
		sum := h.Under + h.Over
		for _, c := range h.Counts {
			sum += c
		}
		return sum == count && h.Total() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%50) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
