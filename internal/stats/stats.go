// Package stats is a small statistics substrate for the reproduction: seeded
// random distributions (Gaussian, truncated Gaussian), summary statistics,
// fixed-width histograms, and the error-range counters used to regenerate
// Table 3 of the paper. Only the standard library is used.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Normal draws one sample from N(mu, sigma²) using rng.
func Normal(rng *rand.Rand, mu, sigma float64) float64 {
	return rng.NormFloat64()*sigma + mu
}

// TruncatedNormal draws from N(mu, sigma²) conditioned on [lo, hi] by
// rejection sampling, falling back to clamping after maxTries rejections
// (which only happens when [lo, hi] lies far in the tail). It panics when
// lo > hi: that is a programming error.
func TruncatedNormal(rng *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: TruncatedNormal bounds inverted: [%v, %v]", lo, hi))
	}
	if sigma <= 0 {
		return clamp(mu, lo, hi)
	}
	const maxTries = 256
	for i := 0; i < maxTries; i++ {
		x := Normal(rng, mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	return clamp(Normal(rng, mu, sigma), lo, hi)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 { return clamp(x, lo, hi) }

// Summary holds basic descriptive statistics of a sample.
//
// Variance convention: Std is the population standard deviation (the
// sum of squared deviations divided by N) — the experiment harness
// reports the spread of the exact set of repeats it ran, matching how
// the paper's tables describe their own measurements. SampleVariance is
// the Bessel-corrected estimator (divided by N−1, zero when N < 2) for
// callers treating the repeats as a sample of a larger population, e.g.
// confidence intervals. Std*Std therefore does NOT equal SampleVariance;
// pick the field matching the inference you are making.
type Summary struct {
	N int
	// Mean is the arithmetic mean; Std the population (÷N) standard
	// deviation.
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P90, P99  float64
	Sum       float64
	// SampleVariance is the unbiased (÷(N−1)) variance estimator.
	SampleVariance float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.SampleVariance = ss / float64(s.N-1)
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already sorted sample
// using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-width histogram over [Lo, Hi). Values outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over [lo, hi). It panics when bins < 1 or lo >= hi.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram needs at least one bin")
	}
	if lo >= hi {
		panic(fmt.Sprintf("stats: NewHistogram invalid range [%v, %v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		width := (h.Hi - h.Lo) / float64(len(h.Counts))
		idx := int((x - h.Lo) / width)
		if idx >= len(h.Counts) { // floating point edge at Hi
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// BinLow returns the inclusive lower edge of bin i.
func (h *Histogram) BinLow(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*width
}

// RangeCounter counts observations into caller-defined half-open ranges
// (lo, hi]; the first range is closed: [lo, hi]. This matches Table 3 of the
// paper, which reports counts in [0, 0.01], (0.01, 0.1], (0.1, 1], (1, 3],
// (3, +inf) — in percentage points.
type RangeCounter struct {
	// Edges are the ascending boundaries e0 < e1 < ... < ek. Observations
	// fall into [e0, e1], (e1, e2], ..., (e_{k-1}, ek], and (ek, +inf).
	Edges  []float64
	Counts []int // len(Edges) buckets: k interior ranges plus overflow
}

// NewRangeCounter builds a counter for the given ascending edges. It panics
// when fewer than two edges are given or they are not strictly ascending.
func NewRangeCounter(edges ...float64) *RangeCounter {
	if len(edges) < 2 {
		panic("stats: NewRangeCounter needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: NewRangeCounter edges must be strictly ascending")
		}
	}
	return &RangeCounter{Edges: edges, Counts: make([]int, len(edges))}
}

// Add records one observation. Values below the first edge are counted in
// the first range (the paper's error differences are non-negative by
// construction, but floating point can produce tiny negatives).
func (rc *RangeCounter) Add(x float64) {
	if x <= rc.Edges[1] {
		rc.Counts[0]++
		return
	}
	for i := 2; i < len(rc.Edges); i++ {
		if x <= rc.Edges[i] {
			rc.Counts[i-1]++
			return
		}
	}
	rc.Counts[len(rc.Counts)-1]++
}

// Total returns the number of recorded observations.
func (rc *RangeCounter) Total() int {
	var sum int
	for _, c := range rc.Counts {
		sum += c
	}
	return sum
}

// Labels renders the range labels, e.g. "[0,0.01]", "(0.01,0.1]", "(3,+inf)".
func (rc *RangeCounter) Labels() []string {
	labels := make([]string, len(rc.Counts))
	labels[0] = fmt.Sprintf("[%v,%v]", rc.Edges[0], rc.Edges[1])
	for i := 2; i < len(rc.Edges); i++ {
		labels[i-1] = fmt.Sprintf("(%v,%v]", rc.Edges[i-1], rc.Edges[i])
	}
	labels[len(labels)-1] = fmt.Sprintf("(%v,+inf)", rc.Edges[len(rc.Edges)-1])
	return labels
}
