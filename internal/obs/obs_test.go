package obs

import (
	"bufio"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < numStages; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "stage") {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if got := Stage(200).String(); got != "stage200" {
		t.Fatalf("out-of-range stage name = %q", got)
	}
}

func TestNewIDAndCleanID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("NewID length: %q %q", a, b)
	}
	if a == b {
		t.Fatalf("NewID returned duplicates: %q", a)
	}
	if got := CleanID("client-abc-123"); got != "client-abc-123" {
		t.Fatalf("CleanID rejected a clean ID: %q", got)
	}
	for _, bad := range []string{"", "has space", "has\nnewline", "ünicode", strings.Repeat("x", 101)} {
		got := CleanID(bad)
		if got == bad || len(got) != 16 {
			t.Fatalf("CleanID(%q) = %q, want fresh ID", bad, got)
		}
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace ID")
	}
	st := tr.Begin(StageEval)
	st.End() // must not panic
	tr.Add(StageApply, time.Now(), time.Millisecond)
	var r *Recorder
	r.Finish(tr, 200)
	if r.Recent(5) != nil || r.Slowest() != nil || r.Count() != 0 {
		t.Fatal("nil recorder should report nothing")
	}
	r.WriteMetrics(&strings.Builder{})
}

func TestContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tr := NewTrace("abc", "POST /v1/select")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	r := NewRecorder(8)
	tr := NewTrace("id1", "POST /v1/select")
	st := tr.Begin(StageCache)
	time.Sleep(time.Millisecond)
	st.End()
	tr.Add(StageWALFsync, time.Now(), 2*time.Millisecond)
	r.Finish(tr, 200)

	recent := r.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("Recent = %d traces, want 1", len(recent))
	}
	snap := recent[0]
	if snap.ID != "id1" || snap.Route != "POST /v1/select" || snap.Status != 200 {
		t.Fatalf("snapshot identity wrong: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	if snap.Spans[0].Stage != "cache_lookup" || snap.Spans[0].DurationSeconds < 0.001 {
		t.Fatalf("cache span wrong: %+v", snap.Spans[0])
	}
	if snap.Spans[1].Stage != "wal_fsync" || snap.Spans[1].DurationSeconds < 0.002 {
		t.Fatalf("fsync span wrong: %+v", snap.Spans[1])
	}
	if snap.DurationSeconds < snap.Spans[0].DurationSeconds {
		t.Fatalf("trace shorter than its spans: %+v", snap)
	}
}

func TestLateSpansAfterFinishAreDropped(t *testing.T) {
	// http.TimeoutHandler keeps the handler goroutine running after the
	// response is written; spans recorded after Finish must be dropped,
	// not appended to a published trace.
	r := NewRecorder(4)
	tr := NewTrace("late", "POST /v1/select")
	tr.Add(StageCache, time.Now(), time.Microsecond)
	r.Finish(tr, 503)
	tr.Add(StageEval, time.Now(), time.Second) // late writer
	late := tr.Begin(StageApply)
	late.End()

	snap := r.Recent(1)[0]
	if len(snap.Spans) != 1 {
		t.Fatalf("late spans leaked into a finished trace: %+v", snap.Spans)
	}
	if snap.SpansDropped != 2 {
		t.Fatalf("SpansDropped = %d, want 2", snap.SpansDropped)
	}
}

func TestSpanCapBoundsTraceMemory(t *testing.T) {
	tr := NewTrace("big", "GET /healthz")
	for i := 0; i < maxSpans+10; i++ {
		tr.Add(StageEval, time.Now(), time.Microsecond)
	}
	r := NewRecorder(2)
	r.Finish(tr, 200)
	snap := r.Recent(1)[0]
	if len(snap.Spans) != maxSpans {
		t.Fatalf("spans = %d, want cap %d", len(snap.Spans), maxSpans)
	}
	if snap.SpansDropped != 10 {
		t.Fatalf("SpansDropped = %d, want 10", snap.SpansDropped)
	}
}

func TestRingWraparound(t *testing.T) {
	const size = 8
	r := NewRecorder(size)
	for i := 0; i < 3*size; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i), "GET /healthz")
		r.Finish(tr, 200)
	}
	if r.Count() != 3*size {
		t.Fatalf("Count = %d, want %d", r.Count(), 3*size)
	}
	recent := r.Recent(0)
	if len(recent) != size {
		t.Fatalf("Recent = %d traces, want ring size %d", len(recent), size)
	}
	// Newest first: t23, t22, ... t16.
	for i, snap := range recent {
		want := fmt.Sprintf("t%d", 3*size-1-i)
		if snap.ID != want {
			t.Fatalf("recent[%d] = %q, want %q", i, snap.ID, want)
		}
	}
	if got := r.Recent(3); len(got) != 3 || got[0].ID != "t23" {
		t.Fatalf("Recent(3) = %+v", got)
	}
}

func TestSlowestBoard(t *testing.T) {
	r := NewRecorder(4) // ring smaller than the slow board on purpose
	for i := 0; i < 40; i++ {
		tr := NewTrace(fmt.Sprintf("t%d", i), "POST /v1/select")
		// Deterministic durations: trace i takes i+1 "units"; bypass the
		// clock by sealing via Finish then fixing dur under the lock is
		// not possible from outside, so instead spread real sleeps only
		// for the few slow ones.
		if i == 7 || i == 23 {
			time.Sleep(2 * time.Millisecond) // make these measurably slow
		}
		r.Finish(tr, 200)
	}
	slow := r.Slowest()
	if len(slow) == 0 || len(slow) > slowCap {
		t.Fatalf("slow board size = %d", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].DurationSeconds > slow[i-1].DurationSeconds {
			t.Fatalf("slow board not sorted slowest-first at %d: %v > %v",
				i, slow[i].DurationSeconds, slow[i-1].DurationSeconds)
		}
	}
	// The two deliberately slow traces must be on the board even though
	// the tiny ring evicted them long ago.
	found := map[string]bool{}
	for _, s := range slow {
		found[s.ID] = true
	}
	if !found["t7"] || !found["t23"] {
		t.Fatalf("slow traces evicted from board: %v", found)
	}
}

func TestWriteMetricsOmitsUnobservedStages(t *testing.T) {
	r := NewRecorder(4)
	var buf strings.Builder
	r.WriteMetrics(&buf)
	if buf.Len() != 0 {
		t.Fatalf("empty recorder emitted metrics:\n%s", buf.String())
	}

	tr := NewTrace("m", "POST /v1/select")
	tr.Add(StageCache, time.Now(), 3*time.Microsecond)
	r.Finish(tr, 200)
	buf.Reset()
	r.WriteMetrics(&buf)
	out := buf.String()
	if !strings.Contains(out, `juryd_stage_duration_seconds_bucket{stage="cache_lookup",le="+Inf"} 1`) {
		t.Fatalf("missing cache stage histogram:\n%s", out)
	}
	if strings.Contains(out, "wal_fsync") {
		t.Fatalf("unobserved fsync stage rendered:\n%s", out)
	}

	tr2 := NewTrace("m2", "POST /v1/votes")
	tr2.Add(StageWALFsync, time.Now(), 500*time.Microsecond)
	r.Finish(tr2, 200)
	buf.Reset()
	r.WriteMetrics(&buf)
	out = buf.String()
	if !strings.Contains(out, `juryd_wal_fsync_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("dedicated fsync histogram missing:\n%s", out)
	}
	if !strings.Contains(out, "juryd_wal_fsync_seconds_count 1") {
		t.Fatalf("fsync count missing:\n%s", out)
	}
}

// TestWriteMetricsCumulative checks bucket monotonicity and the
// _count == +Inf invariant with many observations spread over buckets.
func TestWriteMetricsCumulative(t *testing.T) {
	r := NewRecorder(4)
	durs := []time.Duration{
		500 * time.Nanosecond, 3 * time.Microsecond, 40 * time.Microsecond,
		300 * time.Microsecond, 2 * time.Millisecond, 30 * time.Millisecond,
		400 * time.Millisecond, 3 * time.Second, // beyond the last bound → +Inf
	}
	tr := NewTrace("c", "POST /v1/select")
	for _, d := range durs {
		tr.Add(StageEval, time.Now(), d)
	}
	r.Finish(tr, 200)

	var buf strings.Builder
	r.WriteMetrics(&buf)
	var counts []uint64
	var finalCount uint64
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, `juryd_stage_duration_seconds_bucket{stage="evaluate"`) {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			counts = append(counts, v)
		}
		if strings.HasPrefix(line, `juryd_stage_duration_seconds_count{stage="evaluate"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &finalCount)
		}
	}
	if len(counts) != len(StageBuckets)+1 {
		t.Fatalf("bucket lines = %d, want %d", len(counts), len(StageBuckets)+1)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets not cumulative at %d: %v", i, counts)
		}
	}
	if counts[len(counts)-1] != uint64(len(durs)) {
		t.Fatalf("+Inf bucket = %d, want %d", counts[len(counts)-1], len(durs))
	}
	if finalCount != uint64(len(durs)) {
		t.Fatalf("_count = %d, want %d", finalCount, len(durs))
	}
}

// TestConcurrentTracing hammers the recorder from many goroutines —
// parallel traces, ring wraparound under contention, concurrent
// readers, and late span writers — and must pass under -race.
func TestConcurrentTracing(t *testing.T) {
	r := NewRecorder(16)
	const workers = 8
	const perWorker = 200
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent readers while writers run.
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Recent(8)
				r.Slowest()
				r.WriteMetrics(&strings.Builder{})
			}
		}()
	}

	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				tr := NewTrace(fmt.Sprintf("w%d-%d", w, i), "POST /v1/select")
				st := tr.Begin(StageCache)
				st.End()
				tr.Add(StageWALAppend, time.Now(), time.Microsecond)
				tr.Add(StageWALFsync, time.Now(), time.Microsecond)
				r.Finish(tr, 200)
				// A late writer racing the published trace.
				tr.Add(StageEval, time.Now(), time.Second)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if r.Count() != workers*perWorker {
		t.Fatalf("Count = %d, want %d", r.Count(), workers*perWorker)
	}
	for _, snap := range r.Recent(0) {
		for _, sp := range snap.Spans {
			if sp.Stage == "evaluate" {
				t.Fatalf("late span leaked into published trace %q", snap.ID)
			}
		}
	}
}
