// Package obs is the observability layer behind the juryd daemon:
// per-request traces with stage-level span timings, a lock-free bounded
// ring buffer of recent traces, a small board of the slowest requests
// seen, and per-stage latency histograms rendered in Prometheus text
// exposition format.
//
// Design constraints, in order:
//
//  1. The hot path must be cheap enough to leave on in production. A
//     traced request costs one Trace allocation, a handful of span
//     timer reads of the monotonic clock, and one atomic slot store to
//     publish into the ring — no locks are taken on the request path
//     except each trace's own (uncontended) span mutex.
//  2. Memory is bounded. The ring holds a fixed number of finished
//     traces (older ones are overwritten), each trace holds at most
//     maxSpans spans (excess spans are counted, not stored), and the
//     slow board holds slowCap traces. Total steady-state footprint is
//     O(ring size), independent of traffic.
//  3. Readers never block writers. /debug/traces snapshots the ring by
//     loading slot pointers; a trace is published only after it is
//     finished, so everything a reader sees is immutable (the per-trace
//     mutex exists only for late spans from timed-out handlers, which
//     are dropped).
//
// The stage taxonomy (Stage) names the phases of one juryd request:
// admission control, the ingest idempotency check, selection-cache
// lookup, evaluator compute, WAL encode/append/flush/fsync, in-memory
// apply, and response encode. The WAL fsync stage is additionally
// rendered as the dedicated juryd_wal_fsync_seconds histogram — the
// number group commit exists to amortize (wal_flush is the wait on the
// shared flush; wal_fsync the disk time of the flush that covered the
// request).
package obs

import (
	"context"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the HTTP header carrying the request's trace ID,
// accepted from clients and echoed on every response.
const RequestIDHeader = "X-Request-Id"

// Stage names one phase of a request. The zero value is StageAdmission.
type Stage uint8

// The stage taxonomy of a juryd request, in rough request order.
const (
	// StageAdmission is the admission-control token acquisition.
	StageAdmission Stage = iota
	// StageIdem is the ingest idempotency-key dedup check.
	StageIdem
	// StageCache is the selection-cache lookup.
	StageCache
	// StageEval is the evaluator compute: the annealing/greedy/exhaustive
	// search on a cache miss, or a JQ evaluation.
	StageEval
	// StageWALEncode is the JSON encoding of a WAL record.
	StageWALEncode
	// StageWALAppend is the WAL record write (framing + file write),
	// excluding the fsync; under group commit, the LSN reservation and
	// batch staging.
	StageWALAppend
	// StageWALFlush is the group-commit durability wait: from releasing
	// the registry lock to the shared flush covering the record's LSN.
	StageWALFlush
	// StageWALFsync is the WAL flush to stable storage (only under
	// -fsync); under group commit, the disk time of the shared sync that
	// covered this request's record.
	StageWALFsync
	// StageApply is the in-memory application of a journaled mutation.
	StageApply
	// StageReplRead is the committed-prefix WAL read serving one
	// replication-stream request on a primary (excluding the long-poll
	// wait for new records, which is idle time, not work).
	StageReplRead
	// StageEncode is the response JSON encoding.
	StageEncode

	numStages
)

var stageNames = [numStages]string{
	"admission", "idempotency", "cache_lookup", "evaluate",
	"wal_encode", "wal_append", "wal_flush", "wal_fsync", "apply",
	"repl_read", "encode",
}

// String returns the stage's wire name (used in span JSON and in the
// stage="..." label of the per-stage histograms).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// NewID returns a fresh 16-hex-char request/trace ID. IDs only need to
// be unique enough to correlate log lines and traces, so they come from
// the runtime-seeded fast PRNG, not crypto/rand.
func NewID() string {
	const hexdigits = "0123456789abcdef"
	v := mrand.Uint64()
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// CleanID sanitizes a client-supplied X-Request-Id: printable ASCII, at
// most 100 bytes. Anything else (including "") is replaced by a fresh
// NewID, so a hostile header cannot corrupt logs or trace dumps.
func CleanID(id string) string {
	if id == "" || len(id) > 100 {
		return NewID()
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return NewID()
		}
	}
	return id
}

// maxSpans bounds the spans stored per trace; later spans are counted
// in SpansDropped but not stored, keeping trace memory fixed.
const maxSpans = 64

// Span is one timed stage of a trace.
type Span struct {
	Stage  Stage
	Offset time.Duration // start, relative to the trace's start
	Dur    time.Duration
	Err    bool // the stage failed (e.g. the WAL append that poisoned the log)
}

// Trace is one request's trace: identity, route, and span timings. A
// Trace is created by NewTrace, carried in the request context, fed
// spans via Begin/Add, and published by Recorder.Finish — after which
// it is immutable (late span writes are dropped).
type Trace struct {
	id    string
	route string
	wall  time.Time // wall-clock start, for display
	begin time.Time // carries the monotonic reading for all durations

	mu      sync.Mutex
	done    bool
	status  int
	dur     time.Duration
	spans   []Span
	dropped int
	// spanBuf backs spans for the typical request (one span per stage),
	// so recording costs no allocation until a request exceeds it.
	spanBuf [12]Span
}

// NewTrace starts a trace for one request. id should already be cleaned
// (CleanID); route is the registered route pattern.
func NewTrace(id, route string) *Trace {
	now := time.Now()
	t := &Trace{id: id, route: route, wall: now, begin: now}
	t.spans = t.spanBuf[:0]
	return t
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanTimer times one stage; obtain with Begin, finish with End. The
// zero value (from Begin on a nil trace) is a no-op.
type SpanTimer struct {
	t     *Trace
	stage Stage
	start time.Time
}

// Begin starts timing a stage. Safe on a nil trace (returns a no-op
// timer), so call sites need no tracing-enabled branches.
func (t *Trace) Begin(stage Stage) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, stage: stage, start: time.Now()}
}

// End finishes the span and records it on the trace.
func (st SpanTimer) End() {
	if st.t == nil {
		return
	}
	st.t.Add(st.stage, st.start, time.Since(st.start))
}

// Add records one span with an explicit start and duration — the
// low-level entry used by End and by callers that split one measured
// interval into stages (e.g. a WAL append whose fsync portion is
// reported separately). Safe on a nil trace. Spans added after the
// trace finished (a timed-out handler still running) are dropped.
func (t *Trace) Add(stage Stage, start time.Time, d time.Duration) {
	t.add(stage, start, d, false)
}

// AddErr records a span for a stage that failed, so the exact request
// that hit (or caused) the failure is visible in /debug/traces with an
// error tag rather than silently missing its span.
func (t *Trace) AddErr(stage Stage, start time.Time, d time.Duration) {
	t.add(stage, start, d, true)
}

func (t *Trace) add(stage Stage, start time.Time, d time.Duration, errTag bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done || len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Stage: stage, Offset: start.Sub(t.begin), Dur: d, Err: errTag})
	}
	t.mu.Unlock()
}

// SpanSnapshot is one span of a trace dump, durations in seconds.
type SpanSnapshot struct {
	Stage           string  `json:"stage"`
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Error           bool    `json:"error,omitempty"`
}

// TraceSnapshot is one finished trace as served by /debug/traces.
type TraceSnapshot struct {
	ID              string         `json:"id"`
	Route           string         `json:"route"`
	Status          int            `json:"status"`
	Start           time.Time      `json:"start"`
	DurationSeconds float64        `json:"duration_seconds"`
	Spans           []SpanSnapshot `json:"spans"`
	SpansDropped    int            `json:"spans_dropped,omitempty"`
}

// snapshot renders a finished trace. The span lock is taken only to
// fence late writers from timed-out handlers.
func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := make([]SpanSnapshot, len(t.spans))
	for i, sp := range t.spans {
		spans[i] = SpanSnapshot{
			Stage:           sp.Stage.String(),
			OffsetSeconds:   sp.Offset.Seconds(),
			DurationSeconds: sp.Dur.Seconds(),
			Error:           sp.Err,
		}
	}
	out := TraceSnapshot{
		ID:              t.id,
		Route:           t.route,
		Status:          t.status,
		Start:           t.wall,
		DurationSeconds: t.dur.Seconds(),
		Spans:           spans,
		SpansDropped:    t.dropped,
	}
	t.mu.Unlock()
	return out
}

// StageBuckets are the upper bounds (seconds) of the per-stage latency
// histograms, log-spaced from 1µs to 1s: stages are much finer-grained
// than whole requests (a cache probe is nanoseconds, an fsync is
// hundreds of microseconds to milliseconds, an annealing search tens of
// milliseconds). Observations above the last bound land in +Inf.
var StageBuckets = [...]float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// hist is one lock-free latency histogram: per-bucket atomic counters
// (the last slot is +Inf) plus an atomic nanosecond sum.
type hist struct {
	counts   [len(StageBuckets) + 1]atomic.Uint64
	sumNanos atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	secs := d.Seconds()
	idx := len(StageBuckets)
	for i, le := range StageBuckets {
		if secs <= le {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sumNanos.Add(int64(d))
}

// snapshot returns the non-cumulative bucket counts, total count and sum
// in seconds.
func (h *hist) snapshot() (buckets [len(StageBuckets) + 1]uint64, count uint64, sum float64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		count += buckets[i]
	}
	return buckets, count, time.Duration(h.sumNanos.Load()).Seconds()
}

// DefaultRingSize is the trace ring capacity when NewRecorder is given 0.
const DefaultRingSize = 256

// slowCap is how many slowest traces the recorder keeps.
const slowCap = 16

// Recorder collects finished traces and per-stage latency statistics.
// All methods are safe for concurrent use; Finish is the only one on
// the request hot path.
type Recorder struct {
	ring []atomic.Pointer[Trace]
	next atomic.Uint64 // total finished traces; next.Add(1)-1 is the slot index

	stages [numStages]hist

	// The slow board: the slowCap slowest finished traces, gated by an
	// atomic threshold so the common case (not slow) never locks.
	slowMu   sync.Mutex
	slow     []*Trace     // sorted slowest-first
	slowFull atomic.Bool  // board reached slowCap; slowMin is now the bar
	slowMin  atomic.Int64 // duration of the board's fastest entry once full
}

// NewRecorder returns a recorder whose ring holds size finished traces
// (0 selects DefaultRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{ring: make([]atomic.Pointer[Trace], size)}
}

// Finish seals the trace with its response status, publishes it into
// the ring (overwriting the oldest), feeds its spans into the stage
// histograms, and admits it to the slow board if it qualifies.
func (r *Recorder) Finish(t *Trace, status int) {
	if r == nil || t == nil {
		return
	}
	d := time.Since(t.begin)
	t.mu.Lock()
	t.done = true
	t.status = status
	t.dur = d
	spans := t.spans // sealed: no writer appends once done is set
	t.mu.Unlock()
	for _, sp := range spans {
		r.stages[sp.Stage].observe(sp.Dur)
	}
	slot := (r.next.Add(1) - 1) % uint64(len(r.ring))
	r.ring[slot].Store(t)
	if !r.slowFull.Load() || int64(d) > r.slowMin.Load() {
		r.admitSlow(t, d)
	}
}

// admitSlow inserts t into the slow board, keeping it sorted
// slowest-first and bounded at slowCap.
func (r *Recorder) admitSlow(t *Trace, d time.Duration) {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	i := sort.Search(len(r.slow), func(i int) bool { return r.slow[i].dur < d })
	if i >= slowCap {
		return
	}
	r.slow = append(r.slow, nil)
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = t
	if len(r.slow) > slowCap {
		r.slow = r.slow[:slowCap]
	}
	if len(r.slow) == slowCap {
		r.slowMin.Store(int64(r.slow[len(r.slow)-1].dur))
		r.slowFull.Store(true)
	}
}

// Recent returns up to n most-recent finished traces, newest first.
func (r *Recorder) Recent(n int) []TraceSnapshot {
	if r == nil {
		return nil
	}
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	total := r.next.Load()
	out := make([]TraceSnapshot, 0, n)
	for i := uint64(0); i < uint64(len(r.ring)) && len(out) < n; i++ {
		if i >= total {
			break
		}
		slot := (total - 1 - i) % uint64(len(r.ring))
		t := r.ring[slot].Load()
		if t == nil {
			continue // racing a writer that claimed the slot but has not stored yet
		}
		out = append(out, t.snapshot())
	}
	return out
}

// Slowest returns the slowest finished traces, slowest first.
func (r *Recorder) Slowest() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	board := append([]*Trace(nil), r.slow...)
	r.slowMu.Unlock()
	out := make([]TraceSnapshot, len(board))
	for i, t := range board {
		out[i] = t.snapshot()
	}
	return out
}

// Count returns how many traces have been finished.
func (r *Recorder) Count() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// WriteMetrics renders the per-stage latency histograms in Prometheus
// text exposition format: one juryd_stage_duration_seconds series per
// stage that has observations, plus the dedicated juryd_wal_fsync_seconds
// histogram (the same data as stage="wal_fsync" under the name the
// durability work is tracked by). Stages with no observations are
// omitted so the exposition carries no dead series.
func (r *Recorder) WriteMetrics(w io.Writer) {
	if r == nil {
		return
	}
	for s := Stage(0); s < numStages; s++ {
		buckets, count, sum := r.stages[s].snapshot()
		if count == 0 {
			continue
		}
		writeHist(w, "juryd_stage_duration_seconds",
			fmt.Sprintf("stage=%q", s.String()), buckets, count, sum)
	}
	if buckets, count, sum := r.stages[StageWALFsync].snapshot(); count > 0 {
		writeHist(w, "juryd_wal_fsync_seconds", "", buckets, count, sum)
	}
}

// writeHist renders one histogram family with cumulative buckets.
func writeHist(w io.Writer, name, labels string, buckets [len(StageBuckets) + 1]uint64, count uint64, sum float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, le := range StageBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep,
			strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += buckets[len(StageBuckets)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
	}
}

// ---------------------------------------------------------------------------
// Context plumbing.

type ctxKey struct{}

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom extracts the request trace from a context; nil (a valid,
// no-op trace target) when absent.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
