package voting

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriadicDeterministicFlag(t *testing.T) {
	if (TriadicConsensus{}).Deterministic() {
		t.Fatal("triadic consensus must be classified as randomized")
	}
}

func TestTriadicZeroRoundsIsRMV(t *testing.T) {
	// With explicit Rounds < default... rounds=0 maps to the default 3;
	// verify the algebra instead at rounds=1 against the closed form.
	qs := []float64{0.7, 0.7, 0.7, 0.7, 0.7}
	v := votes(0, 0, 0, 1, 1) // p = 0.6
	got, err := TriadicConsensus{Rounds: 1}.ProbZero(v, qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.6
	want := p*p*p + 3*p*p*(1-p)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ProbZero = %v, want %v", got, want)
	}
}

func TestTriadicConcentratesTowardMajority(t *testing.T) {
	qs := []float64{0.7, 0.7, 0.7, 0.7, 0.7}
	v := votes(0, 0, 0, 1, 1)
	prev := 0.6
	for rounds := 1; rounds <= 8; rounds++ {
		got, err := TriadicConsensus{Rounds: rounds}.ProbZero(v, qs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("rounds=%d: probability fell from %v to %v", rounds, prev, got)
		}
		prev = got
	}
	if prev < 0.99 {
		t.Fatalf("after 8 rounds P(majority answer) = %v, want ≈1", prev)
	}
}

func TestTriadicTieStaysHalf(t *testing.T) {
	qs := []float64{0.7, 0.7}
	got, err := TriadicConsensus{Rounds: 50}.ProbZero(votes(0, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tie: ProbZero = %v, want 0.5 forever", got)
	}
}

func TestTriadicRejectsNegativeRounds(t *testing.T) {
	if _, err := (TriadicConsensus{Rounds: -1}).ProbZero(votes(0), []float64{0.7}, 0.5); err == nil {
		t.Fatal("no error for negative rounds")
	}
}

// Property: the triadic probability is monotone in the zero-vote count and
// bounded by [0, 1].
func TestTriadicMonotoneProperty(t *testing.T) {
	f := func(seed int64, roundsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 2
		rounds := int(roundsRaw%6) + 1
		qs := make([]float64, n)
		for i := range qs {
			qs[i] = 0.5 + rng.Float64()/2
		}
		prev := -1.0
		for zeros := 0; zeros <= n; zeros++ {
			v := make([]Vote, n)
			for i := zeros; i < n; i++ {
				v[i] = Yes
			}
			p, err := TriadicConsensus{Rounds: rounds}.ProbZero(v, qs, 0.5)
			if err != nil {
				return false
			}
			if p < 0 || p > 1 || p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
