package voting

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func votes(vs ...int) []Vote {
	out := make([]Vote, len(vs))
	for i, v := range vs {
		out[i] = Vote(v)
	}
	return out
}

func TestVoteBasics(t *testing.T) {
	if No.Opposite() != Yes || Yes.Opposite() != No {
		t.Fatal("Opposite is wrong")
	}
	if No.String() != "no" || Yes.String() != "yes" {
		t.Fatal("String is wrong")
	}
}

func TestInputValidation(t *testing.T) {
	qs := []float64{0.7, 0.8}
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			if _, err := s.ProbZero(nil, nil, 0.5); !errors.Is(err, ErrEmptyVoting) {
				t.Errorf("empty voting: err = %v, want ErrEmptyVoting", err)
			}
			if _, err := s.ProbZero(votes(0), qs, 0.5); !errors.Is(err, ErrArityMismatch) {
				t.Errorf("arity: err = %v, want ErrArityMismatch", err)
			}
			if _, err := s.ProbZero(votes(0, 1), qs, 1.5); !errors.Is(err, ErrPriorRange) {
				t.Errorf("prior: err = %v, want ErrPriorRange", err)
			}
			if _, err := s.ProbZero(votes(0, 1), qs, math.NaN()); !errors.Is(err, ErrPriorRange) {
				t.Errorf("NaN prior: err = %v, want ErrPriorRange", err)
			}
		})
	}
}

func TestDeterministicFlag(t *testing.T) {
	want := map[string]bool{
		"MV": true, "HALF": true, "BV": true, "WMV": true,
		"RMV": false, "RBV": false, "RWMV": false, "TRIADIC": false,
	}
	for _, s := range All() {
		if s.Deterministic() != want[s.Name()] {
			t.Errorf("%s.Deterministic() = %v, want %v", s.Name(), s.Deterministic(), want[s.Name()])
		}
	}
}

func TestMajority(t *testing.T) {
	qs3 := []float64{0.9, 0.6, 0.6}
	tests := []struct {
		name string
		v    []Vote
		want float64
	}{
		{"all zeros", votes(0, 0, 0), 1},
		{"two zeros", votes(0, 0, 1), 1},
		{"one zero", votes(0, 1, 1), 0},
		{"no zeros", votes(1, 1, 1), 0},
	}
	for _, tt := range tests {
		got, err := Majority{}.ProbZero(tt.v, qs3, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if got != tt.want {
			t.Errorf("%s: ProbZero = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestMajorityEvenTieGoesToOne(t *testing.T) {
	// Paper Example 1: result is 0 only when Σ(1−v_i) ≥ (n+1)/2. For n=4 a
	// 2–2 tie gives Σ = 2 < 2.5, so the answer is 1.
	qs := []float64{0.7, 0.7, 0.7, 0.7}
	got, err := Majority{}.ProbZero(votes(0, 0, 1, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("even tie: ProbZero = %v, want 0 (answer 1)", got)
	}
}

func TestHalfEvenTieGoesToZero(t *testing.T) {
	qs := []float64{0.7, 0.7, 0.7, 0.7}
	got, err := Half{}.ProbZero(votes(0, 0, 1, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("even tie: ProbZero = %v, want 1 (answer 0)", got)
	}
}

func TestHalfAndMajorityAgreeOnOddJuries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2*rng.Intn(5) + 1 // odd n in [1, 9]
		v := make([]Vote, n)
		qs := make([]float64, n)
		for i := range v {
			v[i] = Vote(rng.Intn(2))
			qs[i] = 0.5 + rng.Float64()/2
		}
		mv, _ := Majority{}.ProbZero(v, qs, 0.5)
		hv, _ := Half{}.ProbZero(v, qs, 0.5)
		if mv != hv {
			t.Fatalf("odd jury n=%d votes=%v: MV=%v HALF=%v", n, v, mv, hv)
		}
	}
}

func TestBayesianPaperExample(t *testing.T) {
	// Section 3.3: α=0.5, qualities .9/.6/.6, votes {0,1,1}. BV returns 0
	// because 0.5·0.9·0.4·0.4 > 0.5·0.1·0.6·0.6, while MV returns 1.
	qs := []float64{0.9, 0.6, 0.6}
	v := votes(0, 1, 1)
	bv, err := Bayesian{}.ProbZero(v, qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bv != 1 {
		t.Errorf("BV ProbZero = %v, want 1 (answer 0)", bv)
	}
	mv, _ := Majority{}.ProbZero(v, qs, 0.5)
	if mv != 0 {
		t.Errorf("MV ProbZero = %v, want 0 (answer 1)", mv)
	}
}

func TestBayesianFigure2Row(t *testing.T) {
	// Figure 2 / Example 3: V={1,0,0}: P0 = 0.5·0.1·0.6·0.6 = 0.018 <
	// P1 = 0.5·0.9·0.4·0.4 = 0.072, so BV(V) = 1.
	qs := []float64{0.9, 0.6, 0.6}
	got, err := Bayesian{}.ProbZero(votes(1, 0, 0), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("BV({1,0,0}) ProbZero = %v, want 0 (answer 1)", got)
	}
}

func TestBayesianRespectsPrior(t *testing.T) {
	// A single 0.6-quality worker votes 1, but a strong prior for 0 wins:
	// α·(1−q) = 0.9·0.4 = 0.36 vs (1−α)·q = 0.1·0.6 = 0.06.
	got, err := Bayesian{}.ProbZero(votes(1), []float64{0.6}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("strong prior: ProbZero = %v, want 1 (answer 0)", got)
	}
	// With a weak prior the vote wins.
	got, err = Bayesian{}.ProbZero(votes(1), []float64{0.6}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("uniform prior: ProbZero = %v, want 0 (answer 1)", got)
	}
}

func TestBayesianTieGoesToZero(t *testing.T) {
	// One q=0.7 worker votes 0, another votes 1: posterior is exactly tied.
	got, err := Bayesian{}.ProbZero(votes(0, 1), []float64{0.7, 0.7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("tie: ProbZero = %v, want 1 (answer 0)", got)
	}
}

func TestBayesianLowQualityWorkerFlipsEvidence(t *testing.T) {
	// A q=0.2 worker voting 1 is evidence FOR 0 (paper §3.3 footnote).
	got, err := Bayesian{}.ProbZero(votes(1), []float64{0.2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("q<0.5 vote 1: ProbZero = %v, want 1 (answer 0)", got)
	}
}

func TestBayesianCertainWorkers(t *testing.T) {
	// q=1 worker forces the answer.
	got, err := Bayesian{}.ProbZero(votes(1, 0, 0), []float64{1, 0.6, 0.6}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("certain worker: ProbZero = %v, want 0 (answer 1)", got)
	}
	// Two conflicting certain workers cancel; the remaining evidence decides.
	got, err = Bayesian{}.ProbZero(votes(1, 0, 0), []float64{1, 1, 0.8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("cancelled certainty: ProbZero = %v, want 1 (answer 0)", got)
	}
	// q=0 worker voting 1 is certain evidence for 0.
	got, err = Bayesian{}.ProbZero(votes(1), []float64{0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("q=0 worker: ProbZero = %v, want 1 (answer 0)", got)
	}
}

func TestBayesianExtremePriors(t *testing.T) {
	qs := []float64{0.9}
	got, err := Bayesian{}.ProbZero(votes(1), qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("alpha=1: ProbZero = %v, want 1", got)
	}
	got, err = Bayesian{}.ProbZero(votes(0), qs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("alpha=0: ProbZero = %v, want 0", got)
	}
}

func TestPosteriorLogOddsFinite(t *testing.T) {
	d, err := PosteriorLogOdds(votes(0, 0), []float64{0.8, 0.7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(0.8/0.2) + math.Log(0.7/0.3)
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("log odds = %v, want %v", d, want)
	}
}

func TestPosteriorLogOddsRejectsBadQuality(t *testing.T) {
	if _, err := PosteriorLogOdds(votes(0), []float64{1.5}, 0.5); err == nil {
		t.Fatal("no error for quality 1.5")
	}
}

func TestRandomizedMajority(t *testing.T) {
	qs := []float64{0.7, 0.7, 0.7, 0.7}
	got, err := RandomizedMajority{}.ProbZero(votes(0, 0, 0, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Fatalf("ProbZero = %v, want 0.75", got)
	}
}

func TestRandomBallotIsAlwaysHalf(t *testing.T) {
	got, err := RandomBallot{}.ProbZero(votes(0, 0, 0), []float64{0.9, 0.9, 0.9}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("ProbZero = %v, want 0.5", got)
	}
}

func TestWeightedMajorityCanonicalMatchesBayesianAtUniformPrior(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(7) + 1
		v := make([]Vote, n)
		qs := make([]float64, n)
		for i := range v {
			v[i] = Vote(rng.Intn(2))
			qs[i] = 0.05 + 0.9*rng.Float64() // avoid 0/1 (undefined weight)
		}
		wmv, err := WeightedMajority{}.ProbZero(v, qs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := Bayesian{}.ProbZero(v, qs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if wmv != bv {
			t.Fatalf("WMV=%v BV=%v for votes=%v quals=%v", wmv, bv, v, qs)
		}
	}
}

func TestWeightedMajorityUniformWeightsMatchHalf(t *testing.T) {
	// Unit weights reduce WMV's tally to (#zeros − #ones); score ≥ 0 iff
	// #zeros ≥ n/2, which is exactly the Half strategy's rule.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(8) + 1
		v := make([]Vote, n)
		qs := make([]float64, n)
		ws := make([]float64, n)
		for i := range v {
			v[i] = Vote(rng.Intn(2))
			qs[i] = 0.5 + rng.Float64()/2
			ws[i] = 1
		}
		wmv, err := WeightedMajority{Weights: ws}.ProbZero(v, qs, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		hv, _ := Half{}.ProbZero(v, qs, 0.5)
		if wmv != hv {
			t.Fatalf("n=%d votes=%v: WMV(unit)=%v HALF=%v", n, v, wmv, hv)
		}
	}
}

func TestWeightedMajorityErrors(t *testing.T) {
	if _, err := (WeightedMajority{Weights: []float64{1}}).ProbZero(votes(0, 1), []float64{0.7, 0.7}, 0.5); !errors.Is(err, ErrArityMismatch) {
		t.Errorf("weight arity: err = %v", err)
	}
	if _, err := (WeightedMajority{}).ProbZero(votes(0), []float64{1}, 0.5); err == nil {
		t.Error("no error for canonical weight at q=1")
	}
}

func TestRandomizedWeightedMajority(t *testing.T) {
	qs := []float64{0.9, 0.1}
	got, err := RandomizedWeightedMajority{}.ProbZero(votes(0, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-15 {
		t.Fatalf("ProbZero = %v, want 0.9", got)
	}
	// Zero total weight degenerates to a coin flip.
	got, err = RandomizedWeightedMajority{Weights: []float64{0, 0}}.ProbZero(votes(0, 1), qs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Fatalf("zero weights: ProbZero = %v, want 0.5", got)
	}
	if _, err := (RandomizedWeightedMajority{Weights: []float64{-1, 1}}).ProbZero(votes(0, 1), qs, 0.5); err == nil {
		t.Fatal("no error for negative weight")
	}
}

func TestDecideDeterministic(t *testing.T) {
	qs := []float64{0.9, 0.6, 0.6}
	got, err := Decide(Bayesian{}, votes(0, 1, 1), qs, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != No {
		t.Fatalf("Decide = %v, want no", got)
	}
}

func TestDecideRandomizedNeedsRNG(t *testing.T) {
	qs := []float64{0.7, 0.7}
	if _, err := Decide(RandomBallot{}, votes(0, 1), qs, 0.5, nil); err == nil {
		t.Fatal("no error for randomized strategy without rng")
	}
}

func TestDecideRandomizedFrequency(t *testing.T) {
	qs := []float64{0.7, 0.7, 0.7, 0.7}
	v := votes(0, 0, 0, 1) // ProbZero = 0.75 under RMV
	rng := rand.New(rand.NewSource(5))
	zeros := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		d, err := Decide(RandomizedMajority{}, v, qs, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if d == No {
			zeros++
		}
	}
	frac := float64(zeros) / trials
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("empirical P(0) = %v, want ~0.75", frac)
	}
}

// Property: every strategy's ProbZero stays in [0, 1] on valid input, and
// deterministic strategies return exactly 0 or 1.
func TestProbZeroRangeProperty(t *testing.T) {
	strategies := All()
	f := func(seed int64, n uint8, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%10) + 1
		v := make([]Vote, size)
		qs := make([]float64, size)
		for i := range v {
			v[i] = Vote(rng.Intn(2))
			qs[i] = 0.05 + 0.9*rng.Float64()
		}
		alpha := float64(alphaRaw) / 255
		for _, s := range strategies {
			p, err := s.ProbZero(v, qs, alpha)
			if err != nil {
				return false
			}
			if p < 0 || p > 1 {
				return false
			}
			if s.Deterministic() && p != 0 && p != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BV is symmetric — flipping all votes and the prior flips the
// answer, except on posterior ties (where the 0-tie-break wins both ways).
func TestBayesianSymmetryProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%8) + 1
		v := make([]Vote, size)
		flipped := make([]Vote, size)
		qs := make([]float64, size)
		for i := range v {
			v[i] = Vote(rng.Intn(2))
			flipped[i] = v[i].Opposite()
			qs[i] = 0.05 + 0.9*rng.Float64()
		}
		alpha := rng.Float64()
		d1, err := PosteriorLogOdds(v, qs, alpha)
		if err != nil {
			return false
		}
		d2, err := PosteriorLogOdds(flipped, qs, 1-alpha)
		if err != nil {
			return false
		}
		return math.Abs(d1+d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
