// Package voting implements the voting strategies studied in Zheng et al.
// (EDBT 2015), Section 3: given a prior α on the true answer, a jury's
// qualities, and the jury's votes, a strategy estimates the task's true
// answer.
//
// Strategies fall into two categories (Definitions 1 and 2 of the paper):
//
//   - deterministic: the result is a function of (V, J, α);
//   - randomized: the result is 0 with some probability p(V, J, α) and 1
//     with probability 1−p.
//
// Both categories are captured by one interface: ProbZero returns
// h(V) = E[1{S(V)=0}] ∈ [0, 1], which is 0 or 1 exactly for deterministic
// strategies. This is the quantity the Jury Quality definition integrates
// (Definition 3), so a single generic JQ computation covers every strategy.
package voting

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Vote is a single binary answer: 0 ("no") or 1 ("yes").
type Vote uint8

// The two possible votes / answers of a decision-making task.
const (
	No  Vote = 0
	Yes Vote = 1
)

// Opposite returns the flipped vote.
func (v Vote) Opposite() Vote { return 1 - v }

// String implements fmt.Stringer.
func (v Vote) String() string {
	if v == No {
		return "no"
	}
	return "yes"
}

// Errors returned by strategy evaluation.
var (
	ErrArityMismatch = errors.New("voting: votes and qualities have different lengths")
	ErrEmptyVoting   = errors.New("voting: empty voting")
	ErrPriorRange    = errors.New("voting: prior outside [0, 1]")
)

// Strategy estimates the true answer of a binary task from a voting.
type Strategy interface {
	// Name is a short identifier such as "BV" or "MV".
	Name() string
	// Deterministic reports whether the strategy involves no randomness.
	Deterministic() bool
	// ProbZero returns h(V) = P(S returns 0 | votes, qualities, alpha).
	// For deterministic strategies the result is exactly 0 or 1.
	ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error)
}

// Decide draws a concrete answer from the strategy. For deterministic
// strategies rng may be nil; randomized strategies require it.
func Decide(s Strategy, votes []Vote, qualities []float64, alpha float64, rng *rand.Rand) (Vote, error) {
	p, err := s.ProbZero(votes, qualities, alpha)
	if err != nil {
		return No, err
	}
	switch {
	case p >= 1:
		return No, nil
	case p <= 0:
		return Yes, nil
	}
	if rng == nil {
		return No, fmt.Errorf("voting: strategy %s is randomized (p=%v) but rng is nil", s.Name(), p)
	}
	if rng.Float64() < p {
		return No, nil
	}
	return Yes, nil
}

func checkInput(votes []Vote, qualities []float64, alpha float64) error {
	if len(votes) == 0 {
		return ErrEmptyVoting
	}
	if len(votes) != len(qualities) {
		return fmt.Errorf("%w: %d votes, %d qualities", ErrArityMismatch, len(votes), len(qualities))
	}
	if alpha < 0 || alpha > 1 || alpha != alpha {
		return fmt.Errorf("%w: %v", ErrPriorRange, alpha)
	}
	return nil
}

// countZeros returns the number of votes equal to 0.
func countZeros(votes []Vote) int {
	var zeros int
	for _, v := range votes {
		if v == No {
			zeros++
		}
	}
	return zeros
}

// ---------------------------------------------------------------------------
// Majority Voting (MV) — deterministic.

// Majority is the majority voting strategy of Cao et al. [7]: the result is
// 0 when at least (n+1)/2 of the votes are 0 (i.e. Σ(1−v_i) ≥ (n+1)/2), and
// 1 otherwise. For even n this breaks exact ties in favour of answer 1,
// matching Example 1 of the paper. MV ignores both the prior and the
// workers' qualities.
type Majority struct{}

// Name implements Strategy.
func (Majority) Name() string { return "MV" }

// Deterministic implements Strategy.
func (Majority) Deterministic() bool { return true }

// ProbZero implements Strategy.
func (Majority) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	n := len(votes)
	if 2*countZeros(votes) >= n+1 {
		return 1, nil
	}
	return 0, nil
}

// ---------------------------------------------------------------------------
// Bayesian Voting (BV) — deterministic, and optimal w.r.t. JQ (Theorem 1).

// Bayesian returns the answer with the larger posterior probability:
// 0 when α·P(V|t=0) ≥ (1−α)·P(V|t=1), 1 otherwise (Definition 4 / Theorem 1;
// ties go to 0). Computation is carried out in log space for numerical
// stability; workers with quality exactly 0 or 1 are handled by treating
// their vote as infinitely informative.
type Bayesian struct{}

// Name implements Strategy.
func (Bayesian) Name() string { return "BV" }

// Deterministic implements Strategy.
func (Bayesian) Deterministic() bool { return true }

// ProbZero implements Strategy.
func (Bayesian) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	d, err := PosteriorLogOdds(votes, qualities, alpha)
	if err != nil {
		return 0, err
	}
	if d >= 0 {
		return 1, nil
	}
	return 0, nil
}

// PosteriorLogOdds returns ln(α·P(V|t=0)) − ln((1−α)·P(V|t=1)), i.e. the log
// posterior odds of answer 0 versus answer 1. +Inf/−Inf are returned when a
// deterministic worker (quality 0 or 1) forces the answer; when two such
// workers conflict the evidence cancels and the contribution is 0.
func PosteriorLogOdds(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	// Infinite evidence is tallied separately so that conflicting certain
	// votes cancel rather than producing NaN from (+Inf) + (−Inf).
	var logOdds float64
	var infVotes int // +1 per certain vote for 0, −1 per certain vote for 1
	for i, v := range votes {
		q := qualities[i]
		if q < 0 || q > 1 {
			return 0, fmt.Errorf("voting: quality %v of worker %d outside [0, 1]", q, i)
		}
		switch {
		case q == 1:
			if v == No {
				infVotes++
			} else {
				infVotes--
			}
		case q == 0:
			// A always-wrong worker's vote is certain evidence for the
			// opposite answer.
			if v == No {
				infVotes--
			} else {
				infVotes++
			}
		default:
			if v == No {
				logOdds += math.Log(q) - math.Log(1-q)
			} else {
				logOdds += math.Log(1-q) - math.Log(q)
			}
		}
	}
	switch {
	case alpha == 0:
		infVotes--
	case alpha == 1:
		infVotes++
	default:
		logOdds += math.Log(alpha) - math.Log(1-alpha)
	}
	if infVotes > 0 {
		return math.Inf(1), nil
	}
	if infVotes < 0 {
		return math.Inf(-1), nil
	}
	return logOdds, nil
}

// ---------------------------------------------------------------------------
// Randomized Majority Voting (RMV) — randomized.

// RandomizedMajority returns 0 with probability equal to the fraction of
// votes for 0 (Example 1 of the paper; Lacasse et al. [20]).
type RandomizedMajority struct{}

// Name implements Strategy.
func (RandomizedMajority) Name() string { return "RMV" }

// Deterministic implements Strategy.
func (RandomizedMajority) Deterministic() bool { return false }

// ProbZero implements Strategy.
func (RandomizedMajority) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	return float64(countZeros(votes)) / float64(len(votes)), nil
}

// ---------------------------------------------------------------------------
// Random Ballot Voting (RBV) — randomized.

// RandomBallot ignores the votes entirely and returns 0 or 1 with equal
// probability ([33]). Its JQ is always 50%, making it the floor in the
// paper's strategy comparison (Figure 8).
type RandomBallot struct{}

// Name implements Strategy.
func (RandomBallot) Name() string { return "RBV" }

// Deterministic implements Strategy.
func (RandomBallot) Deterministic() bool { return false }

// ProbZero implements Strategy.
func (RandomBallot) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	return 0.5, nil
}

// ---------------------------------------------------------------------------
// Half Voting — deterministic.

// Half returns 0 when at least half of the votes (n/2, not the strict
// majority) are for 0, and 1 otherwise ([28]). It differs from Majority only
// on even jury sizes, where an exact tie yields 0 instead of 1.
type Half struct{}

// Name implements Strategy.
func (Half) Name() string { return "HALF" }

// Deterministic implements Strategy.
func (Half) Deterministic() bool { return true }

// ProbZero implements Strategy.
func (Half) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	if 2*countZeros(votes) >= len(votes) {
		return 1, nil
	}
	return 0, nil
}

// ---------------------------------------------------------------------------
// Weighted Majority Voting (WMV) — deterministic.

// WeightedMajority aggregates votes with per-worker weights and returns the
// answer with the larger total weight (ties to 0), following Littlestone &
// Warmuth [23]. With the canonical log-odds weights w_i = ln(q_i/(1−q_i))
// and a uniform prior it coincides with Bayesian voting; custom weights
// (e.g. uniform weights = MV) make it a family of strategies.
type WeightedMajority struct {
	// Weights are per-worker vote weights. When nil, the canonical
	// log-odds weights derived from the qualities are used.
	Weights []float64
}

// Name implements Strategy.
func (WeightedMajority) Name() string { return "WMV" }

// Deterministic implements Strategy.
func (WeightedMajority) Deterministic() bool { return true }

// ProbZero implements Strategy.
func (s WeightedMajority) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	score, err := s.score(votes, qualities, alpha)
	if err != nil {
		return 0, err
	}
	if score >= 0 {
		return 1, nil
	}
	return 0, nil
}

// score is the weighted tally: positive favours answer 0.
func (s WeightedMajority) score(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	if s.Weights != nil && len(s.Weights) != len(votes) {
		return 0, fmt.Errorf("%w: %d votes, %d weights", ErrArityMismatch, len(votes), len(s.Weights))
	}
	var score float64
	for i, v := range votes {
		w, err := s.weight(i, qualities[i])
		if err != nil {
			return 0, err
		}
		if v == No {
			score += w
		} else {
			score -= w
		}
	}
	return score, nil
}

func (s WeightedMajority) weight(i int, q float64) (float64, error) {
	if s.Weights != nil {
		return s.Weights[i], nil
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("voting: canonical WMV weight undefined for quality %v (worker %d)", q, i)
	}
	return math.Log(q / (1 - q)), nil
}

// ---------------------------------------------------------------------------
// Randomized Weighted Majority Voting (RWMV) — randomized.

// RandomizedWeightedMajority returns 0 with probability proportional to the
// weighted mass of the 0-votes (the randomized counterpart of WMV [23]).
// Weights must be non-negative; when nil, weights q_i are used.
type RandomizedWeightedMajority struct {
	Weights []float64
}

// Name implements Strategy.
func (RandomizedWeightedMajority) Name() string { return "RWMV" }

// Deterministic implements Strategy.
func (RandomizedWeightedMajority) Deterministic() bool { return false }

// ProbZero implements Strategy.
func (s RandomizedWeightedMajority) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	if s.Weights != nil && len(s.Weights) != len(votes) {
		return 0, fmt.Errorf("%w: %d votes, %d weights", ErrArityMismatch, len(votes), len(s.Weights))
	}
	var zeroMass, total float64
	for i, v := range votes {
		w := qualities[i]
		if s.Weights != nil {
			w = s.Weights[i]
		}
		if w < 0 {
			return 0, fmt.Errorf("voting: negative RWMV weight %v for worker %d", w, i)
		}
		total += w
		if v == No {
			zeroMass += w
		}
	}
	if total == 0 {
		return 0.5, nil
	}
	return zeroMass / total, nil
}

// ---------------------------------------------------------------------------

// All returns one instance of every built-in strategy, in the order the
// paper's Table 2 presents them (deterministic first).
func All() []Strategy {
	return []Strategy{
		Majority{},
		Half{},
		Bayesian{},
		WeightedMajority{},
		RandomizedMajority{},
		RandomBallot{},
		RandomizedWeightedMajority{},
		TriadicConsensus{},
	}
}
