package voting

import (
	"fmt"
)

// TriadicConsensus is an adaptation of the triadic-consensus procedure of
// Goel & Lee [2] (the last entry of the paper's Table 2) to binary
// aggregated voting: the collected votes are repeatedly re-sampled in
// triads, each triad emitting its majority, which concentrates the vote
// distribution toward the initial majority over successive rounds.
//
// For a voting with zero-vote fraction p, one triad round maps
// p → p³ + 3p²(1−p) (the probability a uniformly drawn triad has a
// 0-majority). TriadicConsensus runs Rounds such rounds and returns 0 with
// the resulting probability — a randomized strategy whose randomness
// vanishes as Rounds grows: it converges to majority voting (and keeps
// exact ties at ½ forever).
type TriadicConsensus struct {
	// Rounds is the number of concentration rounds; 0 selects 3 (the
	// depth used in the original construction's analysis for small
	// electorates).
	Rounds int
}

// Name implements Strategy.
func (TriadicConsensus) Name() string { return "TRIADIC" }

// Deterministic implements Strategy.
func (TriadicConsensus) Deterministic() bool { return false }

// ProbZero implements Strategy.
func (s TriadicConsensus) ProbZero(votes []Vote, qualities []float64, alpha float64) (float64, error) {
	if err := checkInput(votes, qualities, alpha); err != nil {
		return 0, err
	}
	rounds := s.Rounds
	if rounds == 0 {
		rounds = 3
	}
	if rounds < 0 {
		return 0, fmt.Errorf("voting: negative triadic rounds %d", rounds)
	}
	p := float64(countZeros(votes)) / float64(len(votes))
	for i := 0; i < rounds; i++ {
		p = p*p*p + 3*p*p*(1-p)
	}
	return p, nil
}
