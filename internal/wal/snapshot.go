package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Snapshots are whole-state JSON documents named snapshot-<lsn>.json,
// where <lsn> (16 hex digits) is the last WAL record the state includes:
// recovery loads the newest snapshot and replays records lsn+1... on top.
// A snapshot is written to a temp file and renamed into place, so a crash
// mid-write leaves the previous snapshot intact; once the rename lands,
// older snapshots (and, via Log.TruncateBefore, fully-covered WAL
// segments) are garbage and are removed.

// snapshotName renders the file name of the snapshot covering lsn.
func snapshotName(lsn LSN) string {
	return fmt.Sprintf("snapshot-%016x.json", uint64(lsn))
}

// parseSnapshotName extracts the covered LSN from a snapshot file name.
func parseSnapshotName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".json")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(n), true
}

// WriteSnapshot atomically installs payload as the snapshot covering
// records 1..lsn and removes older snapshot files. The temp file is
// fsynced before the rename and the directory after it — a snapshot
// whose data or directory entry could evaporate on power loss would be
// worse than none, because installing it deletes its predecessor (and
// lets the caller truncate the WAL the predecessor needed).
func WriteSnapshot(dir string, lsn LSN, payload []byte) error {
	return WriteSnapshotFS(OSFS(), dir, lsn, payload)
}

// WriteSnapshotFS is WriteSnapshot on an explicit filesystem. Failures
// surface as *IOError naming the stage that broke (write, fsync, the
// installing rename, the directory sync); on any failure before the
// rename lands the previous snapshot is untouched.
func WriteSnapshotFS(fsys FS, dir string, lsn LSN, payload []byte) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, snapshotName(lsn))
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return &IOError{Op: "create", Path: tmp, Err: err}
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return &IOError{Op: "write", Path: tmp, Err: err}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return &IOError{Op: "fsync", Path: tmp, Err: err}
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return &IOError{Op: "close", Path: tmp, Err: err}
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return &IOError{Op: "rename", Path: path, Err: err}
	}
	if err := syncDir(fsys, dir); err != nil {
		return &IOError{Op: "dirsync", Path: dir, Err: err}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if old, ok := parseSnapshotName(e.Name()); ok && old < lsn {
			// Best-effort: a leftover older snapshot is shadowed by the
			// newer one either way.
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}

// LatestSnapshot loads the newest snapshot in dir. found is false when
// the directory holds no snapshot (or does not exist yet).
func LatestSnapshot(dir string) (lsn LSN, payload []byte, found bool, err error) {
	return LatestSnapshotFS(OSFS(), dir)
}

// LatestSnapshotFS is LatestSnapshot on an explicit filesystem.
func LatestSnapshotFS(fsys FS, dir string) (lsn LSN, payload []byte, found bool, err error) {
	entries, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	best := LSN(0)
	bestName := ""
	for _, e := range entries {
		if l, ok := parseSnapshotName(e.Name()); ok && (bestName == "" || l > best) {
			best, bestName = l, e.Name()
		}
	}
	if bestName == "" {
		return 0, nil, false, nil
	}
	payload, err = fsys.ReadFile(filepath.Join(dir, bestName))
	if err != nil {
		return 0, nil, false, err
	}
	return best, payload, true, nil
}
