package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// appendAll appends every payload, returning the assigned LSNs.
func appendAll(t *testing.T, l *Log, payloads ...string) []LSN {
	t.Helper()
	lsns := make([]LSN, len(payloads))
	for i, p := range payloads {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

// replayAll replays from the given LSN into a slice of payload strings.
func replayAll(t *testing.T, l *Log, from LSN) []string {
	t.Helper()
	var out []string
	if err := l.Replay(from, func(lsn LSN, payload []byte) error {
		if want := from + LSN(len(out)); lsn != want {
			t.Fatalf("replay lsn = %d, want %d", lsn, want)
		}
		out = append(out, string(payload))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.NextLSN != 1 || info.Segments != 1 {
		t.Fatalf("fresh OpenInfo = %+v, want NextLSN 1, Segments 1", info)
	}
	want := []string{"alpha", "", "gamma with a longer payload"}
	lsns := appendAll(t, l, want...)
	for i, lsn := range lsns {
		if lsn != LSN(i+1) {
			t.Fatalf("lsn[%d] = %d, want %d", i, lsn, i+1)
		}
	}
	got := replayAll(t, l, 1)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay = %q, want %q", got, want)
	}
	if got := replayAll(t, l, 3); len(got) != 1 || got[0] != want[2] {
		t.Fatalf("replay from 3 = %q, want [%q]", got, want[2])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "one", "two")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.NextLSN != 3 || info.TornBytes != 0 {
		t.Fatalf("reopen OpenInfo = %+v, want NextLSN 3, TornBytes 0", info)
	}
	appendAll(t, l2, "three")
	if got := replayAll(t, l2, 1); fmt.Sprint(got) != fmt.Sprint([]string{"one", "two", "three"}) {
		t.Fatalf("replay after reopen = %q", got)
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every record after the first in a segment rotates.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "r1", "r2", "r3", "r4")
	if got := l.Segments(); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	if got := replayAll(t, l, 1); len(got) != 4 {
		t.Fatalf("replay across segments = %q", got)
	}
	// A snapshot covering LSN 3 makes segments 1..3 garbage.
	removed, err := l.TruncateBefore(4)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("TruncateBefore removed %d segments, want 3", removed)
	}
	if got := replayAll(t, l, 4); len(got) != 1 || got[0] != "r4" {
		t.Fatalf("replay after truncate = %q, want [r4]", got)
	}
	// The newest segment survives even when fully covered.
	if _, err := l.TruncateBefore(100); err != nil {
		t.Fatal(err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("segments after full truncate = %d, want 1", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, tear := range []int64{1, 4, 8, 9} {
		t.Run(fmt.Sprintf("tear%d", tear), func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, l, "keep-me", "torn-record")
			l.Close()
			path := filepath.Join(dir, segmentName(1))
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-tear); err != nil {
				t.Fatal(err)
			}
			l2, info, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if info.NextLSN != 2 {
				t.Fatalf("NextLSN after torn tail = %d, want 2", info.NextLSN)
			}
			if info.TornBytes == 0 {
				t.Fatal("TornBytes = 0, want the torn record's remnant counted")
			}
			if got := replayAll(t, l2, 1); len(got) != 1 || got[0] != "keep-me" {
				t.Fatalf("replay = %q, want [keep-me]", got)
			}
			// The freed LSN is reused by the next append.
			if lsn, err := l2.Append([]byte("replacement")); err != nil || lsn != 2 {
				t.Fatalf("append after recovery = (%d, %v), want (2, nil)", lsn, err)
			}
		})
	}
}

func TestCorruptedTailCRCTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "good", "flipped")
	l.Close()
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.NextLSN != 2 || info.TornBytes == 0 {
		t.Fatalf("OpenInfo = %+v, want NextLSN 2 with torn bytes", info)
	}
	if got := replayAll(t, l2, 1); len(got) != 1 || got[0] != "good" {
		t.Fatalf("replay = %q, want [good]", got)
	}
}

func TestEmptyTrailingSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	l.Close()
	// Simulate a crash right after rotation created the next segment but
	// before any record landed in it.
	empty := filepath.Join(dir, segmentName(3))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.NextLSN != 3 || info.Segments != 2 {
		t.Fatalf("OpenInfo = %+v, want NextLSN 3, Segments 2", info)
	}
	if got := replayAll(t, l2, 1); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("replay = %q", got)
	}
	appendAll(t, l2, "c")
	if got := replayAll(t, l2, 3); len(got) != 1 || got[0] != "c" {
		t.Fatalf("replay from 3 = %q, want [c]", got)
	}
}

func TestReplayDetectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "seg1", "seg2", "seg3")
	l.Close()
	// Corrupt the middle segment: replay must fail loudly, not skip.
	path := filepath.Join(dir, segmentName(2))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(1, func(LSN, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt middle segment: %v, want ErrCorrupt", err)
	}
}

func TestScanSegmentRejectsOversizedLength(t *testing.T) {
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], MaxRecordBytes+1)
	valid, torn, err := ScanSegment(bytes.NewReader(header[:]), func([]byte) error {
		t.Fatal("fn called for an invalid record")
		return nil
	})
	if err != nil || !torn || valid != 0 {
		t.Fatalf("ScanSegment = (%d, %v, %v), want (0, true, nil)", valid, torn, err)
	}
}

func TestOversizedAppendRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
}

func TestSnapshotWriteAndLatest(t *testing.T) {
	dir := t.TempDir()
	if _, _, found, err := LatestSnapshot(dir); err != nil || found {
		t.Fatalf("LatestSnapshot(empty) = found %v, err %v", found, err)
	}
	if err := WriteSnapshot(dir, 5, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 9, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	lsn, payload, found, err := LatestSnapshot(dir)
	if err != nil || !found {
		t.Fatalf("LatestSnapshot: found %v, err %v", found, err)
	}
	if lsn != 9 || string(payload) != `{"v":2}` {
		t.Fatalf("LatestSnapshot = (%d, %s), want (9, {\"v\":2})", lsn, payload)
	}
	// The older snapshot file is gone.
	if _, err := os.Stat(filepath.Join(dir, snapshotName(5))); !os.IsNotExist(err) {
		t.Fatalf("old snapshot still present: %v", err)
	}
}

func TestFsyncOptionSmoke(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "durable")
	if got := replayAll(t, l, 1); len(got) != 1 || got[0] != "durable" {
		t.Fatalf("replay = %q", got)
	}
}

// TestScanSegmentValidPrefixProperty pins the invariant the fuzz target
// relies on: rescanning the reported valid prefix yields the same records
// with no torn tail.
func TestScanSegmentValidPrefixProperty(t *testing.T) {
	var stream bytes.Buffer
	for _, p := range []string{"aa", "bbbb", "c"} {
		var header [headerSize]byte
		binary.LittleEndian.PutUint32(header[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum([]byte(p), castagnoli))
		stream.Write(header[:])
		stream.WriteString(p)
	}
	stream.WriteString("\x03\x00") // torn header
	data := stream.Bytes()
	var first []string
	valid, torn, err := ScanSegment(bytes.NewReader(data), func(p []byte) error {
		first = append(first, string(p))
		return nil
	})
	if err != nil || !torn {
		t.Fatalf("scan = (torn %v, err %v), want torn", torn, err)
	}
	var second []string
	valid2, torn2, err := ScanSegment(bytes.NewReader(data[:valid]), func(p []byte) error {
		second = append(second, string(p))
		return nil
	})
	if err != nil || torn2 || valid2 != valid {
		t.Fatalf("rescan = (%d, %v, %v), want (%d, false, nil)", valid2, torn2, err, valid)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("rescan records %q != first scan %q", second, first)
	}
}
