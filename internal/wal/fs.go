package wal

import (
	"io"
	"os"
)

// FS abstracts the filesystem under the log and its snapshots. The log
// performs every durability-relevant operation — segment creation and
// appends, fsyncs, snapshot temp-file renames, directory syncs — through
// this interface, so tests can substitute a fault-injecting
// implementation (internal/wal/errfs) and script exactly which disk
// operation fails. Production code uses OSFS.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
}

// File is the open-file surface the log needs: sequential reads for
// recovery scans, appends, fsync, close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
