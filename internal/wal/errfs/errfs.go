// Package errfs is a fault-injecting wal.FS for chaos tests: it wraps a
// real filesystem and fails scripted operations — the Nth write to a
// path, every fsync of a segment, a snapshot-installing rename — with a
// chosen error (syscall.ENOSPC, a generic injected error, ...). It can
// also cut writes short and, on an injected fsync failure, drop the
// unsynced tail of the file to model what power loss does to data that
// never left the page cache.
package errfs

import (
	"errors"
	"os"
	"strings"
	"sync"

	"repro/internal/wal"
)

// ErrInjected is the default error returned by a Fault with a nil Err.
var ErrInjected = errors.New("errfs: injected fault")

// Op names a filesystem operation a Fault can target.
type Op string

const (
	// OpCreate matches OpenFile calls that create or open for writing
	// (segment creation, snapshot temp files).
	OpCreate Op = "create"
	// OpOpen matches read-only Open calls (recovery scans, dir syncs).
	OpOpen Op = "open"
	// OpWrite matches File.Write on files opened through the injector.
	OpWrite Op = "write"
	// OpSync matches File.Sync (fsync of files and directories).
	OpSync Op = "sync"
	// OpRename matches Rename (snapshot installs).
	OpRename Op = "rename"
	// OpRemove matches Remove.
	OpRemove Op = "remove"
	// OpTruncate matches Truncate.
	OpTruncate Op = "truncate"
)

// Fault is one scripted failure rule. A rule matches calls of its Op
// whose path contains Path (empty matches every path); it lets After
// matching calls succeed, then fires on each later one — Times times if
// Times > 0, forever if Times == 0.
type Fault struct {
	Op   Op
	Path string
	// After is how many matching calls succeed before the fault fires.
	After int
	// Times bounds how often the fault fires; 0 means no bound.
	Times int
	// Err is the injected error; nil selects ErrInjected.
	Err error
	// Short, for OpWrite, writes only the first Short bytes of the
	// payload through to the real file before failing — a torn record.
	Short int
	// DropUnsynced, for OpSync, truncates the file back to its
	// last-synced size when the fault fires: the unsynced tail behaves
	// as if it never left the page cache and the machine lost power.
	DropUnsynced bool
	// Gate, for OpSync, blocks the matched sync until the channel is
	// closed — a deterministic way to hold a group-commit leader inside
	// its flush while other appenders pile into the next batch. With a
	// nil Err (and no DropUnsynced) the gated sync then proceeds for
	// real; with either set it fails as usual once released.
	Gate <-chan struct{}
}

type faultState struct {
	Fault
	seen  int // matching calls observed
	fired int // times this fault has fired
}

// FS wraps a wal.FS with scripted fault injection. It is safe for
// concurrent use.
type FS struct {
	real wal.FS

	mu       sync.Mutex
	faults   []*faultState
	injected int
}

// New wraps real with the given fault script. Faults are consulted in
// order; the first rule that matches and is due fires.
func New(real wal.FS, faults ...Fault) *FS {
	fs := &FS{real: real}
	for _, f := range faults {
		fs.faults = append(fs.faults, &faultState{Fault: f})
	}
	return fs
}

// Add appends a fault rule to a running injector.
func (f *FS) Add(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &faultState{Fault: fault})
}

// Injected reports how many faults have fired so far.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// match finds the first due fault for (op, path), counts it as fired,
// and returns it; nil when no fault is due.
func (f *FS) match(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ft := range f.faults {
		if ft.Op != op {
			continue
		}
		if ft.Path != "" && !strings.Contains(path, ft.Path) {
			continue
		}
		ft.seen++
		if ft.seen <= ft.After {
			continue
		}
		if ft.Times > 0 && ft.fired >= ft.Times {
			continue
		}
		ft.fired++
		f.injected++
		out := ft.Fault
		return &out
	}
	return nil
}

func faultErr(ft *Fault) error {
	if ft.Err != nil {
		return ft.Err
	}
	return ErrInjected
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.real.MkdirAll(path, perm) }
func (f *FS) ReadDir(name string) ([]os.DirEntry, error)   { return f.real.ReadDir(name) }
func (f *FS) ReadFile(name string) ([]byte, error)         { return f.real.ReadFile(name) }
func (f *FS) Stat(name string) (os.FileInfo, error)        { return f.real.Stat(name) }

func (f *FS) Open(name string) (wal.File, error) {
	if ft := f.match(OpOpen, name); ft != nil {
		return nil, faultErr(ft)
	}
	file, err := f.real.Open(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: f, path: name, real: file}, nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if ft := f.match(OpCreate, name); ft != nil {
		return nil, faultErr(ft)
	}
	file, err := f.real.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ef := &errFile{fs: f, path: name, real: file}
	if flag&os.O_APPEND != 0 {
		// Appends resume at the existing size; anything already on disk
		// counts as synced (it survived whatever put it there).
		if st, err := f.real.Stat(name); err == nil {
			ef.size = st.Size()
			ef.synced = st.Size()
		}
	}
	return ef, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if ft := f.match(OpRename, newpath); ft != nil {
		return faultErr(ft)
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if ft := f.match(OpRemove, name); ft != nil {
		return faultErr(ft)
	}
	return f.real.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	if ft := f.match(OpTruncate, name); ft != nil {
		return faultErr(ft)
	}
	return f.real.Truncate(name, size)
}

// errFile wraps an open file, tracking written vs fsynced bytes so an
// injected sync failure with DropUnsynced can cut the file back to what
// stable storage would actually hold.
type errFile struct {
	fs   *FS
	path string
	real wal.File

	mu     sync.Mutex
	size   int64 // bytes written through this handle (plus initial size)
	synced int64 // size at the last successful Sync
}

func (f *errFile) Read(p []byte) (int, error) { return f.real.Read(p) }

func (f *errFile) Close() error { return f.real.Close() }

func (f *errFile) Write(p []byte) (int, error) {
	if ft := f.fs.match(OpWrite, f.path); ft != nil {
		short := ft.Short
		if short > len(p) {
			short = len(p)
		}
		n := 0
		if short > 0 {
			n, _ = f.real.Write(p[:short])
			f.mu.Lock()
			f.size += int64(n)
			f.mu.Unlock()
		}
		return n, faultErr(ft)
	}
	n, err := f.real.Write(p)
	f.mu.Lock()
	f.size += int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *errFile) Sync() error {
	if ft := f.fs.match(OpSync, f.path); ft != nil {
		if ft.Gate != nil {
			<-ft.Gate
		}
		if ft.Gate == nil || ft.Err != nil || ft.DropUnsynced {
			if ft.DropUnsynced {
				f.mu.Lock()
				f.fs.real.Truncate(f.path, f.synced)
				f.size = f.synced
				f.mu.Unlock()
			}
			return faultErr(ft)
		}
		// Gated success: the sync was only delayed, not failed.
	}
	if err := f.real.Sync(); err != nil {
		return err
	}
	f.mu.Lock()
	f.synced = f.size
	f.mu.Unlock()
	return nil
}
