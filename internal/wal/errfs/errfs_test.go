package errfs

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/wal"
)

// appendN appends records "rec-0".."rec-(n-1)" and returns the first
// append error (with how many made it in before it).
func appendN(l *wal.Log, n int) (acked int, err error) {
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			return i, err
		}
	}
	return n, nil
}

// replayAll reopens dir on fsys and returns the replayed payloads.
func replayAll(t *testing.T, fsys wal.FS, dir string) []string {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	var got []string
	if err := l.Replay(1, func(_ wal.LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWriteFaultPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fsys := New(wal.OSFS(), Fault{Op: OpWrite, Path: "wal-", After: 3})
	l, _, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()

	acked, err := appendN(l, 10)
	if acked != 3 {
		t.Fatalf("acked = %d, want 3", acked)
	}
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "write" {
		t.Fatalf("first failure = %v, want *IOError with Op=write", err)
	}
	if errors.Is(err, wal.ErrFailed) {
		t.Fatalf("first failure should carry the IOError itself, not ErrFailed: %v", err)
	}

	// Every later append fails with the sticky ErrFailed wrapping the cause.
	_, err = l.Append([]byte("late"))
	if !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("later append = %v, want ErrFailed", err)
	}
	if !errors.As(err, &ioErr) {
		t.Fatalf("later append should still expose the root IOError: %v", err)
	}
	if l.Failed() == nil {
		t.Fatal("Failed() = nil after poisoning")
	}
	if fsys.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1 (write fault fires once, poison stops retries)", fsys.Injected())
	}
}

func TestFsyncFaultDropUnsynced(t *testing.T) {
	dir := t.TempDir()
	fsys := New(wal.OSFS(), Fault{Op: OpSync, Path: "wal-", After: 5, DropUnsynced: true})
	l, _, err := wal.Open(dir, wal.Options{FS: fsys, Fsync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	acked, err := appendN(l, 10)
	if acked != 5 {
		t.Fatalf("acked = %d, want 5", acked)
	}
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "fsync" {
		t.Fatalf("failure = %v, want *IOError with Op=fsync", err)
	}
	l.Close()

	// The unsynced record was dropped: recovery sees exactly the acked
	// prefix, as after power loss.
	got := replayAll(t, wal.OSFS(), dir)
	if len(got) != 5 || got[4] != "rec-4" {
		t.Fatalf("recovered %v, want rec-0..rec-4", got)
	}
}

func TestENOSPCOnRotation(t *testing.T) {
	dir := t.TempDir()
	// Fail the second segment creation (the first happens at Open).
	fsys := New(wal.OSFS(), Fault{Op: OpCreate, Path: "wal-", After: 1, Err: syscall.ENOSPC})
	l, _, err := wal.Open(dir, wal.Options{FS: fsys, SegmentBytes: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	acked, err := appendN(l, 50)
	if err == nil {
		t.Fatal("expected rotation to hit ENOSPC")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("failure = %v, want to unwrap to ENOSPC", err)
	}
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "create" {
		t.Fatalf("failure = %v, want *IOError with Op=create", err)
	}
	l.Close()

	got := replayAll(t, wal.OSFS(), dir)
	if len(got) != acked {
		t.Fatalf("recovered %d records, want the %d acked before ENOSPC", len(got), acked)
	}
}

func TestShortWriteLeavesTornTail(t *testing.T) {
	dir := t.TempDir()
	fsys := New(wal.OSFS(), Fault{Op: OpWrite, Path: "wal-", After: 4, Short: 6})
	l, _, err := wal.Open(dir, wal.Options{FS: fsys})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	acked, err := appendN(l, 10)
	if acked != 4 || err == nil {
		t.Fatalf("acked = %d (err %v), want 4 with an error", acked, err)
	}
	l.Close()

	// Reopen on the real filesystem: the torn 6-byte fragment must be
	// truncated away, leaving the 4 acked records.
	l2, info, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if info.TornBytes == 0 {
		t.Fatal("expected a torn tail to be truncated on reopen")
	}
	n := 0
	if err := l2.Replay(1, func(wal.LSN, []byte) error { n++; return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != 4 {
		t.Fatalf("recovered %d records, want 4", n)
	}
}

func TestSnapshotRenameFault(t *testing.T) {
	dir := t.TempDir()
	fsys := New(wal.OSFS(), Fault{Op: OpRename, Path: "snapshot-", Times: 1, Err: syscall.EIO})
	err := wal.WriteSnapshotFS(fsys, dir, 7, []byte(`{"x":1}`))
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "rename" {
		t.Fatalf("err = %v, want *IOError with Op=rename", err)
	}
	if _, _, found, err := wal.LatestSnapshotFS(wal.OSFS(), dir); err != nil || found {
		t.Fatalf("found=%v err=%v, want no snapshot installed after failed rename", found, err)
	}
	// Second attempt (fault exhausted by Times: 1) succeeds.
	if err := wal.WriteSnapshotFS(fsys, dir, 7, []byte(`{"x":1}`)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	lsn, payload, found, err := wal.LatestSnapshotFS(wal.OSFS(), dir)
	if err != nil || !found || lsn != 7 || string(payload) != `{"x":1}` {
		t.Fatalf("snapshot after retry: lsn=%d found=%v err=%v", lsn, found, err)
	}
}

func TestFaultTimesAndAfter(t *testing.T) {
	fsys := New(wal.OSFS(), Fault{Op: OpRemove, After: 2, Times: 2})
	dir := t.TempDir()
	for i, wantErr := range []bool{false, false, true, true, false} {
		err := fsys.Remove(dir + "/nope") // ignore real-ENOENT when passthrough
		injected := errors.Is(err, ErrInjected)
		if injected != wantErr {
			t.Fatalf("call %d: injected=%v, want %v (err %v)", i, injected, wantErr, err)
		}
	}
	if fsys.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", fsys.Injected())
	}
}
