package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
)

// encodeRecord frames one payload the way Append does.
func encodeRecord(payload []byte) []byte {
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[headerSize:], payload)
	return rec
}

// FuzzScanSegment is the WAL decoder's safety net: arbitrary bytes must
// never panic, and whatever prefix the scanner accepts must be a
// self-consistent log — rescanning exactly that prefix yields the same
// records with no torn tail.
func FuzzScanSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRecord(nil))
	f.Add(encodeRecord([]byte("hello")))
	f.Add(append(encodeRecord([]byte("a")), encodeRecord([]byte("bb"))...))
	f.Add(encodeRecord([]byte("torn"))[:9])           // mid-payload tear
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // absurd length claim
	corrupt := encodeRecord([]byte("crc-mismatch"))
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	f.Add(append(encodeRecord([]byte("good")), 0x13, 0x37))
	// Epoch records as journaled at promotion time: alone, ahead of a
	// mutation, torn mid-payload, and with a corrupted epoch number — the
	// scanner must treat them like any other payload (accept whole,
	// truncate torn, reject corrupt) with no special-casing.
	epoch := encodeRecord([]byte(`{"t":"epoch","epoch":2,"start_lsn":7}`))
	f.Add(epoch)
	f.Add(append(append([]byte(nil), epoch...), encodeRecord([]byte(`{"t":"vote","worker":"ann"}`))...))
	f.Add(epoch[:len(epoch)-5])
	epochCorrupt := append([]byte(nil), epoch...)
	epochCorrupt[headerSize+len(`{"t":"epoch","epoch":`)] ^= 0x01
	f.Add(epochCorrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		var first [][]byte
		valid, torn, err := ScanSegment(bytes.NewReader(data), func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("ScanSegment on in-memory bytes returned err %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
		var second [][]byte
		valid2, torn2, err := ScanSegment(bytes.NewReader(data[:valid]), func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil || torn2 || valid2 != valid {
			t.Fatalf("rescan of valid prefix = (%d, torn %v, err %v), want (%d, false, nil)",
				valid2, torn2, err, valid)
		}
		if len(first) != len(second) {
			t.Fatalf("rescan found %d records, first scan %d", len(second), len(first))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs between scans", i)
			}
		}
	})
}

// FuzzAppendReplayRoundTrip drives real files: arbitrary payload chunks
// appended to a log must replay back byte-identically, across a reopen.
func FuzzAppendReplayRoundTrip(f *testing.F) {
	f.Add([]byte("single"), uint8(0))
	f.Add([]byte("splitintochunks"), uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		dir := t.TempDir()
		l, _, err := Open(dir, Options{SegmentBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		size := int(chunk)%8 + 1
		var want [][]byte
		for i := 0; i < len(data); i += size {
			end := min(i+size, len(data))
			payload := data[i:end]
			if _, err := l.Append(payload); err != nil {
				t.Fatalf("Append: %v", err)
			}
			want = append(want, append([]byte(nil), payload...))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, info, err := Open(dir, Options{SegmentBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if info.TornBytes != 0 {
			t.Fatalf("clean log reported %d torn bytes", info.TornBytes)
		}
		var got [][]byte
		if err := l2.Replay(1, func(lsn LSN, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("replay mismatch: %d records in, %d out", len(want), len(got))
		}
	})
}
