// Log shipping: the committed-prefix reader API behind the replication
// stream. A primary serves its durable record prefix as raw framed bytes
// (ReadCommitted), long-polls on the durability watermark (WaitSynced),
// and reports the truncation horizon (OldestLSN); a follower bootstraps
// an empty data directory positioned after a shipped snapshot (InitAtFS)
// and appends the shipped frames to its own log, so the two logs are
// byte-identical over the shipped range.

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// ErrTruncated reports that requested records were removed by snapshot
// truncation (TruncateBefore): the reader is behind the log's retained
// horizon and must restart from a snapshot instead.
var ErrTruncated = errors.New("wal: records truncated")

// errStopScan stops a ScanSegment early once a reader has all it needs.
var errStopScan = errors.New("wal: stop scan")

// appendFrame appends one record in the exact on-disk framing
// ([length][CRC32-C][payload]) to dst.
func appendFrame(dst, payload []byte) []byte {
	var header [headerSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, header[:]...)
	return append(dst, payload...)
}

// Synced returns the durability watermark: every record at or below it is
// on stable storage (the page cache without Options.Fsync). Only records
// at or below the watermark may be shipped to followers — anything above
// it could still be revoked by a failed flush or power loss.
func (l *Log) Synced() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// WaitSynced blocks until the durability watermark passes after, the
// timeout elapses, or the log closes or fails, and returns the watermark
// at that moment. It is the long-poll primitive behind the replication
// stream: a follower that has applied through `after` parks here until
// the primary commits something newer. A non-positive timeout returns the
// current watermark immediately.
func (l *Log) WaitSynced(after LSN, timeout time.Duration) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.synced > after || timeout <= 0 {
		return l.synced, l.stateErrLocked()
	}
	expired := false
	timer := time.AfterFunc(timeout, func() {
		l.mu.Lock()
		expired = true
		l.mu.Unlock()
		l.cond.Broadcast()
	})
	defer timer.Stop()
	for l.synced <= after && !expired {
		if err := l.stateErrLocked(); err != nil {
			return l.synced, err
		}
		l.cond.Wait()
	}
	return l.synced, nil
}

// stateErrLocked reports the closed or poisoned state, if any. Callers
// hold l.mu.
func (l *Log) stateErrLocked() error {
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if l.f == nil {
		return ErrClosed
	}
	return nil
}

// OldestLSN returns the first LSN still present in the retained segments
// — the replication stream's truncation horizon. On a fresh or fully
// truncated log it equals the next LSN to be written.
func (l *Log) OldestLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.next
	}
	return l.segs[0].first
}

// ReadCommitted returns framed record bytes for LSNs from..Synced(),
// bounded by maxBytes (at least one record is returned whenever any is
// available, so a single oversized record cannot wedge the stream; 0
// selects DefaultMaxBatchBytes). The bytes use the exact on-disk framing,
// so a reader can ScanSegment them, verify each CRC for free, and append
// them verbatim to its own log. count is the number of records returned;
// the record LSNs are from, from+1, ..., from+count-1.
//
// It returns ErrTruncated when from precedes the oldest retained segment
// (including losing a race with snapshot truncation mid-read — the caller
// must bootstrap from a snapshot instead) and ErrCorrupt if the durable
// prefix itself fails verification. A from beyond the watermark returns
// (nil, 0, nil).
func (l *Log) ReadCommitted(from LSN, maxBytes int) ([]byte, int, error) {
	if from == 0 {
		from = 1
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBatchBytes
	}
	l.mu.Lock()
	synced := l.synced
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	if from > synced {
		return nil, 0, nil
	}
	if len(segs) == 0 || from < segs[0].first {
		return nil, 0, fmt.Errorf("%w: lsn %d predates the oldest retained segment", ErrTruncated, from)
	}
	var out []byte
	count := 0
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // every record of this segment is below from
		}
		if seg.first > synced {
			break
		}
		f, err := l.fs.Open(seg.path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				// Lost a race with TruncateBefore between the segment
				// snapshot above and this open.
				return nil, 0, fmt.Errorf("%w: segment %s removed mid-read", ErrTruncated, filepath.Base(seg.path))
			}
			return nil, 0, err
		}
		lsn := seg.first
		stopped := false
		_, _, scanErr := ScanSegment(f, func(payload []byte) error {
			this := lsn
			lsn++
			if this > synced {
				stopped = true
				return errStopScan
			}
			if this < from {
				return nil
			}
			if count > 0 && len(out)+headerSize+len(payload) > maxBytes {
				stopped = true
				return errStopScan
			}
			out = appendFrame(out, payload)
			count++
			return nil
		})
		closeErr := f.Close()
		if scanErr != nil && !errors.Is(scanErr, errStopScan) {
			return nil, 0, fmt.Errorf("segment %s: %w", filepath.Base(seg.path), scanErr)
		}
		if closeErr != nil {
			return nil, 0, closeErr
		}
		if stopped || (count > 0 && len(out) >= maxBytes) {
			break
		}
		// Records at or below the watermark are always fully on disk, so
		// a non-final segment that ends short of the next one's first LSN
		// means the durable prefix itself is damaged.
		if i+1 < len(segs) && lsn <= synced && segs[i+1].first != lsn {
			return nil, 0, fmt.Errorf("%w: segment %s ends at lsn %d but %s starts at %d",
				ErrCorrupt, filepath.Base(seg.path), lsn-1,
				filepath.Base(segs[i+1].path), segs[i+1].first)
		}
	}
	if count == 0 {
		// The range was durable when we looked but the files no longer
		// hold it — only truncation removes durable records.
		return nil, 0, fmt.Errorf("%w: lsn %d no longer on disk", ErrTruncated, from)
	}
	return out, count, nil
}

// InitAtFS prepares dir as an empty log positioned so the next append
// gets LSN next — the follower-bootstrap primitive: after installing a
// snapshot covering next-1 (WriteSnapshotFS), InitAtFS makes a later Open
// resume exactly where the snapshot left off instead of restarting at
// LSN 1. It refuses a directory that already holds segments. nil fsys
// selects the real filesystem.
func InitAtFS(fsys FS, dir string, next LSN) error {
	if fsys == nil {
		fsys = OSFS()
	}
	if next == 0 {
		return fmt.Errorf("wal: init at lsn 0")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return err
	}
	if len(segs) > 0 {
		return fmt.Errorf("wal: init: %s already holds %d segment(s)", dir, len(segs))
	}
	path := filepath.Join(dir, segmentName(next))
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return &IOError{Op: "create", Path: path, Err: err}
	}
	if err := f.Close(); err != nil {
		return &IOError{Op: "close", Path: path, Err: err}
	}
	if err := syncDir(fsys, dir); err != nil {
		return &IOError{Op: "dirsync", Path: dir, Err: err}
	}
	return nil
}
