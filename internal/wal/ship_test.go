package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// scanFrames decodes a ReadCommitted byte stream back into payloads,
// failing the test on a torn or unverifiable frame.
func scanFrames(t *testing.T, frames []byte) []string {
	t.Helper()
	var out []string
	valid, torn, err := ScanSegment(bytes.NewReader(frames), func(p []byte) error {
		out = append(out, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("scan shipped frames: %v", err)
	}
	if torn || valid != int64(len(frames)) {
		t.Fatalf("shipped frames torn: valid %d of %d bytes", valid, len(frames))
	}
	return out
}

func TestReadCommittedRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want []string
	for i := 0; i < 20; i++ {
		want = append(want, fmt.Sprintf("record-%02d-padding-to-force-rotation", i))
	}
	appendAll(t, l, want...)
	if l.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", l.Segments())
	}
	frames, count, err := l.ReadCommitted(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(want) {
		t.Fatalf("count = %d, want %d", count, len(want))
	}
	got := scanFrames(t, frames)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("shipped = %q, want %q", got, want)
	}

	// Mid-log start: from 7 ships records 7..20.
	frames, count, err = l.ReadCommitted(7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(want)-6 {
		t.Fatalf("count from 7 = %d, want %d", count, len(want)-6)
	}
	if got := scanFrames(t, frames); got[0] != want[6] {
		t.Fatalf("first shipped from 7 = %q, want %q", got[0], want[6])
	}
}

func TestReadCommittedBoundedByMaxBytes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want []string
	for i := 0; i < 10; i++ {
		want = append(want, fmt.Sprintf("payload-%d-0123456789", i))
	}
	appendAll(t, l, want...)

	// Tiny budget: always at least one record per call; sequential calls
	// reassemble the exact stream.
	var got []string
	from := LSN(1)
	for from <= l.Synced() {
		frames, count, err := l.ReadCommitted(from, 10)
		if err != nil {
			t.Fatal(err)
		}
		if count != 1 {
			t.Fatalf("count under tiny budget = %d, want 1", count)
		}
		got = append(got, scanFrames(t, frames)...)
		from += LSN(count)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("reassembled = %q, want %q", got, want)
	}

	// A budget for ~3 records returns several but not all.
	rec := headerSize + len(want[0])
	_, count, err := l.ReadCommitted(1, 3*rec)
	if err != nil {
		t.Fatal(err)
	}
	if count < 2 || count >= len(want) {
		t.Fatalf("count under 3-record budget = %d, want in [2, %d)", count, len(want))
	}
}

func TestReadCommittedBeyondWatermark(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "a", "b")
	frames, count, err := l.ReadCommitted(3, 1<<20)
	if err != nil || count != 0 || frames != nil {
		t.Fatalf("read beyond watermark = (%v, %d, %v), want (nil, 0, nil)", frames, count, err)
	}
}

func TestReadCommittedTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb", "cccccccccccccccc", "d")
	if _, err := l.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadCommitted(1, 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read below horizon: %v, want ErrTruncated", err)
	}
	if oldest := l.OldestLSN(); oldest != 3 {
		t.Fatalf("OldestLSN = %d, want 3", oldest)
	}
	frames, count, err := l.ReadCommitted(3, 1<<20)
	if err != nil || count != 2 {
		t.Fatalf("read from horizon = (%d, %v), want 2 records", count, err)
	}
	if got := scanFrames(t, frames); got[0] != "cccccccccccccccc" || got[1] != "d" {
		t.Fatalf("shipped after truncation = %q", got)
	}
}

func TestReadCommittedGroupCommitServesOnlySynced(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Begin stages without flushing: nothing is shipped until a Wait
	// leads the flush and advances the watermark.
	p, err := l.Begin([]byte("staged"))
	if err != nil {
		t.Fatal(err)
	}
	if _, count, err := l.ReadCommitted(1, 1<<20); err != nil || count != 0 {
		t.Fatalf("staged-but-unflushed shipped: count %d, err %v", count, err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	frames, count, err := l.ReadCommitted(1, 1<<20)
	if err != nil || count != 1 {
		t.Fatalf("after flush: count %d, err %v", count, err)
	}
	if got := scanFrames(t, frames); got[0] != "staged" {
		t.Fatalf("shipped = %q", got)
	}
}

func TestWaitSyncedWakesOnAppendAndTimesOut(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, "a")

	// Already past: returns immediately.
	if got, err := l.WaitSynced(0, time.Minute); err != nil || got != 1 {
		t.Fatalf("WaitSynced(0) = (%d, %v), want (1, nil)", got, err)
	}
	// Timeout: nothing new arrives; must return promptly, not hang.
	start := time.Now()
	if got, err := l.WaitSynced(1, 30*time.Millisecond); err != nil || got != 1 {
		t.Fatalf("WaitSynced timeout = (%d, %v), want (1, nil)", got, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitSynced did not respect its timeout")
	}
	// Wakes on a concurrent append.
	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Append([]byte("b"))
	}()
	if got, err := l.WaitSynced(1, 10*time.Second); err != nil || got != 2 {
		t.Fatalf("WaitSynced wake = (%d, %v), want (2, nil)", got, err)
	}
}

func TestWaitSyncedClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a")
	go func() {
		time.Sleep(20 * time.Millisecond)
		l.Close()
	}()
	if _, err := l.WaitSynced(1, 10*time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitSynced on closing log: %v, want ErrClosed", err)
	}
}

func TestInitAtFSPositionsNextLSN(t *testing.T) {
	dir := t.TempDir()
	if err := InitAtFS(nil, dir, 42); err != nil {
		t.Fatal(err)
	}
	// Re-init must refuse: the directory already holds a segment.
	if err := InitAtFS(nil, dir, 42); err == nil {
		t.Fatal("InitAtFS on a non-empty log did not refuse")
	}
	l, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if info.NextLSN != 42 {
		t.Fatalf("NextLSN after InitAt(42) = %d, want 42", info.NextLSN)
	}
	lsn, err := l.Append([]byte("first-after-bootstrap"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("first append = lsn %d, want 42", lsn)
	}
	// Records below the bootstrap point are truncated by construction.
	if _, _, err := l.ReadCommitted(1, 1<<20); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read below bootstrap: %v, want ErrTruncated", err)
	}
}
