// Package wal implements the write-ahead log behind the durable juryd
// daemon: an append-only sequence of length-prefixed, CRC32-checksummed
// records split across rotating segment files, plus atomically-replaced
// JSON snapshots that bound replay time (snapshot.go).
//
// Format. A segment file is named wal-<first>.log, where <first> is the
// 16-hex-digit LSN of its first record; a record is
//
//	[4-byte little-endian payload length][4-byte CRC32-C of payload][payload]
//
// Records are numbered by position: the i-th record of a segment has LSN
// first+i, so the log needs no index — the file names and record counts
// are the index. Appends go to the newest segment and rotate to a fresh
// one when the configured size is exceeded.
//
// Crash semantics. Only the tail of the newest segment can be torn by a
// crash (appends are sequential); Open scans that segment, truncates
// anything after the last record whose length and checksum verify, and
// reports how many bytes were dropped. A record that fails verification
// anywhere else is corruption, and Replay fails with ErrCorrupt rather
// than silently skipping it. Decoding never panics on arbitrary bytes
// (fuzzed in fuzz_test.go).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LSN is a log sequence number: records are numbered 1, 2, 3, ... across
// segment boundaries. 0 means "before the first record".
type LSN uint64

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultMaxBatchBytes bounds the framed bytes staged for one group-commit
// flush when Options.MaxBatchBytes is zero.
const DefaultMaxBatchBytes = 1 << 20

// MaxRecordBytes bounds one record's payload; a decoded length above it is
// treated as a torn/corrupt record, which keeps arbitrary bytes from
// provoking huge allocations.
const MaxRecordBytes = 16 << 20

// headerSize is the per-record framing overhead: 4 length + 4 CRC bytes.
const headerSize = 8

// castagnoli is the CRC32-C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the log.
var (
	ErrClosed   = errors.New("wal: log closed")
	ErrCorrupt  = errors.New("wal: corrupt log")
	ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")
	// ErrFailed marks a log poisoned by an earlier disk error: the first
	// failing append returns the *IOError itself, every later one returns
	// an error wrapping both ErrFailed and that original cause.
	ErrFailed = errors.New("wal: log failed")
)

// IOError is a disk operation that failed underneath the log. Append and
// rotation surface every write, fsync, create, rename and directory-sync
// failure as one of these — callers can switch on Op to report which
// stage of durability broke, and errors.Is/As through Err to the root
// cause (e.g. syscall.ENOSPC). An IOError from Append means the record
// is NOT durable and the mutation it journals must not be acknowledged.
type IOError struct {
	// Op names the failed operation: "write", "fsync", "create",
	// "rename", "dirsync" or "close".
	Op string
	// Path is the file the operation targeted.
	Path string
	// Err is the underlying error.
	Err error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("wal: %s %s: %v", e.Op, filepath.Base(e.Path), e.Err)
}

func (e *IOError) Unwrap() error { return e.Err }

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; 0 selects
	// DefaultSegmentBytes. A record larger than the threshold still goes
	// into a single (oversized) segment.
	SegmentBytes int64
	// Fsync syncs the segment file after every append: durable against
	// power loss at the price of one disk flush per record. Without it,
	// appends survive a process crash (the page cache persists) but not a
	// machine crash.
	Fsync bool
	// FS is the filesystem the log lives on; nil selects the real one.
	// Tests substitute a fault injector (internal/wal/errfs) here.
	FS FS
	// GroupCommit batches concurrent appends into shared flushes: Begin
	// stages framed records and reserves their LSNs, and the first waiter
	// becomes the leader that writes the whole batch with one Write and
	// one Sync, releasing every waiter at or below the synced watermark.
	// Only meaningful with Fsync — without it there is no flush to share,
	// and the log keeps the per-record path bit-for-bit.
	GroupCommit bool
	// MaxBatchBytes caps the framed bytes staged for one group-commit
	// flush; 0 selects DefaultMaxBatchBytes. Appenders block (backpressure)
	// while the buffer is full until a leader drains it.
	MaxBatchBytes int64
	// OnFlush, if set, is called after every successful group-commit flush
	// with the number of records it made durable — the feed for batch-size
	// observability. It runs with the log's internal lock held, so it must
	// be fast and must not call back into the Log.
	OnFlush func(records int)
}

// OpenInfo reports what Open found on disk.
type OpenInfo struct {
	// Segments is the number of segment files.
	Segments int
	// NextLSN is the LSN the next append will get.
	NextLSN LSN
	// TornBytes is how many trailing bytes of the newest segment were
	// dropped because they did not form a complete, checksummed record.
	TornBytes int64
}

// segment is one on-disk segment file.
type segment struct {
	first LSN
	path  string
}

// Log is an append-only write-ahead log rooted at one directory. It is
// safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond // broadcast on watermark, poison, flush-state and close transitions
	dir    string
	opts   Options
	fs     FS
	group  bool // opts.Fsync && opts.GroupCommit: batched shared flushes
	segs   []segment
	f      File  // newest segment, opened for append
	size   int64 // flushed bytes in the newest segment (staged batch excluded)
	next   LSN
	failed error // sticky: set on a write error, fails every later append

	// Group-commit state. Begin frames records into buf under mu and
	// reserves their LSNs; the first waiter to find records staged and no
	// flush running becomes the leader, swaps buf out, and writes + syncs
	// it with mu released. synced is the durability watermark: every
	// record at or below it is on stable storage. Invariant: a record
	// above the watermark is either in buf or in the batch an in-flight
	// leader is flushing, so a leader's batch always covers its own LSN.
	buf        []byte
	bufRecords int
	spare      []byte // recycled batch buffer
	flushing   bool   // a leader is writing/syncing outside mu
	synced     LSN
	lastFsync  time.Duration // duration of the most recent flush's sync
}

// segmentName renders the file name of the segment whose first record has
// the given LSN.
func segmentName(first LSN) string {
	return fmt.Sprintf("wal-%016x.log", uint64(first))
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(n), true
}

// listSegments returns dir's segment files sorted by first LSN.
func listSegments(fsys FS, dir string) ([]segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Open opens (creating if needed) the log in dir, truncating any torn
// record off the tail of the newest segment so the log ends on a clean
// record boundary.
func Open(dir string, opts Options) (*Log, OpenInfo, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, OpenInfo{}, err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, OpenInfo{}, err
	}
	l := &Log{dir: dir, opts: opts, fs: fsys, segs: segs}
	l.cond = sync.NewCond(&l.mu)
	l.group = opts.Fsync && opts.GroupCommit
	var info OpenInfo
	if len(segs) == 0 {
		l.next = 1
		if err := l.createSegmentLocked(1); err != nil {
			return nil, OpenInfo{}, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := fsys.Open(last.path)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		records := 0
		valid, _, scanErr := ScanSegment(f, func([]byte) error { records++; return nil })
		closeErr := f.Close()
		if scanErr != nil {
			return nil, OpenInfo{}, scanErr
		}
		if closeErr != nil {
			return nil, OpenInfo{}, closeErr
		}
		st, err := fsys.Stat(last.path)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		if st.Size() > valid {
			info.TornBytes = st.Size() - valid
			if err := fsys.Truncate(last.path, valid); err != nil {
				return nil, OpenInfo{}, err
			}
		}
		l.f, err = fsys.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		l.size = valid
		l.next = last.first + LSN(records)
	}
	l.synced = l.next - 1 // everything on disk at Open is the durable prefix
	info.Segments = len(l.segs)
	info.NextLSN = l.next
	return l, info, nil
}

// createSegmentLocked starts a fresh segment whose first record will be
// LSN first. Under Fsync the parent directory is synced too: a record
// is only durable if the directory entry of the segment holding it is —
// otherwise power loss right after a rotation could drop the whole new
// segment, acknowledged records included. Callers hold l.mu (or own the
// log exclusively).
func (l *Log) createSegmentLocked(first LSN) error {
	path := filepath.Join(l.dir, segmentName(first))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return &IOError{Op: "create", Path: path, Err: err}
	}
	if l.opts.Fsync {
		if err := syncDir(l.fs, l.dir); err != nil {
			f.Close()
			return &IOError{Op: "dirsync", Path: l.dir, Err: err}
		}
	}
	l.segs = append(l.segs, segment{first: first, path: path})
	l.f = f
	l.size = 0
	return nil
}

// syncDir flushes a directory's entries (file creations, renames) to
// stable storage.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// rotateLocked closes the current segment and starts the next one.
func (l *Log) rotateLocked() error {
	path := l.segs[len(l.segs)-1].path
	if err := l.f.Sync(); err != nil {
		return &IOError{Op: "fsync", Path: path, Err: err}
	}
	if err := l.f.Close(); err != nil {
		return &IOError{Op: "close", Path: path, Err: err}
	}
	return l.createSegmentLocked(l.next)
}

// Append writes one record and returns its LSN. The write is a single
// syscall, so a crash leaves at most one torn record at the tail; with
// Options.Fsync the record is flushed to stable storage before Append
// returns. Disk failures surface as *IOError (never a panic) and poison
// the log: the failing append reports the IOError itself, every later
// one fails with an error wrapping ErrFailed and the original cause.
// Callers must treat any append error as "this record is not durable".
func (l *Log) Append(payload []byte) (LSN, error) {
	lsn, _, err := l.AppendTimed(payload)
	return lsn, err
}

// AppendTiming breaks one append's latency into its durability phases.
// The fsync is the dominant (and tunable: Options.Fsync, future group
// commit) cost, so it is reported separately from the framing + write.
type AppendTiming struct {
	// Total is the whole append under the log's lock: framing, rotation
	// if due, the segment write, and the fsync.
	Total time.Duration
	// Fsync is the portion spent in the post-write flush to stable
	// storage; zero when Options.Fsync is off.
	Fsync time.Duration
}

// AppendTimed is Append, also reporting where the time went — the
// instrumentation point behind the juryd_wal_fsync_seconds histogram.
// It is Begin followed by Wait, so in group-commit mode sequential
// callers still flush once per record while concurrent ones share.
func (l *Log) AppendTimed(payload []byte) (lsn LSN, timing AppendTiming, err error) {
	start := time.Now()
	p, err := l.Begin(payload)
	if err != nil {
		timing.Total = time.Since(start)
		return 0, timing, err
	}
	err = p.Wait()
	timing.Total = time.Since(start)
	timing.Fsync = p.FsyncDuration()
	if err != nil {
		return 0, timing, err
	}
	return p.lsn, timing, nil
}

// Pending is one record accepted by Begin: an LSN reservation awaiting
// durability. It is intended for a single goroutine; Wait may be called
// more than once and keeps returning the same outcome.
type Pending struct {
	l   *Log
	lsn LSN

	done    bool // the outcome below is final
	err     error
	fsync   time.Duration
	leader  bool
	records int
}

// LSN returns the reserved log sequence number.
func (p *Pending) LSN() LSN { return p.lsn }

// Done reports whether the record's fate was already decided when Begin
// returned — true on the per-record path, where Begin performs the write
// and flush itself and Wait just replays the stored outcome.
func (p *Pending) Done() bool { return p.done }

// FsyncDuration is the time spent in the flush that made this record
// durable, valid after Wait: the record's own fsync on the per-record
// path, the shared batch sync in group-commit mode.
func (p *Pending) FsyncDuration() time.Duration { return p.fsync }

// Leader reports whether this waiter led the flush that covered it.
func (p *Pending) Leader() bool { return p.leader }

// Records is the size of the batch this waiter flushed as leader
// (0 for followers and on the per-record path).
func (p *Pending) Records() int { return p.records }

// Begin reserves the next LSN for payload and stages the framed record
// for durability, returning a Pending whose Wait blocks until the record
// is on stable storage. In group-commit mode (Options.Fsync with
// Options.GroupCommit) Begin only frames and buffers — the batched write
// and the shared fsync happen under Wait, led by the first waiter — so a
// caller can reserve its LSN under its own ordering lock and wait for
// the flush outside it. In every other mode Begin performs the full
// per-record append itself.
func (l *Log) Begin(payload []byte) (*Pending, error) {
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	rec := appendFrame(make([]byte, 0, headerSize+len(payload)), payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, ErrClosed
	}
	if l.failed != nil {
		return nil, fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if !l.group {
		lsn, fsyncDur, err := l.appendLocked(rec)
		if err != nil {
			return nil, err
		}
		return &Pending{l: l, lsn: lsn, done: true, fsync: fsyncDur}, nil
	}
	// Backpressure: a full batch buffer means flushes are behind; park
	// until a leader drains it.
	for int64(len(l.buf)) >= l.opts.MaxBatchBytes && l.bufRecords > 0 {
		l.cond.Wait()
		if l.f == nil {
			return nil, ErrClosed
		}
		if l.failed != nil {
			return nil, fmt.Errorf("%w: %w", ErrFailed, l.failed)
		}
	}
	// Rotation happens on the same cumulative-bytes boundary as the
	// per-record path (l.size counts flushed bytes, the buffer staged
	// ones), so batched and unbatched logs lay out identical segments.
	// The staged records must drain into the old segment first: the
	// LSN-to-segment mapping is positional.
	for {
		staged := l.size + int64(len(l.buf))
		if staged == 0 || staged+int64(len(rec)) <= l.opts.SegmentBytes {
			break
		}
		if l.flushing || l.bufRecords > 0 {
			if err := l.drainLocked(); err != nil {
				return nil, err
			}
			if l.f == nil {
				return nil, ErrClosed
			}
			continue // the drain dropped mu for the I/O; re-evaluate
		}
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			l.cond.Broadcast()
			return nil, err
		}
		break
	}
	l.buf = append(l.buf, rec...)
	l.bufRecords++
	lsn := l.next
	l.next++
	return &Pending{l: l, lsn: lsn}, nil
}

// Wait blocks until the record is durable, leading the batch flush if no
// one else is. It returns nil once the durability watermark covers the
// record's LSN; on a flush failure the leader surfaces the *IOError
// itself and every other waiter gets an error wrapping ErrFailed and the
// cause, matching Append's poison contract.
func (p *Pending) Wait() error {
	if p.done {
		return p.err
	}
	l := p.l
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.synced >= p.lsn {
			p.done = true
			p.fsync = l.lastFsync
			return nil
		}
		if l.failed != nil {
			p.done = true
			p.err = fmt.Errorf("%w: %w", ErrFailed, l.failed)
			return p.err
		}
		if l.f == nil {
			p.done = true
			p.err = ErrClosed
			return p.err
		}
		if !l.flushing && l.bufRecords > 0 {
			if err := l.flushLocked(p); err != nil {
				p.done = true
				p.err = err
				return p.err
			}
			continue
		}
		l.cond.Wait()
	}
}

// WaitDurable blocks until every record accepted before the call is on
// stable storage — the durability barrier behind duplicate-ack paths,
// where a retried mutation may only be acknowledged once the original it
// dedups against is itself durable. On the per-record path every
// accepted append is already flushed, so it returns immediately.
func (l *Log) WaitDurable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if !l.group {
		return nil
	}
	target := l.next - 1
	for {
		if l.synced >= target {
			return nil
		}
		if l.failed != nil {
			return fmt.Errorf("%w: %w", ErrFailed, l.failed)
		}
		if l.f == nil {
			return ErrClosed
		}
		if !l.flushing && l.bufRecords > 0 {
			if err := l.flushLocked(nil); err != nil {
				return err
			}
			continue
		}
		l.cond.Wait()
	}
}

// appendLocked writes one framed record through the per-record path:
// rotate if due, one write, and under Options.Fsync one flush. Callers
// hold l.mu and have checked the closed and poisoned states.
func (l *Log) appendLocked(rec []byte) (lsn LSN, fsyncDur time.Duration, err error) {
	if l.size > 0 && l.size+int64(len(rec)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			l.cond.Broadcast()
			return 0, 0, err
		}
	}
	path := l.segs[len(l.segs)-1].path
	if _, err := l.f.Write(rec); err != nil {
		l.failed = &IOError{Op: "write", Path: path, Err: err}
		l.cond.Broadcast()
		return 0, 0, l.failed
	}
	l.size += int64(len(rec))
	if l.opts.Fsync {
		syncStart := time.Now()
		serr := l.f.Sync()
		fsyncDur = time.Since(syncStart)
		if serr != nil {
			l.failed = &IOError{Op: "fsync", Path: path, Err: serr}
			l.cond.Broadcast()
			return 0, fsyncDur, l.failed
		}
	}
	lsn = l.next
	l.next++
	l.synced = lsn // the watermark stays true on the per-record path too
	l.cond.Broadcast() // wake WaitSynced long-pollers (replication stream)
	return lsn, fsyncDur, nil
}

// flushLocked writes the staged batch with one Write and one Sync, then
// advances the durability watermark and wakes every waiter. The caller
// holds l.mu and has checked that no flush is running; the lock is
// released for the disk I/O and reacquired before returning. p, when
// non-nil, is the leading waiter: on success its flush stats are filled
// in, and on failure the returned *IOError is the leader's to surface
// while the sticky poison fails every other waiter with ErrFailed.
func (l *Log) flushLocked(p *Pending) error {
	batch := l.buf
	records := l.bufRecords
	upTo := l.next - 1
	l.buf = l.spare[:0]
	l.spare = nil
	l.bufRecords = 0
	l.flushing = true
	f := l.f
	path := l.segs[len(l.segs)-1].path
	l.mu.Unlock()

	var ioErr *IOError
	var syncDur time.Duration
	if _, err := f.Write(batch); err != nil {
		ioErr = &IOError{Op: "write", Path: path, Err: err}
	} else {
		syncStart := time.Now()
		serr := f.Sync()
		syncDur = time.Since(syncStart)
		if serr != nil {
			ioErr = &IOError{Op: "fsync", Path: path, Err: serr}
		}
	}

	l.mu.Lock()
	l.flushing = false
	if cap(batch) > cap(l.spare) {
		l.spare = batch[:0]
	}
	if ioErr != nil {
		if l.failed == nil {
			l.failed = ioErr
		}
		l.cond.Broadcast()
		return ioErr
	}
	l.size += int64(len(batch))
	l.synced = upTo
	l.lastFsync = syncDur
	if p != nil {
		p.leader = true
		p.records = records
	}
	l.cond.Broadcast()
	if l.opts.OnFlush != nil {
		l.opts.OnFlush(records)
	}
	return nil
}

// drainLocked makes every staged record durable before returning: it
// waits out an in-flight flush, then leads a flush of whatever is still
// buffered. Callers hold l.mu; the lock may be dropped while waiting or
// flushing. Returns the wrapped sticky poison if the log had already
// failed, or the flush's own *IOError if this drain broke it.
func (l *Log) drainLocked() error {
	for l.flushing {
		l.cond.Wait()
	}
	if l.f == nil {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if l.bufRecords > 0 {
		if err := l.flushLocked(nil); err != nil {
			return err
		}
	}
	return nil
}

// Failed reports the sticky disk error that poisoned the log, or nil.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Sync makes every record accepted so far durable: it drains any staged
// group-commit batch, then flushes the newest segment to stable storage.
// It honors the poison contract Append does: a poisoned log refuses with
// an error wrapping ErrFailed and the original cause (a Sync on a failed
// log must never report success), and a Sync that itself fails records
// the poison — so every later append fails fast — and surfaces the
// *IOError.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if err := l.drainLocked(); err != nil {
		return err
	}
	if l.f == nil {
		return ErrClosed
	}
	path := l.segs[len(l.segs)-1].path
	if err := l.f.Sync(); err != nil {
		l.failed = &IOError{Op: "fsync", Path: path, Err: err}
		l.cond.Broadcast()
		return l.failed
	}
	return nil
}

// Close makes the log durable and closes it: staged group-commit records
// are flushed, the newest segment synced, and the file closed. Further
// appends fail with ErrClosed. A dirty close — the log was already
// poisoned, or the final flush, sync or close itself fails — is recorded
// in the sticky poison and returned as an error, so shutdown paths can
// distinguish "closed clean" from "closed with an unsynced tail"; closing
// an already-closed dirty log keeps reporting it. A poisoned log's final
// sync is skipped rather than retried: after a failed fsync the kernel
// may have dropped the dirty pages, and a retry reporting success would
// be a lie.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushing {
		l.cond.Wait()
	}
	if l.f == nil {
		if l.failed != nil {
			return fmt.Errorf("%w: %w", ErrFailed, l.failed)
		}
		return nil
	}
	path := l.segs[len(l.segs)-1].path
	var dirty error
	if l.failed != nil {
		dirty = fmt.Errorf("%w: %w", ErrFailed, l.failed)
	} else {
		if l.bufRecords > 0 {
			if err := l.flushLocked(nil); err != nil {
				dirty = err
			}
		}
		if dirty == nil && l.f != nil {
			if err := l.f.Sync(); err != nil {
				l.failed = &IOError{Op: "fsync", Path: path, Err: err}
				dirty = l.failed
			}
		}
	}
	if l.f == nil { // a concurrent Close slipped in while we flushed
		l.cond.Broadcast()
		return dirty
	}
	closeErr := l.f.Close()
	l.f = nil
	l.cond.Broadcast()
	if dirty != nil {
		return dirty
	}
	if closeErr != nil {
		l.failed = &IOError{Op: "close", Path: path, Err: closeErr}
		return l.failed
	}
	return nil
}

// NextLSN returns the LSN the next append will get; NextLSN()-1 is the
// LSN of the last appended record.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Replay calls fn for every record with LSN >= from, in order. It fails
// with ErrCorrupt on a record that does not verify (outside the tail Open
// already truncated) or on a gap between segments.
func (l *Log) Replay(from LSN, fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // every record of this segment is below from
		}
		f, err := l.fs.Open(seg.path)
		if err != nil {
			return err
		}
		lsn := seg.first
		_, torn, err := ScanSegment(f, func(payload []byte) error {
			this := lsn
			lsn++
			if this < from {
				return nil
			}
			return fn(this, payload)
		})
		closeErr := f.Close()
		if err != nil {
			// Name the segment so a failed replay diagnoses which file to
			// inspect, not just which LSN.
			return fmt.Errorf("segment %s: %w", filepath.Base(seg.path), err)
		}
		if closeErr != nil {
			return closeErr
		}
		if torn {
			return fmt.Errorf("%w: unverifiable record after lsn %d in %s",
				ErrCorrupt, lsn-1, filepath.Base(seg.path))
		}
		if i+1 < len(segs) && segs[i+1].first != lsn {
			return fmt.Errorf("%w: segment %s ends at lsn %d but %s starts at %d",
				ErrCorrupt, filepath.Base(seg.path), lsn-1,
				filepath.Base(segs[i+1].path), segs[i+1].first)
		}
	}
	return nil
}

// TruncateBefore deletes segments every record of which has LSN < lsn —
// the log-truncation step after a snapshot covering lsn-1. The newest
// segment is always kept (it carries the next-LSN position even when
// empty). It returns how many segment files were removed.
func (l *Log) TruncateBefore(lsn LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first <= lsn {
			if err := l.fs.Remove(seg.path); err != nil {
				kept = append(kept, l.segs[i:]...)
				l.segs = kept
				return removed, err
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return removed, nil
}

// ScanSegment reads framed records from r until end of input or the first
// record that does not verify, calling fn with each valid payload (the
// slice is reused; fn must not retain it). It returns the byte offset
// just past the last valid record and whether the input ended mid-record
// or on an unverifiable one (torn). err carries fn failures and reader
// errors other than running out of bytes; arbitrary input never panics.
func ScanSegment(r io.Reader, fn func(payload []byte) error) (valid int64, torn bool, err error) {
	var header [headerSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return valid, false, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, true, nil
			}
			return valid, false, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length > MaxRecordBytes {
			return valid, true, nil
		}
		if cap(buf) < int(length) {
			// Grow in bounded chunks so a corrupt length claim cannot
			// force a huge allocation before the short read is noticed.
			buf = make([]byte, 0, min(int(length), 64<<10))
		}
		buf = buf[:0]
		remaining := int(length)
		short := false
		for remaining > 0 {
			chunk := min(remaining, 64<<10)
			start := len(buf)
			buf = append(buf, make([]byte, chunk)...)
			n, err := io.ReadFull(r, buf[start:])
			buf = buf[:start+n]
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					short = true
					break
				}
				return valid, false, err
			}
			remaining -= chunk
		}
		if short {
			return valid, true, nil
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(header[4:8]) {
			return valid, true, nil
		}
		if err := fn(buf); err != nil {
			return valid, false, err
		}
		valid += headerSize + int64(length)
	}
}
