// Package wal implements the write-ahead log behind the durable juryd
// daemon: an append-only sequence of length-prefixed, CRC32-checksummed
// records split across rotating segment files, plus atomically-replaced
// JSON snapshots that bound replay time (snapshot.go).
//
// Format. A segment file is named wal-<first>.log, where <first> is the
// 16-hex-digit LSN of its first record; a record is
//
//	[4-byte little-endian payload length][4-byte CRC32-C of payload][payload]
//
// Records are numbered by position: the i-th record of a segment has LSN
// first+i, so the log needs no index — the file names and record counts
// are the index. Appends go to the newest segment and rotate to a fresh
// one when the configured size is exceeded.
//
// Crash semantics. Only the tail of the newest segment can be torn by a
// crash (appends are sequential); Open scans that segment, truncates
// anything after the last record whose length and checksum verify, and
// reports how many bytes were dropped. A record that fails verification
// anywhere else is corruption, and Replay fails with ErrCorrupt rather
// than silently skipping it. Decoding never panics on arbitrary bytes
// (fuzzed in fuzz_test.go).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LSN is a log sequence number: records are numbered 1, 2, 3, ... across
// segment boundaries. 0 means "before the first record".
type LSN uint64

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// MaxRecordBytes bounds one record's payload; a decoded length above it is
// treated as a torn/corrupt record, which keeps arbitrary bytes from
// provoking huge allocations.
const MaxRecordBytes = 16 << 20

// headerSize is the per-record framing overhead: 4 length + 4 CRC bytes.
const headerSize = 8

// castagnoli is the CRC32-C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the log.
var (
	ErrClosed   = errors.New("wal: log closed")
	ErrCorrupt  = errors.New("wal: corrupt log")
	ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")
	// ErrFailed marks a log poisoned by an earlier disk error: the first
	// failing append returns the *IOError itself, every later one returns
	// an error wrapping both ErrFailed and that original cause.
	ErrFailed = errors.New("wal: log failed")
)

// IOError is a disk operation that failed underneath the log. Append and
// rotation surface every write, fsync, create, rename and directory-sync
// failure as one of these — callers can switch on Op to report which
// stage of durability broke, and errors.Is/As through Err to the root
// cause (e.g. syscall.ENOSPC). An IOError from Append means the record
// is NOT durable and the mutation it journals must not be acknowledged.
type IOError struct {
	// Op names the failed operation: "write", "fsync", "create",
	// "rename", "dirsync" or "close".
	Op string
	// Path is the file the operation targeted.
	Path string
	// Err is the underlying error.
	Err error
}

func (e *IOError) Error() string {
	return fmt.Sprintf("wal: %s %s: %v", e.Op, filepath.Base(e.Path), e.Err)
}

func (e *IOError) Unwrap() error { return e.Err }

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; 0 selects
	// DefaultSegmentBytes. A record larger than the threshold still goes
	// into a single (oversized) segment.
	SegmentBytes int64
	// Fsync syncs the segment file after every append: durable against
	// power loss at the price of one disk flush per record. Without it,
	// appends survive a process crash (the page cache persists) but not a
	// machine crash.
	Fsync bool
	// FS is the filesystem the log lives on; nil selects the real one.
	// Tests substitute a fault injector (internal/wal/errfs) here.
	FS FS
}

// OpenInfo reports what Open found on disk.
type OpenInfo struct {
	// Segments is the number of segment files.
	Segments int
	// NextLSN is the LSN the next append will get.
	NextLSN LSN
	// TornBytes is how many trailing bytes of the newest segment were
	// dropped because they did not form a complete, checksummed record.
	TornBytes int64
}

// segment is one on-disk segment file.
type segment struct {
	first LSN
	path  string
}

// Log is an append-only write-ahead log rooted at one directory. It is
// safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	fs     FS
	segs   []segment
	f      File  // newest segment, opened for append
	size   int64 // bytes in the newest segment
	next   LSN
	failed error // sticky: set on a write error, fails every later append
}

// segmentName renders the file name of the segment whose first record has
// the given LSN.
func segmentName(first LSN) string {
	return fmt.Sprintf("wal-%016x.log", uint64(first))
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(n), true
}

// listSegments returns dir's segment files sorted by first LSN.
func listSegments(fsys FS, dir string) ([]segment, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Open opens (creating if needed) the log in dir, truncating any torn
// record off the tail of the newest segment so the log ends on a clean
// record boundary.
func Open(dir string, opts Options) (*Log, OpenInfo, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, OpenInfo{}, err
	}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, OpenInfo{}, err
	}
	l := &Log{dir: dir, opts: opts, fs: fsys, segs: segs}
	var info OpenInfo
	if len(segs) == 0 {
		l.next = 1
		if err := l.createSegmentLocked(1); err != nil {
			return nil, OpenInfo{}, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := fsys.Open(last.path)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		records := 0
		valid, _, scanErr := ScanSegment(f, func([]byte) error { records++; return nil })
		closeErr := f.Close()
		if scanErr != nil {
			return nil, OpenInfo{}, scanErr
		}
		if closeErr != nil {
			return nil, OpenInfo{}, closeErr
		}
		st, err := fsys.Stat(last.path)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		if st.Size() > valid {
			info.TornBytes = st.Size() - valid
			if err := fsys.Truncate(last.path, valid); err != nil {
				return nil, OpenInfo{}, err
			}
		}
		l.f, err = fsys.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, OpenInfo{}, err
		}
		l.size = valid
		l.next = last.first + LSN(records)
	}
	info.Segments = len(l.segs)
	info.NextLSN = l.next
	return l, info, nil
}

// createSegmentLocked starts a fresh segment whose first record will be
// LSN first. Under Fsync the parent directory is synced too: a record
// is only durable if the directory entry of the segment holding it is —
// otherwise power loss right after a rotation could drop the whole new
// segment, acknowledged records included. Callers hold l.mu (or own the
// log exclusively).
func (l *Log) createSegmentLocked(first LSN) error {
	path := filepath.Join(l.dir, segmentName(first))
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return &IOError{Op: "create", Path: path, Err: err}
	}
	if l.opts.Fsync {
		if err := syncDir(l.fs, l.dir); err != nil {
			f.Close()
			return &IOError{Op: "dirsync", Path: l.dir, Err: err}
		}
	}
	l.segs = append(l.segs, segment{first: first, path: path})
	l.f = f
	l.size = 0
	return nil
}

// syncDir flushes a directory's entries (file creations, renames) to
// stable storage.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// rotateLocked closes the current segment and starts the next one.
func (l *Log) rotateLocked() error {
	path := l.segs[len(l.segs)-1].path
	if err := l.f.Sync(); err != nil {
		return &IOError{Op: "fsync", Path: path, Err: err}
	}
	if err := l.f.Close(); err != nil {
		return &IOError{Op: "close", Path: path, Err: err}
	}
	return l.createSegmentLocked(l.next)
}

// Append writes one record and returns its LSN. The write is a single
// syscall, so a crash leaves at most one torn record at the tail; with
// Options.Fsync the record is flushed to stable storage before Append
// returns. Disk failures surface as *IOError (never a panic) and poison
// the log: the failing append reports the IOError itself, every later
// one fails with an error wrapping ErrFailed and the original cause.
// Callers must treat any append error as "this record is not durable".
func (l *Log) Append(payload []byte) (LSN, error) {
	lsn, _, err := l.AppendTimed(payload)
	return lsn, err
}

// AppendTiming breaks one append's latency into its durability phases.
// The fsync is the dominant (and tunable: Options.Fsync, future group
// commit) cost, so it is reported separately from the framing + write.
type AppendTiming struct {
	// Total is the whole append under the log's lock: framing, rotation
	// if due, the segment write, and the fsync.
	Total time.Duration
	// Fsync is the portion spent in the post-write flush to stable
	// storage; zero when Options.Fsync is off.
	Fsync time.Duration
}

// AppendTimed is Append, also reporting where the time went — the
// instrumentation point behind the juryd_wal_fsync_seconds histogram.
func (l *Log) AppendTimed(payload []byte) (lsn LSN, timing AppendTiming, err error) {
	if len(payload) > MaxRecordBytes {
		return 0, timing, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	defer func() { timing.Total = time.Since(start) }()
	if l.f == nil {
		return 0, timing, ErrClosed
	}
	if l.failed != nil {
		return 0, timing, fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[headerSize:], payload)
	if l.size > 0 && l.size+int64(len(rec)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return 0, timing, err
		}
	}
	path := l.segs[len(l.segs)-1].path
	if _, err := l.f.Write(rec); err != nil {
		l.failed = &IOError{Op: "write", Path: path, Err: err}
		return 0, timing, l.failed
	}
	l.size += int64(len(rec))
	if l.opts.Fsync {
		syncStart := time.Now()
		serr := l.f.Sync()
		timing.Fsync = time.Since(syncStart)
		if serr != nil {
			l.failed = &IOError{Op: "fsync", Path: path, Err: serr}
			return 0, timing, l.failed
		}
	}
	lsn = l.next
	l.next++
	return lsn, timing, nil
}

// Failed reports the sticky disk error that poisoned the log, or nil.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Sync flushes the newest segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	return l.f.Sync()
}

// Close syncs and closes the log. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// NextLSN returns the LSN the next append will get; NextLSN()-1 is the
// LSN of the last appended record.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Segments returns the number of segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Replay calls fn for every record with LSN >= from, in order. It fails
// with ErrCorrupt on a record that does not verify (outside the tail Open
// already truncated) or on a gap between segments.
func (l *Log) Replay(from LSN, fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	l.mu.Unlock()
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue // every record of this segment is below from
		}
		f, err := l.fs.Open(seg.path)
		if err != nil {
			return err
		}
		lsn := seg.first
		_, torn, err := ScanSegment(f, func(payload []byte) error {
			this := lsn
			lsn++
			if this < from {
				return nil
			}
			return fn(this, payload)
		})
		closeErr := f.Close()
		if err != nil {
			// Name the segment so a failed replay diagnoses which file to
			// inspect, not just which LSN.
			return fmt.Errorf("segment %s: %w", filepath.Base(seg.path), err)
		}
		if closeErr != nil {
			return closeErr
		}
		if torn {
			return fmt.Errorf("%w: unverifiable record after lsn %d in %s",
				ErrCorrupt, lsn-1, filepath.Base(seg.path))
		}
		if i+1 < len(segs) && segs[i+1].first != lsn {
			return fmt.Errorf("%w: segment %s ends at lsn %d but %s starts at %d",
				ErrCorrupt, filepath.Base(seg.path), lsn-1,
				filepath.Base(segs[i+1].path), segs[i+1].first)
		}
	}
	return nil
}

// TruncateBefore deletes segments every record of which has LSN < lsn —
// the log-truncation step after a snapshot covering lsn-1. The newest
// segment is always kept (it carries the next-LSN position even when
// empty). It returns how many segment files were removed.
func (l *Log) TruncateBefore(lsn LSN) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	kept := l.segs[:0]
	for i, seg := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].first <= lsn {
			if err := l.fs.Remove(seg.path); err != nil {
				kept = append(kept, l.segs[i:]...)
				l.segs = kept
				return removed, err
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return removed, nil
}

// ScanSegment reads framed records from r until end of input or the first
// record that does not verify, calling fn with each valid payload (the
// slice is reused; fn must not retain it). It returns the byte offset
// just past the last valid record and whether the input ended mid-record
// or on an unverifiable one (torn). err carries fn failures and reader
// errors other than running out of bytes; arbitrary input never panics.
func ScanSegment(r io.Reader, fn func(payload []byte) error) (valid int64, torn bool, err error) {
	var header [headerSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return valid, false, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return valid, true, nil
			}
			return valid, false, err
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		if length > MaxRecordBytes {
			return valid, true, nil
		}
		if cap(buf) < int(length) {
			// Grow in bounded chunks so a corrupt length claim cannot
			// force a huge allocation before the short read is noticed.
			buf = make([]byte, 0, min(int(length), 64<<10))
		}
		buf = buf[:0]
		remaining := int(length)
		short := false
		for remaining > 0 {
			chunk := min(remaining, 64<<10)
			start := len(buf)
			buf = append(buf, make([]byte, chunk)...)
			n, err := io.ReadFull(r, buf[start:])
			buf = buf[:start+n]
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					short = true
					break
				}
				return valid, false, err
			}
			remaining -= chunk
		}
		if short {
			return valid, true, nil
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(header[4:8]) {
			return valid, true, nil
		}
		if err := fn(buf); err != nil {
			return valid, false, err
		}
		valid += headerSize + int64(length)
	}
}
