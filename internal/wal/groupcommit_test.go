package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/internal/wal/errfs"
)

// batchRecorder collects OnFlush batch sizes; the callback runs with the
// log's lock held, so it only appends under its own mutex.
type batchRecorder struct {
	mu      sync.Mutex
	batches []int
}

func (b *batchRecorder) record(n int) {
	b.mu.Lock()
	b.batches = append(b.batches, n)
	b.mu.Unlock()
}

func (b *batchRecorder) snapshot() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.batches...)
}

func replayPayloads(t *testing.T, l *wal.Log) [][]byte {
	t.Helper()
	var out [][]byte
	err := l.Replay(1, func(lsn wal.LSN, payload []byte) error {
		if lsn != wal.LSN(len(out)+1) {
			return fmt.Errorf("lsn %d out of order (want %d)", lsn, len(out)+1)
		}
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

// waitInjected polls until the injector has fired n faults — the only
// cross-goroutine signal that a gated leader has entered its sync.
func waitInjected(t *testing.T, fs *errfs.FS, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fs.Injected() < n {
		if time.Now().After(deadline) {
			t.Fatalf("injector never reached %d fired faults (at %d)", n, fs.Injected())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCommitSharesFsync holds the first flush's fsync at a gate,
// piles more appends into the staging buffer, and proves the whole pile
// retires with one more sync: 1+N records, exactly two flushes.
func TestGroupCommitSharesFsync(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpSync, Path: "wal-", Times: 1, Gate: gate})
	rec := &batchRecorder{}
	l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true, FS: fs, OnFlush: rec.record})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p1, err := l.Begin([]byte("r1"))
	if err != nil {
		t.Fatal(err)
	}
	lead := make(chan error, 1)
	go func() { lead <- p1.Wait() }()
	waitInjected(t, fs, 1) // the leader is inside its gated fsync

	const followers = 8
	pending := make([]*wal.Pending, followers)
	for i := range pending {
		p, err := l.Begin([]byte(fmt.Sprintf("r%d", i+2)))
		if err != nil {
			t.Fatalf("Begin follower %d: %v", i, err)
		}
		pending[i] = p
	}
	close(gate)
	if err := <-lead; err != nil {
		t.Fatalf("leader Wait: %v", err)
	}
	if !p1.Leader() || p1.Records() != 1 {
		t.Fatalf("first waiter: leader=%v records=%d, want leader of 1", p1.Leader(), p1.Records())
	}
	for i, p := range pending {
		if err := p.Wait(); err != nil {
			t.Fatalf("follower %d Wait: %v", i, err)
		}
	}

	batches := rec.snapshot()
	if len(batches) != 2 || batches[0] != 1 || batches[1] != followers {
		t.Fatalf("flush batches = %v, want [1 %d]", batches, followers)
	}
	got := replayPayloads(t, l)
	if len(got) != followers+1 {
		t.Fatalf("replayed %d records, want %d", len(got), followers+1)
	}
	for i, payload := range got {
		if want := fmt.Sprintf("r%d", i+1); string(payload) != want {
			t.Fatalf("record %d = %q, want %q", i+1, payload, want)
		}
	}
}

// TestGroupCommitLeaderFailureDegradesWaiters gates the leader's fsync
// and makes it fail on release: the leader surfaces the *IOError itself,
// every staged waiter fails with the wrapped sticky poison, and the log
// refuses further appends.
func TestGroupCommitLeaderFailureDegradesWaiters(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fs := errfs.New(wal.OSFS(), errfs.Fault{
		Op: errfs.OpSync, Path: "wal-", Times: 1, Gate: gate, Err: errfs.ErrInjected,
	})
	l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	p1, err := l.Begin([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	lead := make(chan error, 1)
	go func() { lead <- p1.Wait() }()
	waitInjected(t, fs, 1)

	const followers = 4
	pending := make([]*wal.Pending, followers)
	for i := range pending {
		p, err := l.Begin([]byte("staged"))
		if err != nil {
			t.Fatalf("Begin follower %d: %v", i, err)
		}
		pending[i] = p
	}
	close(gate)

	leadErr := <-lead
	var ioErr *wal.IOError
	if !errors.As(leadErr, &ioErr) || ioErr.Op != "fsync" {
		t.Fatalf("leader error = %v, want fsync *IOError", leadErr)
	}
	if errors.Is(leadErr, wal.ErrFailed) {
		t.Fatalf("leader error %v wraps ErrFailed; the first failure must surface the IOError itself", leadErr)
	}
	for i, p := range pending {
		err := p.Wait()
		if !errors.Is(err, wal.ErrFailed) {
			t.Fatalf("follower %d error = %v, want ErrFailed wrap", i, err)
		}
		if !errors.As(err, &ioErr) {
			t.Fatalf("follower %d error %v does not expose the IOError cause", i, err)
		}
	}
	if _, err := l.Begin([]byte("after")); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Begin on poisoned log = %v, want ErrFailed", err)
	}
}

// TestGroupCommitLayoutMatchesPerRecord drives the same sequential record
// stream through a per-record log and a group-commit one, rotating often,
// and demands bit-identical segment files: with no concurrency the group
// path must degenerate to exactly today's on-disk behavior.
func TestGroupCommitLayoutMatchesPerRecord(t *testing.T) {
	payloads := make([][]byte, 60)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i%26)}, 5+i%40)
	}
	write := func(dir string, group bool) {
		t.Helper()
		l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: group, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	plain, grouped := t.TempDir(), t.TempDir()
	write(plain, false)
	write(grouped, true)

	plainSegs, err := filepath.Glob(filepath.Join(plain, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	groupSegs, err := filepath.Glob(filepath.Join(grouped, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plainSegs) != len(groupSegs) || len(plainSegs) < 2 {
		t.Fatalf("segment counts differ (or no rotation): per-record %d, group %d", len(plainSegs), len(groupSegs))
	}
	for i := range plainSegs {
		if filepath.Base(plainSegs[i]) != filepath.Base(groupSegs[i]) {
			t.Fatalf("segment %d named %s vs %s", i, filepath.Base(plainSegs[i]), filepath.Base(groupSegs[i]))
		}
		a, err := os.ReadFile(plainSegs[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(groupSegs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("segment %s differs between per-record and group-commit layouts", filepath.Base(plainSegs[i]))
		}
	}
}

// TestGroupCommitConcurrentReplayComplete hammers a group log from many
// goroutines across rotations and checks replay returns every acked
// record exactly once, in LSN order.
func TestGroupCommitConcurrentReplayComplete(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := replayPayloads(t, l)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	seen := make(map[string]bool, len(got))
	for _, p := range got {
		if seen[string(p)] {
			t.Fatalf("record %q replayed twice", p)
		}
		seen[string(p)] = true
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncFailurePoisonsLog pins the Sync half of the poison contract:
// the failing Sync surfaces the *IOError itself, and afterwards both
// Sync and Append refuse with the ErrFailed wrap instead of pretending
// a later retry could make the lost pages durable.
func TestSyncFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpSync, Path: "wal-"})
	l, _, err := wal.Open(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err) // no Fsync option: the append itself does not sync
	}
	err = l.Sync()
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "fsync" {
		t.Fatalf("Sync error = %v, want fsync *IOError", err)
	}
	if errors.Is(err, wal.ErrFailed) {
		t.Fatalf("first Sync failure %v wraps ErrFailed; it must surface the IOError itself", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Sync on poisoned log = %v, want ErrFailed wrap", err)
	}
	if _, err := l.Append([]byte("two")); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Append on poisoned log = %v, want ErrFailed wrap", err)
	}
	if l.Failed() == nil {
		t.Fatal("Failed() = nil after a Sync failure")
	}
}

// TestSyncOnPoisonedLogRefuses: a log poisoned by a write failure must
// never let a later Sync report success.
func TestSyncOnPoisonedLogRefuses(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpWrite, Path: "wal-"})
	l, _, err := wal.Open(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("boom")); err == nil {
		t.Fatal("Append with write fault succeeded")
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Sync after poisoned write = %v, want ErrFailed wrap", err)
	}
}

// TestCloseReportsDirtyShutdown pins the Close half of the contract: a
// final flush that fails is reported (not swallowed), recorded as the
// sticky poison, and re-reported by a second Close.
func TestCloseReportsDirtyShutdown(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpSync, Path: "wal-"})
	l, _, err := wal.Open(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	err = l.Close()
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "fsync" {
		t.Fatalf("Close with failing final sync = %v, want fsync *IOError", err)
	}
	if again := l.Close(); !errors.Is(again, wal.ErrFailed) {
		t.Fatalf("second Close = %v, want the sticky dirty report (ErrFailed wrap)", again)
	}
}

// TestCloseOnPoisonedLogStaysDirty: closing a log that already failed
// reports the original poison instead of a clean shutdown, and skips the
// final sync (a post-failure fsync reporting success would be a lie).
func TestCloseOnPoisonedLogStaysDirty(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpWrite, Path: "wal-"})
	l, _, err := wal.Open(dir, wal.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("boom")); err == nil {
		t.Fatal("Append with write fault succeeded")
	}
	err = l.Close()
	if !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Close on poisoned log = %v, want ErrFailed wrap", err)
	}
	var ioErr *wal.IOError
	if !errors.As(err, &ioErr) || ioErr.Op != "write" {
		t.Fatalf("Close on poisoned log = %v, want the original write IOError as cause", err)
	}
}

// TestCloseCleanReturnsNil: the healthy path still closes silently.
func TestCloseCleanReturnsNil(t *testing.T) {
	for _, group := range []bool{false, true} {
		dir := t.TempDir()
		l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: group})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("fine")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("clean Close (group=%v) = %v, want nil", group, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("double Close of a clean log (group=%v) = %v, want nil", group, err)
		}
	}
}

// TestWaitDurableBarrier: WaitDurable returns only after every record
// accepted before the call is on stable storage, and surfaces the poison
// when the flush that should have covered them failed.
func TestWaitDurableBarrier(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := l.Begin([]byte("staged"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	// The barrier itself must have led the flush that covered the record.
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait after barrier: %v", err)
	}
	got := replayPayloads(t, l)
	if len(got) != 1 || string(got[0]) != "staged" {
		t.Fatalf("replay after barrier = %q, want [staged]", got)
	}
}

// TestGroupCommitDropUnsyncedRecoversAckedPrefix is the power-loss story
// under batching: a batch whose fsync fails with the unsynced tail
// dropped must leave exactly the previously-acked records on disk.
func TestGroupCommitDropUnsyncedRecoversAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	// Sequential group commit flushes once per record, so "fail sync 4
	// with the tail dropped" means records 1..3 were acked durable and
	// record 4 was never acknowledged.
	fs := errfs.New(wal.OSFS(), errfs.Fault{Op: errfs.OpSync, Path: "wal-", After: 3, DropUnsynced: true})
	l, _, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := 1; i <= 6; i++ {
		payload := fmt.Sprintf("r%d", i)
		if _, err := l.Append([]byte(payload)); err != nil {
			break
		}
		acked = append(acked, payload)
	}
	if len(acked) != 3 {
		t.Fatalf("acked %d records before the injected power loss, want 3", len(acked))
	}
	l.Close() // dirty; the tail is already gone

	reopened, info, err := wal.Open(dir, wal.Options{Fsync: true, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := replayPayloads(t, reopened)
	if len(got) != len(acked) {
		t.Fatalf("recovered %d records, want the %d acked ones (torn bytes %d)", len(got), len(acked), info.TornBytes)
	}
	for i, payload := range got {
		if string(payload) != acked[i] {
			t.Fatalf("recovered record %d = %q, want %q", i+1, payload, acked[i])
		}
	}
}
